//! `cargo xtask lint` — thin driver over the `mgps-lint` static analysis
//! engine (see `crates/lint`).
//!
//! The engine lexes the workspace (comments and string literals can no
//! longer produce hits, `tests/` and `benches/` trees are covered) and
//! runs the eight-rule catalog: wall-clock, unbounded-channel,
//! trace-clock, unordered-iter, rng-discipline, lock-order,
//! event-coverage, and panic-path. Exemptions require a justified
//! `// xtask-allow: <rule> — <why>` marker and are bounded per rule by an
//! exemption budget; CI fails when either discipline slips.
//!
//! Usage:
//!
//! ```text
//! cargo xtask lint              # human-readable report
//! cargo xtask lint --json       # machine-readable report on stdout
//! cargo xtask lint --json --out lint-report.json
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn repo_root() -> PathBuf {
    // xtask lives at <repo>/xtask; the manifest dir's parent is the root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits inside the repo")
        .to_path_buf()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(task) = args.first() else {
        eprintln!("usage: cargo xtask lint [--json] [--out <file>]");
        return ExitCode::FAILURE;
    };
    if task != "lint" {
        eprintln!("usage: cargo xtask lint [--json] [--out <file>]");
        return ExitCode::FAILURE;
    }
    let json = args.iter().any(|a| a == "--json");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);

    let report = mgps_lint::audit(&repo_root());
    let rendered =
        if json { report.to_value().to_json_pretty() + "\n" } else { report.render_text() };
    match &out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("xtask lint: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("xtask lint: report written to {}", path.display());
            if !report.clean() {
                eprintln!("xtask lint: {} violation(s)", report.findings.len());
            }
        }
        None => print!("{rendered}"),
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        if !json && out_path.is_none() {
            eprintln!("xtask lint: {} violation(s)", report.findings.len());
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repo_passes_lint() {
        let report = mgps_lint::audit(&repo_root());
        assert!(
            report.clean(),
            "repo must pass its own audit:\n{}",
            report.render_text()
        );
    }

    #[test]
    fn repo_coverage_matrix_has_no_holes() {
        let report = mgps_lint::audit(&repo_root());
        assert_eq!(report.coverage.hole_count(), 0, "\n{}", report.render_text());
        assert!(!report.coverage.rows.is_empty(), "EventKind variants must parse");
    }

    #[test]
    fn forbidden_pattern_is_detected_in_a_synthetic_tree() {
        let dir = std::env::temp_dir().join(format!("xtask-lint-{}", std::process::id()));
        let sim = dir.join("crates/des/src");
        std::fs::create_dir_all(&sim).unwrap();
        std::fs::write(sim.join("bad.rs"), "fn f() { let t = Instant::now(); }\n").unwrap();
        let report = mgps_lint::audit(&dir);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "wall-clock");
    }
}
