//! `cargo xtask lint` — repo-specific source lints that rustc/clippy
//! cannot express:
//!
//! 1. **No wall-clock in simulation paths.** Files under `crates/des/src`
//!    and `crates/cellsim/src` model virtual time; any use of
//!    `std::time::Instant`, `SystemTime`, or `Duration`-producing clock
//!    reads would leak host timing into supposedly deterministic
//!    simulations. (`mgps-runtime::native` legitimately measures real
//!    time and is exempt.)
//! 2. **No unbounded channels in `mgps-runtime::native`.** Every channel
//!    in the native runtime must be constructed with an explicit bound so
//!    back-pressure is part of the design; `channel::unbounded` and raw
//!    `std::sync::mpsc::channel` are rejected.
//! 3. **One clock in the tracing hot path.** `mgps-runtime::tracing`
//!    timestamps every span; all reads must flow through the designated
//!    monotonic `TraceClock` so traces stay comparable and the record
//!    path never touches `SystemTime` (non-monotonic) or sprouts ad-hoc
//!    `Instant` math. The `TraceClock` internals themselves carry
//!    `xtask-allow: trace-clock` markers.
//!
//! A line can opt out with a trailing `// xtask-allow: <rule>` comment,
//! which is itself reported so exemptions stay visible in the lint
//! output.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Rule {
    name: &'static str,
    roots: &'static [&'static str],
    needles: &'static [&'static str],
    why: &'static str,
}

const RULES: &[Rule] = &[
    Rule {
        name: "wall-clock",
        roots: &["crates/des/src", "crates/cellsim/src"],
        needles: &[
            "std::time::Instant",
            "Instant::now",
            "SystemTime",
            "time::SystemTime",
        ],
        why: "simulation code must use virtual SimTime, never host clocks",
    },
    Rule {
        name: "unbounded-channel",
        roots: &["crates/mgps-runtime/src/native"],
        needles: &["channel::unbounded", "mpsc::channel(", "unbounded()"],
        why: "native runtime channels must carry an explicit capacity bound",
    },
    Rule {
        name: "trace-clock",
        roots: &["crates/mgps-runtime/src/tracing.rs"],
        needles: &[
            "std::time::Instant",
            "Instant::now",
            "SystemTime",
            "time::SystemTime",
        ],
        why: "the tracing hot path must read time only through the designated \
              monotonic TraceClock",
    },
];

fn rust_files(root: &Path, out: &mut Vec<PathBuf>) {
    // A rule root may name a single file rather than a directory.
    if root.is_file() {
        if root.extension().is_some_and(|e| e == "rs") {
            out.push(root.to_path_buf());
        }
        return;
    }
    let Ok(entries) = std::fs::read_dir(root) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn lint(repo_root: &Path) -> Result<(), usize> {
    let mut violations = 0usize;
    for rule in RULES {
        for root in rule.roots {
            let mut files = Vec::new();
            rust_files(&repo_root.join(root), &mut files);
            files.sort();
            for file in files {
                let Ok(text) = std::fs::read_to_string(&file) else {
                    continue;
                };
                for (idx, line) in text.lines().enumerate() {
                    let hit = rule.needles.iter().any(|n| line.contains(n));
                    if !hit {
                        continue;
                    }
                    let loc = format!("{}:{}", file.display(), idx + 1);
                    if line.contains(&format!("xtask-allow: {}", rule.name)) {
                        println!("xtask lint: ALLOWED [{}] {loc}", rule.name);
                    } else {
                        eprintln!(
                            "xtask lint: FORBIDDEN [{}] {loc}\n  {}\n  rule: {}",
                            rule.name,
                            line.trim(),
                            rule.why
                        );
                        violations += 1;
                    }
                }
            }
        }
    }
    if violations == 0 {
        println!("xtask lint: clean ({} rules)", RULES.len());
        Ok(())
    } else {
        Err(violations)
    }
}

fn repo_root() -> PathBuf {
    // xtask lives at <repo>/xtask; the manifest dir's parent is the root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits inside the repo")
        .to_path_buf()
}

fn main() -> ExitCode {
    let task = std::env::args().nth(1).unwrap_or_default();
    match task.as_str() {
        "lint" => match lint(&repo_root()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(n) => {
                eprintln!("xtask lint: {n} violation(s)");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repo_passes_lint() {
        assert!(lint(&repo_root()).is_ok());
    }

    #[test]
    fn forbidden_pattern_is_detected() {
        // Exercise the scanner on a synthetic tree.
        let dir = std::env::temp_dir().join(format!("xtask-lint-{}", std::process::id()));
        let sim = dir.join("crates/des/src");
        std::fs::create_dir_all(&sim).unwrap();
        std::fs::write(sim.join("bad.rs"), "let t = Instant::now();\n").unwrap();
        let r = lint(&dir);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(r, Err(1));
    }

    #[test]
    fn trace_clock_rule_scans_its_single_file_root() {
        let dir = std::env::temp_dir().join(format!("xtask-lint-tc-{}", std::process::id()));
        let rt = dir.join("crates/mgps-runtime/src");
        std::fs::create_dir_all(&rt).unwrap();
        // An undesignated clock read inside the tracing module trips the
        // rule; the designated reader's allow marker suppresses it.
        std::fs::write(
            rt.join("tracing.rs"),
            "let a = Instant::now();\nlet b = Instant::now(); // xtask-allow: trace-clock\n",
        )
        .unwrap();
        let r = lint(&dir);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(r, Err(1));
    }

    #[test]
    fn allow_marker_suppresses() {
        let dir = std::env::temp_dir().join(format!("xtask-lint-ok-{}", std::process::id()));
        let sim = dir.join("crates/cellsim/src");
        std::fs::create_dir_all(&sim).unwrap();
        std::fs::write(
            sim.join("ok.rs"),
            "let t = Instant::now(); // xtask-allow: wall-clock\n",
        )
        .unwrap();
        let r = lint(&dir);
        std::fs::remove_dir_all(&dir).ok();
        assert!(r.is_ok());
    }
}
