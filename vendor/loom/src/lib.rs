//! Offline stand-in for `loom`.
//!
//! Real loom exhaustively enumerates thread interleavings under a modeled
//! memory order. This environment cannot fetch loom, so the stand-in keeps
//! loom's *API shape* (`loom::model`, `loom::thread`, `loom::sync`) while
//! implementing [`model`] as a randomized stress runner: the closure is
//! executed many times over real OS threads, with schedule perturbation
//! injected at `thread::spawn` and `thread::yield_now` points.
//!
//! This is strictly weaker than exhaustive model checking — it can only
//! refute, never prove — but it runs the same test bodies, so swapping in
//! the real crate later requires no test changes. The number of iterations
//! per model is `LOOM_ITERS` (default 100).

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};

static PERTURB: AtomicU64 = AtomicU64::new(0x9E37_79B9_97F4_A7C1);

fn perturb_point() {
    // xorshift step on a shared counter: cheap cross-thread noise source.
    let mut x = PERTURB.fetch_add(0x2545_F491_4F6C_DD1D, Ordering::Relaxed);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    match x % 8 {
        0 | 1 => std::thread::yield_now(),
        2 => std::thread::sleep(std::time::Duration::from_micros(x % 50)),
        _ => {}
    }
}

/// Run `f` repeatedly under schedule perturbation.
///
/// Mirrors `loom::model`. Each iteration runs `f` once; any panic inside
/// `f` (or a thread it spawned and joined) fails the test immediately with
/// the iteration number, which is enough to replay under a debugger.
pub fn model<F: Fn() + Sync>(f: F) {
    let iters: u64 = std::env::var("LOOM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    for i in 0..iters {
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f));
        if let Err(payload) = r {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic>".to_string());
            panic!("loom model failed at iteration {i}/{iters}: {msg}");
        }
    }
}

/// Thread handling with perturbation hooks.
pub mod thread {
    pub use std::thread::JoinHandle;

    /// Spawn a thread; injects a schedule perturbation before the body runs.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        std::thread::spawn(move || {
            super::perturb_point();
            f()
        })
    }

    /// Yield, with extra perturbation so stress runs explore more orders.
    pub fn yield_now() {
        super::perturb_point();
        std::thread::yield_now();
    }
}

/// Synchronization primitives (std-backed, std-shaped: `lock().unwrap()`).
pub mod sync {
    pub use std::sync::atomic;
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn model_runs_and_spawned_threads_join() {
        let total = Arc::new(AtomicUsize::new(0));
        let t2 = Arc::clone(&total);
        super::model(move || {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let n = Arc::clone(&n);
                    super::thread::spawn(move || {
                        n.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 3);
            t2.fetch_add(1, Ordering::SeqCst);
        });
        assert!(total.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    #[should_panic(expected = "loom model failed at iteration")]
    fn model_reports_failing_iteration() {
        super::model(|| panic!("injected"));
    }
}
