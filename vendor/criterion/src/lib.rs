//! Offline stand-in for `criterion`.
//!
//! Keeps the subset of the criterion 0.5 API this workspace's benches use
//! (`Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, the `criterion_group!` /
//! `criterion_main!` macros) and measures with plain wall-clock timing:
//! per benchmark it warms up once, then takes `sample_size` samples and
//! prints min/mean ns-per-iteration. No statistics, plots, or baselines —
//! enough to run `cargo bench` and to keep bench targets compiling under
//! `clippy --all-targets`.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure `f`, recording one sample of mean ns/iter.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        let ns = start.elapsed().as_nanos() as f64 / self.iters_per_sample as f64;
        self.samples.push(ns);
    }
}

/// A benchmark identifier combining a function name and a parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// Anything usable as a benchmark name: `&str` or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The display name for reports.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

fn run_one(full_name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    // Calibration pass: one sample with a single iteration, to size the
    // real sample loops so each lasts roughly 2ms (capped for slow bodies).
    let mut calib = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
    };
    f(&mut calib);
    let per_iter_ns = calib.samples.first().copied().unwrap_or(1.0).max(1.0);
    let iters = ((2e6 / per_iter_ns) as u64).clamp(1, 100_000);

    let mut b = Bencher {
        iters_per_sample: iters,
        samples: Vec::new(),
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("bench {full_name:<48} (no samples: closure never called iter)");
        return;
    }
    let min = b.samples.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
    println!(
        "bench {full_name:<48} min {min:>12.1} ns/iter, mean {mean:>12.1} ns/iter ({} samples x {iters} iters)",
        b.samples.len()
    );
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.sample_size, f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Finish the group (reporting is incremental here, so this is a no-op).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, 10, f);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _parent: self,
        }
    }
}

/// Define a bench entry point running the listed functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut total = 0u64;
        g.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &x| {
            b.iter(|| total += x)
        });
        g.finish();
        assert!(total >= 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("edtlp", 8).id, "edtlp/8");
    }
}
