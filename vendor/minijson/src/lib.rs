//! A small JSON value model with a strict parser and a writer.
//!
//! This workspace cannot fetch `serde`/`serde_json`, so report and
//! analysis serialization goes through this crate instead: types build a
//! [`Value`] tree explicitly and parse one back out. Object member order
//! is preserved (members are a `Vec`, not a map), which keeps emitted
//! reports diffable and digests deterministic.

#![warn(missing_docs)]

use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (held as `f64`; integers up to 2^53 round-trip).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered members.
    Object(Vec<(String, Value)>),
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Number(v as f64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Number(f64::from(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Number(v as f64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Number(v as f64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

impl Value {
    /// An object from `(key, value)` pairs, preserving order.
    pub fn object(members: Vec<(&str, Value)>) -> Value {
        Value::Object(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// An array from anything convertible to values.
    pub fn array<T: Into<Value>>(items: impl IntoIterator<Item = T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }

    /// Member lookup on objects; `None` elsewhere or when absent.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element vector, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The member vector, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Compact single-line JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Pretty-printed JSON with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out.push('\n');
        out
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/inf; emit null rather than invalid output.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        fmt::Write::write_fmt(out, format_args!("{}", n as i64)).unwrap();
    } else {
        fmt::Write::write_fmt(out, format_args!("{n}")).unwrap();
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

/// A parse failure: byte offset plus description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
/// [`JsonError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII in \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for this
                            // workspace's data; reject rather than mangle.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("surrogate \\u escape unsupported"))?;
                            s.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, not one byte.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err(format!("bad number '{text}'")))
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Value::object(vec![
            ("name", "fig7".into()),
            ("scale", 0.5.into()),
            ("rows", Value::array(vec![1u64, 2, 3])),
            ("ok", true.into()),
            ("note", Value::Null),
        ]);
        for text in [v.to_json(), v.to_json_pretty()] {
            assert_eq!(parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn preserves_member_order() {
        let v = parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Value::String("a\"b\\c\nd\tπ".to_string());
        assert_eq!(parse(&v.to_json()).unwrap(), v);
        assert_eq!(
            parse(r#""\u0041\n""#).unwrap(),
            Value::String("A\n".to_string())
        );
    }

    #[test]
    fn numbers_round_trip() {
        for n in [0.0, -1.0, 42.0, 1.5, -2.25e-3, 9.007199254740992e15] {
            let text = Value::Number(n).to_json();
            assert_eq!(parse(&text).unwrap().as_f64().unwrap(), n, "{text}");
        }
        assert_eq!(Value::Number(3.0).to_json(), "3");
        assert_eq!(Value::Number(f64::NAN).to_json(), "null");
        assert_eq!(parse("12").unwrap().as_u64(), Some(12));
        assert_eq!(parse("-12").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"\\q\"", ""] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn get_navigates_objects() {
        let v = parse(r#"{"series": [{"label": "edtlp"}]}"#).unwrap();
        let label = v.get("series").unwrap().as_array().unwrap()[0]
            .get("label")
            .unwrap()
            .as_str()
            .unwrap();
        assert_eq!(label, "edtlp");
        assert!(v.get("missing").is_none());
    }
}
