//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the *subset* of the `rand` 0.8 API it actually
//! uses: [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], and [`rngs::SmallRng`] (implemented as
//! xoshiro256++ seeded through SplitMix64).
//!
//! The generator is deterministic per seed, which is the property the
//! simulators and tests rely on; the exact value stream intentionally does
//! not match upstream `rand` (nothing in the workspace depends on that).

#![warn(missing_docs)]

/// Low-level uniform bit generation.
pub trait RngCore {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniform random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with uniform random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seeding interface: every generator here is reproducible from a `u64`.
pub trait SeedableRng: Sized {
    /// Construct a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from their "standard" distribution
/// (`[0, 1)` for floats, the full domain for integers and bools).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform draw over a half-open or inclusive interval.
///
/// The blanket [`SampleRange`] impls below are generic over this trait (as
/// upstream `rand`'s are) so that type inference unifies an integer-literal
/// range with the call site's expected type — e.g. `codes[rng.gen_range(0..20)]`
/// infers `usize` from the indexing context.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `lo..hi` (exclusive) or `lo..=hi` (inclusive).
    ///
    /// # Panics
    /// Panics when the interval is empty.
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample from empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return lo.wrapping_add(rng.next_u64() as $t);
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                } else {
                    assert!(lo < hi, "cannot sample from empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        }
    )*};
}

int_sample_uniform!(usize, u64, u32, u16, u8, i64, i32);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(lo: f64, hi: f64, inclusive: bool, rng: &mut R) -> f64 {
        if inclusive {
            assert!(lo <= hi, "cannot sample from empty range");
        } else {
            assert!(lo < hi, "cannot sample from empty range");
        }
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draw one value in the range from `rng`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> SmallRng {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be degenerate; splitmix cannot produce
            // four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..=7);
            assert!((3..=7).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 7;
            let f = r.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&f));
        }
        assert!(seen_lo && seen_hi, "inclusive bounds must both be reachable");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "got {frac}");
    }
}
