//! Offline stand-in for `crossbeam`, exposing the `channel` subset this
//! workspace uses over `std::sync::mpsc`.
//!
//! Semantics preserved: `bounded(n)` blocks senders at `n` in-flight
//! messages (rendezvous at `n == 0`), `unbounded()` never blocks senders,
//! receivers observe disconnection when every sender is dropped, and
//! senders are cloneable. `Receiver` is additionally `Sync`-safe here only
//! through exclusive handles, which is all the runtime needs.

#![warn(missing_docs)]

/// Multi-producer single-consumer channels.
pub mod channel {
    use std::sync::mpsc;

    /// Receiving-side disconnect error for blocking `recv`.
    pub use std::sync::mpsc::RecvError;
    /// Error states for non-blocking `try_recv`.
    pub use std::sync::mpsc::TryRecvError;

    /// Error returned by `send` when every receiver is gone.
    pub use std::sync::mpsc::SendError;

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Tx<T> {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T>(Tx<T>);

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Deliver `msg`, blocking on a full bounded channel.
        ///
        /// # Errors
        /// [`SendError`] when the receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Unbounded(s) => s.send(msg),
                Tx::Bounded(s) => s.send(msg),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message or disconnection.
        ///
        /// # Errors
        /// [`RecvError`] when all senders are dropped and the queue is empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking poll.
        ///
        /// # Errors
        /// [`TryRecvError::Empty`] when no message is ready,
        /// [`TryRecvError::Disconnected`] after all senders dropped.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Iterate over messages until disconnection.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// A channel with unlimited buffering: sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(rx))
    }

    /// A channel buffering at most `cap` messages; sends block when full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_blocks_at_capacity() {
            let (tx, rx) = bounded(1);
            tx.send(10u32).unwrap();
            // A second send must block until the receiver drains one.
            let t = std::thread::spawn(move || {
                tx.send(20).unwrap();
                tx.send(30).unwrap();
            });
            assert_eq!(rx.recv(), Ok(10));
            assert_eq!(rx.recv(), Ok(20));
            assert_eq!(rx.recv(), Ok(30));
            t.join().unwrap();
        }

        #[test]
        fn try_recv_reports_empty_then_disconnected() {
            let (tx, rx) = bounded::<u8>(4);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(9).unwrap();
            assert_eq!(rx.try_recv(), Ok(9));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(5).is_err());
        }
    }
}
