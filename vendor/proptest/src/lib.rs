//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest 1.x API this workspace uses:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`, range and tuple
//! strategies, `prop::array::uniform6`, `prop::collection::vec`,
//! `prop::bool::weighted`, [`prop_assert!`], [`prop_assert_eq!`], and
//! [`prop_assume!`].
//!
//! Differences from the real crate, by design:
//! - cases are drawn from a *deterministic* per-property stream (seeded by
//!   FNV-hashing the property name), so every run tests the same inputs —
//!   there is no persistence of new failures to `.proptest-regressions`;
//! - there is no shrinking: a failure reports the attempt index and the
//!   assertion message, and the run is replayable because the stream is
//!   deterministic;
//! - `PROPTEST_CASES` overrides the number of accepted cases (default 64).
//!
//! Existing `.proptest-regressions` entries are honored by explicit replay
//! tests in the workspace rather than by this harness.

#![warn(missing_docs)]

/// How a property case ends when it does not simply succeed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case's inputs did not satisfy a `prop_assume!` precondition.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed assertion with `msg`.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (filtered-out) case.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic case generation.
pub mod test_runner {
    /// The per-property random stream (xoshiro256++, FNV-seeded).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// A stream that is a pure function of `(name, attempt)`.
        pub fn deterministic(name: &str, attempt: u64) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut sm = h ^ attempt.wrapping_mul(0x2545_F491_4F6C_DD1D);
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            if s == [0; 4] {
                s[0] = 1;
            }
            TestRng { s }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

use test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + (hi - lo) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E), (A, B, C, D, E, F));

/// Combinator namespaces mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Fixed-size array strategies.
    pub mod array {
        use crate::test_runner::TestRng;
        use crate::Strategy;

        /// Strategy for `[S::Value; 6]`, each element drawn independently.
        pub struct UniformArray6<S>(S);

        impl<S: Strategy> Strategy for UniformArray6<S> {
            type Value = [S::Value; 6];

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                [
                    self.0.generate(rng),
                    self.0.generate(rng),
                    self.0.generate(rng),
                    self.0.generate(rng),
                    self.0.generate(rng),
                    self.0.generate(rng),
                ]
            }
        }

        /// Six independent draws from `strategy`.
        pub fn uniform6<S: Strategy>(strategy: S) -> UniformArray6<S> {
            UniformArray6(strategy)
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::test_runner::TestRng;
        use crate::Strategy;

        /// An inclusive bound on collection lengths. Constructed via `From`
        /// conversions (as in real proptest), which is what lets a bare
        /// `1..400` literal range infer `usize` at `vec()` call sites.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // inclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty length range");
                SizeRange { lo: r.start, hi: r.end - 1 }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
                assert!(r.start() <= r.end(), "empty length range");
                SizeRange { lo: *r.start(), hi: *r.end() }
            }
        }

        /// Strategy for `Vec<S::Value>` with a drawn length.
        pub struct VecStrategy<S> {
            element: S,
            length: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.length.hi - self.length.lo) as u64;
                let n = self.length.lo + if span == 0 { 0 } else { rng.below(span + 1) as usize };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A vector whose length is drawn from `length` (e.g. `1..200`)
        /// and whose elements are drawn from `element`.
        pub fn vec<S: Strategy, L: Into<SizeRange>>(element: S, length: L) -> VecStrategy<S> {
            VecStrategy { element, length: length.into() }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::test_runner::TestRng;
        use crate::Strategy;

        /// Strategy producing `true` with probability `p`.
        pub struct Weighted(f64);

        impl Strategy for Weighted {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.unit_f64() < self.0
            }
        }

        /// `true` with probability `probability_of_true`.
        pub fn weighted(probability_of_true: f64) -> Weighted {
            assert!(
                (0.0..=1.0).contains(&probability_of_true),
                "weight out of range"
            );
            Weighted(probability_of_true)
        }
    }
}

/// Drive one property: keep drawing cases until `PROPTEST_CASES`
/// (default 64) of them run to completion, skipping `prop_assume!`
/// rejections, and panic with attempt number + message on failure.
pub fn run_property<F>(name: &str, f: F)
where
    F: Fn(&mut TestRng) -> TestCaseResult,
{
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let mut accepted = 0u64;
    let mut attempt = 0u64;
    while accepted < cases {
        attempt += 1;
        if attempt > cases.saturating_mul(20) {
            panic!(
                "property '{name}': gave up after {attempt} attempts with only \
                 {accepted}/{cases} cases accepted (prop_assume! rejects too much)"
            );
        }
        let mut rng = TestRng::deterministic(name, attempt);
        match f(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => continue,
            Err(TestCaseError::Fail(msg)) => panic!(
                "property '{name}' failed at attempt {attempt}/{cases}: {msg} \
                 (stream is deterministic; rerun reproduces this case)"
            ),
        }
    }
}

/// Define property tests. Each `fn name(arg in STRATEGY, ...) { body }`
/// becomes a `#[test]` (the attribute is written by the caller, as in real
/// proptest) that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_property(stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    let __case = || -> $crate::TestCaseResult {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}

/// Assert inside a property body; failure fails only the current case
/// with a formatted message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Reject the current case unless `cond` holds (a filtered precondition,
/// not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// The items property-test files conventionally glob-import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::test_runner::TestRng;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, Strategy, TestCaseError,
        TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        /// Generated ints stay in range.
        #[test]
        fn ranges_respected(a in 3usize..10, b in 5u64..=5) {
            prop_assert!((3..10).contains(&a));
            prop_assert_eq!(b, 5);
        }

        /// Tuples, maps, arrays, vectors, weighted bools all compose.
        #[test]
        fn combinators_compose(
            pair in (0u64..10, 0.0f64..1.0).prop_map(|(n, x)| (n * 2, x)),
            arr in prop::array::uniform6(1u32..4),
            v in prop::collection::vec((0u64..100, prop::bool::weighted(0.5)), 1..20),
            flag in prop::bool::weighted(1.0),
        ) {
            prop_assert!(pair.0 % 2 == 0 && pair.1 < 1.0);
            prop_assert!(arr.iter().all(|&x| (1..4).contains(&x)));
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(flag);
        }

        /// prop_assume! filters without failing.
        #[test]
        fn assume_filters(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn deterministic_stream() {
        let mut a = TestRng::deterministic("p", 3);
        let mut b = TestRng::deterministic("p", 3);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::deterministic("p", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "failed at attempt")]
    fn failure_reports_attempt() {
        super::run_property("always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
