//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the non-poisoning `lock()`/`wait()` API shape of parking_lot
//! over the standard-library primitives. Poison is swallowed: a panicking
//! critical section in this workspace is always contained by the SPE-pool
//! panic machinery, and the tests assert on that containment, so mapping
//! poison to "take the lock anyway" matches parking_lot semantics.

#![warn(missing_docs)]

use std::sync::{self, LockResult};
use std::time::Duration;

fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning its value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive access through a unique reference, no locking needed.
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// A condition variable pairing with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

/// Whether a timed wait returned because the timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait timed out rather than being notified.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Atomically release the guard's lock and wait for a notification,
    /// re-acquiring before returning (parking_lot's `&mut guard` shape).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| unpoison(self.0.wait(g)));
    }

    /// As [`Self::wait`] with an upper bound on the wait.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(guard, |g| {
            let (g, r) = unpoison(self.0.wait_timeout(g, timeout));
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// Run `f` on the guard by value (std's wait API consumes the guard while
/// parking_lot's borrows it; bridge the two without an unlocked window).
fn replace_guard<T, F>(slot: &mut MutexGuard<'_, T>, f: F)
where
    F: FnOnce(sync::MutexGuard<'_, T>) -> sync::MutexGuard<'_, T>,
{
    // SAFETY-free version: std guards are movable values; take ownership
    // via a scoped swap with an equivalent guard produced by `f`.
    take_mut(slot, f);
}

/// Minimal take-and-replace for guards. Aborts the process if `f` panics
/// mid-swap (cannot happen: `Condvar::wait` only unwinds on poison, which
/// `unpoison` absorbs).
fn take_mut<T, F: FnOnce(T) -> T>(slot: &mut T, f: F) {
    unsafe {
        let old = std::ptr::read(slot);
        let new = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(old)))
            .unwrap_or_else(|_| std::process::abort());
        std::ptr::write(slot, new);
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            42
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert_eq!(t.join().unwrap(), 42);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn poisoned_lock_still_usable() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 1, "poison must be transparent");
    }
}
