//! Native end-to-end wall-clock measurement: a fixed bootstrap analysis
//! run entirely through the off-loaded engine (every `newview`/`evaluate`/
//! `makenewz` work-shared on the native MGPS runtime).
//!
//! ```text
//! cargo run --release --example native_e2e [taxa sites bootstraps workers]
//! ```
//!
//! Prints one line of wall-clock and checksum data. The log-likelihood sum
//! doubles as a correctness anchor: kernel or allocator changes that alter
//! results show up as a checksum drift, not just a timing delta.

use std::sync::Arc;
use std::time::Instant;

use mgps_runtime::policy::SchedulerKind;
use multigrain::parallel::ParallelAnalysis;
use phylo::alignment::{Alignment, PatternAlignment};
use phylo::model::Jc69;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut next = |default: usize| -> usize {
        args.next().and_then(|a| a.parse().ok()).unwrap_or(default)
    };
    let taxa = next(24);
    let sites = next(600);
    let bootstraps = next(8);
    let workers = next(2);

    let aln = Alignment::synthetic(taxa, sites, &Jc69, 0.1, 7);
    let data = Arc::new(PatternAlignment::compress(&aln));
    let analysis = ParallelAnalysis::cell(SchedulerKind::Mgps, workers);

    // Warm-up pass: fault in code paths and (where present) allocator pools.
    let _ = analysis.run_bootstraps(Jc69, &data, workers.min(bootstraps), 1);

    let start = Instant::now();
    let (reps, stats) = analysis.run_bootstraps(Jc69, &data, bootstraps, 42);
    let wall = start.elapsed();

    let lnl_sum: f64 = reps.iter().map(|r| r.lnl).sum();
    println!(
        "native_e2e taxa={taxa} sites={sites} bootstraps={bootstraps} workers={workers} \
         wall_ms={:.1} lnl_sum={lnl_sum:.6} ctx_switches={} throttled={:?}",
        wall.as_secs_f64() * 1e3,
        stats.context_switches,
        stats.throttled,
    );
}
