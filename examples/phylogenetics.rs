//! The paper's application end to end: a (scaled-down) RAxML-style
//! phylogenetic analysis with every likelihood kernel off-loaded through
//! the multigrain runtime.
//!
//! Runs multiple bootstrap searches on a synthetic DNA alignment under the
//! EDTLP and MGPS schedulers, then reports the best tree, the bootstrap
//! support of its clades, and the runtime's adaptation statistics.
//!
//! ```sh
//! cargo run --release --example phylogenetics
//! ```

use std::sync::Arc;

use multigrain::prelude::*;

fn main() {
    // A 16-taxon, 400-site alignment (a scaled-down 42_SC).
    let aln = Alignment::synthetic(16, 400, &Jc69, 0.08, 2024);
    let data = Arc::new(PatternAlignment::compress(&aln));
    println!(
        "alignment: {} taxa x {} sites ({} distinct patterns)\n",
        data.n_taxa(),
        data.n_sites(),
        data.n_patterns()
    );

    let search = SearchConfig { max_rounds: 3, branch_passes: 1, epsilon: 1e-3, initial_branch: 0.1, restarts: 1 };
    const BOOTSTRAPS: usize = 8;

    // Best-known tree from two independent inferences (run directly).
    let best = (0..2)
        .map(|seed| hill_climb(&Jc69, &data, &search, seed))
        .max_by(|a, b| a.lnl.total_cmp(&b.lnl))
        .expect("at least one inference");
    println!("best-known ML tree: lnL = {:.3} ({} NNI moves accepted)", best.lnl, best.accepted_moves);

    for scheduler in [SchedulerKind::Edtlp, SchedulerKind::Mgps] {
        let mut analysis = ParallelAnalysis::cell(scheduler, 4);
        analysis.search = search;
        let start = std::time::Instant::now();
        let (replicates, stats) = analysis.run_bootstraps(Jc69, &data, BOOTSTRAPS, 99);
        let elapsed = start.elapsed();

        let trees: Vec<Tree> = replicates.iter().map(|r| r.tree.clone()).collect();
        let support = support_values(&best.tree, &trees);
        let mean_support = support.iter().sum::<f64>() / support.len() as f64;

        println!(
            "\n{}: {BOOTSTRAPS} bootstraps on 4 worker processes in {elapsed:.1?}",
            scheduler.label()
        );
        println!("  replicate lnL range: {:.2} ..= {:.2}",
            replicates.iter().map(|r| r.lnl).fold(f64::INFINITY, f64::min),
            replicates.iter().map(|r| r.lnl).fold(f64::NEG_INFINITY, f64::max));
        println!("  mean clade support of the best tree: {mean_support:.2}");
        println!("  context switches: {}", stats.context_switches);
        if let Some((evals, acts, deacts)) = stats.mgps {
            println!(
                "  MGPS: {evals} evaluation windows, {acts} LLP activations, {deacts} deactivations; final degree {}",
                stats.final_degree
            );
        }
    }

    println!("\nbest tree (Newick):");
    let names: Vec<String> = (0..data.n_taxa()).map(|i| format!("taxon{i:03}")).collect();
    println!("{}", best.tree.to_newick(&names));
}
