//! Quickstart: off-load a simple data-parallel kernel through the
//! multigrain runtime and watch the scheduler pick the loop degree.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::ops::Range;
use std::sync::Arc;
use std::time::Duration;

use multigrain::prelude::*;

/// A toy off-loadable kernel: numerically integrate sqrt(x) over [0, 1]
/// with a reduction — the same shape (independent iterations + global sum)
/// as the paper's `evaluate()` loop.
struct Integrate {
    steps: usize,
}

impl LoopBody for Integrate {
    type Acc = f64;

    fn len(&self) -> usize {
        self.steps
    }

    fn identity(&self) -> f64 {
        0.0
    }

    fn run_chunk(&self, range: Range<usize>, _ctx: &mut SpeContext) -> f64 {
        let h = 1.0 / self.steps as f64;
        range.map(|i| ((i as f64 + 0.5) * h).sqrt() * h).sum()
    }

    fn merge(&self, a: f64, b: f64) -> f64 {
        a + b
    }
}

fn main() {
    println!("multigrain quickstart: one Cell-shaped runtime per scheduler\n");

    for scheduler in [
        SchedulerKind::Edtlp,
        SchedulerKind::StaticHybrid { spes_per_loop: 4 },
        SchedulerKind::Mgps,
    ] {
        let rt = MgpsRuntime::new(RuntimeConfig::cell(scheduler));
        let start = std::time::Instant::now();

        // Two worker processes, each off-loading a stream of kernels —
        // the paper's "MPI processes with off-loadable functions".
        let totals: Vec<f64> = std::thread::scope(|scope| {
            (0..2)
                .map(|_| {
                    let rt = &rt;
                    scope.spawn(move || {
                        let mut proc_ctx = rt.enter_process();
                        let mut acc = 0.0;
                        for _ in 0..24 {
                            let body = Arc::new(Integrate { steps: 200_000 });
                            acc += proc_ctx
                                .offload_loop(LoopSite(1), body)
                                .expect("kernel completed");
                        }
                        acc
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("worker finished"))
                .collect()
        });

        let elapsed = start.elapsed();
        let expect = 2.0 / 3.0 * 24.0; // ∫ sqrt = 2/3 per kernel
        for t in &totals {
            assert!((t - expect).abs() < 1e-6);
        }
        println!(
            "{:<38} {:>8.1?}  context switches: {:>4}  final loop degree: {}",
            scheduler.label(),
            elapsed,
            rt.context_switches(),
            rt.current_degree(),
        );
    }

    // The same integral, sequentially, for reference.
    let start = std::time::Instant::now();
    let body = Integrate { steps: 200_000 };
    let mut seq = 0.0;
    for _ in 0..48 {
        let mut scratch = SpeContext::new(mgps_runtime::policy::SpeId(0), Duration::ZERO);
        seq += body.run_chunk(0..body.len(), &mut scratch);
    }
    println!("{:<38} {:>8.1?}", "sequential reference", start.elapsed());
    assert!((seq - 2.0 / 3.0 * 48.0).abs() < 1e-6);
}
