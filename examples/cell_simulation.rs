//! Drive the Cell BE discrete-event simulator directly: reproduce the core
//! of Table 1 and inspect per-SPE utilization under each scheduler.
//!
//! ```sh
//! cargo run --release --example cell_simulation
//! ```

use multigrain::prelude::*;

fn main() {
    let scale = 500; // workload reduction; durations stay faithful
    println!("Cell BE simulation, 42_SC workload, 8 bootstraps\n");
    println!(
        "{:<42} {:>10} {:>8} {:>9} {:>9}",
        "scheduler", "time (s)", "SPE util", "switches", "reloads"
    );

    for scheduler in [
        SchedulerKind::LinuxLike,
        SchedulerKind::Edtlp,
        SchedulerKind::StaticHybrid { spes_per_loop: 2 },
        SchedulerKind::StaticHybrid { spes_per_loop: 4 },
        SchedulerKind::Mgps,
    ] {
        let report = run_simulation(SimConfig::cell_42sc(scheduler, 8, scale));
        println!(
            "{:<42} {:>10.2} {:>7.0}% {:>9} {:>9}",
            scheduler.label(),
            report.paper_scale_secs,
            report.mean_spe_utilization * 100.0,
            report.context_switches,
            report.code_reloads,
        );
    }

    // Show where the Linux baseline loses: per-SPE utilization.
    println!("\nPer-SPE utilization with 8 workers:");
    for scheduler in [SchedulerKind::LinuxLike, SchedulerKind::Edtlp] {
        let report = run_simulation(SimConfig::cell_42sc(scheduler, 8, scale));
        let bars: Vec<String> =
            report.spe_utilization.iter().map(|u| format!("{:>3.0}%", u * 100.0)).collect();
        println!("  {:<12} [{}]", scheduler.label(), bars.join(" "));
    }

    // And the MGPS adaptation trace for a low-TLP workload.
    let report = run_simulation(SimConfig::cell_42sc(SchedulerKind::Mgps, 2, scale));
    let (evals, acts, deacts) = report.mgps_counters.expect("MGPS counters");
    println!(
        "\nMGPS with 2 bootstraps: {evals} evaluation windows, {acts} LLP activations, \
         {deacts} deactivations, final loop degree {} (2 bootstraps -> floor(8/2) = 4 SPEs per loop)",
        report.final_degree
    );
    println!(
        "EIB: {:.1} MB moved, peak {} outstanding transfers",
        report.eib_bytes as f64 / 1e6,
        report.eib_peak_outstanding
    );
}
