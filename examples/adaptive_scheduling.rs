//! Watch MGPS adapt: a workload whose task-level parallelism drops halfway
//! through, forcing the scheduler to switch from pure EDTLP to loop-level
//! work-sharing (and proving why neither static scheme wins both phases).
//!
//! ```sh
//! cargo run --release --example adaptive_scheduling
//! ```

use std::ops::Range;
use std::sync::Arc;
use std::time::{Duration, Instant};

use multigrain::prelude::*;

/// A spin kernel with a controllable duration, so phases are visible.
struct Spin {
    iters: usize,
    per_iter: Duration,
}

impl LoopBody for Spin {
    type Acc = u64;

    fn len(&self) -> usize {
        self.iters
    }

    fn identity(&self) -> u64 {
        0
    }

    fn run_chunk(&self, range: Range<usize>, _ctx: &mut SpeContext) -> u64 {
        let n = range.len() as u64;
        let end = Instant::now() + self.per_iter * range.len() as u32;
        while Instant::now() < end {
            std::hint::spin_loop();
        }
        n
    }

    fn merge(&self, a: u64, b: u64) -> u64 {
        a + b
    }
}

fn run_phase(rt: &MgpsRuntime, workers: usize, tasks_each: usize) -> Duration {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(move || {
                let mut ctx = rt.enter_process();
                for _ in 0..tasks_each {
                    let body = Arc::new(Spin { iters: 64, per_iter: Duration::from_micros(15) });
                    let done = ctx.offload_loop(LoopSite(7), body).expect("kernel ok");
                    assert_eq!(done, 64);
                }
            });
        }
    });
    start.elapsed()
}

fn main() {
    println!("Two-phase workload: 8-way task parallelism, then 1-way.\n");
    println!("{:<40} {:>12} {:>12}", "scheduler", "phase A (8w)", "phase B (1w)");

    for scheduler in [
        SchedulerKind::Edtlp,
        SchedulerKind::StaticHybrid { spes_per_loop: 4 },
        SchedulerKind::Mgps,
    ] {
        let rt = MgpsRuntime::new(RuntimeConfig::cell(scheduler));
        // Phase A: 8 workers saturate the SPEs with whole tasks.
        let a = run_phase(&rt, 8, 24);
        let degree_after_a = rt.current_degree();
        // Phase B: a single straggler worker — task parallelism collapses.
        let b = run_phase(&rt, 1, 48);
        let degree_after_b = rt.current_degree();

        print!("{:<40} {:>12.1?} {:>12.1?}", scheduler.label(), a, b);
        if scheduler == SchedulerKind::Mgps {
            let (evals, acts, deacts) = rt.mgps_stats().expect("adaptive stats");
            print!(
                "   [degree {degree_after_a} -> {degree_after_b}; {evals} windows, {acts} activations, {deacts} deactivations]"
            );
        }
        println!();
    }

    println!(
        "\nExpected: EDTLP wins phase A but wastes 7 idle SPEs in phase B;\n\
         the static hybrid does the opposite; MGPS flips its loop degree at\n\
         the phase boundary and is competitive in both."
    );
}
