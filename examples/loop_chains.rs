//! Advanced runtime features: dependence-driven loop chains (§5.3) and
//! dynamic granularity control (§5.2).
//!
//! Part 1 runs a three-stage numerical pipeline where each parallel loop
//! consumes the previous loop's reduction — the team is formed once and
//! its workers stay resident across stages, exactly like the paper's
//! SPE-to-SPE dependence-driven execution.
//!
//! Part 2 off-loads a mix of coarse and ultra-fine kernels under the
//! granularity controller and shows the fine ones being throttled back to
//! the PPE after measurement.
//!
//! ```sh
//! cargo run --release --example loop_chains
//! ```

use std::ops::Range;
use std::sync::Arc;
use std::time::{Duration, Instant};

use multigrain::prelude::*;
use multigrain::mgps_runtime::native::{ChainRunner, ChainedLoop, SpePool};

/// Stage 1: mean of sqrt(i) — produces the normalization constant.
struct RootMean(usize);
impl ChainedLoop for RootMean {
    fn len(&self) -> usize {
        self.0
    }
    fn identity(&self) -> f64 {
        0.0
    }
    fn run_chunk(&self, _carry: f64, range: Range<usize>, _ctx: &mut SpeContext) -> f64 {
        range.map(|i| (i as f64).sqrt()).sum::<f64>() / self.0 as f64
    }
    fn merge(&self, a: f64, b: f64) -> f64 {
        a + b
    }
}

/// Stage 2: sum of exp(-i/carry) — consumes stage 1's constant.
struct Decay(usize);
impl ChainedLoop for Decay {
    fn len(&self) -> usize {
        self.0
    }
    fn identity(&self) -> f64 {
        0.0
    }
    fn run_chunk(&self, carry: f64, range: Range<usize>, _ctx: &mut SpeContext) -> f64 {
        range.map(|i| (-(i as f64) / carry).exp()).sum()
    }
    fn merge(&self, a: f64, b: f64) -> f64 {
        a + b
    }
}

/// Stage 3: log of the carry, replicated — a cheap final reduction.
struct Finish;
impl ChainedLoop for Finish {
    fn len(&self) -> usize {
        1
    }
    fn identity(&self) -> f64 {
        0.0
    }
    fn run_chunk(&self, carry: f64, _range: Range<usize>, _ctx: &mut SpeContext) -> f64 {
        carry.ln()
    }
    fn merge(&self, a: f64, b: f64) -> f64 {
        a + b
    }
}

fn main() {
    println!("Part 1: dependence-driven loop chain across a resident SPE team\n");
    let pool = Arc::new(SpePool::new(8, Duration::ZERO));
    let runner = ChainRunner::new(Arc::clone(&pool));
    let stages: Vec<Arc<dyn ChainedLoop>> =
        vec![Arc::new(RootMean(400_000)), Arc::new(Decay(200_000)), Arc::new(Finish)];

    for degree in [1usize, 2, 4, 8] {
        let before = pool.completed();
        let start = Instant::now();
        let value = runner.chained_reduce(degree, stages.clone(), 0.0).expect("chain ok");
        let jobs = pool.completed() - before;
        println!(
            "  degree {degree}: value {value:.6}, {jobs} SPE jobs for 3 stages, {:?}",
            start.elapsed()
        );
    }
    println!("  (note: `degree` jobs per chain, not degree x stages — workers stay resident)\n");

    println!("Part 2: dynamic granularity control (Section 5.2)\n");
    /// A kernel with distinct PPE and SPE code versions, like RAxML's
    /// scalar PPE copies vs the vectorized SPE module: the PPE path (the
    /// sentinel SPE id) runs 3x slower per iteration.
    struct Spin {
        iters: usize,
        per_iter: Duration,
    }
    impl LoopBody for Spin {
        type Acc = u64;
        fn len(&self) -> usize {
            self.iters
        }
        fn identity(&self) -> u64 {
            0
        }
        fn run_chunk(&self, range: Range<usize>, ctx: &mut SpeContext) -> u64 {
            let on_ppe = ctx.id.0 == usize::MAX;
            let per_iter = if on_ppe { self.per_iter * 3 } else { self.per_iter };
            let end = Instant::now() + per_iter * range.len() as u32;
            while Instant::now() < end {
                std::hint::spin_loop();
            }
            range.len() as u64
        }
        fn merge(&self, a: u64, b: u64) -> u64 {
            a + b
        }
    }

    let cfg = RuntimeConfig::cell(SchedulerKind::Edtlp).with_granularity_control(1_000);
    let rt = MgpsRuntime::new(cfg);
    let mut ctx = rt.enter_process();
    for _ in 0..48 {
        // Coarse kernel: ~600 us of work.
        let coarse = Arc::new(Spin { iters: 60, per_iter: Duration::from_micros(10) });
        ctx.offload_kernel(LoopSite(1), KernelKind::NewView, coarse).unwrap();
        // Ultra-fine kernel: sub-microsecond.
        let fine = Arc::new(Spin { iters: 1, per_iter: Duration::ZERO });
        ctx.offload_kernel(LoopSite(2), KernelKind::Evaluate, fine).unwrap();
    }
    println!(
        "  newview  (coarse, SPE code 3x faster)  throttled to PPE? {}",
        rt.is_throttled(KernelKind::NewView)
    );
    println!(
        "  evaluate (ultra-fine, overhead-bound)  throttled to PPE? {}",
        rt.is_throttled(KernelKind::Evaluate)
    );
    assert!(!rt.is_throttled(KernelKind::NewView));
    assert!(rt.is_throttled(KernelKind::Evaluate));
    println!(
        "\n  The controller measured both code paths and applies the paper's\n  \
         test t_spe + t_code + 2*t_comm < t_ppe per kernel."
    );
}
