//! The Memory Flow Controller: each SPE's private DMA queue.
//!
//! The MFC holds up to 16 in-flight requests per SPE (§4). Programs enqueue
//! transfers; the MFC issues them to the EIB as capacity allows. We model
//! the queue-depth limit and per-request accounting; the machine model
//! drains completions via events.

use std::collections::VecDeque;

use des::time::SimDuration;

use crate::dma::DmaRequest;
use crate::eib::Eib;
use crate::params::DmaParams;

/// Per-SPE DMA queue state.
#[derive(Debug, Clone)]
pub struct Mfc {
    depth: usize,
    queued: VecDeque<DmaRequest>,
    in_flight: usize,
    completed: u64,
    stalls: u64,
}

impl Mfc {
    /// An MFC with the configured queue depth.
    pub fn new(params: &DmaParams) -> Mfc {
        Mfc {
            depth: params.mfc_queue_depth,
            queued: VecDeque::new(),
            in_flight: 0,
            completed: 0,
            stalls: 0,
        }
    }

    /// Requests waiting to issue plus in flight.
    pub fn occupancy(&self) -> usize {
        self.queued.len() + self.in_flight
    }

    /// Transfers completed over the MFC's lifetime.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Enqueue attempts refused because the queue was full (the SPU stalls
    /// on the `mfc_put`/`mfc_get` until space frees).
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Enqueue `req`. Returns `false` (a stall) when the 16-entry queue is
    /// full.
    pub fn enqueue(&mut self, req: DmaRequest) -> bool {
        if self.occupancy() >= self.depth {
            self.stalls += 1;
            return false;
        }
        self.queued.push_back(req);
        true
    }

    /// Try to issue the oldest queued request to `eib`. On success returns
    /// the contention-adjusted completion latency; the caller schedules a
    /// completion event and later calls [`Mfc::complete`].
    pub fn try_issue(&mut self, params: &DmaParams, eib: &mut Eib) -> Option<SimDuration> {
        let req = self.queued.front()?;
        let base = req.base_latency(params);
        let latency = eib.begin_transfer(req.bytes, base)?;
        self.queued.pop_front();
        self.in_flight += 1;
        Some(latency)
    }

    /// A previously issued request finished on the bus.
    ///
    /// # Panics
    /// Panics if nothing was in flight.
    pub fn complete(&mut self, eib: &mut Eib) {
        assert!(self.in_flight > 0, "MFC completion with nothing in flight");
        self.in_flight -= 1;
        self.completed += 1;
        eib.end_transfer();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (DmaParams, Mfc, Eib) {
        let p = DmaParams::default();
        (p, Mfc::new(&p), Eib::new(p))
    }

    fn req(p: &DmaParams, bytes: usize) -> DmaRequest {
        DmaRequest::new(p, bytes, 0, 0).unwrap()
    }

    #[test]
    fn issue_and_complete_round_trip() {
        let (p, mut mfc, mut eib) = setup();
        assert!(mfc.enqueue(req(&p, 4096)));
        let lat = mfc.try_issue(&p, &mut eib).expect("issue succeeds");
        assert!(lat > SimDuration::ZERO);
        assert_eq!(mfc.occupancy(), 1);
        mfc.complete(&mut eib);
        assert_eq!(mfc.occupancy(), 0);
        assert_eq!(mfc.completed(), 1);
        assert_eq!(eib.outstanding(), 0);
    }

    #[test]
    fn queue_depth_limit_stalls() {
        let (p, mut mfc, _eib) = setup();
        for _ in 0..16 {
            assert!(mfc.enqueue(req(&p, 16)));
        }
        assert!(!mfc.enqueue(req(&p, 16)), "17th enqueue must stall");
        assert_eq!(mfc.stalls(), 1);
        assert_eq!(mfc.occupancy(), 16);
    }

    #[test]
    fn issue_on_empty_queue_is_none() {
        let (p, mut mfc, mut eib) = setup();
        assert!(mfc.try_issue(&p, &mut eib).is_none());
    }

    #[test]
    fn eib_back_pressure_leaves_request_queued() {
        let p = DmaParams { max_outstanding: 1, ..DmaParams::default() };
        let mut mfc = Mfc::new(&p);
        let mut eib = Eib::new(p);
        assert!(mfc.enqueue(req(&p, 16)));
        assert!(mfc.enqueue(req(&p, 16)));
        assert!(mfc.try_issue(&p, &mut eib).is_some());
        assert!(mfc.try_issue(&p, &mut eib).is_none(), "bus full");
        assert_eq!(mfc.occupancy(), 2, "second request still queued");
        mfc.complete(&mut eib);
        assert!(mfc.try_issue(&p, &mut eib).is_some(), "retry succeeds after drain");
    }

    #[test]
    #[should_panic(expected = "nothing in flight")]
    fn spurious_complete_panics() {
        let (_p, mut mfc, mut eib) = setup();
        mfc.complete(&mut eib);
    }
}
