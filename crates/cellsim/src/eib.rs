//! The Element Interconnect Bus: aggregate-bandwidth contention model.
//!
//! The EIB is a 4-ring coherent bus moving 96 bytes/cycle (204.8 GB/s
//! aggregate at 3.2 GHz) and sustaining over 100 outstanding requests (§4).
//! We model contention macroscopically: a transfer's latency is its
//! uncontended latency inflated by the ratio of demanded to available
//! bandwidth when many requesters are in flight. With RAxML's small
//! transfers the bus never saturates — which is itself a result the model
//! should (and does) show — but the mechanism matters for the LLP worker
//! fetch storms, where `k` workers DMA from one local store at once.

use des::time::SimDuration;

use crate::params::DmaParams;

/// Bus occupancy tracker. Pure state; the machine model calls
/// [`Eib::begin_transfer`] / [`Eib::end_transfer`] from its events.
#[derive(Debug, Clone)]
pub struct Eib {
    params: DmaParams,
    outstanding: usize,
    peak_outstanding: usize,
    total_bytes: u64,
    total_transfers: u64,
    rejected: u64,
}

impl Eib {
    /// A bus with the given parameters.
    pub fn new(params: DmaParams) -> Eib {
        Eib {
            params,
            outstanding: 0,
            peak_outstanding: 0,
            total_bytes: 0,
            total_transfers: 0,
            rejected: 0,
        }
    }

    /// Requests currently in flight.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Peak concurrent requests observed.
    pub fn peak_outstanding(&self) -> usize {
        self.peak_outstanding
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total transfers completed or started.
    pub fn total_transfers(&self) -> u64 {
        self.total_transfers
    }

    /// Requests refused because the outstanding cap was hit (the MFC would
    /// stall and retry; the machine model treats this as back-pressure).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Try to begin a transfer of `bytes` with uncontended latency `base`.
    /// Returns the contention-adjusted latency, or `None` when the bus is
    /// at its outstanding-request cap (caller must retry later).
    pub fn begin_transfer(&mut self, bytes: usize, base: SimDuration) -> Option<SimDuration> {
        if self.outstanding >= self.params.max_outstanding {
            self.rejected += 1;
            return None;
        }
        self.outstanding += 1;
        self.peak_outstanding = self.peak_outstanding.max(self.outstanding);
        self.total_bytes += bytes as u64;
        self.total_transfers += 1;
        Some(self.contended(base))
    }

    /// Mark one transfer finished.
    ///
    /// # Panics
    /// Panics if nothing is in flight (a model bug).
    pub fn end_transfer(&mut self) {
        assert!(self.outstanding > 0, "EIB end_transfer with nothing in flight");
        self.outstanding -= 1;
    }

    /// The contention factor applied to a transfer starting now: demanded
    /// bandwidth is `outstanding` requesters at full per-SPE rate; when
    /// that exceeds the aggregate EIB rate, everyone slows proportionally.
    pub fn contention_factor(&self) -> f64 {
        let demanded = self.outstanding as f64 * self.params.spe_bandwidth;
        (demanded / self.params.eib_bandwidth).max(1.0)
    }

    fn contended(&self, base: SimDuration) -> SimDuration {
        base.mul_f64(self.contention_factor())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eib() -> Eib {
        Eib::new(DmaParams::default())
    }

    #[test]
    fn uncontended_transfers_keep_base_latency() {
        let mut e = eib();
        let lat = e.begin_transfer(1024, SimDuration::from_nanos(340)).unwrap();
        assert_eq!(lat, SimDuration::from_nanos(340));
        assert_eq!(e.outstanding(), 1);
        e.end_transfer();
        assert_eq!(e.outstanding(), 0);
        assert_eq!(e.total_bytes(), 1024);
        assert_eq!(e.total_transfers(), 1);
    }

    #[test]
    fn contention_kicks_in_past_aggregate_bandwidth() {
        // 204.8 / 25.6 = 8 concurrent full-rate requesters saturate the bus.
        let mut e = eib();
        for _ in 0..8 {
            e.begin_transfer(16, SimDuration::from_nanos(100)).unwrap();
        }
        assert!((e.contention_factor() - 1.0).abs() < 1e-12, "8 requesters just saturate");
        e.begin_transfer(16, SimDuration::from_nanos(100)).unwrap();
        assert!(e.contention_factor() > 1.0, "9th requester oversubscribes");
        let lat = e.begin_transfer(16, SimDuration::from_nanos(100)).unwrap();
        assert!(lat > SimDuration::from_nanos(100));
    }

    #[test]
    fn outstanding_cap_back_pressures() {
        let mut e = eib();
        for _ in 0..128 {
            assert!(e.begin_transfer(16, SimDuration::from_nanos(10)).is_some());
        }
        assert!(e.begin_transfer(16, SimDuration::from_nanos(10)).is_none());
        assert_eq!(e.rejected(), 1);
        e.end_transfer();
        assert!(e.begin_transfer(16, SimDuration::from_nanos(10)).is_some());
        assert_eq!(e.peak_outstanding(), 128);
    }

    #[test]
    #[should_panic(expected = "nothing in flight")]
    fn spurious_end_transfer_panics() {
        let mut e = eib();
        e.end_transfer();
    }
}
