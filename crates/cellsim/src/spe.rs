//! Per-SPE state within the machine model.

use des::stats::BusyTracker;
use des::time::SimTime;

/// The simulated state of one Synergistic Processing Element.
#[derive(Debug, Clone)]
pub struct SpeState {
    busy: bool,
    /// The code-image epoch resident in local store. The machine bumps the
    /// global epoch whenever the runtime switches between plain and
    /// loop-parallel kernel versions; a stale SPE pays a reload on its next
    /// task (§5.4).
    image_epoch: u64,
    tracker: BusyTracker,
    tasks: u64,
    reloads: u64,
}

impl SpeState {
    /// A fresh, idle SPE with no code loaded (epoch 0 is "nothing").
    pub fn new(now: SimTime) -> SpeState {
        SpeState { busy: false, image_epoch: 0, tracker: BusyTracker::new(now), tasks: 0, reloads: 0 }
    }

    /// Whether a task is running here.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Mark busy at `now`; returns `true` if the required `epoch` forced a
    /// code reload.
    pub fn start_task(&mut self, now: SimTime, epoch: u64) -> bool {
        debug_assert!(!self.busy, "SPE started while busy");
        self.busy = true;
        self.tracker.set_busy(now);
        self.tasks += 1;
        if self.image_epoch != epoch {
            self.image_epoch = epoch;
            self.reloads += 1;
            true
        } else {
            false
        }
    }

    /// Mark idle at `now`.
    pub fn finish_task(&mut self, now: SimTime) {
        debug_assert!(self.busy, "SPE finished while idle");
        self.busy = false;
        self.tracker.set_idle(now);
    }

    /// Fraction of `[0, now]` spent busy.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.tracker.utilization(now)
    }

    /// Tasks (or loop chunks) executed.
    pub fn tasks(&self) -> u64 {
        self.tasks
    }

    /// Code reloads paid.
    pub fn reloads(&self) -> u64 {
        self.reloads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_accounting() {
        let mut s = SpeState::new(SimTime(0));
        assert!(!s.is_busy());
        let reload = s.start_task(SimTime(100), 1);
        assert!(reload, "first task loads the image");
        assert!(s.is_busy());
        s.finish_task(SimTime(300));
        assert!(!s.is_busy());
        assert_eq!(s.tasks(), 1);
        // busy 200 of 400 ns
        assert!((s.utilization(SimTime(400)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reload_only_on_epoch_change() {
        let mut s = SpeState::new(SimTime(0));
        assert!(s.start_task(SimTime(0), 1));
        s.finish_task(SimTime(10));
        assert!(!s.start_task(SimTime(20), 1), "same epoch: no reload");
        s.finish_task(SimTime(30));
        assert!(s.start_task(SimTime(40), 2), "new epoch: reload");
        assert_eq!(s.reloads(), 2);
    }
}
