//! Machine parameters of the Cell Broadband Engine, as reported in the
//! paper (§4, §5.2) and in Kistler et al.'s interconnect study.

use des::time::SimDuration;

/// Parameters of one Cell blade configuration.
#[derive(Debug, Clone, Copy)]
pub struct CellParams {
    /// Cell processors on the blade (1 or 2 in the paper).
    pub n_cells: usize,
    /// SPEs per Cell.
    pub spes_per_cell: usize,
    /// SMT hardware contexts per PPE.
    pub ppe_contexts_per_cell: usize,
    /// Core clock (3.2 GHz).
    pub clock_ghz: f64,
    /// Voluntary PPE context-switch cost (measured 1.5 µs, §5.2).
    pub ctx_switch: SimDuration,
    /// Linux scheduler quantum ("a multiple of 10 ms", §5.2).
    pub linux_quantum: SimDuration,
    /// SPE local-store capacity in bytes.
    pub local_store_bytes: usize,
    /// Size of the off-loaded RAxML code module (117 KB, §5.1).
    pub code_module_bytes: usize,
    /// Throughput penalty when both SMT contexts of a PPE execute
    /// simultaneously: each thread runs this factor slower than alone.
    /// (The PPE is one dual-issue core; SMT yields ~25–35 % aggregate
    /// speedup, i.e. each thread at ~1.5–1.6× its solo latency.)
    pub smt_slowdown: f64,
    /// One-way PPE↔SPE mailbox/signal latency.
    pub signal_latency: SimDuration,
    /// Cost of (re)loading a code image into an SPE's local store: a
    /// 117 KB DMA plus program (re)start. §5.4 reports it "not noticeable";
    /// ~20 µs of DMA at local-store bandwidth.
    pub code_load_cost: SimDuration,
    /// DMA and interconnect parameters.
    pub dma: DmaParams,
}

/// DMA engine and EIB parameters (§4).
#[derive(Debug, Clone, Copy)]
pub struct DmaParams {
    /// Maximum bytes in one DMA transfer (16 KB).
    pub max_transfer_bytes: usize,
    /// Maximum elements in a DMA list (2,048).
    pub max_list_len: usize,
    /// Required address/size alignment (128-bit = 16 bytes).
    pub alignment: usize,
    /// Per-request startup latency (local store ↔ main memory, from the
    /// Kistler et al. microbenchmarks: a few hundred ns).
    pub startup: SimDuration,
    /// Sustained per-SPE DMA bandwidth, bytes per second.
    pub spe_bandwidth: f64,
    /// Aggregate EIB bandwidth, bytes per second (204.8 GB/s).
    pub eib_bandwidth: f64,
    /// Maximum outstanding EIB requests ("more than 100").
    pub max_outstanding: usize,
    /// MFC queue depth per SPE (16 entries).
    pub mfc_queue_depth: usize,
}

impl Default for DmaParams {
    fn default() -> Self {
        DmaParams {
            max_transfer_bytes: 16 * 1024,
            max_list_len: 2048,
            alignment: 16,
            startup: SimDuration::from_nanos(300),
            spe_bandwidth: 25.6e9,
            eib_bandwidth: 204.8e9,
            max_outstanding: 128,
            mfc_queue_depth: 16,
        }
    }
}

impl CellParams {
    /// A blade with `n_cells` Cell processors at the paper's settings.
    pub fn blade(n_cells: usize) -> CellParams {
        assert!(n_cells >= 1, "a blade has at least one Cell");
        CellParams {
            n_cells,
            spes_per_cell: 8,
            ppe_contexts_per_cell: 2,
            clock_ghz: 3.2,
            ctx_switch: SimDuration::from_nanos(1_500),
            linux_quantum: SimDuration::from_millis(10),
            local_store_bytes: 256 * 1024,
            code_module_bytes: 117 * 1024,
            smt_slowdown: 1.9,
            signal_latency: SimDuration::from_nanos(500),
            code_load_cost: SimDuration::from_micros(20),
            dma: DmaParams::default(),
        }
    }

    /// The single-Cell configuration used in §5.2–5.4.
    pub fn single() -> CellParams {
        CellParams::blade(1)
    }

    /// Total SPEs on the blade.
    pub fn n_spes(&self) -> usize {
        self.n_cells * self.spes_per_cell
    }

    /// Total PPE hardware contexts on the blade.
    pub fn ppe_contexts(&self) -> usize {
        self.n_cells * self.ppe_contexts_per_cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let p = CellParams::single();
        assert_eq!(p.n_spes(), 8);
        assert_eq!(p.ppe_contexts(), 2);
        assert_eq!(p.ctx_switch, SimDuration::from_micros(1).mul_f64(1.5));
        assert_eq!(p.linux_quantum, SimDuration::from_millis(10));
        assert_eq!(p.local_store_bytes, 262_144);
        assert_eq!(p.code_module_bytes, 119_808);
        assert_eq!(p.dma.max_transfer_bytes, 16_384);
        assert_eq!(p.dma.max_list_len, 2048);
    }

    #[test]
    fn dual_cell_blade_doubles_resources() {
        let p = CellParams::blade(2);
        assert_eq!(p.n_spes(), 16);
        assert_eq!(p.ppe_contexts(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one Cell")]
    fn zero_cells_rejected() {
        let _ = CellParams::blade(0);
    }
}
