//! The RAxML workload model, calibrated to the paper's measurements.
//!
//! §5.1–5.2 report, for the `42_SC` input (42 taxa × 1,167 nucleotides):
//!
//! * one bootstrap, 1 worker, optimized off-loading: **28.46 s** (Table 1);
//! * mean SPE task: **96 µs**; mean PPE work between off-loads: **11 µs**
//!   (hence the 90 % / 10 % SPE/PPE split the paper quotes);
//! * parallel loops of **228 iterations** per off-loaded function;
//! * PPE-only execution: **38.23 s**; naive (unoptimized) off-loading:
//!   **50.38 s**; optimized off-loading: **28.82 s** (§5.1).
//!
//! From these we derive:
//!
//! * tasks per bootstrap `n = 28.46 s / (11 µs + 96 µs) ≈ 265,981`;
//! * the naive SPE kernel factor `(50.38 − 0.1·28.46) / (0.9·28.46) ≈ 1.86`
//!   — no vectorization, 20-cycle branch penalties on 45 % of the code,
//!   unaggregated DMA, and library `log()`/`exp()`;
//! * the PPE-version factor `(38.23 − 0.1·28.46) / (0.9·28.46) ≈ 1.38`.
//!
//! The LLP constants (`loop_fraction`, per-worker signal/fetch/reduce
//! overheads) are fitted so the simulated Table 2 matches the measured
//! speedup curve: peak ≈ 1.55–1.6× at 4–5 SPEs, degradation beyond.
//!
//! Simulating 266 k tasks per bootstrap is faithful but slow; experiments
//! use [`RaxmlWorkload::scaled`] to keep every *duration* exact while
//! reducing the task count, and multiply reported makespans by
//! [`RaxmlWorkload::scale_factor`]. Steady-state scheduling behaviour is
//! unchanged; only the number of repetitions shrinks.

use des::time::SimDuration;
use mgps_runtime::policy::KernelKind;
use rand::rngs::SmallRng;
use rand::Rng;

/// Which version of the off-loaded kernels runs (§5.1's ablation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelProfile {
    /// Fully optimized SPE code: vectorized loops and conditionals,
    /// pipelined vector ops, aggregated DMA, SDK math approximations.
    Optimized,
    /// Straightforward port: scalar double-precision code with mispredicted
    /// branches and unoptimized transfers.
    Naive,
    /// The original PPE version (no off-loading at all).
    PpeOnly,
    /// A custom slowdown factor relative to the optimized kernel — used by
    /// the incremental optimization-ladder ablation, which walks from
    /// `Naive` to `Optimized` one §5.1 optimization at a time.
    Custom(f64),
}

impl KernelProfile {
    /// Execution-time multiplier relative to the optimized SPE kernel.
    pub fn factor(self) -> f64 {
        match self {
            KernelProfile::Optimized => 1.0,
            KernelProfile::Naive => 1.86,
            KernelProfile::PpeOnly => 1.38,
            KernelProfile::Custom(f) => f,
        }
    }

    /// The §5.1 optimization ladder: each step's name and the speedup
    /// factor it removes from the naive kernel. The paper itemizes the
    /// causes (vectorization of loops and conditionals, pipelining,
    /// DMA aggregation, SDK math approximations) without publishing the
    /// per-step split; this decomposition is synthesized to multiply out
    /// to the measured 1.86× naive/optimized ratio, with vectorization
    /// dominating (the paper notes 45% of naive time was condition
    /// checking with 20-cycle mispredictions).
    pub const LADDER: [(&'static str, f64); 4] = [
        ("vectorize ML loops", 1.35),
        ("vectorize conditionals (branch penalty)", 1.15),
        ("aggregate DMA transfers", 1.08),
        ("SDK math approximations (log/exp)", 1.10),
    ];
}

/// Calibrated workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct RaxmlWorkload {
    /// Off-loadable tasks per bootstrap.
    pub tasks_per_bootstrap: usize,
    /// Mean PPE work between consecutive off-loads (11 µs).
    pub ppe_gap: SimDuration,
    /// Mean optimized SPE task duration (96 µs).
    pub task_mean: SimDuration,
    /// Iterations in each off-loaded function's parallel loop (228 for
    /// `42_SC`; proportional to alignment length).
    pub loop_iters: usize,
    /// Fraction of an SPE task's time spent in its parallelizable loops.
    pub loop_fraction: f64,
    /// Per-worker master→worker start signal cost.
    pub llp_signal: SimDuration,
    /// Per-worker argument/data fetch from the master's local store
    /// (serialized on the master's LS port).
    pub llp_fetch: SimDuration,
    /// Per-worker reduction/merge cost on the master.
    pub llp_reduce: SimDuration,
    /// Multiplicative jitter half-width on compute durations (±fraction).
    pub jitter: f64,
    /// Bytes DMA'd into local store at task start.
    pub input_bytes: usize,
    /// Bytes committed back to main memory at task end.
    pub output_bytes: usize,
    /// Accumulated task-count reduction applied by [`Self::scaled`]:
    /// reported makespans multiply by this to extrapolate to the full
    /// workload. 1.0 for an unscaled workload.
    pub extrapolation: f64,
    /// Draw tasks from the heterogeneous three-kernel mix (§5.1's gprof
    /// profile: newview 76.8 %, makenewz 19.6 %, evaluate 2.37 % of time)
    /// instead of uniform 96 µs tasks. The mean stays 96 µs; the duration
    /// *distribution* becomes bimodal, which is a fidelity knob for
    /// sensitivity analysis (see the `kernel_mix` experiment).
    pub heterogeneous_kernels: bool,
}

impl RaxmlWorkload {
    /// The faithful `42_SC` workload.
    pub fn paper_42sc() -> RaxmlWorkload {
        RaxmlWorkload {
            tasks_per_bootstrap: 265_981,
            ppe_gap: SimDuration::from_micros(11),
            task_mean: SimDuration::from_micros(96),
            loop_iters: 228,
            loop_fraction: 0.72,
            llp_signal: SimDuration::from_nanos(1_000),
            llp_fetch: SimDuration::from_nanos(2_500),
            llp_reduce: SimDuration::from_nanos(800),
            jitter: 0.15,
            input_bytes: 12 * 1024,
            output_bytes: 128,
            extrapolation: 1.0,
            heterogeneous_kernels: false,
        }
    }

    /// Enable the heterogeneous kernel mix.
    pub fn with_kernel_mix(mut self) -> RaxmlWorkload {
        self.heterogeneous_kernels = true;
        self
    }

    /// Call frequencies of the three kernels in the mix. `newview`
    /// dominates calls (one per internal node per tree change); `makenewz`
    /// runs per branch; `evaluate` rarely.
    pub const KERNEL_FREQS: [(KernelKind, f64); 3] = [
        (KernelKind::NewView, 0.60),
        (KernelKind::MakeNewz, 0.30),
        (KernelKind::Evaluate, 0.10),
    ];

    /// Mean duration multiplier of `kind` relative to [`Self::task_mean`],
    /// chosen so `Σ freq·dur` equals the mean and the per-kernel *time*
    /// shares match the gprof profile (§5.1, renormalized over the three
    /// kernels: 77.8 / 19.8 / 2.4 %).
    pub fn kernel_factor(kind: KernelKind) -> f64 {
        // share_k / freq_k, with shares renormalized to sum to 1.
        let total: f64 =
            KernelKind::ALL.iter().map(|k| k.sequential_share()).sum();
        let share = kind.sequential_share() / total;
        let freq = Self::KERNEL_FREQS
            .iter()
            .find(|&&(k, _)| k == kind)
            .map(|&(_, f)| f)
            .expect("kernel in mix");
        share / freq
    }

    /// Draw the kernel kind of the next task (uniform workload: always
    /// `NewView`).
    pub fn draw_kind(&self, rng: &mut SmallRng) -> KernelKind {
        if !self.heterogeneous_kernels {
            return KernelKind::NewView;
        }
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for &(k, f) in &Self::KERNEL_FREQS {
            acc += f;
            if u < acc {
                return k;
            }
        }
        KernelKind::Evaluate
    }

    /// Reduce the task count by `factor` (durations untouched); reported
    /// makespans should be multiplied by [`Self::scale_factor`].
    ///
    /// # Panics
    /// Panics if the reduction would leave zero tasks.
    pub fn scaled(mut self, factor: usize) -> RaxmlWorkload {
        assert!(factor >= 1, "scale factor must be >= 1");
        let before = self.tasks_per_bootstrap;
        self.tasks_per_bootstrap = (self.tasks_per_bootstrap / factor).max(1);
        self.extrapolation *= before as f64 / self.tasks_per_bootstrap as f64;
        self
    }

    /// Ratio of the full task count to this workload's (what reported
    /// makespans are multiplied by).
    pub fn scale_factor(&self) -> f64 {
        self.extrapolation
    }

    /// Total time of the parallelizable loop portion at degree 1.
    fn loop_time(&self) -> SimDuration {
        self.task_mean.mul_f64(self.loop_fraction)
    }

    /// Duration of one off-loaded task executed with `degree`-way loop
    /// work-sharing under `profile`, with multiplicative `jitter_mult`
    /// applied to the compute portion.
    ///
    /// `degree == 1` is plain EDTLP; higher degrees shrink the loop portion
    /// to `ceil(iters/degree)` iterations and add the team overheads.
    pub fn task_duration(
        &self,
        profile: KernelProfile,
        degree: usize,
        jitter_mult: f64,
    ) -> SimDuration {
        self.kernel_task_duration(KernelKind::NewView, profile, degree, jitter_mult, false)
    }

    /// As [`Self::task_duration`], for a specific kernel of the
    /// heterogeneous mix (`mixed = true` applies the per-kernel factor).
    pub fn kernel_task_duration(
        &self,
        kind: KernelKind,
        profile: KernelProfile,
        degree: usize,
        jitter_mult: f64,
        mixed: bool,
    ) -> SimDuration {
        let kernel_mult = if mixed { Self::kernel_factor(kind) } else { 1.0 };
        self.task_duration_inner(profile, degree, jitter_mult * kernel_mult)
    }

    fn task_duration_inner(
        &self,
        profile: KernelProfile,
        degree: usize,
        jitter_mult: f64,
    ) -> SimDuration {
        assert!(degree >= 1, "degree must be at least 1");
        let serial = self.task_mean.mul_f64(1.0 - self.loop_fraction);
        let chunk = self.loop_iters.div_ceil(degree);
        let par = self.loop_time().mul_f64(chunk as f64 / self.loop_iters as f64);
        let compute = (serial + par).mul_f64(profile.factor() * jitter_mult);
        if degree == 1 {
            compute
        } else {
            let workers = (degree - 1) as u64;
            let overhead =
                self.llp_signal * workers + self.llp_fetch * workers + self.llp_reduce * workers;
            compute + overhead
        }
    }

    /// Draw a jitter multiplier in `[1 − jitter, 1 + jitter]`.
    pub fn draw_jitter(&self, rng: &mut SmallRng) -> f64 {
        if self.jitter == 0.0 {
            1.0
        } else {
            1.0 + rng.gen_range(-self.jitter..=self.jitter)
        }
    }

    /// Draw a PPE work gap (jittered around the mean).
    pub fn draw_ppe_gap(&self, rng: &mut SmallRng) -> SimDuration {
        self.ppe_gap.mul_f64(self.draw_jitter(rng))
    }

    /// Analytic single-worker EDTLP bootstrap estimate (sanity anchor for
    /// Table 1's first row).
    pub fn bootstrap_estimate_1worker(&self) -> SimDuration {
        (self.ppe_gap + self.task_duration(KernelProfile::Optimized, 1, 1.0))
            * self.tasks_per_bootstrap as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn w() -> RaxmlWorkload {
        RaxmlWorkload::paper_42sc()
    }

    #[test]
    fn one_worker_bootstrap_matches_table1_row1() {
        let est = w().bootstrap_estimate_1worker().as_secs_f64();
        assert!(
            (est - 28.46).abs() < 0.1,
            "1-worker bootstrap estimate {est}s should be ~28.46s"
        );
    }

    #[test]
    fn ppe_only_and_naive_match_section_5_1() {
        let wl = w();
        let n = wl.tasks_per_bootstrap as f64;
        let ppe_only = n
            * (wl.ppe_gap + wl.task_duration(KernelProfile::PpeOnly, 1, 1.0)).as_secs_f64();
        let naive =
            n * (wl.ppe_gap + wl.task_duration(KernelProfile::Naive, 1, 1.0)).as_secs_f64();
        assert!((ppe_only - 38.23).abs() < 1.5, "PPE-only {ppe_only}s vs paper 38.23s");
        assert!((naive - 50.38).abs() < 1.5, "naive {naive}s vs paper 50.38s");
        // And the headline: optimized off-loading is a ~1.32x speedup over
        // the PPE version.
        let opt =
            n * (wl.ppe_gap + wl.task_duration(KernelProfile::Optimized, 1, 1.0)).as_secs_f64();
        let speedup = ppe_only / opt;
        assert!((speedup - 1.32).abs() < 0.05, "speedup {speedup} vs paper 1.32");
    }

    #[test]
    fn llp_speedup_curve_matches_table2_shape() {
        let wl = w();
        let boot = |k: usize| {
            wl.tasks_per_bootstrap as f64
                * (wl.ppe_gap + wl.task_duration(KernelProfile::Optimized, k, 1.0)).as_secs_f64()
        };
        let t1 = boot(1);
        let times: Vec<f64> = (1..=8).map(boot).collect();
        // Peak speedup 1.5–1.65× somewhere in 4..=5 (paper: 1.58 at 5).
        let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let best_k = times.iter().position(|&t| t == best).unwrap() + 1;
        let speedup = t1 / best;
        assert!((4..=5).contains(&best_k), "best degree {best_k}, times {times:?}");
        assert!(
            (1.45..=1.70).contains(&speedup),
            "peak LLP speedup {speedup} out of Table-2 range"
        );
        // Monotone improvement up to 4, degradation from 5 to 8.
        assert!(times[0] > times[1] && times[1] > times[2] && times[2] > times[3]);
        assert!(times[7] > best, "8 SPEs must be worse than the peak");
        // 2 SPEs ≈ 20.4–21.5s (paper 20.83), 4 SPEs ≈ 18–18.6 (paper 18.28).
        assert!((times[1] - 20.83).abs() < 1.0, "k=2: {}", times[1]);
        assert!((times[3] - 18.28).abs() < 1.0, "k=4: {}", times[3]);
    }

    #[test]
    fn degree_one_has_no_team_overhead() {
        let wl = w();
        let d1 = wl.task_duration(KernelProfile::Optimized, 1, 1.0);
        assert_eq!(d1, wl.task_mean, "degree 1 must reproduce the 96µs mean");
    }

    #[test]
    fn jitter_is_bounded_and_seeded() {
        let wl = w();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let j = wl.draw_jitter(&mut rng);
            assert!((0.85..=1.15).contains(&j));
        }
        let mut a = SmallRng::seed_from_u64(2);
        let mut b = SmallRng::seed_from_u64(2);
        assert_eq!(wl.draw_jitter(&mut a), wl.draw_jitter(&mut b));
    }

    #[test]
    fn scaling_preserves_durations_and_reports_factor() {
        let wl = w().scaled(100);
        assert_eq!(wl.tasks_per_bootstrap, 2_659);
        assert_eq!(wl.task_mean, w().task_mean);
        let f = wl.scale_factor();
        assert!((f - 265_981.0 / 2_659.0).abs() < 1e-9);
        // Scaled estimate × factor ≈ faithful estimate.
        let scaled_est = wl.bootstrap_estimate_1worker().as_secs_f64() * f;
        assert!((scaled_est - 28.46).abs() < 0.2, "{scaled_est}");
    }

    #[test]
    fn kernel_mix_preserves_the_mean_and_shares() {
        use mgps_runtime::policy::KernelKind;
        let w = RaxmlWorkload::paper_42sc().with_kernel_mix();
        // Mean over the mix equals the uniform mean.
        let mean: f64 = RaxmlWorkload::KERNEL_FREQS
            .iter()
            .map(|&(k, f)| {
                f * w
                    .kernel_task_duration(k, KernelProfile::Optimized, 1, 1.0, true)
                    .as_nanos() as f64
            })
            .sum();
        assert!(
            (mean - w.task_mean.as_nanos() as f64).abs() < 2.0,
            "mix mean {mean} vs {}",
            w.task_mean.as_nanos()
        );
        // Time shares match the renormalized gprof profile.
        let total_share: f64 = KernelKind::ALL.iter().map(|k| k.sequential_share()).sum();
        for &(k, f) in &RaxmlWorkload::KERNEL_FREQS {
            let t = w.kernel_task_duration(k, KernelProfile::Optimized, 1, 1.0, true);
            let share = f * t.as_nanos() as f64 / mean;
            let want = k.sequential_share() / total_share;
            assert!((share - want).abs() < 0.01, "{k}: share {share} vs {want}");
        }
        // Sampling respects the frequencies.
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(w.draw_kind(&mut rng)).or_insert(0u32) += 1;
        }
        for &(k, f) in &RaxmlWorkload::KERNEL_FREQS {
            let got = counts[&k] as f64 / 20_000.0;
            assert!((got - f).abs() < 0.02, "{k}: drew {got}, expected {f}");
        }
        // Uniform workloads always draw newview.
        let wu = RaxmlWorkload::paper_42sc();
        assert_eq!(wu.draw_kind(&mut rng), KernelKind::NewView);
    }

    #[test]
    fn profile_factors_ordered() {
        assert!(KernelProfile::Naive.factor() > KernelProfile::PpeOnly.factor());
        assert!(KernelProfile::PpeOnly.factor() > KernelProfile::Optimized.factor());
        assert_eq!(KernelProfile::Custom(1.5).factor(), 1.5);
    }

    #[test]
    fn optimization_ladder_multiplies_to_the_naive_factor() {
        let product: f64 = KernelProfile::LADDER.iter().map(|&(_, f)| f).product();
        let ratio = KernelProfile::Naive.factor() / product;
        assert!(
            (ratio - 1.0).abs() < 0.02,
            "ladder product {product} must recover the 1.86x naive factor (residual {ratio})"
        );
    }
}
