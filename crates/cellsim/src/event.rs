//! Structured execution-event records for post-hoc invariant checking.
//!
//! When [`crate::machine::SimConfig::record_events`] is set, the machine
//! model appends one [`EventRecord`] per semantically meaningful action —
//! off-loads, context switches, task starts/ends, DMA issues, mailbox
//! operations, local-store accounting, loop chunk dispatch, and MGPS
//! degree decisions — into a [`RunLog`]. The log is what `mgps-analysis`
//! statically verifies; it serializes to JSON (via `minijson`) so runs can
//! be archived and diffed, and its serialized form is the input to the
//! deterministic-replay digest.

use minijson::Value;

/// Why a process lost its PPE context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchReason {
    /// Voluntary yield at an off-load point (EDTLP-family schedulers).
    Offload,
    /// Involuntary quantum-expiry rotation (Linux-like scheduler).
    Quantum,
}

impl SwitchReason {
    fn as_str(self) -> &'static str {
        match self {
            SwitchReason::Offload => "offload",
            SwitchReason::Quantum => "quantum",
        }
    }

    fn from_str(s: &str) -> Option<SwitchReason> {
        match s {
            "offload" => Some(SwitchReason::Offload),
            "quantum" => Some(SwitchReason::Quantum),
            _ => None,
        }
    }
}

/// Which of an SPU's three hardware mailboxes an operation touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MailboxKind {
    /// PPE → SPU command mailbox (4 entries).
    Inbound,
    /// SPU → PPE data mailbox (1 entry).
    Outbound,
    /// SPU → PPE interrupting mailbox (1 entry).
    OutboundInterrupt,
}

impl MailboxKind {
    /// The hardware capacity of this mailbox kind (§4).
    pub fn capacity(self) -> usize {
        match self {
            MailboxKind::Inbound => 4,
            MailboxKind::Outbound | MailboxKind::OutboundInterrupt => 1,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            MailboxKind::Inbound => "inbound",
            MailboxKind::Outbound => "outbound",
            MailboxKind::OutboundInterrupt => "outbound_interrupt",
        }
    }

    fn from_str(s: &str) -> Option<MailboxKind> {
        match s {
            "inbound" => Some(MailboxKind::Inbound),
            "outbound" => Some(MailboxKind::Outbound),
            "outbound_interrupt" => Some(MailboxKind::OutboundInterrupt),
            _ => None,
        }
    }
}

/// One recorded action of the machine model.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Process `proc` requested an off-load of `task`.
    Offload {
        /// Requesting worker process.
        proc: usize,
        /// Task identifier (monotonic per run).
        task: u64,
    },
    /// Process `proc` lost its PPE context.
    CtxSwitch {
        /// The descheduled process.
        proc: usize,
        /// Why the context was lost.
        reason: SwitchReason,
        /// How long the context was held, ns.
        held_ns: u64,
    },
    /// `task` began executing for `proc` on `team` (work-shared when
    /// `degree > 1`).
    TaskStart {
        /// Owning worker process.
        proc: usize,
        /// Task identifier.
        task: u64,
        /// Loop-level parallelism degree in force at grant time.
        degree: usize,
        /// The SPEs granted (team\[0\] is the lead).
        team: Vec<usize>,
    },
    /// `task` finished on `team`.
    TaskEnd {
        /// Owning worker process.
        proc: usize,
        /// Task identifier.
        task: u64,
        /// The SPEs released.
        team: Vec<usize>,
    },
    /// A DMA list was issued from `spe`.
    Dma {
        /// Issuing SPE.
        spe: usize,
        /// Per-element transfer sizes, bytes.
        element_bytes: Vec<usize>,
        /// Local-store base address.
        local_addr: usize,
        /// Main-memory base address.
        main_addr: usize,
    },
    /// A message was written into a mailbox.
    MailboxWrite {
        /// The SPU whose mailbox was written.
        spe: usize,
        /// Which mailbox.
        mailbox: MailboxKind,
        /// Occupancy after the write.
        occupancy: usize,
    },
    /// A message was read from a mailbox.
    MailboxRead {
        /// The SPU whose mailbox was read.
        spe: usize,
        /// Which mailbox.
        mailbox: MailboxKind,
        /// Occupancy after the read.
        occupancy: usize,
    },
    /// Local-store buffer space reserved on `spe`.
    LsAlloc {
        /// The SPE.
        spe: usize,
        /// Bytes reserved.
        bytes: usize,
        /// Total bytes in use after the reservation.
        in_use: usize,
    },
    /// Local-store buffer space released on `spe`.
    LsFree {
        /// The SPE.
        spe: usize,
        /// Bytes released.
        bytes: usize,
        /// Total bytes in use after the release.
        in_use: usize,
    },
    /// One work-sharing chunk of `task`'s parallel loop was assigned.
    Chunk {
        /// The work-shared task.
        task: u64,
        /// Total loop iterations of the task.
        loop_iters: usize,
        /// First iteration of this chunk.
        start: usize,
        /// Iterations in this chunk.
        len: usize,
        /// The SPE executing the chunk.
        worker: usize,
    },
    /// `spe` reloaded its resident code image before starting a task (the
    /// granularity term `t_code`).
    CodeReload {
        /// The reloading SPE.
        spe: usize,
        /// Stall paid for the reload, ns.
        stall_ns: u64,
    },
    /// A DMA transfer to `spe` finished (the granularity term `t_comm`).
    DmaComplete {
        /// The receiving SPE.
        spe: usize,
        /// Bytes moved.
        bytes: usize,
        /// End-to-end transfer latency, ns.
        latency_ns: u64,
    },
    /// The MGPS policy issued a degree decision at a window boundary.
    DegreeDecision {
        /// The new loop degree (1 = LLP off).
        degree: usize,
        /// Tasks waiting for off-load at the decision (the paper's `T`).
        waiting: usize,
        /// SPEs on the machine.
        n_spes: usize,
        /// Configured utilization-window length.
        window: usize,
        /// Off-loads currently held in the window sample.
        window_fill: usize,
    },
    /// The online health detector (`mgps-obs`) raised an alarm while the
    /// run was live. Informational: the checker verifies its shape but it
    /// places no scheduling constraint; reports surface it prominently.
    Health {
        /// Stable alarm slug (`utilization_collapse`, `stall_spike`,
        /// `ring_drop`, `quarantine_storm`).
        alarm: String,
        /// `warning` or `critical`.
        severity: String,
        /// Human-readable explanation of what tripped.
        detail: String,
    },
    /// The fault plane sabotaged off-load attempt `attempt` of `task`,
    /// which had been assigned to lead SPE `spe`. The attempt produces no
    /// `TaskStart`; the watchdog reclaims the team and recovery decides
    /// between a retry, the PPE fallback, or (lethal plans only) a lost
    /// task the checker must flag.
    FaultInjected {
        /// Team-lead SPE of the sabotaged assignment.
        spe: usize,
        /// The faulted task.
        task: u64,
        /// Stable fault-kind slug (`spe_stall`, `spe_crash`, `dma_error`,
        /// `mailbox_drop`).
        fault: String,
        /// Off-load attempt number (0 = original off-load).
        attempt: u64,
    },
    /// Recovery re-queued faulted `task` for off-load attempt `attempt`
    /// after waiting the declared exponential backoff. Not an `Offload`:
    /// the task keeps its identity and its single completion obligation.
    OffloadRetry {
        /// The retried task.
        task: u64,
        /// The new attempt number (≥ 1, strictly increasing per task).
        attempt: u64,
        /// Backoff waited before this retry, ns (must match the policy
        /// declared in the log header).
        backoff_ns: u64,
    },
    /// `spe` exceeded the policy's consecutive-fault threshold and was
    /// removed from scheduling (no team may include it until readmitted).
    SpeQuarantined {
        /// The quarantined SPE.
        spe: usize,
        /// Consecutive faults that tripped the threshold.
        faults: u64,
    },
    /// A re-admission probe returned quarantined `spe` to scheduling.
    SpeReadmitted {
        /// The readmitted SPE.
        spe: usize,
    },
    /// Terminal degradation: `task` ran to completion on the PPE fallback
    /// copy. This is the task's completion record — a fallen-back task
    /// has no `TaskStart`/`TaskEnd`.
    PpeFallback {
        /// Owning worker process.
        proc: usize,
        /// The task completed on the PPE.
        task: u64,
        /// Off-load attempts consumed before falling back.
        attempts: u64,
    },
    /// A serve-plane job was admitted to the bounded request queue. Jobs
    /// lift the granularity decomposition one level up: one job spans one
    /// or more off-loads, and its `JobCompleted` terms partition its wall
    /// time the way `t_ppe`/`t_wait`/`t_spe`/`t_comm` partition one
    /// off-load.
    JobSubmitted {
        /// Seeded job id (unique per run).
        job: u64,
        /// Submitting tenant.
        tenant: usize,
        /// Taxa in the phylo job spec.
        taxa: usize,
        /// Alignment sites in the spec.
        sites: usize,
        /// Bootstrap replicates in the spec.
        bootstraps: usize,
        /// Relative completion deadline, ns since admission (0 = none;
        /// serialized only when set, so deadline-free logs keep their
        /// pre-deadline byte form).
        deadline_ns: u64,
        /// Queue occupancy after the admission (this job included).
        queue_depth: usize,
        /// Configured admission-queue bound.
        queue_cap: usize,
    },
    /// A worker dequeued admitted job `job` and began executing it.
    /// Within a tenant, starts must follow submission (FIFO) order.
    JobStarted {
        /// The job.
        job: u64,
        /// Its tenant.
        tenant: usize,
        /// Zero-based execution attempt (0 = first start; restarts after
        /// a `JobRetried` carry that retry's number). Serialized only when
        /// nonzero, so retry-free logs keep their pre-retry byte form.
        attempt: u64,
    },
    /// An admitted job was dropped at dispatch because its declared
    /// deadline expired while it waited in queue. Terminal: a shed job is
    /// never started, retried, or completed. Never silent — every expired
    /// job leaves exactly this record.
    JobShed {
        /// The shed job.
        job: u64,
        /// Its tenant.
        tenant: usize,
        /// The deadline it missed, ns since its admission stamp.
        deadline_ns: u64,
    },
    /// A job whose execution attempt died on an unrecoverable off-load
    /// fault was re-queued (back of its tenant's queue) for the attempt
    /// number recorded here, after the declared deterministic backoff.
    /// Not a new submission: the job keeps its identity, its admission
    /// stamp, and its single completion obligation.
    JobRetried {
        /// The retried job.
        job: u64,
        /// Its tenant.
        tenant: usize,
        /// One-based retry number (the next `JobStarted` carries it).
        attempt: u64,
        /// Backoff waited before the re-queue, ns (must match the policy
        /// declared in the log header).
        backoff_ns: u64,
    },
    /// Terminal quarantine: `job` exhausted its retry budget and was
    /// removed from the queue as poison instead of wedging it. A poisoned
    /// job has no `JobCompleted`.
    JobPoisoned {
        /// The quarantined job.
        job: u64,
        /// Its tenant.
        tenant: usize,
        /// Total execution attempts consumed before giving up.
        attempts: u64,
    },
    /// Job `job` finished. The four terms partition its wall time
    /// exactly: their sum equals this event's timestamp minus the job's
    /// `JobSubmitted` timestamp.
    JobCompleted {
        /// The job.
        job: u64,
        /// Its tenant.
        tenant: usize,
        /// Admission-queue wait, ns.
        t_queue_ns: u64,
        /// Dequeue-to-kernel setup (argument marshalling), ns.
        t_dispatch_ns: u64,
        /// Off-loaded kernel execution, ns.
        t_kernel_ns: u64,
        /// Result reduction on the PPE, ns.
        t_reduce_ns: u64,
    },
    /// A submission was refused — queue at capacity, or the serve plane
    /// was draining after a shutdown signal. A rejected job has no
    /// `JobSubmitted` record: submission means admission.
    JobRejected {
        /// The refused job's (seeded) id.
        job: u64,
        /// Its tenant.
        tenant: usize,
        /// Queue occupancy at refusal time.
        queue_depth: usize,
        /// Configured admission-queue bound.
        queue_cap: usize,
    },
    /// The granularity controller ruled on where a kernel invocation runs
    /// (the §5.2 inequality `t_spe + t_code + 2·t_comm < t_ppe`).
    /// Informational, like [`EventKind::Health`]: the checker verifies its
    /// shape but it places no scheduling constraint.
    GranularityVerdict {
        /// Kernel slug (`newview`, `makenewz`, `evaluate`).
        kernel: String,
        /// Whether the invocation was granted an SPE off-load.
        offload: bool,
        /// Whether the kernel is throttled after this verdict.
        throttled: bool,
        /// Whether the off-load was a periodic re-probe of a throttled
        /// kernel (implies `offload`).
        reprobe: bool,
    },
}

/// An [`EventKind`] stamped with its emission order and simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Emission sequence number (0-based, dense).
    pub seq: u64,
    /// Simulated time of the event, ns.
    pub at_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Which scheduling scheme produced a log (determines the context-switch
/// discipline the checker enforces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerTag {
    /// Event-driven task-level parallelism.
    Edtlp,
    /// Linux-like quantum rotation.
    Linux,
    /// EDTLP with a fixed loop degree.
    StaticHybrid(usize),
    /// Adaptive multigrain scheduling.
    Mgps,
}

impl std::fmt::Display for SchedulerTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.as_string())
    }
}

impl SchedulerTag {
    fn as_string(self) -> String {
        match self {
            SchedulerTag::Edtlp => "edtlp".to_string(),
            SchedulerTag::Linux => "linux".to_string(),
            SchedulerTag::StaticHybrid(k) => format!("static_hybrid:{k}"),
            SchedulerTag::Mgps => "mgps".to_string(),
        }
    }

    fn from_string(s: &str) -> Option<SchedulerTag> {
        match s {
            "edtlp" => Some(SchedulerTag::Edtlp),
            "linux" => Some(SchedulerTag::Linux),
            "mgps" => Some(SchedulerTag::Mgps),
            other => other
                .strip_prefix("static_hybrid:")
                .and_then(|k| k.parse().ok())
                .map(SchedulerTag::StaticHybrid),
        }
    }
}

/// The complete structured log of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunLog {
    /// Scheduling scheme of the run.
    pub scheduler: SchedulerTag,
    /// SPEs on the simulated machine.
    pub n_spes: usize,
    /// Effective Linux quantum, ns (also recorded for non-Linux runs).
    pub quantum_ns: u64,
    /// RNG seed of the run.
    pub seed: u64,
    /// Local-store capacity per SPE, bytes.
    pub local_store_bytes: usize,
    /// Parallel-loop iteration count per task.
    pub loop_iters: usize,
    /// MGPS utilization-window length, when the run used MGPS.
    pub mgps_window: Option<usize>,
    /// Canonical fault spec (`FaultPlan::to_spec`) when a fault plan was
    /// armed for the run. Its presence tells the checker to (a) enforce
    /// the fault-recovery/quarantine/backoff rules against this exact
    /// declared policy and (b) relax FIFO start order and degree pinning,
    /// which retries and healthy-SPE clamping legitimately perturb.
    pub fault_policy: Option<String>,
    /// Per-tenant deficit-round-robin dispatch weights when the serve
    /// plane ran with non-default fairness (tenant `t` gets
    /// `tenant_weights[t]`, or weight 1 beyond the list's end). `None`
    /// means every tenant weighs 1; the key is omitted from the
    /// serialized form so equal-weight logs keep their pre-fairness byte
    /// form. The checker's `tenant-fairness` rule replays dispatch
    /// against exactly these weights.
    pub tenant_weights: Option<Vec<u64>>,
    /// The events, in emission order.
    pub events: Vec<EventRecord>,
}

fn usize_field(v: &Value, key: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .map(|n| n as usize)
        .ok_or_else(|| format!("missing integer field '{key}'"))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing integer field '{key}'"))
}

fn bool_field(v: &Value, key: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(Value::as_bool)
        .ok_or_else(|| format!("missing boolean field '{key}'"))
}

fn str_field<'v>(v: &'v Value, key: &str) -> Result<&'v str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn usize_list(v: &Value, key: &str) -> Result<Vec<usize>, String> {
    v.get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("missing array field '{key}'"))?
        .iter()
        .map(|x| {
            x.as_u64()
                .map(|n| n as usize)
                .ok_or_else(|| format!("non-integer element in '{key}'"))
        })
        .collect()
}

impl EventKind {
    fn to_value(&self) -> Value {
        match self {
            EventKind::Offload { proc, task } => Value::object(vec![
                ("type", "offload".into()),
                ("proc", (*proc).into()),
                ("task", (*task).into()),
            ]),
            EventKind::CtxSwitch {
                proc,
                reason,
                held_ns,
            } => Value::object(vec![
                ("type", "ctx_switch".into()),
                ("proc", (*proc).into()),
                ("reason", reason.as_str().into()),
                ("held_ns", (*held_ns).into()),
            ]),
            EventKind::TaskStart {
                proc,
                task,
                degree,
                team,
            } => Value::object(vec![
                ("type", "task_start".into()),
                ("proc", (*proc).into()),
                ("task", (*task).into()),
                ("degree", (*degree).into()),
                ("team", Value::array(team.clone())),
            ]),
            EventKind::TaskEnd { proc, task, team } => Value::object(vec![
                ("type", "task_end".into()),
                ("proc", (*proc).into()),
                ("task", (*task).into()),
                ("team", Value::array(team.clone())),
            ]),
            EventKind::Dma {
                spe,
                element_bytes,
                local_addr,
                main_addr,
            } => Value::object(vec![
                ("type", "dma".into()),
                ("spe", (*spe).into()),
                ("element_bytes", Value::array(element_bytes.clone())),
                ("local_addr", (*local_addr).into()),
                ("main_addr", (*main_addr).into()),
            ]),
            EventKind::MailboxWrite {
                spe,
                mailbox,
                occupancy,
            } => Value::object(vec![
                ("type", "mailbox_write".into()),
                ("spe", (*spe).into()),
                ("mailbox", mailbox.as_str().into()),
                ("occupancy", (*occupancy).into()),
            ]),
            EventKind::MailboxRead {
                spe,
                mailbox,
                occupancy,
            } => Value::object(vec![
                ("type", "mailbox_read".into()),
                ("spe", (*spe).into()),
                ("mailbox", mailbox.as_str().into()),
                ("occupancy", (*occupancy).into()),
            ]),
            EventKind::LsAlloc { spe, bytes, in_use } => Value::object(vec![
                ("type", "ls_alloc".into()),
                ("spe", (*spe).into()),
                ("bytes", (*bytes).into()),
                ("in_use", (*in_use).into()),
            ]),
            EventKind::LsFree { spe, bytes, in_use } => Value::object(vec![
                ("type", "ls_free".into()),
                ("spe", (*spe).into()),
                ("bytes", (*bytes).into()),
                ("in_use", (*in_use).into()),
            ]),
            EventKind::Chunk {
                task,
                loop_iters,
                start,
                len,
                worker,
            } => Value::object(vec![
                ("type", "chunk".into()),
                ("task", (*task).into()),
                ("loop_iters", (*loop_iters).into()),
                ("start", (*start).into()),
                ("len", (*len).into()),
                ("worker", (*worker).into()),
            ]),
            EventKind::CodeReload { spe, stall_ns } => Value::object(vec![
                ("type", "code_reload".into()),
                ("spe", (*spe).into()),
                ("stall_ns", (*stall_ns).into()),
            ]),
            EventKind::DmaComplete {
                spe,
                bytes,
                latency_ns,
            } => Value::object(vec![
                ("type", "dma_complete".into()),
                ("spe", (*spe).into()),
                ("bytes", (*bytes).into()),
                ("latency_ns", (*latency_ns).into()),
            ]),
            EventKind::DegreeDecision {
                degree,
                waiting,
                n_spes,
                window,
                window_fill,
            } => Value::object(vec![
                ("type", "degree_decision".into()),
                ("degree", (*degree).into()),
                ("waiting", (*waiting).into()),
                ("n_spes", (*n_spes).into()),
                ("window", (*window).into()),
                ("window_fill", (*window_fill).into()),
            ]),
            EventKind::Health { alarm, severity, detail } => Value::object(vec![
                ("type", "health".into()),
                ("alarm", alarm.clone().into()),
                ("severity", severity.clone().into()),
                ("detail", detail.clone().into()),
            ]),
            EventKind::FaultInjected { spe, task, fault, attempt } => Value::object(vec![
                ("type", "fault_injected".into()),
                ("spe", (*spe).into()),
                ("task", (*task).into()),
                ("fault", fault.clone().into()),
                ("attempt", (*attempt).into()),
            ]),
            EventKind::OffloadRetry { task, attempt, backoff_ns } => Value::object(vec![
                ("type", "offload_retry".into()),
                ("task", (*task).into()),
                ("attempt", (*attempt).into()),
                ("backoff_ns", (*backoff_ns).into()),
            ]),
            EventKind::SpeQuarantined { spe, faults } => Value::object(vec![
                ("type", "spe_quarantined".into()),
                ("spe", (*spe).into()),
                ("faults", (*faults).into()),
            ]),
            EventKind::SpeReadmitted { spe } => Value::object(vec![
                ("type", "spe_readmitted".into()),
                ("spe", (*spe).into()),
            ]),
            EventKind::PpeFallback { proc, task, attempts } => Value::object(vec![
                ("type", "ppe_fallback".into()),
                ("proc", (*proc).into()),
                ("task", (*task).into()),
                ("attempts", (*attempts).into()),
            ]),
            EventKind::GranularityVerdict { kernel, offload, throttled, reprobe } => {
                Value::object(vec![
                    ("type", "granularity_verdict".into()),
                    ("kernel", kernel.clone().into()),
                    ("offload", (*offload).into()),
                    ("throttled", (*throttled).into()),
                    ("reprobe", (*reprobe).into()),
                ])
            }
            EventKind::JobSubmitted {
                job,
                tenant,
                taxa,
                sites,
                bootstraps,
                deadline_ns,
                queue_depth,
                queue_cap,
            } => {
                let mut members: Vec<(&str, Value)> = vec![
                    ("type", "job_submitted".into()),
                    ("job", (*job).into()),
                    ("tenant", (*tenant).into()),
                    ("taxa", (*taxa).into()),
                    ("sites", (*sites).into()),
                    ("bootstraps", (*bootstraps).into()),
                ];
                if *deadline_ns != 0 {
                    members.push(("deadline_ns", (*deadline_ns).into()));
                }
                members.push(("queue_depth", (*queue_depth).into()));
                members.push(("queue_cap", (*queue_cap).into()));
                Value::object(members)
            }
            EventKind::JobStarted { job, tenant, attempt } => {
                let mut members: Vec<(&str, Value)> = vec![
                    ("type", "job_started".into()),
                    ("job", (*job).into()),
                    ("tenant", (*tenant).into()),
                ];
                if *attempt != 0 {
                    members.push(("attempt", (*attempt).into()));
                }
                Value::object(members)
            }
            EventKind::JobShed { job, tenant, deadline_ns } => Value::object(vec![
                ("type", "job_shed".into()),
                ("job", (*job).into()),
                ("tenant", (*tenant).into()),
                ("deadline_ns", (*deadline_ns).into()),
            ]),
            EventKind::JobRetried { job, tenant, attempt, backoff_ns } => Value::object(vec![
                ("type", "job_retried".into()),
                ("job", (*job).into()),
                ("tenant", (*tenant).into()),
                ("attempt", (*attempt).into()),
                ("backoff_ns", (*backoff_ns).into()),
            ]),
            EventKind::JobPoisoned { job, tenant, attempts } => Value::object(vec![
                ("type", "job_poisoned".into()),
                ("job", (*job).into()),
                ("tenant", (*tenant).into()),
                ("attempts", (*attempts).into()),
            ]),
            EventKind::JobCompleted {
                job,
                tenant,
                t_queue_ns,
                t_dispatch_ns,
                t_kernel_ns,
                t_reduce_ns,
            } => Value::object(vec![
                ("type", "job_completed".into()),
                ("job", (*job).into()),
                ("tenant", (*tenant).into()),
                ("t_queue_ns", (*t_queue_ns).into()),
                ("t_dispatch_ns", (*t_dispatch_ns).into()),
                ("t_kernel_ns", (*t_kernel_ns).into()),
                ("t_reduce_ns", (*t_reduce_ns).into()),
            ]),
            EventKind::JobRejected { job, tenant, queue_depth, queue_cap } => {
                Value::object(vec![
                    ("type", "job_rejected".into()),
                    ("job", (*job).into()),
                    ("tenant", (*tenant).into()),
                    ("queue_depth", (*queue_depth).into()),
                    ("queue_cap", (*queue_cap).into()),
                ])
            }
        }
    }

    fn from_value(v: &Value) -> Result<EventKind, String> {
        let kind = match str_field(v, "type")? {
            "offload" => EventKind::Offload {
                proc: usize_field(v, "proc")?,
                task: u64_field(v, "task")?,
            },
            "ctx_switch" => EventKind::CtxSwitch {
                proc: usize_field(v, "proc")?,
                reason: SwitchReason::from_str(str_field(v, "reason")?)
                    .ok_or("bad switch reason")?,
                held_ns: u64_field(v, "held_ns")?,
            },
            "task_start" => EventKind::TaskStart {
                proc: usize_field(v, "proc")?,
                task: u64_field(v, "task")?,
                degree: usize_field(v, "degree")?,
                team: usize_list(v, "team")?,
            },
            "task_end" => EventKind::TaskEnd {
                proc: usize_field(v, "proc")?,
                task: u64_field(v, "task")?,
                team: usize_list(v, "team")?,
            },
            "dma" => EventKind::Dma {
                spe: usize_field(v, "spe")?,
                element_bytes: usize_list(v, "element_bytes")?,
                local_addr: usize_field(v, "local_addr")?,
                main_addr: usize_field(v, "main_addr")?,
            },
            "mailbox_write" => EventKind::MailboxWrite {
                spe: usize_field(v, "spe")?,
                mailbox: MailboxKind::from_str(str_field(v, "mailbox")?)
                    .ok_or("bad mailbox kind")?,
                occupancy: usize_field(v, "occupancy")?,
            },
            "mailbox_read" => EventKind::MailboxRead {
                spe: usize_field(v, "spe")?,
                mailbox: MailboxKind::from_str(str_field(v, "mailbox")?)
                    .ok_or("bad mailbox kind")?,
                occupancy: usize_field(v, "occupancy")?,
            },
            "ls_alloc" => EventKind::LsAlloc {
                spe: usize_field(v, "spe")?,
                bytes: usize_field(v, "bytes")?,
                in_use: usize_field(v, "in_use")?,
            },
            "ls_free" => EventKind::LsFree {
                spe: usize_field(v, "spe")?,
                bytes: usize_field(v, "bytes")?,
                in_use: usize_field(v, "in_use")?,
            },
            "chunk" => EventKind::Chunk {
                task: u64_field(v, "task")?,
                loop_iters: usize_field(v, "loop_iters")?,
                start: usize_field(v, "start")?,
                len: usize_field(v, "len")?,
                worker: usize_field(v, "worker")?,
            },
            "code_reload" => EventKind::CodeReload {
                spe: usize_field(v, "spe")?,
                stall_ns: u64_field(v, "stall_ns")?,
            },
            "dma_complete" => EventKind::DmaComplete {
                spe: usize_field(v, "spe")?,
                bytes: usize_field(v, "bytes")?,
                latency_ns: u64_field(v, "latency_ns")?,
            },
            "degree_decision" => EventKind::DegreeDecision {
                degree: usize_field(v, "degree")?,
                waiting: usize_field(v, "waiting")?,
                n_spes: usize_field(v, "n_spes")?,
                window: usize_field(v, "window")?,
                window_fill: usize_field(v, "window_fill")?,
            },
            "health" => EventKind::Health {
                alarm: str_field(v, "alarm")?.to_string(),
                severity: str_field(v, "severity")?.to_string(),
                detail: str_field(v, "detail")?.to_string(),
            },
            "fault_injected" => EventKind::FaultInjected {
                spe: usize_field(v, "spe")?,
                task: u64_field(v, "task")?,
                fault: str_field(v, "fault")?.to_string(),
                attempt: u64_field(v, "attempt")?,
            },
            "offload_retry" => EventKind::OffloadRetry {
                task: u64_field(v, "task")?,
                attempt: u64_field(v, "attempt")?,
                backoff_ns: u64_field(v, "backoff_ns")?,
            },
            "spe_quarantined" => EventKind::SpeQuarantined {
                spe: usize_field(v, "spe")?,
                faults: u64_field(v, "faults")?,
            },
            "spe_readmitted" => EventKind::SpeReadmitted { spe: usize_field(v, "spe")? },
            "ppe_fallback" => EventKind::PpeFallback {
                proc: usize_field(v, "proc")?,
                task: u64_field(v, "task")?,
                attempts: u64_field(v, "attempts")?,
            },
            "granularity_verdict" => EventKind::GranularityVerdict {
                kernel: str_field(v, "kernel")?.to_string(),
                offload: bool_field(v, "offload")?,
                throttled: bool_field(v, "throttled")?,
                reprobe: bool_field(v, "reprobe")?,
            },
            "job_submitted" => EventKind::JobSubmitted {
                job: u64_field(v, "job")?,
                tenant: usize_field(v, "tenant")?,
                taxa: usize_field(v, "taxa")?,
                sites: usize_field(v, "sites")?,
                bootstraps: usize_field(v, "bootstraps")?,
                deadline_ns: v.get("deadline_ns").and_then(Value::as_u64).unwrap_or(0),
                queue_depth: usize_field(v, "queue_depth")?,
                queue_cap: usize_field(v, "queue_cap")?,
            },
            "job_started" => EventKind::JobStarted {
                job: u64_field(v, "job")?,
                tenant: usize_field(v, "tenant")?,
                attempt: v.get("attempt").and_then(Value::as_u64).unwrap_or(0),
            },
            "job_shed" => EventKind::JobShed {
                job: u64_field(v, "job")?,
                tenant: usize_field(v, "tenant")?,
                deadline_ns: u64_field(v, "deadline_ns")?,
            },
            "job_retried" => EventKind::JobRetried {
                job: u64_field(v, "job")?,
                tenant: usize_field(v, "tenant")?,
                attempt: u64_field(v, "attempt")?,
                backoff_ns: u64_field(v, "backoff_ns")?,
            },
            "job_poisoned" => EventKind::JobPoisoned {
                job: u64_field(v, "job")?,
                tenant: usize_field(v, "tenant")?,
                attempts: u64_field(v, "attempts")?,
            },
            "job_completed" => EventKind::JobCompleted {
                job: u64_field(v, "job")?,
                tenant: usize_field(v, "tenant")?,
                t_queue_ns: u64_field(v, "t_queue_ns")?,
                t_dispatch_ns: u64_field(v, "t_dispatch_ns")?,
                t_kernel_ns: u64_field(v, "t_kernel_ns")?,
                t_reduce_ns: u64_field(v, "t_reduce_ns")?,
            },
            "job_rejected" => EventKind::JobRejected {
                job: u64_field(v, "job")?,
                tenant: usize_field(v, "tenant")?,
                queue_depth: usize_field(v, "queue_depth")?,
                queue_cap: usize_field(v, "queue_cap")?,
            },
            other => return Err(format!("unknown event type '{other}'")),
        };
        Ok(kind)
    }
}

impl RunLog {
    /// Serialize to a JSON value tree.
    pub fn to_value(&self) -> Value {
        let events = self
            .events
            .iter()
            .map(|e| {
                let mut members = vec![
                    ("seq".to_string(), e.seq.into()),
                    ("at_ns".to_string(), e.at_ns.into()),
                ];
                if let Value::Object(kind_members) = e.kind.to_value() {
                    members.extend(kind_members);
                }
                Value::Object(members)
            })
            .collect::<Vec<_>>();
        let mut members: Vec<(&str, Value)> = vec![
            ("scheduler", self.scheduler.as_string().into()),
            ("n_spes", self.n_spes.into()),
            ("quantum_ns", self.quantum_ns.into()),
            ("seed", self.seed.into()),
            ("local_store_bytes", self.local_store_bytes.into()),
            ("loop_iters", self.loop_iters.into()),
            (
                "mgps_window",
                self.mgps_window.map_or(Value::Null, Into::into),
            ),
            (
                "fault_policy",
                self.fault_policy.clone().map_or(Value::Null, Into::into),
            ),
        ];
        if let Some(weights) = &self.tenant_weights {
            members.push(("tenant_weights", Value::array(weights.clone())));
        }
        members.push(("events", Value::Array(events)));
        Value::object(members)
    }

    /// Rebuild a log from [`Self::to_value`] output.
    ///
    /// # Errors
    /// A description of the first missing or mistyped field.
    pub fn from_value(v: &Value) -> Result<RunLog, String> {
        let mut events = Vec::new();
        for e in v
            .get("events")
            .and_then(Value::as_array)
            .ok_or("missing array field 'events'")?
        {
            events.push(EventRecord {
                seq: u64_field(e, "seq")?,
                at_ns: u64_field(e, "at_ns")?,
                kind: EventKind::from_value(e)?,
            });
        }
        Ok(RunLog {
            scheduler: SchedulerTag::from_string(str_field(v, "scheduler")?)
                .ok_or("bad scheduler tag")?,
            n_spes: usize_field(v, "n_spes")?,
            quantum_ns: u64_field(v, "quantum_ns")?,
            seed: u64_field(v, "seed")?,
            local_store_bytes: usize_field(v, "local_store_bytes")?,
            loop_iters: usize_field(v, "loop_iters")?,
            mgps_window: v.get("mgps_window").and_then(Value::as_u64).map(|n| n as usize),
            fault_policy: v
                .get("fault_policy")
                .and_then(Value::as_str)
                .map(str::to_string),
            tenant_weights: v
                .get("tenant_weights")
                .and_then(Value::as_array)
                .map(|a| a.iter().filter_map(Value::as_u64).collect()),
            events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> RunLog {
        RunLog {
            scheduler: SchedulerTag::Mgps,
            n_spes: 8,
            quantum_ns: 1_000_000,
            seed: 42,
            local_store_bytes: 256 * 1024,
            loop_iters: 228,
            mgps_window: Some(8),
            fault_policy: None,
            tenant_weights: None,
            events: vec![
                EventRecord {
                    seq: 0,
                    at_ns: 10,
                    kind: EventKind::Offload { proc: 0, task: 0 },
                },
                EventRecord {
                    seq: 1,
                    at_ns: 10,
                    kind: EventKind::CtxSwitch {
                        proc: 0,
                        reason: SwitchReason::Offload,
                        held_ns: 10,
                    },
                },
                EventRecord {
                    seq: 2,
                    at_ns: 25,
                    kind: EventKind::TaskStart {
                        proc: 0,
                        task: 0,
                        degree: 2,
                        team: vec![0, 1],
                    },
                },
                EventRecord {
                    seq: 3,
                    at_ns: 25,
                    kind: EventKind::Dma {
                        spe: 0,
                        element_bytes: vec![12 * 1024, 128],
                        local_addr: 0,
                        main_addr: 4096,
                    },
                },
                EventRecord {
                    seq: 4,
                    at_ns: 25,
                    kind: EventKind::Chunk {
                        task: 0,
                        loop_iters: 228,
                        start: 0,
                        len: 114,
                        worker: 0,
                    },
                },
                EventRecord {
                    seq: 5,
                    at_ns: 99,
                    kind: EventKind::DegreeDecision {
                        degree: 4,
                        waiting: 2,
                        n_spes: 8,
                        window: 8,
                        window_fill: 3,
                    },
                },
            ],
        }
    }

    #[test]
    fn json_round_trips_every_event_type() {
        let mut log = sample_log();
        log.events.extend([
            EventRecord {
                seq: 6,
                at_ns: 100,
                kind: EventKind::TaskEnd {
                    proc: 0,
                    task: 0,
                    team: vec![0, 1],
                },
            },
            EventRecord {
                seq: 7,
                at_ns: 100,
                kind: EventKind::MailboxWrite {
                    spe: 0,
                    mailbox: MailboxKind::OutboundInterrupt,
                    occupancy: 1,
                },
            },
            EventRecord {
                seq: 8,
                at_ns: 100,
                kind: EventKind::MailboxRead {
                    spe: 0,
                    mailbox: MailboxKind::OutboundInterrupt,
                    occupancy: 0,
                },
            },
            EventRecord {
                seq: 9,
                at_ns: 100,
                kind: EventKind::LsAlloc {
                    spe: 1,
                    bytes: 4096,
                    in_use: 4096,
                },
            },
            EventRecord {
                seq: 10,
                at_ns: 101,
                kind: EventKind::LsFree {
                    spe: 1,
                    bytes: 4096,
                    in_use: 0,
                },
            },
            EventRecord {
                seq: 11,
                at_ns: 102,
                kind: EventKind::CodeReload {
                    spe: 2,
                    stall_ns: 250_000,
                },
            },
            EventRecord {
                seq: 12,
                at_ns: 103,
                kind: EventKind::DmaComplete {
                    spe: 2,
                    bytes: 12 * 1024,
                    latency_ns: 1_337,
                },
            },
            EventRecord {
                seq: 13,
                at_ns: 104,
                kind: EventKind::Health {
                    alarm: "utilization_collapse".to_string(),
                    severity: "warning".to_string(),
                    detail: "U<=1 with degree 1 for 3 windows".to_string(),
                },
            },
            EventRecord {
                seq: 14,
                at_ns: 105,
                kind: EventKind::FaultInjected {
                    spe: 3,
                    task: 7,
                    fault: "spe_stall".to_string(),
                    attempt: 0,
                },
            },
            EventRecord {
                seq: 15,
                at_ns: 106,
                kind: EventKind::OffloadRetry { task: 7, attempt: 1, backoff_ns: 50_500 },
            },
            EventRecord {
                seq: 16,
                at_ns: 107,
                kind: EventKind::SpeQuarantined { spe: 3, faults: 3 },
            },
            EventRecord {
                seq: 17,
                at_ns: 108,
                kind: EventKind::SpeReadmitted { spe: 3 },
            },
            EventRecord {
                seq: 18,
                at_ns: 109,
                kind: EventKind::PpeFallback { proc: 0, task: 7, attempts: 4 },
            },
            EventRecord {
                seq: 19,
                at_ns: 110,
                kind: EventKind::GranularityVerdict {
                    kernel: "makenewz".to_string(),
                    offload: false,
                    throttled: true,
                    reprobe: false,
                },
            },
            EventRecord {
                seq: 20,
                at_ns: 111,
                kind: EventKind::JobSubmitted {
                    job: 0xfeed,
                    tenant: 1,
                    taxa: 16,
                    sites: 256,
                    bootstraps: 2,
                    deadline_ns: 5_000_000,
                    queue_depth: 3,
                    queue_cap: 8,
                },
            },
            EventRecord {
                seq: 21,
                at_ns: 112,
                kind: EventKind::JobStarted { job: 0xfeed, tenant: 1, attempt: 0 },
            },
            EventRecord {
                seq: 22,
                at_ns: 113,
                kind: EventKind::JobRetried {
                    job: 0xfeed,
                    tenant: 1,
                    attempt: 1,
                    backoff_ns: 1_000,
                },
            },
            EventRecord {
                seq: 23,
                at_ns: 114,
                kind: EventKind::JobStarted { job: 0xfeed, tenant: 1, attempt: 1 },
            },
            EventRecord {
                seq: 24,
                at_ns: 115,
                kind: EventKind::JobCompleted {
                    job: 0xfeed,
                    tenant: 1,
                    t_queue_ns: 2,
                    t_dispatch_ns: 0,
                    t_kernel_ns: 2,
                    t_reduce_ns: 0,
                },
            },
            EventRecord {
                seq: 25,
                at_ns: 115,
                kind: EventKind::JobRejected {
                    job: 0xbead,
                    tenant: 0,
                    queue_depth: 8,
                    queue_cap: 8,
                },
            },
            EventRecord {
                seq: 26,
                at_ns: 116,
                kind: EventKind::JobShed {
                    job: 0xdead,
                    tenant: 2,
                    deadline_ns: 1_000_000,
                },
            },
            EventRecord {
                seq: 27,
                at_ns: 117,
                kind: EventKind::JobPoisoned { job: 0xcafe, tenant: 0, attempts: 3 },
            },
        ]);
        log.fault_policy = Some("seed=1,stall=0.05,retries=3".to_string());
        log.tenant_weights = Some(vec![3, 1, 2]);
        let text = log.to_value().to_json_pretty();
        let back = RunLog::from_value(&minijson::parse(&text).unwrap()).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn default_valued_job_fields_are_omitted_from_json() {
        // Byte-identity contract: a run with no deadlines, no retries, and
        // equal weights must serialize exactly as it did before those
        // features existed, so the optional keys may not appear at all.
        let mut log = sample_log();
        log.events = vec![
            EventRecord {
                seq: 0,
                at_ns: 1,
                kind: EventKind::JobSubmitted {
                    job: 1,
                    tenant: 0,
                    taxa: 16,
                    sites: 256,
                    bootstraps: 1,
                    deadline_ns: 0,
                    queue_depth: 1,
                    queue_cap: 8,
                },
            },
            EventRecord {
                seq: 1,
                at_ns: 2,
                kind: EventKind::JobStarted { job: 1, tenant: 0, attempt: 0 },
            },
        ];
        let text = log.to_value().to_json_pretty();
        assert!(!text.contains("deadline_ns"), "zero deadline must not serialize");
        assert!(!text.contains("attempt"), "attempt 0 must not serialize");
        assert!(!text.contains("tenant_weights"), "equal weights must not serialize");
        let back = RunLog::from_value(&minijson::parse(&text).unwrap()).unwrap();
        assert_eq!(back, log, "omitted fields read back as their defaults");
    }

    #[test]
    fn absent_fault_policy_reads_back_as_none() {
        let log = sample_log();
        let text = log.to_value().to_json_pretty();
        let back = RunLog::from_value(&minijson::parse(&text).unwrap()).unwrap();
        assert_eq!(back.fault_policy, None);
    }

    #[test]
    fn scheduler_tags_round_trip() {
        for tag in [
            SchedulerTag::Edtlp,
            SchedulerTag::Linux,
            SchedulerTag::StaticHybrid(4),
            SchedulerTag::Mgps,
        ] {
            assert_eq!(SchedulerTag::from_string(&tag.as_string()), Some(tag));
        }
        assert_eq!(SchedulerTag::from_string("nope"), None);
    }

    #[test]
    fn mailbox_capacities_match_hardware() {
        assert_eq!(MailboxKind::Inbound.capacity(), 4);
        assert_eq!(MailboxKind::Outbound.capacity(), 1);
        assert_eq!(MailboxKind::OutboundInterrupt.capacity(), 1);
    }
}
