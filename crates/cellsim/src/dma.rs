//! DMA transfer legality and latency (§4).
//!
//! The MFC accepts transfers of 1, 2, 4, 8 bytes or multiples of 16 bytes,
//! up to 16 KB per request; larger moves use DMA lists of up to 2,048
//! elements. Addresses must be 16-byte (128-bit) aligned. Latency is
//! modeled as a fixed startup plus bytes over bandwidth, inflated by EIB
//! contention (see [`crate::eib`]).

use des::time::SimDuration;

use crate::params::DmaParams;

/// Why a DMA request was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaError {
    /// Size is not 1, 2, 4, 8, or a multiple of 16 bytes.
    BadSize(usize),
    /// Size exceeds the 16 KB single-transfer cap.
    TooLarge(usize),
    /// Source or destination address misaligned.
    Misaligned(usize),
    /// DMA list longer than 2,048 elements.
    ListTooLong(usize),
    /// Empty transfer or empty list.
    Empty,
}

impl std::fmt::Display for DmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DmaError::BadSize(s) => write!(f, "DMA size {s} is not 1,2,4,8 or a multiple of 16"),
            DmaError::TooLarge(s) => write!(f, "DMA size {s} exceeds the 16 KB transfer cap"),
            DmaError::Misaligned(a) => write!(f, "address {a:#x} violates 128-bit alignment"),
            DmaError::ListTooLong(n) => write!(f, "DMA list of {n} elements exceeds 2048"),
            DmaError::Empty => f.write_str("empty DMA request"),
        }
    }
}

impl std::error::Error for DmaError {}

/// One validated DMA transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaRequest {
    /// Bytes moved.
    pub bytes: usize,
}

impl DmaRequest {
    /// Validate a single transfer of `bytes` between the given addresses.
    ///
    /// # Errors
    /// Any violation of the MFC's size/alignment rules.
    pub fn new(
        params: &DmaParams,
        bytes: usize,
        local_addr: usize,
        main_addr: usize,
    ) -> Result<DmaRequest, DmaError> {
        if bytes == 0 {
            return Err(DmaError::Empty);
        }
        if bytes > params.max_transfer_bytes {
            return Err(DmaError::TooLarge(bytes));
        }
        let size_ok = matches!(bytes, 1 | 2 | 4 | 8) || bytes.is_multiple_of(16);
        if !size_ok {
            return Err(DmaError::BadSize(bytes));
        }
        if !local_addr.is_multiple_of(params.alignment) {
            return Err(DmaError::Misaligned(local_addr));
        }
        if !main_addr.is_multiple_of(params.alignment) {
            return Err(DmaError::Misaligned(main_addr));
        }
        Ok(DmaRequest { bytes })
    }

    /// Uncontended transfer latency under `params`.
    pub fn base_latency(&self, params: &DmaParams) -> SimDuration {
        let xfer = self.bytes as f64 / params.spe_bandwidth;
        params.startup + SimDuration::from_secs_f64(xfer)
    }
}

/// A DMA list: how the runtime moves more than 16 KB in one logical
/// operation (§4: up to 2,048 elements of up to 16 KB each).
#[derive(Debug, Clone)]
pub struct DmaList {
    elements: Vec<DmaRequest>,
}

impl DmaList {
    /// Split a transfer of `total_bytes` into maximal 16 KB list elements
    /// (the tail padded up to the next 16-byte multiple, as an aligned
    /// buffer would be).
    ///
    /// # Errors
    /// Fails if the resulting list would exceed 2,048 elements or the
    /// transfer is empty/misaligned.
    pub fn for_bytes(
        params: &DmaParams,
        total_bytes: usize,
        local_addr: usize,
        main_addr: usize,
    ) -> Result<DmaList, DmaError> {
        if total_bytes == 0 {
            return Err(DmaError::Empty);
        }
        let padded = total_bytes.div_ceil(16) * 16;
        let n_full = padded / params.max_transfer_bytes;
        let tail = padded % params.max_transfer_bytes;
        let n = n_full + usize::from(tail > 0);
        if n > params.max_list_len {
            return Err(DmaError::ListTooLong(n));
        }
        let mut elements = Vec::with_capacity(n);
        let mut off = 0usize;
        for _ in 0..n_full {
            elements.push(DmaRequest::new(params, params.max_transfer_bytes, local_addr + off, main_addr + off)?);
            off += params.max_transfer_bytes;
        }
        if tail > 0 {
            elements.push(DmaRequest::new(params, tail, local_addr + off, main_addr + off)?);
        }
        Ok(DmaList { elements })
    }

    /// The list's elements.
    pub fn elements(&self) -> &[DmaRequest] {
        &self.elements
    }

    /// Total bytes moved (after padding).
    pub fn total_bytes(&self) -> usize {
        self.elements.iter().map(|e| e.bytes).sum()
    }

    /// Uncontended latency: startup once, elements pipelined at bandwidth.
    pub fn base_latency(&self, params: &DmaParams) -> SimDuration {
        let xfer = self.total_bytes() as f64 / params.spe_bandwidth;
        params.startup + SimDuration::from_secs_f64(xfer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> DmaParams {
        DmaParams::default()
    }

    #[test]
    fn legal_sizes_accepted() {
        for bytes in [1, 2, 4, 8, 16, 32, 128, 4096, 16 * 1024] {
            DmaRequest::new(&p(), bytes, 0, 0).unwrap_or_else(|e| panic!("{bytes}: {e}"));
        }
    }

    #[test]
    fn illegal_sizes_rejected() {
        for bytes in [3, 5, 6, 7, 9, 15, 17, 100] {
            assert_eq!(DmaRequest::new(&p(), bytes, 0, 0), Err(DmaError::BadSize(bytes)), "{bytes}");
        }
        assert_eq!(
            DmaRequest::new(&p(), 16 * 1024 + 16, 0, 0),
            Err(DmaError::TooLarge(16 * 1024 + 16))
        );
        assert_eq!(DmaRequest::new(&p(), 0, 0, 0), Err(DmaError::Empty));
    }

    #[test]
    fn misalignment_rejected() {
        assert_eq!(DmaRequest::new(&p(), 16, 8, 0), Err(DmaError::Misaligned(8)));
        assert_eq!(DmaRequest::new(&p(), 16, 0, 24), Err(DmaError::Misaligned(24)));
        assert!(DmaRequest::new(&p(), 16, 32, 48).is_ok());
    }

    #[test]
    fn latency_scales_with_size() {
        let small = DmaRequest::new(&p(), 16, 0, 0).unwrap().base_latency(&p());
        let large = DmaRequest::new(&p(), 16 * 1024, 0, 0).unwrap().base_latency(&p());
        assert!(large > small);
        // 16 KB at 25.6 GB/s = 640 ns, plus 300 ns startup.
        assert_eq!(large.as_nanos(), 300 + 640);
    }

    #[test]
    fn list_splits_large_transfers() {
        let list = DmaList::for_bytes(&p(), 100 * 1024, 0, 0).unwrap();
        assert_eq!(list.elements().len(), 7); // 6×16KB + 4KB tail
        assert_eq!(list.total_bytes(), 100 * 1024);
        assert_eq!(list.elements()[6].bytes, 4 * 1024);
    }

    #[test]
    fn list_pads_odd_sizes_to_sixteen() {
        let list = DmaList::for_bytes(&p(), 100, 0, 0).unwrap();
        assert_eq!(list.total_bytes(), 112);
        assert_eq!(list.elements().len(), 1);
    }

    #[test]
    fn list_length_cap_enforced() {
        // 2048 × 16 KB = 32 MB is the largest legal list.
        let max_bytes = 2048 * 16 * 1024;
        assert!(DmaList::for_bytes(&p(), max_bytes, 0, 0).is_ok());
        match DmaList::for_bytes(&p(), max_bytes + 16, 0, 0) {
            Err(DmaError::ListTooLong(2049)) => {}
            other => panic!("expected ListTooLong(2049), got {other:?}"),
        }
    }

    #[test]
    fn error_display() {
        assert!(DmaError::BadSize(7).to_string().contains("7"));
        assert!(DmaError::Misaligned(8).to_string().contains("0x8"));
    }
}
