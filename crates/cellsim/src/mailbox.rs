//! PPE↔SPE mailboxes (§4).
//!
//! Each SPU has a 4-entry inbound mailbox (PPE → SPU), a 1-entry outbound
//! mailbox, and a 1-entry outbound-interrupt mailbox (SPU → PPE). Writes
//! to a full mailbox stall the writer; reads from an empty mailbox stall
//! the reader. The machine model signals task starts through the inbound
//! mailbox and completions through the outbound-interrupt mailbox, so the
//! occupancy rules of the real hardware are enforced on every off-load.

use std::collections::VecDeque;

/// A bounded mailbox of 32-bit messages.
#[derive(Debug, Clone)]
pub struct Mailbox {
    capacity: usize,
    queue: VecDeque<u32>,
    writes: u64,
    reads: u64,
    write_stalls: u64,
    read_stalls: u64,
}

impl Mailbox {
    /// A mailbox holding at most `capacity` undelivered messages.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Mailbox {
        assert!(capacity > 0, "mailbox capacity must be positive");
        Mailbox {
            capacity,
            queue: VecDeque::with_capacity(capacity),
            writes: 0,
            reads: 0,
            write_stalls: 0,
            read_stalls: 0,
        }
    }

    /// Undelivered messages.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the mailbox is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether a write would stall.
    pub fn is_full(&self) -> bool {
        self.queue.len() == self.capacity
    }

    /// Post `msg`. Returns `false` (and counts a stall) when full.
    pub fn write(&mut self, msg: u32) -> bool {
        if self.is_full() {
            self.write_stalls += 1;
            return false;
        }
        self.queue.push_back(msg);
        self.writes += 1;
        true
    }

    /// Take the oldest message; `None` (and a stall) when empty.
    pub fn read(&mut self) -> Option<u32> {
        match self.queue.pop_front() {
            Some(m) => {
                self.reads += 1;
                Some(m)
            }
            None => {
                self.read_stalls += 1;
                None
            }
        }
    }

    /// Successful writes.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Successful reads.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Writes refused because the mailbox was full.
    pub fn write_stalls(&self) -> u64 {
        self.write_stalls
    }

    /// Reads attempted while empty.
    pub fn read_stalls(&self) -> u64 {
        self.read_stalls
    }
}

/// The three mailboxes of one SPU (§4 capacities).
#[derive(Debug, Clone)]
pub struct SpuMailboxes {
    /// PPE → SPU commands (4 entries).
    pub inbound: Mailbox,
    /// SPU → PPE data (1 entry, polled).
    pub outbound: Mailbox,
    /// SPU → PPE completion interrupts (1 entry).
    pub outbound_interrupt: Mailbox,
}

impl Default for SpuMailboxes {
    fn default() -> Self {
        SpuMailboxes {
            inbound: Mailbox::new(4),
            outbound: Mailbox::new(1),
            outbound_interrupt: Mailbox::new(1),
        }
    }
}

impl SpuMailboxes {
    /// Signal a task start from the PPE (message = task id low bits).
    /// Returns `false` on a full inbound mailbox (the PPE would stall).
    pub fn signal_start(&mut self, task: u32) -> bool {
        self.inbound.write(task)
    }

    /// The SPU consumes its start command.
    pub fn take_start(&mut self) -> Option<u32> {
        self.inbound.read()
    }

    /// The SPU posts completion; `false` if the previous completion was
    /// not yet collected.
    pub fn signal_complete(&mut self, task: u32) -> bool {
        self.outbound_interrupt.write(task)
    }

    /// The PPE collects a completion.
    pub fn collect_complete(&mut self) -> Option<u32> {
        self.outbound_interrupt.read()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_ordering() {
        let mut m = Mailbox::new(4);
        for v in [1u32, 2, 3] {
            assert!(m.write(v));
        }
        assert_eq!(m.read(), Some(1));
        assert_eq!(m.read(), Some(2));
        assert!(m.write(4));
        assert_eq!(m.read(), Some(3));
        assert_eq!(m.read(), Some(4));
        assert_eq!(m.read(), None);
        assert_eq!(m.reads(), 4);
        assert_eq!(m.read_stalls(), 1);
    }

    #[test]
    fn capacity_enforced_with_stall_accounting() {
        let mut m = Mailbox::new(4);
        for v in 0..4 {
            assert!(m.write(v));
        }
        assert!(m.is_full());
        assert!(!m.write(99), "5th write to a 4-entry inbound mailbox stalls");
        assert_eq!(m.write_stalls(), 1);
        assert_eq!(m.len(), 4);
        m.read();
        assert!(m.write(99));
    }

    #[test]
    fn spu_mailbox_protocol_round_trip() {
        let mut mb = SpuMailboxes::default();
        assert!(mb.signal_start(7));
        assert_eq!(mb.take_start(), Some(7));
        assert!(mb.signal_complete(7));
        // A second completion before collection stalls (1-entry mailbox).
        assert!(!mb.signal_complete(8));
        assert_eq!(mb.collect_complete(), Some(7));
        assert!(mb.signal_complete(8));
        assert_eq!(mb.collect_complete(), Some(8));
    }

    #[test]
    fn inbound_holds_four_pending_commands() {
        let mut mb = SpuMailboxes::default();
        for t in 0..4 {
            assert!(mb.signal_start(t), "command {t}");
        }
        assert!(!mb.signal_start(4), "hardware inbound mailbox has 4 entries");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Mailbox::new(0);
    }
}
