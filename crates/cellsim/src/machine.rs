//! The Cell machine model: worker processes, PPE contexts, SPEs, and the
//! scheduling policies, assembled into a discrete-event simulation.
//!
//! One simulation run executes `n_bootstraps` independent bootstraps
//! (one per worker process, as in the paper's experiments: "constant
//! problem size (one bootstrap) per MPI process") under one of the four
//! scheduling schemes, and reports the makespan plus utilization and
//! overhead statistics.
//!
//! The event graph per process cycles through:
//!
//! ```text
//! PPE work gap ──► off-load request ──► [wait for SPE(s)] ──► task runs on
//!   ▲                                                        SPE team
//!   └─────────── re-acquire PPE context ◄── task complete ◄──┘
//! ```
//!
//! with the scheduler deciding who holds the two PPE contexts at each step
//! (voluntary switch on off-load under EDTLP; 10 ms quantum rotation under
//! the Linux baseline) and how many SPEs each task's loops get (1 under
//! EDTLP; fixed under the static hybrid; adaptive under MGPS).

use std::collections::VecDeque;

use des::prelude::*;
use mgps_runtime::faults::FaultPlan;
use mgps_runtime::policy::{
    partition, Directive, MgpsConfig, MgpsScheduler, PpePolicyKind, PpeScheduler, ProcId,
    SchedulerKind, TaskId,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::dma::DmaList;
use crate::eib::Eib;
use crate::event::{EventKind, EventRecord, MailboxKind, RunLog, SchedulerTag, SwitchReason};
use crate::mailbox::SpuMailboxes;
use crate::params::CellParams;
use crate::spe::SpeState;
use crate::workload::{KernelProfile, RaxmlWorkload};

/// User-level scheduler overheads that are properties of the runtime, not
/// the hardware (calibration knobs; see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy)]
pub struct SchedOverheads {
    /// Cache/TLB pollution cost added to the first PPE work section after a
    /// context switch across address spaces (§5.2 names this explicitly).
    pub pollution: SimDuration,
    /// Per-resident-process polling cost the user-level scheduler pays on
    /// every off-load (scanning MPI process queues).
    pub poll_per_proc: SimDuration,
}

impl Default for SchedOverheads {
    fn default() -> Self {
        SchedOverheads {
            pollution: SimDuration::from_micros(6),
            poll_per_proc: SimDuration::from_nanos(1_900),
        }
    }
}

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Machine parameters.
    pub params: CellParams,
    /// Workload parameters.
    pub workload: RaxmlWorkload,
    /// Scheduling scheme.
    pub scheduler: SchedulerKind,
    /// Kernel optimization level (§5.1 ablation).
    pub profile: KernelProfile,
    /// Worker processes, one bootstrap each.
    pub n_bootstraps: usize,
    /// RNG seed (runs are bit-deterministic in this).
    pub seed: u64,
    /// Runtime overhead knobs.
    pub overheads: SchedOverheads,
    /// Override the MGPS policy parameters (window length, U threshold).
    /// `None` uses the paper's defaults for the machine's SPE count. Only
    /// meaningful with [`SchedulerKind::Mgps`].
    pub mgps_config: Option<MgpsConfig>,
    /// Record a per-SPE task timeline (Figure 2-style traces). Costs
    /// memory proportional to the task count; off by default.
    pub record_timeline: bool,
    /// Record the structured [`RunLog`] consumed by `mgps-analysis`
    /// (task/DMA/mailbox/local-store/degree events). Costs memory
    /// proportional to the event count; off by default.
    pub record_events: bool,
    /// Seeded fault-injection plan (inert by default). When armed, grants
    /// can be sabotaged and the recovery machinery (watchdog reclaim,
    /// bounded retry with declared backoff, SPE quarantine with
    /// re-admission probes, PPE fallback) engages; the canonical spec is
    /// recorded in the RunLog header for the checker.
    pub faults: FaultPlan,
    /// Emit a [`EventKind::GranularityVerdict`] per granted task, replaying
    /// the §5.2 off-load inequality against the drawn kernel timings (the
    /// PPE side uses the dual-version slowdown the fallback kernels pay).
    /// Off by default so existing event streams and replay digests are
    /// unchanged; the granularity atlas turns it on.
    pub granularity_verdicts: bool,
}

impl SimConfig {
    /// A single-Cell run of `n_bootstraps` under `scheduler`, with the
    /// workload reduced by `scale` for simulation speed.
    pub fn cell_42sc(scheduler: SchedulerKind, n_bootstraps: usize, scale: usize) -> SimConfig {
        SimConfig {
            params: CellParams::single(),
            workload: RaxmlWorkload::paper_42sc().scaled(scale),
            scheduler,
            profile: KernelProfile::Optimized,
            n_bootstraps,
            seed: 0x5eed,
            overheads: SchedOverheads::default(),
            mgps_config: None,
            record_timeline: false,
            record_events: false,
            faults: FaultPlan::inert(),
            granularity_verdicts: false,
        }
    }
}

/// Slowdown of the scalar PPE fallback copy relative to the vectorized SPE
/// version (the paper's dual-version functions; matches the gap the native
/// runtime's granularity tests observe).
const PPE_FALLBACK_SLOWDOWN: f64 = 3.0;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Computing on the PPE (holds a context).
    PpeWork,
    /// Off-load issued, waiting for SPEs.
    WaitingSpe,
    /// Task running on SPE(s).
    OnSpe,
    /// Has work to continue but waits for a PPE context.
    Ready,
    /// Bootstrap finished.
    Done,
}

#[derive(Debug)]
struct ProcState {
    cell: usize,
    /// When this process finished its bootstrap (None while running).
    finished: Option<SimTime>,
    /// Index into `CellMachine::ppes`: the run queue this process lives on.
    /// EDTLP has one user-level scheduler per Cell (it migrates processes
    /// freely between the two contexts); the Linux baseline has one run
    /// queue per hardware context (the 2.6 O(1) scheduler does not migrate
    /// running processes between SMT siblings).
    ppe: usize,
    remaining: usize,
    phase: Phase,
    /// Task id of the off-load in flight (valid from off-load request
    /// until completion).
    current_task: u64,
    /// Off-load attempt counter for the task in flight: 0 for the original
    /// off-load, incremented per watchdog-driven retry.
    attempt: u32,
    /// Off-load request timestamp of the task in flight.
    task_started_ns: u64,
    /// When this process last acquired a PPE context.
    ctx_acquired_ns: u64,
    /// Next PPE section pays the pollution penalty (fresh context switch).
    polluted: bool,
    /// Completed a task while off-context (Linux): continue on dispatch.
    pending_resume: bool,
    /// Whether the process has been started. The static hybrid admits only
    /// `n_spes / spes_per_loop` processes at a time ("the PPEs can execute
    /// four or two concurrent bootstraps respectively, using EDTLP", §5.4);
    /// the rest start as slots free up.
    admitted: bool,
}

/// The simulation model.
pub struct CellMachine {
    /// Concurrent-process admission cap (static hybrid waves); `usize::MAX`
    /// for the other schedulers.
    admission_limit: usize,
    /// Next process index not yet started.
    next_unstarted: usize,
    cfg: SimConfig,
    spes: Vec<SpeState>,
    ppes: Vec<PpeScheduler>,
    procs: Vec<ProcState>,
    /// Effective (compression-adjusted) Linux quantum, ns.
    quantum_ns: u64,
    /// FIFO of processes waiting for SPEs.
    request_queue: VecDeque<usize>,
    mgps: Option<MgpsScheduler>,
    current_degree: usize,
    image_epoch: u64,
    eib: Eib,
    mailboxes: Vec<SpuMailboxes>,
    /// (spe, proc, start, end) per executed task, when enabled.
    timeline: Vec<TimelineEntry>,
    /// Structured event log, when enabled.
    events: Vec<EventRecord>,
    /// Local-store bytes reserved per SPE (input/output task buffers).
    ls_in_use: Vec<usize>,
    rng: SmallRng,
    next_task: u64,
    active_procs: usize,
    finish: Option<SimTime>,
    // statistics
    tasks_completed: u64,
    llp_switches: u64,
    dma_fallbacks: u64,
    // fault plane
    /// Per-SPE quarantine flags (true = out of service).
    quarantined: Vec<bool>,
    /// Per-SPE consecutive-fault counters; a clean completion resets the
    /// whole team's counters.
    consec_faults: Vec<u32>,
    /// `tasks_completed` at the moment each SPE was quarantined; the
    /// re-admission probe fires `readmit_period` completions later.
    quarantine_marks: Vec<u64>,
    /// Minimum drawn task duration so far — the watchdog's timing history
    /// (pure sim-time arithmetic, no wall clock).
    min_task_ns: Option<u64>,
    fault_stats: FaultReport,
}

impl CellMachine {
    fn new(cfg: SimConfig) -> CellMachine {
        assert!(cfg.n_bootstraps > 0, "need at least one bootstrap");
        let n_spes = cfg.params.n_spes();
        // Time-compressed workloads must compress the quantum too, or a
        // whole (scaled) bootstrap fits inside one quantum and the Linux
        // baseline loses its wave structure. Makespan is insensitive to
        // the quantum as long as cycle ≪ quantum ≪ bootstrap (a context
        // with k processes takes k·T whether it interleaves or not), so
        // clamp to keep rotation overhead negligible.
        let quantum_ns = ((cfg.params.linux_quantum.as_nanos() as f64
            / cfg.workload.scale_factor()) as u64)
            .max(SimDuration::from_millis(1).as_nanos());
        let ppe_kind = match cfg.scheduler {
            SchedulerKind::LinuxLike => PpePolicyKind::LinuxLike { quantum_ns },
            _ => PpePolicyKind::Edtlp,
        };
        let is_linux = matches!(cfg.scheduler, SchedulerKind::LinuxLike);
        let ppes: Vec<PpeScheduler> = if is_linux {
            // One run queue per hardware context (no sibling migration).
            (0..cfg.params.n_cells * cfg.params.ppe_contexts_per_cell)
                .map(|_| PpeScheduler::new(ppe_kind, 1, cfg.params.ctx_switch.as_nanos()))
                .collect()
        } else {
            (0..cfg.params.n_cells)
                .map(|_| {
                    PpeScheduler::new(
                        ppe_kind,
                        cfg.params.ppe_contexts_per_cell,
                        cfg.params.ctx_switch.as_nanos(),
                    )
                })
                .collect()
        };
        let (mgps, degree) = match cfg.scheduler {
            SchedulerKind::Mgps => {
                let mc = cfg.mgps_config.unwrap_or_else(|| MgpsConfig::for_spes(n_spes));
                assert!(mc.n_spes == n_spes, "MGPS config must match the machine's SPE count");
                (Some(MgpsScheduler::new(mc)), 1)
            }
            SchedulerKind::StaticHybrid { spes_per_loop } => {
                assert!(
                    (1..=n_spes).contains(&spes_per_loop),
                    "static hybrid team size must fit the machine"
                );
                (None, spes_per_loop)
            }
            _ => (None, 1),
        };
        let admission_limit = match cfg.scheduler {
            SchedulerKind::StaticHybrid { spes_per_loop } => {
                (n_spes / spes_per_loop).max(1)
            }
            _ => usize::MAX,
        };
        CellMachine {
            admission_limit,
            next_unstarted: 0,
            spes: (0..n_spes).map(|_| SpeState::new(SimTime::ZERO)).collect(),
            ppes,
            procs: (0..cfg.n_bootstraps)
                .map(|i| ProcState {
                    cell: i % cfg.params.n_cells,
                    finished: None,
                    ppe: if is_linux {
                        // Balance processes across all hardware contexts of
                        // their cell, round-robin (the load balancer places
                        // wakeups evenly; they then stick).
                        let cell = i % cfg.params.n_cells;
                        let k = i / cfg.params.n_cells;
                        cell * cfg.params.ppe_contexts_per_cell
                            + k % cfg.params.ppe_contexts_per_cell
                    } else {
                        i % cfg.params.n_cells
                    },
                    remaining: cfg.workload.tasks_per_bootstrap,
                    phase: Phase::Ready,
                    current_task: 0,
                    attempt: 0,
                    task_started_ns: 0,
                    ctx_acquired_ns: 0,
                    polluted: false,
                    pending_resume: false,
                    admitted: false,
                })
                .collect(),
            quantum_ns,
            request_queue: VecDeque::new(),
            mgps,
            current_degree: degree,
            image_epoch: 1,
            eib: Eib::new(cfg.params.dma),
            mailboxes: (0..n_spes).map(|_| SpuMailboxes::default()).collect(),
            timeline: Vec::new(),
            events: Vec::new(),
            ls_in_use: vec![0; n_spes],
            rng: SmallRng::seed_from_u64(cfg.seed),
            next_task: 0,
            active_procs: cfg.n_bootstraps,
            finish: None,
            tasks_completed: 0,
            llp_switches: 0,
            dma_fallbacks: 0,
            quarantined: vec![false; n_spes],
            consec_faults: vec![0; n_spes],
            quarantine_marks: vec![0; n_spes],
            min_task_ns: None,
            fault_stats: FaultReport::default(),
            cfg,
        }
    }

    /// Idle SPEs available for a grant (quarantined SPEs are out of
    /// service and never count).
    fn idle_spes(&self) -> usize {
        self.spes
            .iter()
            .zip(&self.quarantined)
            .filter(|(s, &q)| !s.is_busy() && !q)
            .count()
    }

    /// SPEs currently in service (not quarantined).
    fn healthy_spes(&self) -> usize {
        self.quarantined.iter().filter(|&&q| !q).count()
    }

    /// Append an event record, when structured logging is enabled.
    fn emit(&mut self, at_ns: u64, kind: EventKind) {
        if !self.cfg.record_events {
            return;
        }
        let seq = self.events.len() as u64;
        self.events.push(EventRecord { seq, at_ns, kind });
    }

    fn scheduler_tag(&self) -> SchedulerTag {
        match self.cfg.scheduler {
            SchedulerKind::Edtlp => SchedulerTag::Edtlp,
            SchedulerKind::LinuxLike => SchedulerTag::Linux,
            SchedulerKind::StaticHybrid { spes_per_loop } => {
                SchedulerTag::StaticHybrid(spes_per_loop)
            }
            SchedulerKind::Mgps => SchedulerTag::Mgps,
        }
    }

    fn is_linux(&self) -> bool {
        self.cfg.scheduler == SchedulerKind::LinuxLike
    }

    /// The loop degree a grant issued now would use. Clamped to the
    /// healthy-SPE count so fixed-degree schedulers (static hybrid) cannot
    /// deadlock waiting for a team quarantine has made impossible.
    fn grant_degree(&self) -> usize {
        let healthy = self.healthy_spes().max(1);
        self.current_degree.clamp(1, self.spes.len()).min(healthy)
    }

    /// Count of processes on `cell`'s PPE (either SMT context) currently in
    /// real PPE work, excluding `me` (for the SMT contention check).
    fn ppe_working_others(&self, cell: usize, me: usize) -> usize {
        self.procs
            .iter()
            .enumerate()
            .filter(|&(i, pr)| {
                i != me
                    && pr.cell == cell
                    && pr.phase == Phase::PpeWork
                    && self.ppes[pr.ppe].is_running(ProcId(i))
            })
            .count()
    }

}

/// One task execution on one SPE (Figure 2-style trace data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineEntry {
    /// The SPE that executed (part of) the task.
    pub spe: usize,
    /// The worker process that owned the task.
    pub proc: usize,
    /// Task start time.
    pub start: SimTime,
    /// Task end time.
    pub end: SimTime,
}

/// Fault-plane outcome counters for one run (all zero when no plan was
/// armed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Faults injected (sabotaged grant attempts).
    pub injected: u64,
    /// Off-load retries issued after watchdog reclaim.
    pub retries: u64,
    /// Tasks completed by the scalar PPE fallback kernel copy.
    pub ppe_fallbacks: u64,
    /// SPE quarantine entries.
    pub quarantines: u64,
    /// Quarantine re-admissions.
    pub readmissions: u64,
    /// Tasks lost outright (retries exhausted with the fallback disabled).
    pub lost: u64,
}

/// Summary of one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Simulated makespan of the (possibly scaled) workload.
    pub makespan: SimDuration,
    /// Makespan extrapolated to the faithful workload, seconds.
    pub paper_scale_secs: f64,
    /// Per-SPE busy fraction over the run.
    pub spe_utilization: Vec<f64>,
    /// Mean SPE busy fraction.
    pub mean_spe_utilization: f64,
    /// PPE context switches (all PPEs).
    pub context_switches: u64,
    /// Off-loaded tasks completed.
    pub tasks_completed: u64,
    /// Code-image reloads paid by SPEs.
    pub code_reloads: u64,
    /// LLP activation/deactivation transitions (MGPS only).
    pub llp_switches: u64,
    /// MGPS counters `(evaluations, activations, deactivations)`.
    pub mgps_counters: Option<(u64, u64, u64)>,
    /// Loop degree in force when the run ended.
    pub final_degree: usize,
    /// Total bytes moved over the EIB.
    pub eib_bytes: u64,
    /// Peak concurrent EIB requests.
    pub eib_peak_outstanding: usize,
    /// DMA issues that hit the outstanding-request cap.
    pub dma_fallbacks: u64,
    /// PPE↔SPE mailbox messages exchanged (starts + completions).
    pub mailbox_messages: u64,
    /// Per-SPE task timeline (empty unless `record_timeline` was set).
    pub timeline: Vec<TimelineEntry>,
    /// Structured event log (`None` unless `record_events` was set).
    pub run_log: Option<RunLog>,
    /// Completion time of each worker process (bootstrap), in process
    /// order — exposes the Linux baseline's wave structure directly.
    pub proc_finish: Vec<SimDuration>,
    /// Fault-plane counters (all zero when no plan was armed).
    pub faults: FaultReport,
    /// Whether some bootstrap failed to complete — possible only under a
    /// lethal fault plan (fallback disabled and retries exhausted, or an
    /// all-quarantined machine with no fallback). Unfaulted runs always
    /// finish. Maps to CLI exit code 5.
    pub unrecovered: bool,
}

/// Run one simulation to completion.
pub fn run(cfg: SimConfig) -> RunReport {
    let scale = cfg.workload.scale_factor();
    let machine = CellMachine::new(cfg);
    let mut sim = Sim::new(machine);
    sim.schedule_at(SimTime::ZERO, start);
    sim.run();
    let now = sim.now();
    let m = sim.model();
    let makespan_time = match m.finish {
        Some(t) => t,
        None => {
            // Only a lethal fault plan can strand a bootstrap; anything
            // else ending early is a simulator bug.
            assert!(
                m.cfg.faults.armed(),
                "simulation ended without finishing all bootstraps"
            );
            now
        }
    };
    let makespan = makespan_time.since(SimTime::ZERO);
    let utils: Vec<f64> = m.spes.iter().map(|s| s.utilization(makespan_time)).collect();
    let mean = utils.iter().sum::<f64>() / utils.len() as f64;
    RunReport {
        makespan,
        paper_scale_secs: makespan.as_secs_f64() * scale,
        mean_spe_utilization: mean,
        spe_utilization: utils,
        context_switches: m.ppes.iter().map(|p| p.switches()).sum(),
        tasks_completed: m.tasks_completed,
        code_reloads: m.spes.iter().map(|s| s.reloads()).sum(),
        llp_switches: m.llp_switches,
        mgps_counters: m
            .mgps
            .as_ref()
            .map(|s| (s.evaluations(), s.activations(), s.deactivations())),
        final_degree: m.current_degree,
        eib_bytes: m.eib.total_bytes(),
        eib_peak_outstanding: m.eib.peak_outstanding(),
        dma_fallbacks: m.dma_fallbacks,
        mailbox_messages: m
            .mailboxes
            .iter()
            .map(|mb| mb.inbound.writes() + mb.outbound_interrupt.writes())
            .sum(),
        timeline: m.timeline.clone(),
        run_log: if m.cfg.record_events {
            Some(RunLog {
                scheduler: m.scheduler_tag(),
                n_spes: m.spes.len(),
                quantum_ns: m.quantum_ns,
                seed: m.cfg.seed,
                local_store_bytes: m.cfg.params.local_store_bytes,
                loop_iters: m.cfg.workload.loop_iters,
                mgps_window: m.mgps.as_ref().map(|s| s.config().window),
                fault_policy: if m.cfg.faults.armed() {
                    Some(m.cfg.faults.to_spec())
                } else {
                    None
                },
                tenant_weights: None,
                events: m.events.clone(),
            })
        } else {
            None
        },
        proc_finish: m
            .procs
            .iter()
            .map(|p| p.finished.unwrap_or(makespan_time).since(SimTime::ZERO))
            .collect(),
        faults: m.fault_stats,
        unrecovered: m.finish.is_none(),
    }
}

type S = Sim<CellMachine>;

fn start(sim: &mut S) {
    let n = sim.model().procs.len().min(sim.model().admission_limit);
    for _ in 0..n {
        admit_next_proc(sim);
    }
}

/// Start the next not-yet-started process, if any.
fn admit_next_proc(sim: &mut S) {
    let p = sim.model().next_unstarted;
    if p >= sim.model().procs.len() {
        return;
    }
    sim.model_mut().next_unstarted += 1;
    sim.model_mut().procs[p].admitted = true;
    let ppe = sim.model().procs[p].ppe;
    let dispatched = sim.model_mut().ppes[ppe].admit(ProcId(p));
    if dispatched.is_some() {
        let now = sim.now().as_nanos();
        sim.model_mut().procs[p].ctx_acquired_ns = now;
        sim.schedule_now(move |sim| continue_proc(sim, p));
    }
    // Queued processes are dispatched as contexts free up.
}

/// `p` holds a PPE context and starts its next cycle (or exits).
fn continue_proc(sim: &mut S, p: usize) {
    debug_assert!(sim.model().ppes[sim.model().procs[p].ppe].is_running(ProcId(p)));
    if sim.model().procs[p].remaining == 0 {
        finish_proc(sim, p);
        return;
    }
    // Draw the PPE work gap, inflated by SMT contention, scheduler polling
    // over resident processes, and (once) post-switch cache pollution.
    let cell = sim.model().procs[p].cell;
    let gap = {
        let smt_busy = sim.model().ppe_working_others(cell, p) >= 1;
        let polled = if sim.model().is_linux() {
            // The kernel scheduler does no user-level queue polling.
            0
        } else {
            // The EDTLP scheduler scans the request queues of every other
            // live MPI process on this Cell at each scheduling event. The
            // cost saturates at the SPE count: the scheduler only tracks as
            // many runnable candidates as there are SPEs to feed.
            sim.model()
                .procs
                .iter()
                .filter(|pr| pr.cell == cell && pr.phase != Phase::Done && pr.admitted)
                .count()
                .saturating_sub(1)
                .min(sim.model().cfg.params.spes_per_cell - 1)
        };
        let m = sim.model_mut();
        let mut gap = m.cfg.workload.draw_ppe_gap(&mut m.rng);
        if smt_busy {
            gap = gap.mul_f64(m.cfg.params.smt_slowdown);
        }
        gap += m.cfg.overheads.poll_per_proc * polled as u64;
        if m.procs[p].polluted {
            gap += m.cfg.overheads.pollution;
            m.procs[p].polluted = false;
        }
        gap
    };
    sim.model_mut().procs[p].phase = Phase::PpeWork;
    sim.schedule_in(gap, move |sim| gap_done(sim, p));
}

/// `p` finished its PPE section and requests an off-load.
fn gap_done(sim: &mut S, p: usize) {
    let now_ns = sim.now().as_nanos();
    let task = {
        let m = sim.model_mut();
        let t = TaskId(m.next_task);
        m.next_task += 1;
        m.procs[p].current_task = t.0;
        m.procs[p].attempt = 0;
        m.procs[p].task_started_ns = now_ns;
        m.procs[p].phase = Phase::WaitingSpe;
        if let Some(mgps) = m.mgps.as_mut() {
            mgps.on_offload(t, now_ns);
        }
        m.request_queue.push_back(p);
        m.emit(now_ns, EventKind::Offload { proc: p, task: t.0 });
        t
    };
    let _ = task;
    try_dispatch_queue(sim);

    let ppe = sim.model().procs[p].ppe;
    if sim.model().is_linux() {
        // The process spins on its context while the task runs. The only
        // way it loses the context is quantum expiry, checked here and at
        // task completion (granularity ~one cycle ≪ the 10 ms quantum).
        let _ = maybe_rotate_linux(sim, p, ppe);
    } else {
        // EDTLP: voluntary switch on off-load.
        let next = sim.model_mut().ppes[ppe].on_offload(ProcId(p));
        if next != Some(ProcId(p)) {
            let m = sim.model_mut();
            let held_ns = now_ns.saturating_sub(m.procs[p].ctx_acquired_ns);
            m.emit(
                now_ns,
                EventKind::CtxSwitch { proc: p, reason: SwitchReason::Offload, held_ns },
            );
        }
        dispatch(sim, next);
    }
}

/// Grant queued off-load requests while SPEs allow (FIFO).
fn try_dispatch_queue(sim: &mut S) {
    enum Grant {
        Spe(usize, usize),
        Fallback(usize),
    }
    loop {
        let grant = {
            let m = sim.model();
            match m.request_queue.front() {
                Some(&p) => {
                    if m.healthy_spes() == 0 {
                        // Every SPE is quarantined: terminal degradation
                        // reroutes the queue head straight to the scalar
                        // PPE copy (if the policy allows; otherwise the
                        // queue waits on a re-admission probe that, with
                        // no completions happening, never comes — the
                        // lethal configuration).
                        if m.cfg.faults.policy.ppe_fallback {
                            Some(Grant::Fallback(p))
                        } else {
                            None
                        }
                    } else {
                        let degree = m.grant_degree();
                        if m.idle_spes() >= degree {
                            Some(Grant::Spe(p, degree))
                        } else {
                            None
                        }
                    }
                }
                None => None,
            }
        };
        match grant {
            Some(Grant::Spe(p, degree)) => {
                sim.model_mut().request_queue.pop_front();
                grant_task(sim, p, degree);
            }
            Some(Grant::Fallback(p)) => {
                sim.model_mut().request_queue.pop_front();
                ppe_fallback_start(sim, p);
            }
            None => return,
        }
    }
}

/// What a grant turned into: a running task, or a sabotaged attempt that
/// wedges its team until the watchdog reclaims it.
enum Granted {
    Run { duration: SimDuration, dma_latency: Option<SimDuration> },
    Faulted { watchdog: SimDuration },
}

/// Start `p`'s task on a team of `degree` SPEs.
fn grant_task(sim: &mut S, p: usize, degree: usize) {
    let now = sim.now();
    let (granted, team) = {
        let m = sim.model_mut();
        let epoch = m.image_epoch;
        let mut team = Vec::with_capacity(degree);
        let mut reloaded = Vec::new();
        for (i, spe) in m.spes.iter_mut().enumerate() {
            if !spe.is_busy() && !m.quarantined[i] {
                if spe.start_task(now, epoch) {
                    reloaded.push(i);
                }
                team.push(i);
                if team.len() == degree {
                    break;
                }
            }
        }
        let reload = !reloaded.is_empty();
        assert_eq!(team.len(), degree, "grant without enough idle healthy SPEs");
        let now_ns = now.as_nanos();
        // Team members reload in parallel; each pays the full stall, the
        // task-level delay is one code_load_cost (added below).
        let stall_ns = m.cfg.params.code_load_cost.as_nanos();
        for &spe in &reloaded {
            m.emit(now_ns, EventKind::CodeReload { spe, stall_ns });
        }
        let task = m.procs[p].current_task;
        let lead = team[0];
        // Draw the kernel timing up front — in the simulator the drawn
        // duration *is* the task's true duration, so its running minimum
        // is the engine's own timing history, which the watchdog deadline
        // scales (no wall-clock constants).
        let (jitter, kind) = {
            let w = m.cfg.workload;
            (w.draw_jitter(&mut m.rng), w.draw_kind(&mut m.rng))
        };
        let mut dur = m.cfg.workload.kernel_task_duration(
            kind,
            m.cfg.profile,
            degree,
            jitter,
            m.cfg.workload.heterogeneous_kernels,
        );
        let drawn_ns = dur.as_nanos();
        m.min_task_ns = Some(m.min_task_ns.map_or(drawn_ns, |v| v.min(drawn_ns)));
        let attempt = m.procs[p].attempt;
        if let Some(fault) = m.cfg.faults.decide(task, attempt, lead) {
            // The attempt dies before the start protocol completes: no
            // mailbox traffic, no DMA, no TaskStart — just a wedged team
            // the watchdog must reclaim.
            m.fault_stats.injected += 1;
            m.consec_faults[lead] += 1;
            m.emit(
                now_ns,
                EventKind::FaultInjected {
                    spe: lead,
                    task,
                    fault: fault.name().to_string(),
                    attempt: u64::from(attempt),
                },
            );
            m.procs[p].phase = Phase::OnSpe;
            let hint = m.min_task_ns.unwrap_or(drawn_ns);
            let watchdog = SimDuration::from_nanos(m.cfg.faults.watchdog_ns(hint));
            (Granted::Faulted { watchdog }, team)
        } else {
        let buffer_bytes = m.cfg.workload.input_bytes + m.cfg.workload.output_bytes;
        // PPE -> SPU start command through the lead SPE's inbound mailbox
        // (4-entry; our one-in-flight protocol can never fill it).
        let task_lo = m.next_task as u32;
        let posted = m.mailboxes[lead].signal_start(task_lo);
        debug_assert!(posted, "inbound mailbox overflow with one task in flight");
        let occ = m.mailboxes[lead].inbound.len();
        m.emit(
            now_ns,
            EventKind::MailboxWrite { spe: lead, mailbox: MailboxKind::Inbound, occupancy: occ },
        );
        let consumed = m.mailboxes[lead].take_start();
        debug_assert_eq!(consumed, Some(task_lo));
        let occ = m.mailboxes[lead].inbound.len();
        m.emit(
            now_ns,
            EventKind::MailboxRead { spe: lead, mailbox: MailboxKind::Inbound, occupancy: occ },
        );
        if m.cfg.record_events {
            // Local-store reservations for the task's in/out buffers, on
            // every team member (each SPE working the loop holds copies).
            for &spe in &team {
                m.ls_in_use[spe] += buffer_bytes;
                let in_use = m.ls_in_use[spe];
                m.emit(now_ns, EventKind::LsAlloc { spe, bytes: buffer_bytes, in_use });
            }
            // The input/output transfer as the MFC list the lead SPE issues.
            let local_addr = m.ls_in_use[lead] - buffer_bytes;
            let main_addr = 0x1000_0000 + (task as usize) * 0x8000;
            let list =
                DmaList::for_bytes(&m.cfg.params.dma, buffer_bytes, local_addr, main_addr)
                    .expect("task buffers must form a legal DMA list");
            m.emit(
                now_ns,
                EventKind::Dma {
                    spe: lead,
                    element_bytes: list.elements().iter().map(|e| e.bytes).collect(),
                    local_addr,
                    main_addr,
                },
            );
            m.emit(
                now_ns,
                EventKind::TaskStart { proc: p, task, degree, team: team.clone() },
            );
            let loop_iters = m.cfg.workload.loop_iters;
            for (i, r) in partition(loop_iters, degree, 0.0).into_iter().enumerate() {
                m.emit(
                    now_ns,
                    EventKind::Chunk {
                        task,
                        loop_iters,
                        start: r.start,
                        len: r.len(),
                        worker: team[i],
                    },
                );
            }
        }

        // Input/output DMA through the EIB. The optimized kernels aggregate
        // and double-buffer transfers (§5.1), so the latency overlaps the
        // computation (it is already inside the measured 96 µs task time);
        // the transfer still occupies the bus for contention accounting.
        let base = SimDuration::from_secs_f64(buffer_bytes as f64 / m.cfg.params.dma.spe_bandwidth)
            + m.cfg.params.dma.startup;
        let dma_latency = match m.eib.begin_transfer(buffer_bytes, base) {
            Some(lat) => Some(lat),
            None => {
                // Bus saturated: the transfer would stall the task.
                m.dma_fallbacks += 1;
                dur += base * 2;
                None
            }
        };
        let latency_ns = dma_latency.unwrap_or(base * 2).as_nanos();
        m.emit(
            now_ns,
            EventKind::DmaComplete { spe: lead, bytes: buffer_bytes, latency_ns },
        );
        if m.cfg.granularity_verdicts {
            // Replay the §5.2 inequality for this grant: the drawn SPE
            // time, the reload stall actually paid, the modeled DMA
            // latency, and the dual-version PPE copy's slowdown.
            let t_code = if reload { stall_ns } else { 0 };
            let t_ppe = (drawn_ns as f64 * PPE_FALLBACK_SLOWDOWN) as u64;
            let offload = drawn_ns + t_code + 2 * latency_ns < t_ppe;
            m.emit(
                now_ns,
                EventKind::GranularityVerdict {
                    kernel: kind.name().to_string(),
                    offload,
                    throttled: !offload,
                    reprobe: false,
                },
            );
        }
        if reload {
            dur += m.cfg.params.code_load_cost;
        }
        m.procs[p].phase = Phase::OnSpe;
        if m.cfg.record_timeline {
            let start = now;
            for &spe in &team {
                m.timeline.push(TimelineEntry { spe, proc: p, start, end: start + dur });
            }
        }
        (Granted::Run { duration: dur, dma_latency }, team)
        }
    };
    match granted {
        Granted::Run { duration, dma_latency } => {
            // Release the bus slot when the transfer lands (keeps EIB
            // occupancy honest for concurrent transfers).
            if let Some(lat) = dma_latency {
                sim.schedule_in(lat, |sim| sim.model_mut().eib.end_transfer());
            }
            sim.schedule_in(duration, move |sim| task_complete(sim, p, team.clone()));
        }
        Granted::Faulted { watchdog } => {
            sim.schedule_in(watchdog, move |sim| watchdog_fire(sim, p, team.clone()));
        }
    }
}

/// The watchdog deadline for `p`'s faulted attempt expired: reclaim the
/// wedged team, quarantine the lead if it crossed `k` consecutive faults,
/// then retry (with declared backoff), fall back to the PPE, or — under a
/// lethal policy — abandon the task.
fn watchdog_fire(sim: &mut S, p: usize, team: Vec<usize>) {
    let now = sim.now();
    let now_ns = now.as_nanos();
    let (task, attempt) = {
        let m = sim.model_mut();
        for &s in &team {
            m.spes[s].finish_task(now);
        }
        let lead = team[0];
        let pol = m.cfg.faults.policy;
        if !m.quarantined[lead] && m.consec_faults[lead] >= pol.quarantine_k {
            m.quarantined[lead] = true;
            m.quarantine_marks[lead] = m.tasks_completed;
            m.fault_stats.quarantines += 1;
            let faults = u64::from(m.consec_faults[lead]);
            m.emit(now_ns, EventKind::SpeQuarantined { spe: lead, faults });
            sync_mgps_healthy(m);
        }
        (m.procs[p].current_task, m.procs[p].attempt)
    };
    let pol = sim.model().cfg.faults.policy;
    if attempt < pol.max_retries {
        let backoff_ns = sim.model().cfg.faults.backoff_ns(task, attempt + 1);
        sim.schedule_in(SimDuration::from_nanos(backoff_ns), move |sim| {
            retry_offload(sim, p, backoff_ns)
        });
    } else if pol.ppe_fallback {
        ppe_fallback_start(sim, p);
    } else {
        // Lethal configuration: the task is lost and its bootstrap never
        // finishes — exactly the failure the checker must flag.
        let m = sim.model_mut();
        m.fault_stats.lost += 1;
        m.procs[p].phase = Phase::WaitingSpe;
    }
    // The reclaimed team may unblock queued requests.
    try_dispatch_queue(sim);
}

/// `p` re-off-loads its faulted task after the declared backoff.
fn retry_offload(sim: &mut S, p: usize, backoff_ns: u64) {
    let now_ns = sim.now().as_nanos();
    {
        let m = sim.model_mut();
        m.procs[p].attempt += 1;
        m.fault_stats.retries += 1;
        m.procs[p].phase = Phase::WaitingSpe;
        let task = m.procs[p].current_task;
        let attempt = u64::from(m.procs[p].attempt);
        m.request_queue.push_back(p);
        m.emit(now_ns, EventKind::OffloadRetry { task, attempt, backoff_ns });
    }
    try_dispatch_queue(sim);
}

/// Run `p`'s task on the PPE's scalar kernel copy (the paper's dual-version
/// functions): the terminal degradation — the task still completes.
fn ppe_fallback_start(sim: &mut S, p: usize) {
    let dur = {
        let m = sim.model_mut();
        m.procs[p].phase = Phase::OnSpe;
        let (jitter, kind) = {
            let w = m.cfg.workload;
            (w.draw_jitter(&mut m.rng), w.draw_kind(&mut m.rng))
        };
        m.cfg
            .workload
            .kernel_task_duration(kind, m.cfg.profile, 1, jitter, m.cfg.workload.heterogeneous_kernels)
            .mul_f64(PPE_FALLBACK_SLOWDOWN)
    };
    sim.schedule_in(dur, move |sim| ppe_fallback_complete(sim, p));
}

/// `p`'s task finished on the PPE fallback path.
fn ppe_fallback_complete(sim: &mut S, p: usize) {
    let now_ns = sim.now().as_nanos();
    {
        let m = sim.model_mut();
        let task = m.procs[p].current_task;
        let attempts = u64::from(m.procs[p].attempt) + 1;
        m.emit(now_ns, EventKind::PpeFallback { proc: p, task, attempts });
        m.fault_stats.ppe_fallbacks += 1;
        m.tasks_completed += 1;
        m.procs[p].remaining -= 1;
        mgps_departure(m, p, now_ns);
        maybe_readmit(m, now_ns);
    }
    try_dispatch_queue(sim);
    reacquire_ppe(sim, p);
}

/// Re-admission probes: a quarantined SPE re-enters service
/// `readmit_period` completions after it was benched, with its
/// consecutive-fault counter left one below the threshold so a single
/// further fault re-quarantines it immediately.
fn maybe_readmit(m: &mut CellMachine, now_ns: u64) {
    let period = u64::from(m.cfg.faults.policy.readmit_period.max(1));
    let mut changed = false;
    for spe in 0..m.quarantined.len() {
        if m.quarantined[spe]
            && m.tasks_completed.saturating_sub(m.quarantine_marks[spe]) >= period
        {
            m.quarantined[spe] = false;
            m.consec_faults[spe] = m.cfg.faults.policy.quarantine_k.saturating_sub(1);
            m.fault_stats.readmissions += 1;
            m.emit(now_ns, EventKind::SpeReadmitted { spe });
            changed = true;
        }
    }
    if changed {
        sync_mgps_healthy(m);
    }
}

/// Push the healthy-SPE count into the MGPS policy so subsequent LLP
/// degrees are `⌊healthy / T⌋`.
fn sync_mgps_healthy(m: &mut CellMachine) {
    let healthy = m.healthy_spes();
    if let Some(mgps) = m.mgps.as_mut() {
        mgps.set_healthy(healthy);
    }
}

/// `p`'s task finished on `team`.
fn task_complete(sim: &mut S, p: usize, team: Vec<usize>) {
    let now = sim.now();
    let now_ns = now.as_nanos();
    {
        let m = sim.model_mut();
        for &s in &team {
            m.spes[s].finish_task(now);
        }
        let task = m.procs[p].current_task;
        if m.cfg.record_events {
            let buffer_bytes = m.cfg.workload.input_bytes + m.cfg.workload.output_bytes;
            for &spe in &team {
                m.ls_in_use[spe] -= buffer_bytes;
                let in_use = m.ls_in_use[spe];
                m.emit(now_ns, EventKind::LsFree { spe, bytes: buffer_bytes, in_use });
            }
        }
        // SPU -> PPE completion interrupt; the PPE-side scheduler collects
        // it immediately (it is what wakes the EDTLP scheduler).
        let lead = team[0];
        let posted = m.mailboxes[lead].signal_complete(m.tasks_completed as u32);
        debug_assert!(posted, "outbound-interrupt mailbox still occupied");
        let occ = m.mailboxes[lead].outbound_interrupt.len();
        m.emit(
            now_ns,
            EventKind::MailboxWrite {
                spe: lead,
                mailbox: MailboxKind::OutboundInterrupt,
                occupancy: occ,
            },
        );
        let collected = m.mailboxes[lead].collect_complete();
        debug_assert!(collected.is_some());
        let occ = m.mailboxes[lead].outbound_interrupt.len();
        m.emit(
            now_ns,
            EventKind::MailboxRead {
                spe: lead,
                mailbox: MailboxKind::OutboundInterrupt,
                occupancy: occ,
            },
        );
        m.emit(now_ns, EventKind::TaskEnd { proc: p, task, team: team.clone() });
        m.tasks_completed += 1;
        m.procs[p].remaining -= 1;
        // A clean completion clears the team's consecutive-fault counters
        // and advances the re-admission clock.
        for &s in &team {
            m.consec_faults[s] = 0;
        }
        mgps_departure(m, p, now_ns);
        maybe_readmit(m, now_ns);
    }
    // Freed SPEs may unblock queued requests.
    try_dispatch_queue(sim);
    reacquire_ppe(sim, p);
}

/// MGPS adaptation on a task departure (shared by the SPE-completion and
/// PPE-fallback paths).
fn mgps_departure(m: &mut CellMachine, p: usize, now_ns: u64) {
    let started = m.procs[p].task_started_ns;
    let waiting = m
        .procs
        .iter()
        .filter(|pr| pr.admitted && pr.phase != Phase::Done)
        .count()
        .max(1);
    let tid = TaskId(m.next_task); // id only used for bookkeeping
    let decision = m.mgps.as_mut().and_then(|mgps| {
        mgps.on_departure(tid, started, now_ns, waiting)
            .map(|d| (d, mgps.config().window, mgps.window_fill()))
    });
    if let Some((directive, window, window_fill)) = decision {
        let new_degree = match directive {
            Directive::ActivateLlp(d) => d.0,
            Directive::DeactivateLlp => 1,
        };
        let n_spes = m.spes.len();
        m.emit(
            now_ns,
            EventKind::DegreeDecision {
                degree: new_degree,
                waiting,
                n_spes,
                window,
                window_fill,
            },
        );
        if new_degree != m.current_degree {
            m.current_degree = new_degree;
            // Switching between plain and loop-parallel kernel
            // versions replaces SPE code images (§5.4).
            m.image_epoch += 1;
            m.llp_switches += 1;
        }
    }
}

/// Give `p` its PPE context back after a completed task (SPE completion or
/// PPE fallback alike).
fn reacquire_ppe(sim: &mut S, p: usize) {
    let ppe = sim.model().procs[p].ppe;
    if sim.model().is_linux() {
        if sim.model().ppes[ppe].is_running(ProcId(p)) {
            if !maybe_rotate_linux(sim, p, ppe) {
                continue_proc(sim, p);
            } else {
                // Rotated out with a completed task: resume on dispatch.
                sim.model_mut().procs[p].phase = Phase::Ready;
                sim.model_mut().procs[p].pending_resume = true;
            }
        } else {
            sim.model_mut().procs[p].phase = Phase::Ready;
            sim.model_mut().procs[p].pending_resume = true;
        }
    } else {
        let dispatched = sim.model_mut().ppes[ppe].admit(ProcId(p));
        if dispatched.is_some() {
            let switch = sim.model().cfg.params.ctx_switch;
            let now_ns2 = sim.now().as_nanos();
            sim.model_mut().procs[p].ctx_acquired_ns = now_ns2;
            sim.schedule_in(switch, move |sim| continue_proc(sim, p));
        } else {
            sim.model_mut().procs[p].phase = Phase::Ready;
        }
    }
}

/// Check the Linux quantum for `p`; rotate if expired and someone waits.
/// Returns whether `p` lost its context.
fn maybe_rotate_linux(sim: &mut S, p: usize, ppe: usize) -> bool {
    let now_ns = sim.now().as_nanos();
    let expired = {
        let m = sim.model();
        now_ns.saturating_sub(m.procs[p].ctx_acquired_ns) >= m.quantum_ns
            && m.ppes[ppe].ready_len() > 0
    };
    if !expired {
        return false;
    }
    let next = sim.model_mut().ppes[ppe].on_quantum_expiry(ProcId(p));
    match next {
        Some(q) if q == ProcId(p) => {
            // Sole runnable process: keeps the context.
            sim.model_mut().procs[p].ctx_acquired_ns = now_ns;
            false
        }
        next => {
            let m = sim.model_mut();
            let held_ns = now_ns.saturating_sub(m.procs[p].ctx_acquired_ns);
            m.emit(
                now_ns,
                EventKind::CtxSwitch { proc: p, reason: SwitchReason::Quantum, held_ns },
            );
            dispatch(sim, next);
            true
        }
    }
}

/// Schedule the continuation of a process that just received a context.
fn dispatch(sim: &mut S, next: Option<ProcId>) {
    let Some(ProcId(q)) = next else { return };
    let switch = sim.model().cfg.params.ctx_switch;
    sim.schedule_in(switch, move |sim| proc_dispatched(sim, q));
}

/// `q` acquired a PPE context after a switch.
fn proc_dispatched(sim: &mut S, q: usize) {
    let now_ns = sim.now().as_nanos();
    {
        let m = sim.model_mut();
        m.procs[q].ctx_acquired_ns = now_ns;
        m.procs[q].polluted = true;
    }
    let (phase, pending) = {
        let m = sim.model();
        (m.procs[q].phase, m.procs[q].pending_resume)
    };
    match phase {
        Phase::Ready => {
            sim.model_mut().procs[q].pending_resume = false;
            continue_proc(sim, q);
        }
        Phase::WaitingSpe | Phase::OnSpe => {
            // A Linux spinner rotated back in while its task is still in
            // flight: it just holds the context spinning.
            debug_assert!(sim.model().is_linux());
            let _ = pending;
        }
        Phase::PpeWork | Phase::Done => {
            unreachable!("process dispatched in impossible phase {phase:?}")
        }
    }
}

/// `p` finished its bootstrap.
fn finish_proc(sim: &mut S, p: usize) {
    let ppe = sim.model().procs[p].ppe;
    {
        let now = sim.now();
        let m = sim.model_mut();
        m.procs[p].phase = Phase::Done;
        m.procs[p].finished = Some(now);
        m.active_procs -= 1;
    }
    let next = sim.model_mut().ppes[ppe].remove(ProcId(p));
    dispatch(sim, next);
    // Wave admission (static hybrid): a finished bootstrap frees a slot.
    admit_next_proc(sim);
    if sim.model().active_procs == 0 {
        let now = sim.now();
        sim.model_mut().finish = Some(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Heavily scaled-down workload for fast unit tests.
    fn cfg(scheduler: SchedulerKind, n: usize) -> SimConfig {
        SimConfig::cell_42sc(scheduler, n, 2_000) // ~133 tasks per bootstrap
    }

    #[test]
    fn single_worker_edtlp_matches_analytic_estimate() {
        let c = cfg(SchedulerKind::Edtlp, 1);
        let r = run(c);
        assert!(
            (r.paper_scale_secs - 28.46).abs() < 1.5,
            "1-worker EDTLP extrapolates to {}s (paper 28.46s)",
            r.paper_scale_secs
        );
        assert_eq!(r.tasks_completed, c.workload.tasks_per_bootstrap as u64);
        assert_eq!(r.final_degree, 1);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(cfg(SchedulerKind::Mgps, 3));
        let b = run(cfg(SchedulerKind::Mgps, 3));
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.context_switches, b.context_switches);
        assert_eq!(a.tasks_completed, b.tasks_completed);
    }

    #[test]
    fn edtlp_scales_gracefully_to_eight_workers() {
        let t1 = run(cfg(SchedulerKind::Edtlp, 1)).paper_scale_secs;
        let t8 = run(cfg(SchedulerKind::Edtlp, 8)).paper_scale_secs;
        // Table 1: 28.46s → 43.32s, i.e. within ~1.6x of constant.
        assert!(t8 < t1 * 1.8, "EDTLP at 8 workers {t8}s vs 1 worker {t1}s");
        assert!(t8 > t1, "more workers cannot be free");
    }

    #[test]
    fn linux_baseline_steps_with_half_the_workers() {
        let t1 = run(cfg(SchedulerKind::LinuxLike, 1)).paper_scale_secs;
        let t3 = run(cfg(SchedulerKind::LinuxLike, 3)).paper_scale_secs;
        let t8 = run(cfg(SchedulerKind::LinuxLike, 8)).paper_scale_secs;
        // Table 1: ceil(W/2) waves of ~28.5s.
        assert!((t3 / t1 - 2.0).abs() < 0.35, "3 workers should take ~2 waves, ratio {}", t3 / t1);
        assert!((t8 / t1 - 4.0).abs() < 0.7, "8 workers should take ~4 waves, ratio {}", t8 / t1);
    }

    #[test]
    fn edtlp_beats_linux_at_high_worker_counts() {
        let edtlp = run(cfg(SchedulerKind::Edtlp, 8)).paper_scale_secs;
        let linux = run(cfg(SchedulerKind::LinuxLike, 8)).paper_scale_secs;
        let ratio = linux / edtlp;
        assert!(
            ratio > 2.0,
            "paper reports ~2.6x at 8 workers; simulated ratio {ratio}"
        );
    }

    #[test]
    fn static_hybrid_uses_teams_and_respects_concurrency() {
        let r = run(cfg(SchedulerKind::StaticHybrid { spes_per_loop: 4 }, 1));
        assert_eq!(r.final_degree, 4);
        // One bootstrap with 4-way LLP must beat plain EDTLP (Table 2 / Fig 7).
        let edtlp = run(cfg(SchedulerKind::Edtlp, 1));
        assert!(
            r.paper_scale_secs < edtlp.paper_scale_secs,
            "hybrid {} vs EDTLP {}",
            r.paper_scale_secs,
            edtlp.paper_scale_secs
        );
    }

    #[test]
    fn mgps_activates_llp_for_low_task_parallelism() {
        let r = run(cfg(SchedulerKind::Mgps, 2));
        let (evals, acts, _) = r.mgps_counters.expect("MGPS counters present");
        assert!(evals > 0);
        assert!(acts > 0, "2 bootstraps leave SPEs idle; MGPS must activate LLP");
        assert!(r.final_degree > 1);
        assert!(r.llp_switches > 0);
        assert!(r.code_reloads > 0, "LLP activation replaces code images");
    }

    #[test]
    fn mgps_stays_edtlp_for_high_task_parallelism() {
        let r = run(cfg(SchedulerKind::Mgps, 8));
        // Occasional tail activations are fine; steady state must be EDTLP.
        let (evals, acts, _) = r.mgps_counters.unwrap();
        assert!(
            acts * 4 <= evals,
            "8 bootstraps should rarely trigger LLP: {acts} activations in {evals} windows"
        );
    }

    #[test]
    fn spe_utilization_reflects_worker_count() {
        let low = run(cfg(SchedulerKind::Edtlp, 1));
        let high = run(cfg(SchedulerKind::Edtlp, 8));
        assert!(high.mean_spe_utilization > low.mean_spe_utilization * 4.0);
        assert!(low.spe_utilization.iter().filter(|&&u| u > 0.01).count() <= 2);
    }

    #[test]
    fn dual_cell_blade_halves_makespan_at_scale() {
        // 16 bootstraps need two waves on 8 SPEs but only one on 16
        // (Figure 9b: two Cells run large workloads at ~half the time).
        let mut one = cfg(SchedulerKind::Edtlp, 16);
        let mut two = cfg(SchedulerKind::Edtlp, 16);
        one.params = CellParams::blade(1);
        two.params = CellParams::blade(2);
        let t1 = run(one).paper_scale_secs;
        let t2 = run(two).paper_scale_secs;
        assert!(
            t2 < t1 * 0.65,
            "two Cells should run 16 bootstraps much faster: {t2} vs {t1}"
        );
    }

    #[test]
    fn linux_proc_finish_times_reflect_context_queues() {
        // With the (compression-adjusted) quantum, same-context processes
        // round-robin fairly, so they all finish near k·T where k is the
        // per-context queue depth — the makespan equivalent of the paper's
        // waves. EDTLP runs everyone concurrently near 1·T.
        let t1 = run(cfg(SchedulerKind::LinuxLike, 1)).proc_finish[0].as_secs_f64();
        let r = run(cfg(SchedulerKind::LinuxLike, 6));
        for (i, d) in r.proc_finish.iter().enumerate() {
            let ratio = d.as_secs_f64() / t1;
            assert!(
                (2.5..=3.3).contains(&ratio),
                "proc {i}: finish at {ratio:.2}x single-worker time (3 per context queue)"
            );
        }
        let r2 = run(cfg(SchedulerKind::Edtlp, 6));
        for (i, d) in r2.proc_finish.iter().enumerate() {
            let ratio = d.as_secs_f64() / t1;
            assert!(
                ratio < 1.6,
                "EDTLP proc {i}: finish at {ratio:.2}x single-worker time"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one bootstrap")]
    fn zero_bootstraps_rejected() {
        let _ = run(cfg(SchedulerKind::Edtlp, 0));
    }

    #[test]
    #[should_panic(expected = "team size must fit")]
    fn oversized_hybrid_team_rejected() {
        let _ = run(cfg(SchedulerKind::StaticHybrid { spes_per_loop: 9 }, 1));
    }

    #[test]
    fn linux_single_worker_keeps_its_context() {
        // One process, no competitors: quantum expiries resume the same
        // process and no context switches are booked.
        let r = run(cfg(SchedulerKind::LinuxLike, 1));
        assert_eq!(r.context_switches, 0);
        assert!((r.paper_scale_secs - 28.5).abs() < 1.0);
    }

    #[test]
    fn mgps_config_mismatch_is_rejected() {
        let mut c = cfg(SchedulerKind::Mgps, 2);
        c.mgps_config = Some(mgps_runtime::policy::MgpsConfig::for_spes(16));
        let result = std::panic::catch_unwind(|| run(c));
        assert!(result.is_err(), "SPE-count mismatch must panic");
    }

    #[test]
    fn non_tiling_hybrid_team_works_with_wave_admission() {
        // 3 SPEs per loop on an 8-SPE machine: floor(8/3) = 2 concurrent.
        let r = run(cfg(SchedulerKind::StaticHybrid { spes_per_loop: 3 }, 4));
        assert_eq!(r.final_degree, 3);
        assert!(r.tasks_completed > 0);
    }

    #[test]
    fn three_cell_blade_is_accepted() {
        let mut c = cfg(SchedulerKind::Edtlp, 6);
        c.params = CellParams::blade(3);
        let r = run(c);
        assert_eq!(r.spe_utilization.len(), 24);
    }

    #[test]
    fn custom_profile_scales_linearly() {
        let mut half = cfg(SchedulerKind::Edtlp, 1);
        half.profile = crate::workload::KernelProfile::Custom(2.0);
        let slow = run(half).paper_scale_secs;
        let base = run(cfg(SchedulerKind::Edtlp, 1)).paper_scale_secs;
        // Doubling SPE task time doubles ~90% of the bootstrap.
        let ratio = slow / base;
        assert!((1.75..=1.95).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn timeline_records_every_task_without_spe_overlap() {
        let mut c = cfg(SchedulerKind::Edtlp, 4);
        c.record_timeline = true;
        let r = run(c);
        // One entry per (task, team member); EDTLP teams are singletons.
        assert_eq!(r.timeline.len() as u64, r.tasks_completed);
        // No SPE executes two tasks at once.
        let mut per_spe: Vec<Vec<(u64, u64)>> = vec![Vec::new(); 8];
        for e in &r.timeline {
            per_spe[e.spe].push((e.start.as_nanos(), e.end.as_nanos()));
        }
        for (spe, mut spans) in per_spe.into_iter().enumerate() {
            spans.sort();
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0, "SPE {spe}: overlapping tasks {w:?}");
            }
        }
        // Timeline off by default.
        let r2 = run(cfg(SchedulerKind::Edtlp, 2));
        assert!(r2.timeline.is_empty());
    }

    #[test]
    fn mailboxes_carry_one_start_and_one_completion_per_task() {
        let c = cfg(SchedulerKind::Edtlp, 3);
        let r = run(c);
        assert_eq!(r.mailbox_messages, 2 * r.tasks_completed);
    }

    #[test]
    fn faulted_runs_recover_every_task_and_stay_deterministic() {
        let mut c = cfg(SchedulerKind::Edtlp, 3);
        c.faults = FaultPlan::parse("seed=5,stall=0.05,dma=0.02").unwrap();
        c.record_events = true;
        let a = run(c);
        let b = run(c);
        assert!(a.faults.injected > 0, "a 7% combined rate over ~400 tasks must fire");
        assert!(a.faults.retries > 0);
        assert_eq!(a.faults.lost, 0);
        assert!(!a.unrecovered);
        assert_eq!(a.tasks_completed, 3 * c.workload.tasks_per_bootstrap as u64);
        assert_eq!(a.makespan, b.makespan);
        // Byte-identical replay: same seed + same spec → same log.
        assert_eq!(format!("{:?}", a.run_log), format!("{:?}", b.run_log));
        let log = a.run_log.unwrap();
        assert_eq!(log.fault_policy.as_deref(), Some(c.faults.to_spec().as_str()));
    }

    #[test]
    fn unarmed_plan_leaves_runs_identical_to_default() {
        let mut c = cfg(SchedulerKind::Mgps, 2);
        c.record_events = true;
        let base = run(c);
        // Tweaking recovery knobs without arming any fault source must not
        // perturb the schedule (the <1%-overhead claim starts here).
        c.faults.policy.max_retries = 9;
        c.faults.policy.watchdog_factor = 2;
        let tweaked = run(c);
        assert_eq!(base.makespan, tweaked.makespan);
        assert_eq!(format!("{:?}", base.run_log), format!("{:?}", tweaked.run_log));
        assert_eq!(base.faults, FaultReport::default());
        assert!(base.run_log.unwrap().fault_policy.is_none());
    }

    #[test]
    fn broken_spes_get_quarantined_and_mgps_throttles_degree() {
        let mut c = cfg(SchedulerKind::Mgps, 1);
        c.faults = FaultPlan::parse("seed=1,broken=4,readmit=1000000").unwrap();
        c.record_events = true;
        let r = run(c);
        assert!(!r.unrecovered);
        assert_eq!(r.faults.lost, 0);
        assert_eq!(r.faults.quarantines, 4, "all four broken SPEs must be benched");
        assert_eq!(r.faults.readmissions, 0, "re-admission pushed past the run");
        // Decision log: once the broken half is quarantined, a single
        // bootstrap (T = 1) gets floor(healthy/1) = 4 SPEs, not 8.
        let log = r.run_log.unwrap();
        let mut benched = 0u32;
        let mut max_after = 0usize;
        let mut decisions_after = 0u32;
        for e in &log.events {
            match &e.kind {
                EventKind::SpeQuarantined { .. } => benched += 1,
                EventKind::DegreeDecision { degree, .. } if benched >= 4 => {
                    decisions_after += 1;
                    max_after = max_after.max(*degree);
                }
                _ => {}
            }
        }
        assert!(decisions_after > 0, "MGPS must keep deciding after quarantine");
        assert_eq!(max_after, 4, "degree must drop to the healthy-SPE count");
    }

    #[test]
    fn all_spes_broken_still_completes_via_ppe_fallback() {
        let mut c = cfg(SchedulerKind::Edtlp, 1);
        c.faults = FaultPlan::parse("seed=2,broken=8,k=1,retries=0,readmit=1000000").unwrap();
        let r = run(c);
        assert!(!r.unrecovered, "the task always completes somewhere");
        assert_eq!(r.tasks_completed, c.workload.tasks_per_bootstrap as u64);
        assert_eq!(r.faults.quarantines, 8);
        assert_eq!(r.faults.lost, 0);
        assert_eq!(
            r.faults.ppe_fallbacks, r.tasks_completed,
            "with every SPE benched, everything runs on the PPE copy"
        );
    }

    #[test]
    fn quarantined_spes_are_readmitted_and_serve_again() {
        let mut c = cfg(SchedulerKind::Edtlp, 2);
        c.faults =
            FaultPlan::parse("seed=4,pin=stall@0,pin=crash@1,k=1,retries=0,readmit=4").unwrap();
        c.record_events = true;
        let r = run(c);
        assert!(!r.unrecovered);
        assert_eq!(r.faults.injected, 2);
        assert_eq!(r.faults.quarantines, 2);
        assert!(r.faults.readmissions >= 2, "short readmit period must re-admit");
        let log = r.run_log.unwrap();
        let readmits =
            log.events.iter().filter(|e| matches!(e.kind, EventKind::SpeReadmitted { .. })).count();
        assert_eq!(readmits as u64, r.faults.readmissions);
    }

    #[test]
    fn lethal_plan_loses_the_task_and_reports_unrecovered() {
        let mut c = cfg(SchedulerKind::Edtlp, 2);
        c.faults = FaultPlan::parse("seed=3,pin=crash@0,retries=0,fallback=off").unwrap();
        let r = run(c);
        assert!(r.unrecovered);
        assert_eq!(r.faults.lost, 1);
        assert_eq!(
            r.tasks_completed,
            c.workload.tasks_per_bootstrap as u64,
            "the healthy bootstrap still finishes; the faulted one is stranded"
        );
    }

    #[test]
    fn fixed_degree_hybrid_survives_quarantine_via_degree_clamp() {
        // llp4 on a machine where 6 of 8 SPEs go bad: grant degree must
        // clamp to the healthy count instead of deadlocking.
        let mut c = cfg(SchedulerKind::StaticHybrid { spes_per_loop: 4 }, 2);
        c.faults = FaultPlan::parse("seed=6,broken=6,k=1,readmit=1000000").unwrap();
        let r = run(c);
        assert!(!r.unrecovered);
        assert_eq!(r.faults.lost, 0);
        assert_eq!(r.faults.quarantines, 6);
    }

    #[test]
    fn eib_sees_traffic() {
        let c = cfg(SchedulerKind::Edtlp, 4);
        let r = run(c);
        let expected = (c.workload.input_bytes + c.workload.output_bytes) as u64
            * c.workload.tasks_per_bootstrap as u64
            * 4;
        assert_eq!(r.eib_bytes, expected);
        assert!(r.eib_peak_outstanding >= 1);
    }
}
