//! # `cellsim` — a discrete-event model of the Cell Broadband Engine
//!
//! The hardware substrate for reproducing Blagojevic et al. (PPoPP 2007)
//! without Cell silicon. The model covers what the paper's scheduling
//! results depend on:
//!
//! * [`params`] — blade topology and the paper's measured constants
//!   (3.2 GHz, 2 SMT PPE contexts, 8 SPEs, 1.5 µs context switch, 10 ms
//!   Linux quantum, 256 KB local stores, 117 KB kernel module);
//! * [`dma`] / [`mfc`] / [`eib`] — MFC transfer legality (16 KB cap,
//!   1/2/4/8/16n sizes, 128-bit alignment, 2,048-element lists), per-SPE
//!   queue depth, and aggregate-bandwidth bus contention;
//! * [`spe`] — per-SPE busy accounting and code-image residency;
//! * [`workload`] — the RAxML `42_SC` workload calibrated to §5.1–5.3
//!   (96 µs tasks, 11 µs PPE gaps, 228-iteration loops, naive/optimized/
//!   PPE-only kernel profiles);
//! * [`machine`] — the event-driven machine tying it together under the
//!   four scheduling policies from `mgps-runtime::policy`.
//!
//! Every run is bit-deterministic in its seed.
//!
//! ```
//! use cellsim::machine::{run, SimConfig};
//! use mgps_runtime::policy::SchedulerKind;
//!
//! let report = run(SimConfig::cell_42sc(SchedulerKind::Edtlp, 1, 20_000));
//! assert!(report.paper_scale_secs > 20.0 && report.paper_scale_secs < 40.0);
//! ```

#![warn(missing_docs)]

pub mod dma;
pub mod eib;
pub mod event;
pub mod machine;
pub mod mailbox;
pub mod mfc;
pub mod params;
pub mod spe;
pub mod workload;

pub use event::{EventKind, EventRecord, MailboxKind, RunLog, SchedulerTag, SwitchReason};
pub use machine::{run, RunReport, SchedOverheads, SimConfig};
pub use params::{CellParams, DmaParams};
pub use workload::{KernelProfile, RaxmlWorkload};
