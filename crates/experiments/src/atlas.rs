//! Sweep driver for the granularity atlas (`mgps_obs::atlas`).
//!
//! [`sweep`] enumerates every cell of a [`GridSpec`] — the cross product
//! of (task size × arrival rate × loop width × scheduler) — and runs each
//! through [`checked_run`], so every number in the atlas comes from an
//! invariant-checked log. Per-cell seeds derive deterministically from
//! the atlas seed and the cell index ([`cell_seed`]), so a shard of the
//! grid runs exactly the cells — with exactly the seeds — the full sweep
//! would. Cells whose checker pass reports a violation are refused:
//! their [`CellRecord`] carries the violation count and no metrics.
//!
//! Each clean cell's blame partition is asserted to sum exactly to its
//! critical-path makespan before it enters the atlas.

use cellsim::event::EventKind;
use cellsim::machine::SimConfig;
use des::time::SimDuration;
use mgps_obs::atlas::{
    Atlas, CellMetrics, CellRecord, GridSpec, MgpsInputs, PointCoords, VerdictCounts,
};
use mgps_obs::CriticalPath;
use mgps_runtime::faults::FaultPlan;
use mgps_runtime::policy::SchedulerKind;

use crate::checked::{checked_run, tally};

/// Parameters of one atlas sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// The grid to sweep.
    pub grid: GridSpec,
    /// Base seed; each cell runs under [`cell_seed`]`(seed, index)`.
    pub seed: u64,
    /// Workload scale divisor (as everywhere: larger is faster).
    pub scale: usize,
    /// Bootstraps per cell.
    pub n_bootstraps: usize,
    /// `Some((i, n))`: run only cells with `index % n == i`.
    pub shard: Option<(usize, usize)>,
    /// Fault plan armed in every cell (inert by default; a lethal plan
    /// is the supported way to exercise the refusal path end to end).
    pub faults: FaultPlan,
}

impl SweepConfig {
    /// A sweep of `grid` with the workspace's default seed, a fast
    /// scale, two bootstraps, no shard, and no faults.
    pub fn new(grid: GridSpec) -> SweepConfig {
        SweepConfig {
            grid,
            seed: 0x5eed,
            scale: 4_000,
            n_bootstraps: 2,
            shard: None,
            faults: FaultPlan::inert(),
        }
    }
}

/// Map an atlas scheduler slug to its [`SchedulerKind`].
pub fn scheduler_of_slug(slug: &str) -> Option<SchedulerKind> {
    Some(match slug {
        "edtlp" => SchedulerKind::Edtlp,
        "linux" => SchedulerKind::LinuxLike,
        "llp2" => SchedulerKind::StaticHybrid { spes_per_loop: 2 },
        "llp4" => SchedulerKind::StaticHybrid { spes_per_loop: 4 },
        "mgps" => SchedulerKind::Mgps,
        _ => return None,
    })
}

/// The seed cell `index` runs under: a splitmix64 finalizer over the
/// atlas seed and the index, so neighbouring cells decorrelate and any
/// shard reproduces the full sweep's per-cell streams.
pub fn cell_seed(base: u64, index: usize) -> u64 {
    let mut z = base ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Run the sweep and assemble the atlas.
///
/// # Panics
/// Panics if the grid names a scheduler slug outside the atlas
/// vocabulary, or if a cell's blame partition fails to sum to its
/// critical-path makespan (an accounting bug, never a workload property).
pub fn sweep(cfg: &SweepConfig) -> Atlas {
    let mut cells = Vec::new();
    for (ti, &task_mean_ns) in cfg.grid.task_mean_ns.iter().enumerate() {
        for (gi, &ppe_gap_ns) in cfg.grid.ppe_gap_ns.iter().enumerate() {
            for (li, &loop_iters) in cfg.grid.loop_iters.iter().enumerate() {
                for (si, slug) in cfg.grid.schedulers.iter().enumerate() {
                    let index = cfg.grid.cell_index(ti, gi, li, si);
                    if let Some((shard, of)) = cfg.shard {
                        if index % of != shard {
                            continue;
                        }
                    }
                    let point = PointCoords { task_mean_ns, ppe_gap_ns, loop_iters };
                    cells.push(run_cell(cfg, point, slug, index));
                }
            }
        }
    }
    Atlas {
        grid: cfg.grid.clone(),
        seed: cfg.seed,
        scale: cfg.scale,
        n_bootstraps: cfg.n_bootstraps,
        shard: cfg.shard,
        cells,
    }
}

fn run_cell(cfg: &SweepConfig, point: PointCoords, slug: &str, index: usize) -> CellRecord {
    let scheduler = scheduler_of_slug(slug)
        .unwrap_or_else(|| panic!("unknown scheduler slug {slug:?} in grid {}", cfg.grid.name));
    let seed = cell_seed(cfg.seed, index);
    let mut sim = SimConfig::cell_42sc(scheduler, cfg.n_bootstraps, cfg.scale);
    sim.seed = seed;
    sim.faults = cfg.faults;
    sim.granularity_verdicts = true;
    sim.workload.task_mean = SimDuration::from_nanos(point.task_mean_ns);
    sim.workload.ppe_gap = SimDuration::from_nanos(point.ppe_gap_ns);
    sim.workload.loop_iters = point.loop_iters;

    // The checker folds its verdicts into the global tally; the length
    // delta isolates this cell's violations.
    let before = tally().violations.len();
    let report = checked_run(sim);
    let violations = tally().violations.len() - before;

    let mut cell = CellRecord {
        point,
        scheduler: slug.to_string(),
        seed,
        violations,
        metrics: None,
    };
    if violations > 0 {
        // Refused: no number from a log the checker would not vouch for.
        return cell;
    }

    let log = report.run_log.as_ref().expect("checked_run records events");
    let cp = CriticalPath::from_log(log);
    assert_eq!(
        cp.blame.total(),
        cp.makespan_ns,
        "cell {index} ({slug}): blame partition must sum to the makespan"
    );

    let mut verdicts = VerdictCounts::default();
    for e in &log.events {
        if let EventKind::GranularityVerdict { offload, reprobe, .. } = &e.kind {
            if !offload {
                verdicts.throttle += 1;
            } else if *reprobe {
                verdicts.reprobe += 1;
            } else {
                verdicts.offload += 1;
            }
        }
    }

    let decisions = mgps_obs::decisions(log);
    let mgps = if decisions.is_empty() {
        None
    } else {
        let n = decisions.len() as f64;
        let finite = |v: f64| v.is_finite().then_some(v);
        Some(MgpsInputs {
            decisions: decisions.len(),
            mean_u: finite(decisions.iter().map(|d| d.u as f64).sum::<f64>() / n),
            mean_window_fill: finite(
                decisions.iter().map(|d| d.window_fill as f64).sum::<f64>() / n,
            ),
        })
    };

    cell.metrics = Some(CellMetrics {
        makespan_ns: cp.makespan_ns,
        // The same non-finite guard as experiment ratio columns: a
        // degenerate run yields "absent", never NaN.
        mean_utilization: report
            .mean_spe_utilization
            .is_finite()
            .then_some(report.mean_spe_utilization),
        context_switches: report.context_switches,
        tasks_completed: report.tasks_completed,
        blame: cp.blame,
        mgps,
        verdicts,
    });
    cell
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1-point, 2-scheduler grid keeps the sweep tests fast.
    fn tiny_grid() -> GridSpec {
        GridSpec {
            name: "tiny".to_string(),
            task_mean_ns: vec![96_000],
            ppe_gap_ns: vec![11_000],
            loop_iters: vec![57],
            schedulers: vec!["edtlp".to_string(), "mgps".to_string()],
        }
    }

    #[test]
    fn sweep_is_byte_deterministic_and_blame_sums() {
        let mut cfg = SweepConfig::new(tiny_grid());
        cfg.seed = 7;
        cfg.scale = 8_000;
        cfg.n_bootstraps = 1;
        let a = sweep(&cfg);
        let b = sweep(&cfg);
        assert_eq!(a.to_json(), b.to_json(), "atlas JSON must be byte-identical across re-runs");
        assert_eq!(a.render_html(), b.render_html(), "atlas HTML must be byte-identical");
        assert_eq!(a.cells.len(), 2);
        for c in &a.cells {
            assert_eq!(c.violations, 0);
            let m = c.metrics.as_ref().expect("clean cell has metrics");
            assert_eq!(m.blame.total(), m.makespan_ns);
            assert!(m.tasks_completed > 0);
        }
        // The MGPS cell observed granularity verdicts and decisions.
        let mgps = a.cells.iter().find(|c| c.scheduler == "mgps").expect("mgps cell");
        let m = mgps.metrics.as_ref().expect("metrics");
        assert!(m.verdicts.throttle + m.verdicts.offload + m.verdicts.reprobe > 0);
        assert!(m.mgps.is_some(), "MGPS cells carry decision inputs");
    }

    #[test]
    fn shards_partition_the_grid_exactly() {
        let mut cfg = SweepConfig::new(tiny_grid());
        cfg.seed = 7;
        cfg.scale = 8_000;
        cfg.n_bootstraps = 1;
        let full = sweep(&cfg);
        let mut sharded: Vec<CellRecord> = Vec::new();
        for i in 0..2 {
            cfg.shard = Some((i, 2));
            sharded.extend(sweep(&cfg).cells);
        }
        assert_eq!(sharded.len(), full.cells.len());
        for c in &full.cells {
            let twin = sharded
                .iter()
                .find(|s| s.point == c.point && s.scheduler == c.scheduler)
                .expect("every cell lands in exactly one shard");
            assert_eq!(twin, c, "shards must reproduce the full sweep's cells");
        }
    }

    #[test]
    fn lethal_faults_refuse_the_cell() {
        let mut cfg = SweepConfig::new(GridSpec {
            schedulers: vec!["edtlp".to_string()],
            ..tiny_grid()
        });
        cfg.seed = 9;
        cfg.scale = 8_000;
        cfg.n_bootstraps = 1;
        cfg.faults =
            FaultPlan::parse("seed=9,crash=0.5,retries=0,fallback=off").expect("valid spec");
        let atlas = sweep(&cfg);
        assert_eq!(atlas.cells.len(), 1);
        let cell = &atlas.cells[0];
        assert!(cell.violations > 0, "a lethal plan must be seen by the checker");
        assert!(cell.metrics.is_none(), "refused cells carry no metrics");
        assert!(cell.degenerate());
        assert!(atlas.violations() > 0);
    }

    #[test]
    fn cell_seeds_decorrelate_and_reproduce() {
        assert_eq!(cell_seed(7, 3), cell_seed(7, 3));
        assert_ne!(cell_seed(7, 3), cell_seed(7, 4));
        assert_ne!(cell_seed(7, 0), cell_seed(8, 0));
    }

    #[test]
    fn slug_vocabulary_is_closed() {
        for slug in mgps_obs::atlas::SCHEDULER_SLUGS {
            assert!(scheduler_of_slug(slug).is_some(), "slug {slug} must resolve");
        }
        assert!(scheduler_of_slug("fifo").is_none());
    }
}
