//! Regenerate fig8(a) and fig8(b) (see EXPERIMENTS.md).
fn main() {
    let scale = experiments::scale_from_args();
    for e in [experiments::fig8a(scale), experiments::fig8b(scale)] {
        print!("{}", e.render_text());
        let path = e.write_json(&experiments::Experiment::default_dir()).expect("write JSON");
        eprintln!("wrote {}", path.display());
    }
}
