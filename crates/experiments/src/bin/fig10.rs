//! Regenerate fig10(a) and fig10(b) (see EXPERIMENTS.md).
fn main() {
    let scale = experiments::scale_from_args();
    for e in [experiments::fig10a(scale), experiments::fig10b(scale)] {
        print!("{}", e.render_text());
        let path = e.write_json(&experiments::Experiment::default_dir()).expect("write JSON");
        eprintln!("wrote {}", path.display());
    }
}
