//! Regenerate fig9(a) and fig9(b) (see EXPERIMENTS.md).
fn main() {
    let scale = experiments::scale_from_args();
    for e in [experiments::fig9a(scale), experiments::fig9b(scale)] {
        print!("{}", e.render_text());
        let path = e.write_json(&experiments::Experiment::default_dir()).expect("write JSON");
        eprintln!("wrote {}", path.display());
    }
}
