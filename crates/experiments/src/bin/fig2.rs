//! Regenerate the Figure 2 scheduler-behaviour traces.
fn main() {
    let scale = experiments::scale_from_args();
    let e = experiments::fig2(scale);
    print!("{}", e.render_text());
    let path = e.write_json(&experiments::Experiment::default_dir()).expect("write JSON");
    eprintln!("wrote {}", path.display());
}
