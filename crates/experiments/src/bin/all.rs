//! Regenerate every table and figure and write the JSON bundle.
fn main() {
    let scale = experiments::scale_from_args();
    let dir = experiments::Experiment::default_dir();
    for e in experiments::all(scale) {
        print!("{}", e.render_text());
        let path = e.write_json(&dir).expect("write JSON");
        eprintln!("wrote {}", path.display());
    }
}
