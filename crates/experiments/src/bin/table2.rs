//! Regenerate table2 (see EXPERIMENTS.md).
fn main() {
    let scale = experiments::scale_from_args();
    let e = experiments::table2(scale);
    print!("{}", e.render_text());
    let path = e.write_json(&experiments::Experiment::default_dir()).expect("write JSON");
    eprintln!("wrote {}", path.display());
}
