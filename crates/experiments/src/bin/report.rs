//! Render target/experiments/*.json into a single Markdown report
//! (target/experiments/REPORT.md). Run `all` first (or any subset of the
//! experiment bins); this collates whatever JSON is present.

use experiments::Experiment;

fn main() {
    let dir = Experiment::default_dir();
    let mut entries: Vec<Experiment> = match std::fs::read_dir(&dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
            .filter_map(|e| {
                let text = std::fs::read_to_string(e.path()).ok()?;
                Experiment::from_value(&minijson::parse(&text).ok()?).ok()
            })
            .collect(),
        Err(e) => {
            eprintln!("cannot read {}: {e}; run the `all` bin first", dir.display());
            std::process::exit(1);
        }
    };
    if entries.is_empty() {
        eprintln!("no experiment JSON found in {}; run the `all` bin first", dir.display());
        std::process::exit(1);
    }
    entries.sort_by(|a, b| a.id.cmp(&b.id));

    let mut md = String::from("# Regenerated results\n\nProduced by `experiments --bin report`.\n");
    for e in &entries {
        md.push_str(&format!("\n## {} — {}\n\n", e.id, e.title));
        if !e.rows.is_empty() {
            md.push_str("| row | measured | paper | ratio |\n|---|---|---|---|\n");
            for r in &e.rows {
                match (r.paper, r.ratio()) {
                    (Some(p), Some(q)) => md.push_str(&format!(
                        "| {} | {:.2} | {:.2} | {:.2} |\n",
                        r.label, r.measured, p, q
                    )),
                    _ => md.push_str(&format!("| {} | {:.2} | — | — |\n", r.label, r.measured)),
                }
            }
        }
        for s in &e.series {
            md.push_str(&format!("\n**{}**: ", s.label));
            let pts: Vec<String> =
                s.points.iter().map(|(x, y)| format!("({x}, {y:.1})")).collect();
            md.push_str(&pts.join(" "));
            md.push('\n');
        }
        for n in &e.notes {
            md.push_str(&format!("\n> {n}\n"));
        }
    }
    let out = dir.join("REPORT.md");
    std::fs::write(&out, md).expect("write report");
    println!("wrote {}", out.display());
}
