//! Regenerate the MGPS design-choice ablations (window length, U threshold).
fn main() {
    let scale = experiments::scale_from_args();
    for e in [experiments::ablation_window(scale), experiments::ablation_threshold(scale)] {
        print!("{}", e.render_text());
        let path = e.write_json(&experiments::Experiment::default_dir()).expect("write JSON");
        eprintln!("wrote {}", path.display());
    }
}
