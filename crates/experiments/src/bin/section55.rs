//! Regenerate the Section 5.5 multi-blade scaling comparison.
fn main() {
    let scale = experiments::scale_from_args();
    let e = experiments::section55(scale);
    print!("{}", e.render_text());
    let path = e.write_json(&experiments::Experiment::default_dir()).expect("write JSON");
    eprintln!("wrote {}", path.display());
}
