//! # `experiments` — regeneration harnesses for every table and figure
//!
//! One function per published result (see DESIGN.md's experiment index):
//! §5.1's optimization ablation, Tables 1–2, Figures 7–10, and the §5.2
//! micro-measurements. Each returns a structured [`report::Experiment`]
//! carrying our measured values next to the paper's, renders as text, and
//! serializes to JSON (`target/experiments/*.json`) for EXPERIMENTS.md.
//!
//! Binaries: `table1`, `table2`, `spe_opt`, `fig7` … `fig10`, `micro`, and
//! `all` (runs everything and writes the JSON bundle).

#![warn(missing_docs)]

pub mod ablations;
pub mod atlas;
pub mod checked;
pub mod exps;
pub mod report;

pub use ablations::{ablation_threshold, ablation_window, kernel_mix, spe_opt_ladder};
pub use atlas::{cell_seed, scheduler_of_slug, sweep, SweepConfig};
pub use checked::{assert_clean, checked_run, reset_tally, tally, CheckTally};
pub use exps::*;
pub use report::{Experiment, Row, Series};

/// Default workload scale for the experiment binaries.
pub const DEFAULT_SCALE: usize = 500;

/// Parse an optional `--scale N` argument (used by all bins).
pub fn scale_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SCALE)
}
