//! Ablations of the MGPS design choices the paper fixes by construction:
//! the adaptation window (history length = number of SPEs) and the
//! LLP-activation threshold (`U ≤ n_spes/2`, i.e. "more than half the SPEs
//! idle"). Sweeping both shows the paper's choices sit on (or near) the
//! optimum of each knob — the kind of evidence §5.4 argues for
//! qualitatively.

use cellsim::machine::SimConfig;
use mgps_runtime::policy::{MgpsConfig, SchedulerKind};

// Every regeneration run goes through the schedule-invariant checker.
use crate::checked::checked_run as run;

use crate::report::{Experiment, Row, Series};

/// Bootstrap counts the ablations average over: the adaptation-sensitive
/// region (Figures 7–8 show all schemes coincide past ~16).
const WORKLOADS: [usize; 4] = [1, 2, 4, 6];

fn mgps_with(cfg_fn: impl Fn(&mut MgpsConfig), n: usize, scale: usize) -> f64 {
    let mut cfg = SimConfig::cell_42sc(SchedulerKind::Mgps, n, scale);
    let mut mc = MgpsConfig::for_spes(cfg.params.n_spes());
    cfg_fn(&mut mc);
    cfg.mgps_config = Some(mc);
    run(cfg).paper_scale_secs
}

/// Sum of makespans over the adaptation-sensitive workloads (the sweep's
/// objective; lower is better).
fn objective(cfg_fn: impl Fn(&mut MgpsConfig) + Copy, scale: usize) -> f64 {
    WORKLOADS.iter().map(|&n| mgps_with(cfg_fn, n, scale)).sum()
}

/// Ablation: MGPS adaptation window (paper: window = n_spes = 8).
pub fn ablation_window(scale: usize) -> Experiment {
    let mut e = Experiment::new(
        "ablation_window",
        "MGPS window-length ablation (paper fixes window = #SPEs = 8)",
    );
    for window in [1usize, 2, 4, 8, 16, 32, 64] {
        let total = objective(|mc| mc.window = window, scale);
        e.rows.push(Row::measured_only(format!("window = {window}"), total));
        for &n in &WORKLOADS {
            let t = mgps_with(|mc| mc.window = window, n, scale);
            e.series
                .iter_mut()
                .find(|s| s.label == format!("{n} bootstraps"))
                .map(|s| s.points.push((window, t)))
                .unwrap_or_else(|| {
                    e.series.push(Series {
                        label: format!("{n} bootstraps"),
                        points: vec![(window, t)],
                    })
                });
        }
    }
    e.notes.push(
        "objective = summed makespan over 1/2/4/6 bootstraps; very short windows \
         react to single-task noise, very long windows adapt after the workload \
         has already shifted."
            .into(),
    );
    e
}

/// Ablation: the LLP-activation threshold on `U` (paper: n_spes/2 = 4).
pub fn ablation_threshold(scale: usize) -> Experiment {
    let mut e = Experiment::new(
        "ablation_threshold",
        "MGPS U-threshold ablation (paper activates LLP when U <= #SPEs/2 = 4)",
    );
    for thr in 0usize..=8 {
        let total = objective(|mc| mc.u_threshold = thr, scale);
        e.rows.push(Row::measured_only(format!("U threshold = {thr}"), total));
    }
    // Also record the high-TLP regression risk: at 8 bootstraps an
    // over-eager threshold would activate LLP where EDTLP is optimal.
    for thr in [0usize, 4, 8] {
        let t8 = mgps_with(|mc| mc.u_threshold = thr, 8, scale);
        e.rows.push(Row::measured_only(format!("U threshold = {thr} @ 8 bootstraps"), t8));
    }
    e.notes.push(
        "threshold 0 never activates LLP (degenerates to EDTLP, losing at 1-4 \
         bootstraps); threshold 8 always considers LLP (risking regressions at \
         high task parallelism); the paper's half-machine rule is near the \
         sweet spot."
            .into(),
    );
    e
}

/// §5.1 optimization ladder: walk from the naive SPE port to the fully
/// optimized kernels one optimization at a time, measuring a full
/// single-bootstrap run at each rung. The paper itemizes the optimizations
/// (§5.1) and reports only the endpoints (50.38 s → 28.82 s); the per-step
/// decomposition is synthesized (documented in
/// `KernelProfile::LADDER`) and multiplies out to the measured ratio.
pub fn spe_opt_ladder(scale: usize) -> Experiment {
    use cellsim::workload::KernelProfile;
    let mut e = Experiment::new(
        "spe_opt_ladder",
        "Incremental SPE optimization ladder (Section 5.1, synthesized decomposition)",
    );
    let mut factor = KernelProfile::Naive.factor();
    let mut run_at = |label: &str, factor: f64| {
        let mut cfg = SimConfig::cell_42sc(SchedulerKind::Edtlp, 1, scale);
        cfg.profile = KernelProfile::Custom(factor);
        let r = run(cfg);
        e.rows.push(Row::measured_only(label.to_string(), r.paper_scale_secs));
    };
    run_at("naive port", factor);
    for (name, step) in KernelProfile::LADDER {
        factor /= step;
        run_at(&format!("+ {name}"), factor);
    }
    e.notes.push(
        "endpoints anchor to the paper's 50.38 s (naive) and 28.82 s (optimized);          intermediate rungs are the synthesized decomposition."
            .into(),
    );
    e
}

/// Sensitivity analysis: does replacing the uniform 96 µs task stream with
/// the heterogeneous three-kernel mix (§5.1's gprof shares) change the
/// headline conclusions? It should not — the schedulers react to
/// utilization, not task identity — and quantifying that robustness is
/// itself a result.
pub fn kernel_mix(scale: usize) -> Experiment {
    let mut e = Experiment::new(
        "kernel_mix",
        "Sensitivity: uniform tasks vs the heterogeneous newview/makenewz/evaluate mix",
    );
    for (label, mixed) in [("uniform", false), ("mixed", true)] {
        for (sched_label, sched, n) in [
            ("EDTLP 8 workers", SchedulerKind::Edtlp, 8),
            ("Linux 8 workers", SchedulerKind::LinuxLike, 8),
            ("MGPS 2 workers", SchedulerKind::Mgps, 2),
            ("LLP-4 1 worker", SchedulerKind::StaticHybrid { spes_per_loop: 4 }, 1),
        ] {
            let mut cfg = SimConfig::cell_42sc(sched, n, scale);
            if mixed {
                cfg.workload = cfg.workload.with_kernel_mix();
            }
            let r = run(cfg);
            e.rows.push(Row::measured_only(
                format!("{sched_label} ({label})"),
                r.paper_scale_secs,
            ));
        }
    }
    e.notes.push(
        "bimodal task durations leave every headline number within a few percent          of the uniform-stream calibration — the schedulers are driven by          occupancy, not by which kernel occupies."
            .into(),
    );
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_SCALE: usize = 4_000;

    #[test]
    fn paper_window_choice_is_near_optimal() {
        let e = ablation_window(TEST_SCALE);
        let get = |label: &str| {
            e.rows.iter().find(|r| r.label == label).map(|r| r.measured).unwrap()
        };
        let at_8 = get("window = 8");
        let best = e
            .rows
            .iter()
            .filter(|r| r.label.starts_with("window"))
            .map(|r| r.measured)
            .fold(f64::INFINITY, f64::min);
        assert!(
            at_8 <= best * 1.10,
            "paper's window=8 ({at_8:.1}s) should be within 10% of the best ({best:.1}s)"
        );
    }

    #[test]
    fn threshold_zero_degenerates_to_edtlp() {
        let never = mgps_with(|mc| mc.u_threshold = 0, 2, TEST_SCALE);
        let edtlp = run(SimConfig::cell_42sc(SchedulerKind::Edtlp, 2, TEST_SCALE)).paper_scale_secs;
        assert!(
            (never / edtlp - 1.0).abs() < 0.02,
            "threshold 0 ({never:.1}s) must match EDTLP ({edtlp:.1}s)"
        );
        // And it must LOSE to the paper's threshold at low TLP.
        let paper = mgps_with(|mc| mc.u_threshold = 4, 2, TEST_SCALE);
        assert!(paper < never * 0.85, "LLP must pay at 2 bootstraps: {paper:.1} vs {never:.1}");
    }

    #[test]
    fn ladder_is_monotone_and_anchored() {
        let e = spe_opt_ladder(TEST_SCALE);
        let times: Vec<f64> = e.rows.iter().map(|r| r.measured).collect();
        for w in times.windows(2) {
            assert!(w[1] < w[0], "each optimization must help: {times:?}");
        }
        assert!((times[0] - 50.38).abs() < 2.0, "naive endpoint {}", times[0]);
        assert!(
            (times[times.len() - 1] - 28.82).abs() < 1.5,
            "optimized endpoint {}",
            times[times.len() - 1]
        );
    }

    #[test]
    fn kernel_mix_leaves_conclusions_unchanged() {
        let e = kernel_mix(TEST_SCALE);
        let get = |label: &str| {
            e.rows.iter().find(|r| r.label == label).map(|r| r.measured).unwrap()
        };
        for sched in ["EDTLP 8 workers", "Linux 8 workers", "MGPS 2 workers", "LLP-4 1 worker"] {
            let u = get(&format!("{sched} (uniform)"));
            let m = get(&format!("{sched} (mixed)"));
            assert!(
                (m / u - 1.0).abs() < 0.06,
                "{sched}: mixed {m:.1}s vs uniform {u:.1}s drifted more than 6%"
            );
        }
        // The headline ratio survives the mix.
        let ratio = get("Linux 8 workers (mixed)") / get("EDTLP 8 workers (mixed)");
        assert!((2.1..=3.1).contains(&ratio), "mixed-stream Linux/EDTLP ratio {ratio:.2}");
    }

    #[test]
    fn paper_threshold_choice_is_near_optimal() {
        let e = ablation_threshold(TEST_SCALE);
        let sweep: Vec<(usize, f64)> = e
            .rows
            .iter()
            .filter(|r| !r.label.contains('@'))
            .enumerate()
            .map(|(i, r)| (i, r.measured))
            .collect();
        let at_4 = sweep[4].1;
        let best = sweep.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
        assert!(
            at_4 <= best * 1.10,
            "paper's threshold=4 ({at_4:.1}s) within 10% of best ({best:.1}s): {sweep:?}"
        );
    }
}
