//! One regeneration function per table and figure of the paper.
//!
//! Each function runs the relevant simulations (or analytic models) and
//! returns a structured [`Experiment`] whose rows/series mirror the paper's
//! layout, including the paper's published values where they exist. The
//! `scale` argument is the workload task-count reduction (durations stay
//! exact; see `cellsim::workload`); 500 is the experiments' default, larger
//! values run faster with more extrapolation noise.

use cellsim::machine::SimConfig;
use cellsim::workload::KernelProfile;

// Every regeneration run goes through the schedule-invariant checker.
use crate::checked::checked_run as run;
use machines::{blade_config, SmtMachine};
use mgps_runtime::policy::SchedulerKind;

use crate::report::{Experiment, Row, Series};

/// Paper values: Table 1 EDTLP column (seconds, 1–8 workers).
pub const PAPER_TABLE1_EDTLP: [f64; 8] =
    [28.46, 29.36, 32.54, 33.12, 37.27, 38.66, 41.87, 43.32];
/// Paper values: Table 1 Linux column.
pub const PAPER_TABLE1_LINUX: [f64; 8] =
    [28.42, 29.23, 56.95, 57.38, 85.88, 86.43, 114.92, 115.51];
/// Paper values: Table 2 (one bootstrap, 1–8 SPEs per loop).
pub const PAPER_TABLE2: [f64; 8] = [28.71, 20.83, 19.37, 18.28, 18.10, 20.52, 18.27, 24.4];
/// Paper values (§5.1): PPE-only, naive off-load, optimized off-load.
pub const PAPER_SPE_OPT: [f64; 3] = [38.23, 50.38, 28.82];

/// Bootstrap counts of the paper's "(a)" panels (1–16).
pub fn sweep_small() -> Vec<usize> {
    (1..=16).collect()
}

/// Bootstrap counts approximating the "(b)" panels (1–128).
pub fn sweep_large() -> Vec<usize> {
    vec![1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128]
}

fn cell_run(scheduler: SchedulerKind, n: usize, scale: usize) -> f64 {
    run(SimConfig::cell_42sc(scheduler, n, scale)).paper_scale_secs
}

/// §5.1: PPE-only vs naive vs optimized off-loading, one bootstrap.
pub fn spe_opt(scale: usize) -> Experiment {
    let mut e = Experiment::new("spe_opt", "SPE kernel optimization ablation (Section 5.1)");
    let profiles = [
        ("PPE only (no off-loading)", KernelProfile::PpeOnly),
        ("naive off-loading", KernelProfile::Naive),
        ("optimized off-loading", KernelProfile::Optimized),
    ];
    for ((label, profile), paper) in profiles.into_iter().zip(PAPER_SPE_OPT) {
        let mut cfg = SimConfig::cell_42sc(SchedulerKind::Edtlp, 1, scale);
        cfg.profile = profile;
        let r = run(cfg);
        e.rows.push(Row::with_paper(label, r.paper_scale_secs, paper));
    }
    let opt = e.rows[2].measured;
    let ppe = e.rows[0].measured;
    e.notes.push(format!(
        "off-loading speedup over PPE-only: {:.2}x (paper: 1.32x)",
        ppe / opt
    ));
    e
}

/// Table 1: EDTLP vs the Linux scheduler, 1–8 workers × 1 bootstrap each.
pub fn table1(scale: usize) -> Experiment {
    let mut e = Experiment::new("table1", "EDTLP vs Linux scheduling (Table 1)");
    for w in 1..=8 {
        let edtlp = cell_run(SchedulerKind::Edtlp, w, scale);
        let linux = cell_run(SchedulerKind::LinuxLike, w, scale);
        e.rows.push(Row::with_paper(
            format!("{w} workers EDTLP"),
            edtlp,
            PAPER_TABLE1_EDTLP[w - 1],
        ));
        e.rows.push(Row::with_paper(
            format!("{w} workers Linux"),
            linux,
            PAPER_TABLE1_LINUX[w - 1],
        ));
    }
    let ratio = e.rows[15].measured / e.rows[14].measured;
    e.notes.push(format!(
        "Linux/EDTLP at 8 workers: {ratio:.2}x (paper: {:.2}x)",
        PAPER_TABLE1_LINUX[7] / PAPER_TABLE1_EDTLP[7]
    ));
    e.notes.push(
        "Linux column reproduces the per-context run-queue waves (ceil(W/2) x ~28.5s); \
         EDTLP mid-range (3-6 workers) trends low by up to ~13% — the simulator's \
         oversubscription model saturates later than the measured system."
            .into(),
    );
    e
}

/// Table 2: loop-level parallelism across 1–8 SPEs, one bootstrap.
pub fn table2(scale: usize) -> Experiment {
    let mut e = Experiment::new("table2", "LLP degree sweep, one bootstrap (Table 2)");
    for k in 1..=8 {
        let sched = if k == 1 {
            SchedulerKind::Edtlp
        } else {
            SchedulerKind::StaticHybrid { spes_per_loop: k }
        };
        let t = cell_run(sched, 1, scale);
        e.rows.push(Row::with_paper(
            format!("{k} SPEs used for LLP"),
            t,
            PAPER_TABLE2[k - 1],
        ));
    }
    let t1 = e.rows[0].measured;
    let best = e.rows.iter().map(|r| r.measured).fold(f64::INFINITY, f64::min);
    let best_k = e.rows.iter().position(|r| r.measured == best).unwrap() + 1;
    e.notes.push(format!(
        "peak LLP speedup {:.2}x at {best_k} SPEs (paper: 1.58x at 5 SPEs; \
         both curves flatten at 4-5 and degrade toward 8)",
        t1 / best
    ));
    e
}

/// One figure panel: a bootstrap-count sweep over several schedulers.
fn sweep_figure(
    id: &str,
    title: &str,
    n_cells: usize,
    schedulers: &[(&str, SchedulerKind)],
    xs: &[usize],
    scale: usize,
) -> Experiment {
    let mut e = Experiment::new(id, title);
    for &(label, sched) in schedulers {
        let points = xs
            .iter()
            .map(|&n| (n, run(blade_config(n_cells, sched, n, scale)).paper_scale_secs))
            .collect();
        e.series.push(Series { label: label.to_string(), points });
    }
    e
}

const STATIC_SCHEDULERS: [(&str, SchedulerKind); 3] = [
    ("EDTLP-LLP with 2 SPEs per parallel loop", SchedulerKind::StaticHybrid { spes_per_loop: 2 }),
    ("EDTLP-LLP with 4 SPEs per parallel loop", SchedulerKind::StaticHybrid { spes_per_loop: 4 }),
    ("EDTLP", SchedulerKind::Edtlp),
];

const ADAPTIVE_SCHEDULERS: [(&str, SchedulerKind); 4] = [
    ("MGPS", SchedulerKind::Mgps),
    ("EDTLP-LLP with 2 SPEs per parallel loop", SchedulerKind::StaticHybrid { spes_per_loop: 2 }),
    ("EDTLP-LLP with 4 SPEs per parallel loop", SchedulerKind::StaticHybrid { spes_per_loop: 4 }),
    ("EDTLP", SchedulerKind::Edtlp),
];

/// Figure 7(a): static hybrids vs EDTLP, 1–16 bootstraps.
pub fn fig7a(scale: usize) -> Experiment {
    sweep_figure(
        "fig7a",
        "Static EDTLP-LLP vs EDTLP, 1-16 bootstraps (Figure 7a)",
        1,
        &STATIC_SCHEDULERS,
        &sweep_small(),
        scale,
    )
}

/// Figure 7(b): static hybrids vs EDTLP, up to 128 bootstraps.
pub fn fig7b(scale: usize) -> Experiment {
    sweep_figure(
        "fig7b",
        "Static EDTLP-LLP vs EDTLP, 1-128 bootstraps (Figure 7b)",
        1,
        &STATIC_SCHEDULERS,
        &sweep_large(),
        scale,
    )
}

/// Figure 8(a): MGPS vs static hybrids vs EDTLP, 1–16 bootstraps.
pub fn fig8a(scale: usize) -> Experiment {
    sweep_figure(
        "fig8a",
        "MGPS vs static schemes, 1-16 bootstraps (Figure 8a)",
        1,
        &ADAPTIVE_SCHEDULERS,
        &sweep_small(),
        scale,
    )
}

/// Figure 8(b): MGPS vs static hybrids vs EDTLP, up to 128 bootstraps.
pub fn fig8b(scale: usize) -> Experiment {
    sweep_figure(
        "fig8b",
        "MGPS vs static schemes, 1-128 bootstraps (Figure 8b)",
        1,
        &ADAPTIVE_SCHEDULERS,
        &sweep_large(),
        scale,
    )
}

/// Figure 9(a): the same comparison on a dual-Cell blade, 1–16 bootstraps.
pub fn fig9a(scale: usize) -> Experiment {
    sweep_figure(
        "fig9a",
        "MGPS vs static schemes on two Cells, 1-16 bootstraps (Figure 9a)",
        2,
        &ADAPTIVE_SCHEDULERS,
        &sweep_small(),
        scale,
    )
}

/// Figure 9(b): dual-Cell blade, up to 128 bootstraps.
pub fn fig9b(scale: usize) -> Experiment {
    sweep_figure(
        "fig9b",
        "MGPS vs static schemes on two Cells, 1-128 bootstraps (Figure 9b)",
        2,
        &ADAPTIVE_SCHEDULERS,
        &sweep_large(),
        scale,
    )
}

/// Figure 10 (one panel): Cell+MGPS vs Xeon SMP vs Power5.
fn fig10_panel(id: &str, title: &str, xs: &[usize], scale: usize) -> Experiment {
    let mut e = Experiment::new(id, title);
    let xeon = SmtMachine::xeon_smp();
    let p5 = SmtMachine::power5();
    e.series.push(Series {
        label: "Intel Xeon".into(),
        points: xs.iter().map(|&n| (n, xeon.makespan(n))).collect(),
    });
    e.series.push(Series {
        label: "IBM Power5".into(),
        points: xs.iter().map(|&n| (n, p5.makespan(n))).collect(),
    });
    e.series.push(Series {
        label: "Cell with MGPS scheduler".into(),
        points: xs
            .iter()
            .map(|&n| (n, cell_run(SchedulerKind::Mgps, n, scale)))
            .collect(),
    });
    e
}

/// Figure 10(a): cross-machine comparison, 1–16 bootstraps.
pub fn fig10a(scale: usize) -> Experiment {
    let mut e = fig10_panel(
        "fig10a",
        "Cell vs Xeon vs Power5, 1-16 bootstraps (Figure 10a)",
        &sweep_small(),
        scale,
    );
    let cell16 = e.series[2].points[15].1;
    let xeon16 = e.series[0].points[15].1;
    let p5_16 = e.series[1].points[15].1;
    e.notes.push(format!(
        "at 16 bootstraps: Xeon/Cell = {:.2}x, Power5/Cell = {:.2}x (paper: Power5 5-10% behind)",
        xeon16 / cell16,
        p5_16 / cell16
    ));
    e
}

/// Figure 10(b): cross-machine comparison, up to 128 bootstraps.
pub fn fig10b(scale: usize) -> Experiment {
    fig10_panel(
        "fig10b",
        "Cell vs Xeon vs Power5, 1-128 bootstraps (Figure 10b)",
        &sweep_large(),
        scale,
    )
}

/// Figure 2: the scheduler-behaviour illustration, regenerated from real
/// simulation traces. Renders an ASCII Gantt of SPE occupancy (one row per
/// SPE, one column per time bucket, digits = worker process) under EDTLP
/// vs the Linux baseline, for 8 workers.
pub fn fig2(scale: usize) -> Experiment {
    let mut e = Experiment::new(
        "fig2",
        "Scheduler behaviour traces: EDTLP vs Linux, 8 workers (Figure 2)",
    );
    const WINDOW_US: u64 = 1_600;
    const BUCKET_US: u64 = 50;
    for sched in [SchedulerKind::Edtlp, SchedulerKind::LinuxLike] {
        let mut cfg = SimConfig::cell_42sc(sched, 8, scale);
        cfg.record_timeline = true;
        let r = run(cfg);
        let buckets = (WINDOW_US / BUCKET_US) as usize;
        let mut rows = vec![vec!['.'; buckets]; cfg.params.n_spes()];
        for t in &r.timeline {
            let s_us = t.start.as_micros();
            let e_us = t.end.as_micros();
            if s_us >= WINDOW_US {
                continue;
            }
            let b0 = (s_us / BUCKET_US) as usize;
            let b1 = e_us.min(WINDOW_US).div_ceil(BUCKET_US) as usize;
            let glyph = char::from_digit(t.proc as u32 % 10, 10).unwrap_or('?');
            for cell in rows[t.spe][b0..b1.min(buckets)].iter_mut() {
                *cell = glyph;
            }
        }
        e.notes.push(format!("{} (first {WINDOW_US} us, {BUCKET_US} us buckets):", sched.label()));
        for (i, row) in rows.iter().enumerate() {
            e.notes.push(format!("  SPE{i} [{}]", row.iter().collect::<String>()));
        }
        let busy: usize = rows.iter().flatten().filter(|&&c| c != '.').count();
        let frac = busy as f64 / (buckets * cfg.params.n_spes()) as f64;
        e.rows.push(Row::measured_only(
            format!("{} busy SPE-buckets fraction", sched.label()),
            frac,
        ));
    }
    e.notes.push(
        "EDTLP interleaves all eight workers across all eight SPEs; the Linux          baseline pins work to the two processes holding the PPE contexts,          stranding six SPEs — exactly the contrast Figure 2 illustrates."
            .into(),
    );
    e
}

/// §5.5: multi-blade scaling of a 100-bootstrap analysis — MGPS vs EDTLP
/// as the per-blade share of the work shrinks.
pub fn section55(scale: usize) -> Experiment {
    use machines::BladeCluster;
    let mut e = Experiment::new(
        "section55",
        "Multi-blade scaling of 100 bootstraps: MGPS vs EDTLP (Section 5.5)",
    );
    let mut mgps_series = Series { label: "MGPS".into(), points: Vec::new() };
    let mut edtlp_series = Series { label: "EDTLP".into(), points: Vec::new() };
    for blades in [1usize, 2, 4, 8, 13, 16, 25] {
        let c = BladeCluster::dual_cell(blades);
        let m = c.makespan(SchedulerKind::Mgps, 100, scale);
        let t = c.makespan(SchedulerKind::Edtlp, 100, scale);
        mgps_series.points.push((blades, m));
        edtlp_series.points.push((blades, t));
        e.rows.push(Row::measured_only(format!("{blades} blades MGPS"), m));
        e.rows.push(Row::measured_only(format!("{blades} blades EDTLP"), t));
    }
    e.series.push(mgps_series);
    e.series.push(edtlp_series);
    e.notes.push(
        "paper claims the MGPS advantage reappears at >= 4 dual-Cell blades          (25 bootstraps each); our simulation places the crossover at <= 8          bootstraps per blade (>= 13 blades), consistent with Figure 9(b)          where the MGPS and EDTLP curves overlap from ~24 bootstraps."
            .into(),
    );
    e
}

/// §5.2 micro-measurements: the constants the scheduler design rests on.
pub fn micro(scale: usize) -> Experiment {
    let mut e = Experiment::new("micro", "Runtime micro-measurements (Section 5.2)");
    let cfg = SimConfig::cell_42sc(SchedulerKind::Edtlp, 8, scale);
    let r = run(cfg);
    e.rows.push(Row::with_paper(
        "PPE context switch (us)",
        cfg.params.ctx_switch.as_micros_f64(),
        1.5,
    ));
    e.rows.push(Row::with_paper(
        "mean SPE task (us)",
        cfg.workload.task_mean.as_micros_f64(),
        96.0,
    ));
    e.rows.push(Row::with_paper(
        "mean PPE gap between off-loads (us)",
        cfg.workload.ppe_gap.as_micros_f64(),
        11.0,
    ));
    e.rows.push(Row::with_paper(
        "SPE share of bootstrap time",
        cfg.workload.task_mean.as_nanos() as f64
            / (cfg.workload.task_mean + cfg.workload.ppe_gap).as_nanos() as f64,
        0.90,
    ));
    e.rows.push(Row::measured_only(
        "context switches per task (8 workers)",
        r.context_switches as f64 / r.tasks_completed as f64,
    ));
    e.rows.push(Row::measured_only("mean SPE utilization (8 workers)", r.mean_spe_utilization));
    e
}

/// Measured SPE utilization curves from the observability layer.
///
/// No direct paper analogue — the paper reports utilization only in prose
/// (§5.3) — but every scheduler comparison above is *explained* by how
/// much of the chip each scheme keeps busy, so the figure regenerates the
/// measured curves behind Figures 7–9: mean SPE utilization per scheduler
/// as bootstrap count grows, folded from the recorded event log by
/// `mgps-obs`.
pub fn utilization(scale: usize) -> Experiment {
    use mgps_obs::ObsSummary;
    let mut e = Experiment::new(
        "utilization",
        "Measured mean SPE utilization per scheduler (obs layer)",
    );
    let xs = [1usize, 2, 4, 8, 16];
    for &(label, sched) in &ADAPTIVE_SCHEDULERS {
        let mut points = Vec::new();
        for &n in &xs {
            let report = run(SimConfig::cell_42sc(sched, n, scale));
            let log = report.run_log.as_ref().expect("checked_run records events");
            let s = ObsSummary::from_log(log);
            points.push((n, s.mean_utilization));
            if n == 8 {
                e.rows.push(Row::measured_only(
                    format!("mean SPE utilization, 8 bootstraps, {label}"),
                    s.mean_utilization,
                ));
                // Stall counters qualify the utilization number, but the
                // simulator cannot observe them: render the absence, not a
                // fake zero.
                let na = |c| {
                    s.counter(c).map_or_else(|| "n/a".to_string(), |v: u64| v.to_string())
                };
                e.notes.push(format!(
                    "{label}, 8 bootstraps: mailbox stalls {}, offload-queue stalls {}, \
                     DMA fallbacks {}",
                    na(mgps_runtime::Counter::MailboxStalls),
                    na(mgps_runtime::Counter::OffloadQueueStalls),
                    na(mgps_runtime::Counter::DmaFallbacks),
                ));
            }
        }
        e.series.push(Series { label: label.to_string(), points });
    }
    e.notes.push(
        "folded from the structured event log (mgps-obs); per-SPE busy sums \
         are cross-checked against the invariant checker's accounting in the \
         obs golden tests; n/a marks counters the simulator cannot observe \
         (they are real only on native runs)"
            .into(),
    );
    e
}

/// All experiments at the given scale, in paper order, plus the MGPS
/// design-choice ablations.
pub fn all(scale: usize) -> Vec<Experiment> {
    vec![
        spe_opt(scale),
        table1(scale),
        table2(scale),
        fig7a(scale),
        fig7b(scale),
        fig8a(scale),
        fig8b(scale),
        fig9a(scale),
        fig9b(scale),
        fig10a(scale),
        fig10b(scale),
        micro(scale),
        fig2(scale),
        section55(scale),
        utilization(scale),
        crate::ablations::ablation_window(scale),
        crate::ablations::ablation_threshold(scale),
        crate::ablations::kernel_mix(scale),
        crate::ablations::spe_opt_ladder(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Coarse scale for fast tests (durations exact, few repetitions).
    const TEST_SCALE: usize = 4_000;

    #[test]
    fn utilization_curves_are_sane_and_explain_mgps() {
        let e = utilization(TEST_SCALE);
        assert_eq!(e.series.len(), 4);
        for s in &e.series {
            assert_eq!(s.points.len(), 5, "{}", s.label);
            for &(n, u) in &s.points {
                assert!((0.0..=1.0).contains(&u), "{} at {n}: {u}", s.label);
            }
        }
        let at = |label: &str, n: usize| {
            e.series
                .iter()
                .find(|s| s.label == label)
                .and_then(|s| s.points.iter().find(|p| p.0 == n))
                .map(|p| p.1)
                .unwrap()
        };
        // One bootstrap exposes no task parallelism: EDTLP strands seven
        // SPEs, while MGPS work-shares the loops across the chip.
        assert!(
            at("MGPS", 1) > 2.0 * at("EDTLP", 1),
            "MGPS {} vs EDTLP {}",
            at("MGPS", 1),
            at("EDTLP", 1)
        );
        // With 16 bootstraps task parallelism alone fills the chip.
        assert!(at("EDTLP", 16) > at("EDTLP", 1));
    }

    #[test]
    fn utilization_renders_unobservable_counters_as_absent() {
        let e = utilization(TEST_SCALE);
        // Simulated runs cannot observe the stall counters: every stall
        // note must say "n/a", never a fake zero.
        let stall_notes: Vec<&String> =
            e.notes.iter().filter(|n| n.contains("mailbox stalls")).collect();
        assert_eq!(stall_notes.len(), 4, "one stall note per scheduler");
        for note in stall_notes {
            assert!(note.contains("mailbox stalls n/a"), "{note}");
            assert!(note.contains("offload-queue stalls n/a"), "{note}");
            assert!(note.contains("DMA fallbacks n/a"), "{note}");
            assert!(!note.contains("stalls 0"), "fake zero leaked: {note}");
        }
    }

    #[test]
    fn spe_opt_reproduces_section_5_1() {
        let e = spe_opt(TEST_SCALE);
        assert!(e.worst_relative_error().unwrap() < 0.08, "{}", e.render_text());
        // Ordering: naive > ppe-only > optimized.
        assert!(e.rows[1].measured > e.rows[0].measured);
        assert!(e.rows[0].measured > e.rows[2].measured);
    }

    #[test]
    fn table1_shape_holds() {
        let e = table1(TEST_SCALE);
        // Linux column within 6% everywhere.
        for r in e.rows.iter().filter(|r| r.label.contains("Linux")) {
            let q = r.ratio().unwrap();
            assert!((q - 1.0).abs() < 0.06, "{}: ratio {q}", r.label);
        }
        // EDTLP endpoints within 8%, interior within 15%.
        for (i, r) in e.rows.iter().filter(|r| r.label.contains("EDTLP")).enumerate() {
            let q = r.ratio().unwrap();
            let tol = if i == 0 || i == 7 { 0.08 } else { 0.15 };
            assert!((q - 1.0).abs() < tol, "{}: ratio {q}", r.label);
        }
    }

    #[test]
    fn table2_shape_holds() {
        let e = table2(TEST_SCALE);
        let ms: Vec<f64> = e.rows.iter().map(|r| r.measured).collect();
        // Improvement to 4, degradation after 5, never better than ~1.7x.
        assert!(ms[0] > ms[1] && ms[1] > ms[3]);
        assert!(ms[7] > ms[3]);
        let speedup = ms[0] / ms.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((1.4..=1.75).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn fig8a_mgps_tracks_the_best_static_scheme() {
        let e = fig8a(TEST_SCALE);
        let series = |name: &str| {
            e.series
                .iter()
                .find(|s| s.label == name)
                .unwrap_or_else(|| panic!("missing series {name}"))
                .points
                .clone()
        };
        let mgps = series("MGPS");
        let edtlp = series("EDTLP");
        let llp2 = series("EDTLP-LLP with 2 SPEs per parallel loop");
        let llp4 = series("EDTLP-LLP with 4 SPEs per parallel loop");
        for i in 0..mgps.len() {
            let best = edtlp[i].1.min(llp2[i].1).min(llp4[i].1);
            assert!(
                mgps[i].1 <= best * 1.20,
                "n={}: MGPS {:.1}s vs best static {:.1}s",
                mgps[i].0,
                mgps[i].1,
                best
            );
        }
        // Convergence to EDTLP at the high end.
        let last = mgps.len() - 1;
        assert!((mgps[last].1 / edtlp[last].1 - 1.0).abs() < 0.03);
    }

    #[test]
    fn fig7_crossover_positions() {
        let e = fig7a(TEST_SCALE);
        let get = |label: &str, n: usize| {
            e.series
                .iter()
                .find(|s| s.label == label)
                .unwrap()
                .points
                .iter()
                .find(|&&(x, _)| x == n)
                .unwrap()
                .1
        };
        const LLP2: &str = "EDTLP-LLP with 2 SPEs per parallel loop";
        const LLP4: &str = "EDTLP-LLP with 4 SPEs per parallel loop";
        // Hybrids win at <= 4 bootstraps...
        for n in [1, 2, 4] {
            assert!(get(LLP2, n) < get("EDTLP", n), "n={n}");
        }
        // ... and EDTLP wins by 8.
        assert!(get("EDTLP", 8) < get(LLP4, 8));
        assert!(get("EDTLP", 16) < get(LLP2, 16) * 1.02);
    }

    #[test]
    fn fig10_ranking_holds() {
        let e = fig10a(TEST_SCALE);
        let at16 = |idx: usize| e.series[idx].points[15].1;
        let (xeon, p5, cell) = (at16(0), at16(1), at16(2));
        assert!(cell < p5 && p5 < xeon, "ranking at 16: cell {cell}, p5 {p5}, xeon {xeon}");
        let margin = p5 / cell;
        assert!((1.0..=1.25).contains(&margin), "Power5 margin {margin}");
    }

    #[test]
    fn micro_constants_match() {
        let e = micro(TEST_SCALE);
        assert!(e.worst_relative_error().unwrap() < 0.02);
    }

    #[test]
    fn fig2_traces_show_the_scheduling_contrast() {
        let e = fig2(TEST_SCALE);
        let frac = |label_prefix: &str| {
            e.rows
                .iter()
                .find(|r| r.label.starts_with(label_prefix))
                .map(|r| r.measured)
                .unwrap()
        };
        let edtlp = frac("EDTLP");
        let linux = frac("Linux");
        assert!(
            edtlp > 2.5 * linux,
            "EDTLP must keep far more SPE-buckets busy: {edtlp:.2} vs {linux:.2}"
        );
        assert!(linux < 0.30, "Linux strands most SPEs: {linux:.2}");
        assert!(edtlp > 0.55, "EDTLP fills the chip: {edtlp:.2}");
    }
}
