//! Experiment result containers, text rendering, and JSON export.

use std::io::Write;
use std::path::{Path, PathBuf};

use minijson::Value;

/// One data point of an experiment: a labelled measurement, optionally with
/// the paper's reported value for the same cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Row label (e.g. "3 workers, 3 bootstraps").
    pub label: String,
    /// Value measured by this reproduction (seconds unless noted).
    pub measured: f64,
    /// The paper's reported value, when it publishes one.
    pub paper: Option<f64>,
}

impl Row {
    /// A row with a paper reference value.
    pub fn with_paper(label: impl Into<String>, measured: f64, paper: f64) -> Row {
        Row { label: label.into(), measured, paper: Some(paper) }
    }

    /// A row without a paper reference (figures published as curves).
    pub fn measured_only(label: impl Into<String>, measured: f64) -> Row {
        Row { label: label.into(), measured, paper: None }
    }

    /// measured / paper, when a reference exists and the quotient is
    /// finite. A zero or non-finite paper value (or a non-finite
    /// measurement) yields `None` rather than an inf/NaN that would poison
    /// downstream aggregation.
    pub fn ratio(&self) -> Option<f64> {
        self.paper
            .filter(|p| p.is_finite())
            .map(|p| self.measured / p)
            .filter(|q| q.is_finite())
    }
}

/// A labelled series (one curve of a figure).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label, matching the paper's.
    pub label: String,
    /// (x, seconds) points.
    pub points: Vec<(usize, f64)>,
}

/// The result of regenerating one table or figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Experiment {
    /// Identifier, e.g. "table1" or "fig8a".
    pub id: String,
    /// Human title.
    pub title: String,
    /// Tabular rows (tables and scalar results).
    pub rows: Vec<Row>,
    /// Curve series (figures).
    pub series: Vec<Series>,
    /// Free-form notes on calibration and residuals.
    pub notes: Vec<String>,
}

impl Experiment {
    /// An empty experiment shell.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Experiment {
        Experiment {
            id: id.into(),
            title: title.into(),
            rows: Vec::new(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Render as aligned plain text (what the bins print).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {}\n", self.id, self.title));
        if !self.rows.is_empty() {
            let w = self.rows.iter().map(|r| r.label.len()).max().unwrap_or(0).max(5);
            out.push_str(&format!("{:w$}  {:>10}  {:>10}  {:>7}\n", "row", "measured", "paper", "ratio"));
            for r in &self.rows {
                match (r.paper, r.ratio()) {
                    (Some(p), Some(q)) => out.push_str(&format!(
                        "{:w$}  {:>10.2}  {:>10.2}  {:>7.2}\n",
                        r.label, r.measured, p, q
                    )),
                    _ => out.push_str(&format!(
                        "{:w$}  {:>10.2}  {:>10}  {:>7}\n",
                        r.label, r.measured, "-", "-"
                    )),
                }
            }
        }
        for s in &self.series {
            out.push_str(&format!("-- series: {}\n", s.label));
            for (x, y) in &s.points {
                out.push_str(&format!("   {x:>4}  {y:>10.2}\n"));
            }
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Convert to a JSON value tree.
    pub fn to_value(&self) -> Value {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                Value::object(vec![
                    ("label", r.label.as_str().into()),
                    ("measured", r.measured.into()),
                    ("paper", r.paper.map_or(Value::Null, Value::Number)),
                ])
            })
            .collect::<Vec<_>>();
        let series = self
            .series
            .iter()
            .map(|s| {
                let points = s
                    .points
                    .iter()
                    .map(|&(x, y)| Value::Array(vec![x.into(), y.into()]))
                    .collect::<Vec<_>>();
                Value::object(vec![
                    ("label", s.label.as_str().into()),
                    ("points", Value::Array(points)),
                ])
            })
            .collect::<Vec<_>>();
        Value::object(vec![
            ("id", self.id.as_str().into()),
            ("title", self.title.as_str().into()),
            ("rows", Value::Array(rows)),
            ("series", Value::Array(series)),
            ("notes", Value::array(self.notes.iter().map(String::as_str))),
        ])
    }

    /// Rebuild an experiment from [`Self::to_value`] output.
    ///
    /// # Errors
    /// A description of the first missing or mistyped field.
    pub fn from_value(v: &Value) -> Result<Experiment, String> {
        fn str_field(v: &Value, key: &str) -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field '{key}'"))
        }
        fn f64_field(v: &Value, key: &str) -> Result<f64, String> {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing number field '{key}'"))
        }
        fn array_field<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
            v.get(key)
                .and_then(Value::as_array)
                .ok_or_else(|| format!("missing array field '{key}'"))
        }
        let mut e = Experiment::new(str_field(v, "id")?, str_field(v, "title")?);
        for r in array_field(v, "rows")? {
            e.rows.push(Row {
                label: str_field(r, "label")?,
                measured: f64_field(r, "measured")?,
                paper: r.get("paper").and_then(Value::as_f64),
            });
        }
        for s in array_field(v, "series")? {
            let mut points = Vec::new();
            for p in array_field(s, "points")? {
                let p = p.as_array().filter(|p| p.len() == 2).ok_or("bad point")?;
                let x = p[0].as_u64().ok_or("bad point x")? as usize;
                let y = p[1].as_f64().ok_or("bad point y")?;
                points.push((x, y));
            }
            e.series.push(Series {
                label: str_field(s, "label")?,
                points,
            });
        }
        for n in array_field(v, "notes")? {
            e.notes
                .push(n.as_str().ok_or("non-string note")?.to_string());
        }
        Ok(e)
    }

    /// Render as a self-contained HTML fragment-free document, on the
    /// same [`mgps_obs::htmlkit`] scaffold as the profiling report and
    /// the granularity atlas (shared styling, "n/a" for absent values,
    /// byte-deterministic).
    pub fn render_html(&self) -> String {
        use mgps_obs::htmlkit::{esc, na_cell, Page};
        let mut page = Page::new(&format!("experiment {}: {}", self.id, self.title));
        page.heading(1, &format!("{} — {}", self.id, self.title));
        if !self.rows.is_empty() {
            page.table_start(&["row", "measured", "paper", "ratio"]);
            for r in &self.rows {
                let paper = na_cell(r.paper.map(|p| format!("{p:.2}")));
                let ratio = na_cell(r.ratio().map(|q| format!("{q:.2}")));
                page.table_row(
                    None,
                    &format!(
                        "<td>{}</td><td>{:.2}</td><td>{paper}</td><td>{ratio}</td>",
                        esc(&r.label),
                        r.measured
                    ),
                );
            }
            page.table_end();
        }
        for s in &self.series {
            page.heading(2, &format!("series: {}", s.label));
            page.table_start(&["x", "seconds"]);
            for (x, y) in &s.points {
                page.table_row(None, &format!("<td>{x}</td><td>{y:.2}</td>"));
            }
            page.table_end();
        }
        for n in &self.notes {
            page.para(&format!("note: {}", esc(n)));
        }
        page.finish()
    }

    /// Write `self` as pretty JSON under `dir/<id>.json`, returning the
    /// path.
    ///
    /// # Errors
    /// I/O errors from creating the directory or writing the file.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_value().to_json_pretty().as_bytes())?;
        Ok(path)
    }

    /// The default output directory: `MULTIGRAIN_EXPERIMENTS_DIR` when set,
    /// else `target/experiments` anchored at the workspace root — not the
    /// current working directory, so binaries launched from a crate
    /// directory and from the workspace root agree on where output goes.
    pub fn default_dir() -> PathBuf {
        if let Some(dir) = std::env::var_os("MULTIGRAIN_EXPERIMENTS_DIR") {
            if !dir.is_empty() {
                return PathBuf::from(dir);
            }
        }
        // crates/experiments -> crates -> workspace root.
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crate lives two levels below the workspace root")
            .join("target")
            .join("experiments")
    }

    /// Worst |measured/paper − 1| over rows that have references. Rows
    /// whose ratio is undefined or non-finite ([`Row::ratio`]) are skipped
    /// so one degenerate reference cannot poison the fold.
    pub fn worst_relative_error(&self) -> Option<f64> {
        self.rows
            .iter()
            .filter_map(|r| r.ratio())
            .map(|q| (q - 1.0).abs())
            .filter(|e| e.is_finite())
            .fold(None, |acc, e| Some(acc.map_or(e, |a: f64| a.max(e))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Experiment {
        let mut e = Experiment::new("t", "demo");
        e.rows.push(Row::with_paper("one", 2.0, 2.0));
        e.rows.push(Row::with_paper("two", 3.0, 2.0));
        e.rows.push(Row::measured_only("three", 9.0));
        e.series.push(Series { label: "curve".into(), points: vec![(1, 1.0), (2, 4.0)] });
        e.notes.push("a note".into());
        e
    }

    #[test]
    fn ratio_and_worst_error() {
        let e = sample();
        assert_eq!(e.rows[0].ratio(), Some(1.0));
        assert_eq!(e.rows[1].ratio(), Some(1.5));
        assert_eq!(e.rows[2].ratio(), None);
        assert!((e.worst_relative_error().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn text_rendering_mentions_everything() {
        let txt = sample().render_text();
        assert!(txt.contains("demo"));
        assert!(txt.contains("one"));
        assert!(txt.contains("curve"));
        assert!(txt.contains("a note"));
        assert!(txt.contains("1.50"));
    }

    #[test]
    fn html_rendering_is_self_contained_with_na_for_missing_refs() {
        let html = sample().render_html();
        assert!(html.starts_with("<!DOCTYPE html>"));
        for needle in ["http://", "https://", "<script", "src="] {
            assert!(!html.contains(needle), "found {needle}");
        }
        // "three" has no paper reference: its cells say n/a, not NaN.
        assert!(html.contains("<td>three</td><td>9.00</td><td>n/a</td><td>n/a</td>"));
        assert!(html.contains("1.50"));
        assert!(html.contains("series: curve"));
        assert_eq!(html, sample().render_html(), "byte-deterministic");
    }

    #[test]
    fn json_round_trips() {
        let e = sample();
        let json = e.to_value().to_json();
        let back = Experiment::from_value(&minijson::parse(&json).unwrap()).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn json_file_write() {
        let dir = std::env::temp_dir().join(format!("mg-exp-{}", std::process::id()));
        let path = sample().write_json(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"id\": \"t\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_experiment_has_no_error() {
        assert_eq!(Experiment::new("x", "y").worst_relative_error(), None);
    }

    #[test]
    fn degenerate_paper_references_do_not_poison_ratios() {
        // Regression: a zero or non-finite reference used to produce an
        // inf/NaN ratio that either poisoned or was silently dropped by
        // the worst-error fold.
        assert_eq!(Row::with_paper("zero", 1.0, 0.0).ratio(), None);
        assert_eq!(Row::with_paper("nan-paper", 1.0, f64::NAN).ratio(), None);
        assert_eq!(Row::with_paper("inf-paper", 1.0, f64::INFINITY).ratio(), None);
        assert_eq!(Row::with_paper("nan-measured", f64::NAN, 2.0).ratio(), None);
        // 0/0 is NaN, 1/0 is inf: both must vanish, not propagate.
        assert_eq!(Row::with_paper("zero-zero", 0.0, 0.0).ratio(), None);

        let mut e = Experiment::new("t", "degenerate");
        e.rows.push(Row::with_paper("good", 3.0, 2.0));
        e.rows.push(Row::with_paper("zero", 1.0, 0.0));
        e.rows.push(Row::with_paper("nan", f64::NAN, 2.0));
        let worst = e.worst_relative_error().unwrap();
        assert!((worst - 0.5).abs() < 1e-12, "got {worst}");

        // Only degenerate rows: no error at all, rather than inf/NaN.
        let mut e = Experiment::new("t", "all-bad");
        e.rows.push(Row::with_paper("zero", 1.0, 0.0));
        assert_eq!(e.worst_relative_error(), None);
    }

    #[test]
    fn default_dir_is_anchored_at_the_workspace_root() {
        // Regression: the directory used to be cwd-relative, scattering
        // output depending on where a binary was launched.
        let dir = Experiment::default_dir();
        assert!(dir.is_absolute(), "default dir must not depend on the cwd: {dir:?}");
        assert!(dir.ends_with("target/experiments"), "got {dir:?}");
        let root = dir.parent().and_then(Path::parent).unwrap();
        assert!(root.join("Cargo.toml").exists(), "{root:?} is not the workspace root");
    }
}
