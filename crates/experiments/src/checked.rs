//! Invariant-checked simulation runs.
//!
//! Every table/figure regeneration in this crate funnels its `cellsim`
//! runs through [`checked_run`], which forces structured event recording,
//! hands the resulting [`cellsim::RunLog`] to `mgps-analysis`, and
//! accumulates the verdicts in a process-wide tally. Violations are
//! reported on stderr as they are found; `multigrain analyze` (and the
//! `all` bin) read the tally afterwards with [`tally`] / [`assert_clean`].

use std::sync::Mutex;

use cellsim::machine::{run, RunReport, SimConfig};
use mgps_analysis::check_run;

/// Accumulated checker verdicts across every [`checked_run`] so far.
#[derive(Debug, Clone, Default)]
pub struct CheckTally {
    /// Simulation runs checked.
    pub runs: u64,
    /// Events examined across those runs.
    pub events: u64,
    /// Rendered violations, each prefixed with its run's scheduler tag.
    pub violations: Vec<String>,
}

static TALLY: Mutex<CheckTally> =
    Mutex::new(CheckTally { runs: 0, events: 0, violations: Vec::new() });

/// Run one simulation with event recording on, check every schedule
/// invariant over its log, and fold the verdict into the global tally.
///
/// Drop-in replacement for [`cellsim::machine::run`]; the returned report
/// additionally carries the recorded `run_log`.
pub fn checked_run(mut cfg: SimConfig) -> RunReport {
    cfg.record_events = true;
    let report = run(cfg);
    let log = report.run_log.as_ref().expect("record_events was set");
    let check = check_run(log);
    let mut t = TALLY.lock().unwrap();
    t.runs += 1;
    t.events += check.events_checked as u64;
    for v in &check.violations {
        let line = format!("[{} seed={:#x}] {v}", log.scheduler, log.seed);
        eprintln!("invariant violation: {line}");
        t.violations.push(line);
    }
    report
}

/// Snapshot the global tally.
pub fn tally() -> CheckTally {
    TALLY.lock().unwrap().clone()
}

/// Reset the global tally (tests and repeated `analyze` passes).
pub fn reset_tally() {
    *TALLY.lock().unwrap() = CheckTally::default();
}

/// Panic if any checked run violated an invariant.
///
/// # Panics
/// Panics with the full violation list when the tally is not clean.
pub fn assert_clean() {
    let t = tally();
    assert!(
        t.violations.is_empty(),
        "{} invariant violation(s) across {} checked run(s):\n{}",
        t.violations.len(),
        t.runs,
        t.violations.join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgps_runtime::policy::SchedulerKind;

    #[test]
    fn checked_run_records_and_tallies() {
        let report = checked_run(SimConfig::cell_42sc(SchedulerKind::Edtlp, 1, 2000));
        assert!(report.run_log.is_some(), "event log must be recorded");
        let t = tally();
        assert!(t.runs >= 1);
        assert!(t.events > 0);
    }
}
