//! Golden determinism contract for the granularity atlas: the seeded
//! 2×2×2×5 `mini` grid must reproduce byte-identical JSON and HTML
//! across independent re-runs, validate against `mgps-atlas/v1`, keep
//! every blame partition equal to its cell's makespan, and detect at
//! least one crossover frontier.

use experiments::{sweep, SweepConfig};
use minijson::Value;
use mgps_obs::atlas::ATLAS_SCHEMA;
use mgps_obs::GridSpec;

fn mini_config() -> SweepConfig {
    let mut cfg = SweepConfig::new(GridSpec::preset("mini").expect("mini preset"));
    cfg.seed = 7;
    cfg.scale = 4_000;
    cfg.n_bootstraps = 2;
    cfg
}

#[test]
fn mini_atlas_is_golden() {
    let cfg = mini_config();
    let first = sweep(&cfg);
    let second = sweep(&cfg);

    // The golden property: identical bytes, not merely identical values.
    let json = first.to_json();
    assert_eq!(json, second.to_json(), "mini atlas JSON must be byte-identical across re-runs");
    assert_eq!(
        first.render_html(),
        second.render_html(),
        "mini atlas HTML must be byte-identical across re-runs"
    );

    // Schema and shape of the document.
    let doc = minijson::parse(&json).expect("atlas JSON parses");
    assert_eq!(doc.get("schema").and_then(Value::as_str), Some(ATLAS_SCHEMA));
    assert_eq!(doc.get("seed").and_then(Value::as_u64), Some(7));
    let cells = doc.get("cells").and_then(Value::as_array).expect("cells");
    assert_eq!(cells.len(), 40, "2x2x2x5 mini grid runs 40 cells");

    // Every cell is checker-clean here, and its blame partition sums
    // exactly to its makespan.
    for cell in cells {
        assert_eq!(cell.get("violations").and_then(Value::as_u64), Some(0));
        assert_eq!(cell.get("degenerate").and_then(Value::as_bool), Some(false));
        let makespan = cell.get("makespan_ns").and_then(Value::as_u64).expect("makespan");
        let blame = cell.get("blame").expect("blame");
        let total: u64 = ["t_ppe", "t_wait", "t_spe", "t_code", "t_comm"]
            .iter()
            .map(|k| blame.get(k).and_then(Value::as_u64).expect("phase"))
            .sum();
        assert_eq!(total, makespan, "blame must partition the makespan exactly");
    }

    // The mini grid straddles at least one scheduler crossover.
    let frontier = doc.get("frontier").and_then(Value::as_array).expect("frontier");
    assert!(!frontier.is_empty(), "mini grid must detect a crossover frontier");
    assert!(!first.frontier().is_empty());

    // Winner bookkeeping: every decided point is won by someone.
    let winners = doc.get("winners").expect("winners");
    assert_eq!(winners.get("points").and_then(Value::as_u64), Some(8));
    assert_eq!(winners.get("decided").and_then(Value::as_u64), Some(8));
}
