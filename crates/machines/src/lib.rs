//! # `machines` — machine descriptions and cross-platform comparators
//!
//! Figure 10 of the paper compares one Cell BE against a dual Hyper-Threaded
//! Xeon SMP and an IBM Power5. The Cell side is the `cellsim` discrete-event
//! model; the conventional machines are analytic wave models calibrated to
//! the paper's curves ([`smt`]). [`cell`] provides blade configuration
//! helpers shared by the experiment harnesses.

#![warn(missing_docs)]

pub mod cell;
pub mod cluster;
pub mod smt;

pub use cell::{blade_config, cell_mgps_makespan, DEFAULT_SCALE};
pub use cluster::BladeCluster;
pub use smt::SmtMachine;
