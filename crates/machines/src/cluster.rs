//! Multi-blade scaling (§5.5).
//!
//! The paper's counter-argument to "real analyses need 100+ bootstraps, so
//! plain EDTLP always wins": once the job is spread across blades, each
//! blade sees only a slice of the bootstraps, task-level parallelism per
//! blade drops, and the multigrain scheduler re-earns its keep. "With 100
//! bootstraps, MGPS with multigrain (EDTLP-LLP) parallelism will outperform
//! plain EDTLP if the bootstraps are distributed between four or more
//! dual-Cell blades."
//!
//! [`BladeCluster`] models an MPI job over `blades` independent blades:
//! bootstraps are distributed as evenly as possible and each blade is
//! simulated in full; the cluster makespan is the slowest blade.

use cellsim::machine::run;
use mgps_runtime::policy::SchedulerKind;

use crate::cell::blade_config;

/// A cluster of identical Cell blades.
#[derive(Debug, Clone, Copy)]
pub struct BladeCluster {
    /// Number of blades.
    pub blades: usize,
    /// Cell processors per blade (2 in the paper's §5.5 hardware).
    pub cells_per_blade: usize,
}

impl BladeCluster {
    /// A cluster of dual-Cell blades, the paper's configuration.
    pub fn dual_cell(blades: usize) -> BladeCluster {
        assert!(blades >= 1, "need at least one blade");
        BladeCluster { blades, cells_per_blade: 2 }
    }

    /// Bootstraps assigned to each blade under even distribution.
    pub fn shares(&self, n_bootstraps: usize) -> Vec<usize> {
        (0..self.blades)
            .map(|b| n_bootstraps / self.blades + usize::from(b < n_bootstraps % self.blades))
            .filter(|&s| s > 0)
            .collect()
    }

    /// Cluster makespan (paper-scale seconds) for `n_bootstraps` under
    /// `scheduler`: every blade simulated, slowest blade wins.
    pub fn makespan(&self, scheduler: SchedulerKind, n_bootstraps: usize, scale: usize) -> f64 {
        self.shares(n_bootstraps)
            .into_iter()
            .map(|share| {
                run(blade_config(self.cells_per_blade, scheduler, share, scale)).paper_scale_secs
            })
            .fold(0.0f64, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: usize = 2_000;

    #[test]
    fn shares_are_even_and_complete() {
        let c = BladeCluster::dual_cell(4);
        let shares = c.shares(100);
        assert_eq!(shares.iter().sum::<usize>(), 100);
        assert_eq!(shares, vec![25, 25, 25, 25]);
        let c3 = BladeCluster::dual_cell(3);
        assert_eq!(c3.shares(100), vec![34, 33, 33]);
        // More blades than bootstraps: empty blades are dropped.
        let c8 = BladeCluster::dual_cell(8);
        assert_eq!(c8.shares(3).len(), 3);
    }

    #[test]
    fn more_blades_never_hurt() {
        let mut last = f64::INFINITY;
        for blades in [1usize, 2, 4, 8] {
            let t = BladeCluster::dual_cell(blades).makespan(SchedulerKind::Edtlp, 64, SCALE);
            assert!(t <= last * 1.01, "{blades} blades: {t}s after {last}s");
            last = t;
        }
    }

    /// §5.5's qualitative claim: distributing a 100-bootstrap analysis over
    /// enough blades drops per-blade task parallelism below the SPE count,
    /// and MGPS re-earns its keep over plain EDTLP.
    ///
    /// Quantitatively the paper says "four or more dual-Cell blades"
    /// (25 bootstraps/blade); in our simulation — and, notably, in the
    /// paper's own Figure 9(b), where the MGPS and EDTLP curves overlap
    /// from ~24 bootstraps — the crossover sits at ≤ 8 bootstraps per
    /// dual-Cell blade, i.e. ≥ 13 blades for 100 bootstraps. We test the
    /// mechanism at that measured crossover and record the discrepancy in
    /// EXPERIMENTS.md.
    #[test]
    fn section_5_5_multigrain_wins_once_blades_dilute_tlp() {
        for blades in [13usize, 16, 25] {
            let c = BladeCluster::dual_cell(blades);
            let mgps = c.makespan(SchedulerKind::Mgps, 100, SCALE);
            let edtlp = c.makespan(SchedulerKind::Edtlp, 100, SCALE);
            assert!(
                mgps < edtlp * 0.998,
                "{blades} blades: MGPS {mgps:.2}s must beat EDTLP {edtlp:.2}s"
            );
        }
        // Strong win once per-blade TLP is well under the SPE count.
        let c16 = BladeCluster::dual_cell(16);
        let mgps = c16.makespan(SchedulerKind::Mgps, 100, SCALE);
        let edtlp = c16.makespan(SchedulerKind::Edtlp, 100, SCALE);
        assert!(
            mgps < edtlp * 0.90,
            "16 blades (~7 bootstraps each): MGPS {mgps:.2}s vs EDTLP {edtlp:.2}s"
        );
        // On a single blade the two coincide (TLP saturates the SPEs).
        let c1 = BladeCluster::dual_cell(1);
        let mgps = c1.makespan(SchedulerKind::Mgps, 100, SCALE);
        let edtlp = c1.makespan(SchedulerKind::Edtlp, 100, SCALE);
        assert!(
            (mgps / edtlp - 1.0).abs() < 0.02,
            "1 blade: MGPS {mgps:.2}s vs EDTLP {edtlp:.2}s should coincide"
        );
    }
}
