//! Analytic models of the comparison machines in Figure 10.
//!
//! The paper compares one Cell against
//!
//! * a **dual-processor Intel Xeon** (2 GHz, Hyper-Threading: 2 sockets ×
//!   2 contexts, deliberately "stirring the comparison in favor of the
//!   Xeon" — the abstract's 4× claim is against a *single* Xeon), and
//! * an **IBM Power5** (1.65 GHz, 2 cores × 2 SMT threads).
//!
//! Both run the plain MPI version of RAxML: `n` independent bootstraps
//! scheduled across hardware contexts. For such embarrassingly parallel
//! work an analytic throughput model suffices: each core processes its
//! share of bootstraps in waves; a wave that co-schedules two threads on
//! one core runs each at an SMT-slowdown factor.
//!
//! Calibration (42_SC workload, from the Figure 10 curves):
//!
//! * Xeon: 25 s per bootstrap single-thread, HT slowdown 1.7× → 16
//!   bootstraps on 2×2 contexts ≈ 170 s (the figure's top curve), and on a
//!   *single* Xeon ≈ 340 s ≈ 4× one Cell (the abstract's claim);
//! * Power5: 16.4 s per bootstrap single-thread, SMT slowdown 1.45× → 16
//!   bootstraps ≈ 95 s, 5–10 % behind Cell+MGPS, while winning below 8
//!   bootstraps.

/// An SMP/SMT machine running independent bootstraps.
#[derive(Debug, Clone)]
pub struct SmtMachine {
    /// Display name for report rows.
    pub name: &'static str,
    /// Physical cores.
    pub cores: usize,
    /// Hardware threads per core.
    pub threads_per_core: usize,
    /// Seconds per bootstrap on one thread with its core otherwise idle.
    pub t_bootstrap: f64,
    /// Per-thread slowdown when all threads of a core are busy.
    pub smt_slowdown: f64,
}

impl SmtMachine {
    /// The dual-Xeon SMP of §5.6 (2 sockets × 2-way Hyper-Threading).
    pub fn xeon_smp() -> SmtMachine {
        SmtMachine {
            name: "Intel Xeon (2x 2-way HT)",
            cores: 2,
            threads_per_core: 2,
            t_bootstrap: 25.0,
            smt_slowdown: 1.7,
        }
    }

    /// A single Hyper-Threaded Xeon (the abstract's 4× comparison point).
    pub fn xeon_single() -> SmtMachine {
        SmtMachine { name: "Intel Xeon (1x 2-way HT)", cores: 1, ..SmtMachine::xeon_smp() }
    }

    /// The IBM Power5 of §5.6 (dual-core, quad-thread).
    pub fn power5() -> SmtMachine {
        SmtMachine {
            name: "IBM Power5 (2 cores x 2 SMT)",
            cores: 2,
            threads_per_core: 2,
            t_bootstrap: 16.4,
            smt_slowdown: 1.45,
        }
    }

    /// Total hardware contexts.
    pub fn contexts(&self) -> usize {
        self.cores * self.threads_per_core
    }

    /// Per-thread slowdown for a wave running `k` threads on one core:
    /// linear interpolation between solo (1.0) and fully shared
    /// (`smt_slowdown`).
    fn wave_slowdown(&self, k: usize) -> f64 {
        debug_assert!(k >= 1 && k <= self.threads_per_core);
        if self.threads_per_core == 1 || k == 1 {
            1.0
        } else {
            let frac = (k - 1) as f64 / (self.threads_per_core - 1) as f64;
            1.0 + frac * (self.smt_slowdown - 1.0)
        }
    }

    /// Makespan (seconds) of `n` independent bootstraps.
    ///
    /// Bootstraps are spread over cores as evenly as possible; each core
    /// then runs waves of up to `threads_per_core` concurrent bootstraps.
    pub fn makespan(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let mut worst: f64 = 0.0;
        for core in 0..self.cores {
            // Core `core` gets ceil-ish share of the bootstraps.
            let share = n / self.cores + usize::from(core < n % self.cores);
            let mut remaining = share;
            let mut t = 0.0;
            while remaining > 0 {
                let wave = remaining.min(self.threads_per_core);
                t += self.t_bootstrap * self.wave_slowdown(wave);
                remaining -= wave;
            }
            worst = worst.max(t);
        }
        worst
    }

    /// Aggregate bootstrap throughput at saturation (bootstraps/second).
    pub fn saturated_throughput(&self) -> f64 {
        self.cores as f64 * self.threads_per_core as f64
            / (self.t_bootstrap * self.smt_slowdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bootstrap_runs_solo() {
        assert_eq!(SmtMachine::xeon_smp().makespan(1), 25.0);
        assert_eq!(SmtMachine::power5().makespan(1), 16.4);
    }

    #[test]
    fn zero_bootstraps_take_no_time() {
        assert_eq!(SmtMachine::xeon_smp().makespan(0), 0.0);
    }

    #[test]
    fn two_bootstraps_use_separate_cores() {
        // One per core: no SMT sharing yet.
        assert_eq!(SmtMachine::xeon_smp().makespan(2), 25.0);
        assert_eq!(SmtMachine::power5().makespan(2), 16.4);
    }

    #[test]
    fn four_bootstraps_share_cores() {
        let x = SmtMachine::xeon_smp();
        assert!((x.makespan(4) - 25.0 * 1.7).abs() < 1e-9);
    }

    #[test]
    fn odd_counts_leave_one_solo_wave() {
        let x = SmtMachine::xeon_smp();
        // 3 bootstraps: core0 runs 2 (shared), core1 runs 1 (solo).
        assert!((x.makespan(3) - 25.0 * 1.7).abs() < 1e-9);
        // 5: core0 gets 3 → one shared wave + one solo = 42.5 + 25.
        assert!((x.makespan(5) - (42.5 + 25.0)).abs() < 1e-9);
    }

    #[test]
    fn xeon_16_bootstraps_matches_figure_10a() {
        let t = SmtMachine::xeon_smp().makespan(16);
        assert!((t - 170.0).abs() < 5.0, "dual Xeon at 16 bootstraps: {t}s (figure ~170s)");
    }

    #[test]
    fn single_xeon_is_4x_one_cell() {
        // One Cell runs 16 bootstraps in ~86-90s (Table 1 extrapolated).
        let t = SmtMachine::xeon_single().makespan(16);
        let ratio = t / 88.0;
        assert!((3.5..=4.5).contains(&ratio), "abstract claims ~4x; got {ratio}");
    }

    #[test]
    fn power5_16_bootstraps_is_5_to_10_percent_behind_cell() {
        let t = SmtMachine::power5().makespan(16);
        let cell = 88.55; // simulated Cell EDTLP/MGPS at 16 bootstraps
        let margin = t / cell;
        assert!(
            (1.02..=1.15).contains(&margin),
            "Power5/Cell at 16 bootstraps = {margin} (paper: 1.05-1.10)"
        );
    }

    #[test]
    fn power5_wins_at_one_bootstrap() {
        // Below 8 bootstraps the Power5 is competitive; at 1 it beats the
        // Cell's MGPS time (~19-21s).
        assert!(SmtMachine::power5().makespan(1) < 19.0);
    }

    #[test]
    fn makespan_is_monotone_in_n() {
        for m in [SmtMachine::xeon_smp(), SmtMachine::power5(), SmtMachine::xeon_single()] {
            let mut last = 0.0;
            for n in 1..=64 {
                let t = m.makespan(n);
                assert!(t >= last, "{}: makespan({n}) = {t} < {last}", m.name);
                last = t;
            }
        }
    }

    #[test]
    fn saturated_throughput_matches_large_n_slope() {
        let m = SmtMachine::power5();
        let t128 = m.makespan(128);
        let t256 = m.makespan(256);
        let slope = 128.0 / (t256 - t128);
        assert!((slope - m.saturated_throughput()).abs() / slope < 0.05);
    }
}
