//! Cell blade configurations for the cross-machine experiments.

use cellsim::machine::SimConfig;
use cellsim::params::CellParams;
use mgps_runtime::policy::SchedulerKind;

/// The default workload-reduction factor used by the experiment harnesses:
/// durations stay exact; task counts shrink 500× (reported makespans are
/// re-scaled). See `RaxmlWorkload::scaled`.
pub const DEFAULT_SCALE: usize = 500;

/// A simulation config for `n_bootstraps` on a blade with `n_cells` Cell
/// processors under `scheduler`.
pub fn blade_config(
    n_cells: usize,
    scheduler: SchedulerKind,
    n_bootstraps: usize,
    scale: usize,
) -> SimConfig {
    let mut cfg = SimConfig::cell_42sc(scheduler, n_bootstraps, scale);
    cfg.params = CellParams::blade(n_cells);
    cfg
}

/// Run `n_bootstraps` on one Cell with the MGPS scheduler and return the
/// paper-scale makespan in seconds (the Cell curve of Figure 10).
pub fn cell_mgps_makespan(n_bootstraps: usize, scale: usize) -> f64 {
    cellsim::machine::run(blade_config(1, SchedulerKind::Mgps, n_bootstraps, scale))
        .paper_scale_secs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blade_config_sets_cell_count() {
        let c = blade_config(2, SchedulerKind::Edtlp, 4, 2_000);
        assert_eq!(c.params.n_spes(), 16);
        assert_eq!(c.n_bootstraps, 4);
    }

    #[test]
    fn cell_mgps_beats_xeon_everywhere() {
        let xeon = crate::smt::SmtMachine::xeon_smp();
        for n in [1, 4, 8, 16] {
            let cell = cell_mgps_makespan(n, 2_000);
            let x = xeon.makespan(n);
            assert!(cell < x, "n={n}: Cell {cell}s vs Xeon {x}s");
        }
    }

    #[test]
    fn cell_edges_power5_at_scale_but_not_small() {
        let p5 = crate::smt::SmtMachine::power5();
        let cell_1 = cell_mgps_makespan(1, 2_000);
        assert!(p5.makespan(1) < cell_1, "Power5 wins at 1 bootstrap");
        let cell_16 = cell_mgps_makespan(16, 2_000);
        let margin = p5.makespan(16) / cell_16;
        assert!(margin > 1.0, "Cell must edge Power5 at 16 bootstraps (margin {margin})");
    }
}
