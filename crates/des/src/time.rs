//! Simulated time.
//!
//! The engine measures time in integer **nanoseconds** from the start of the
//! simulation. Integer time keeps the event queue total-ordered and the
//! simulation bit-reproducible across runs and platforms; nanosecond
//! resolution is fine enough for the micro-architectural costs the Cell
//! model cares about (a PPE context switch is 1,500 ns) while still allowing
//! multi-hour simulated horizons in a `u64`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Time zero: the start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since simulation start.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since simulation start (truncating).
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Time since simulation start in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; simulated clocks never run
    /// backwards, so this always indicates a bug in the caller.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: `earlier` is in the future"),
        )
    }

    /// Saturating version of [`SimTime::since`]: returns zero if `earlier`
    /// is in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration of `n` nanoseconds.
    #[inline]
    pub const fn from_nanos(n: u64) -> SimDuration {
        SimDuration(n)
    }

    /// A duration of `n` microseconds.
    #[inline]
    pub const fn from_micros(n: u64) -> SimDuration {
        SimDuration(n * 1_000)
    }

    /// A duration of `n` milliseconds.
    #[inline]
    pub const fn from_millis(n: u64) -> SimDuration {
        SimDuration(n * 1_000_000)
    }

    /// A duration of `n` whole seconds.
    #[inline]
    pub const fn from_secs(n: u64) -> SimDuration {
        SimDuration(n * 1_000_000_000)
    }

    /// A duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> SimDuration {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e9).round() as u64)
    }

    /// A duration from fractional microseconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero.
    #[inline]
    pub fn from_micros_f64(us: f64) -> SimDuration {
        if !us.is_finite() || us <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((us * 1e3).round() as u64)
    }

    /// Length in nanoseconds.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in whole microseconds (truncating).
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Length in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True if this duration is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale by a non-negative factor, rounding to the nearest nanosecond.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "durations cannot be negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&SimDuration(self.0), f)
    }
}

impl fmt::Display for SimDuration {
    /// Human-readable rendering with an automatically chosen unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_micros(96).as_nanos(), 96_000);
        assert_eq!(SimDuration::from_millis(10).as_micros(), 10_000);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_micros_f64(1.5).as_nanos(), 1_500);
    }

    #[test]
    fn negative_and_nan_float_durations_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_micros_f64(f64::NEG_INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_micros(5);
        assert_eq!(t.as_nanos(), 5_000);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_micros(5));
        assert_eq!((t + SimDuration::from_nanos(1)).since(t), SimDuration::from_nanos(1));
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn since_panics_when_clock_would_run_backwards() {
        let t = SimTime(5);
        let later = SimTime(10);
        let _ = t.since(later);
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(SimTime(5).saturating_since(SimTime(10)), SimDuration::ZERO);
        assert_eq!(SimTime(10).saturating_since(SimTime(4)), SimDuration(6));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(100);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(50));
        assert_eq!(d * 3, SimDuration::from_micros(300));
        assert_eq!(d / 4, SimDuration::from_micros(25));
        assert_eq!(d.saturating_sub(SimDuration::from_secs(1)), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(96).to_string(), "96.000us");
        assert_eq!(SimDuration::from_millis(10).to_string(), "10.000ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }
}
