//! The simulation core: a clock plus a deterministic future-event list.
//!
//! [`Sim`] is generic over a user-supplied model type `M`. Events are
//! `FnOnce(&mut Sim<M>)` closures; when an event fires it may inspect and
//! mutate the model (via [`Sim::model_mut`]) and schedule further events.
//! Two events scheduled for the same instant fire in the order they were
//! scheduled (FIFO tie-breaking on a monotone sequence number), which makes
//! every run bit-reproducible.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceRecord};

/// Identifies a scheduled event so it can be cancelled before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// A boxed event body.
pub type EventFn<M> = Box<dyn FnOnce(&mut Sim<M>)>;

struct Scheduled<M> {
    at: SimTime,
    id: EventId,
    body: EventFn<M>,
}

// Ordering for the max-heap: earliest time first, then lowest id (FIFO).
impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.id == other.id
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, id) pops first.
        (other.at, other.id).cmp(&(self.at, self.id))
    }
}

/// A discrete-event simulator owning a model of type `M`.
pub struct Sim<M> {
    now: SimTime,
    next_id: u64,
    heap: BinaryHeap<Scheduled<M>>,
    cancelled: HashSet<EventId>,
    executed: u64,
    model: M,
    trace: Trace,
}

impl<M> Sim<M> {
    /// Create a simulator at time zero owning `model`.
    pub fn new(model: M) -> Self {
        Sim {
            now: SimTime::ZERO,
            next_id: 0,
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            executed: 0,
            model,
            trace: Trace::disabled(),
        }
    }

    /// Enable tracing with the given capacity (older records are dropped
    /// once the capacity is reached).
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace = Trace::with_capacity(capacity);
        self
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending (including cancelled ones not yet
    /// reaped).
    #[inline]
    pub fn events_pending(&self) -> usize {
        self.heap.len().saturating_sub(self.cancelled.len())
    }

    /// Entries held by the internal future-event list, cancelled-but-unreaped
    /// ones included. Exposed so tests can assert that heavy cancellation
    /// does not grow the queue without bound.
    #[inline]
    pub fn queue_len(&self) -> usize {
        self.heap.len()
    }

    /// Shared access to the model.
    #[inline]
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive access to the model.
    #[inline]
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consume the simulator, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Append a record to the trace (no-op when tracing is disabled).
    pub fn trace(&mut self, label: impl FnOnce() -> String) {
        if self.trace.is_enabled() {
            let now = self.now;
            self.trace.push(TraceRecord { at: now, label: label() });
        }
    }

    /// The trace collected so far.
    pub fn trace_records(&self) -> &[TraceRecord] {
        self.trace.records()
    }

    /// Schedule `body` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past: events cannot rewrite history.
    pub fn schedule_at(&mut self, at: SimTime, body: impl FnOnce(&mut Sim<M>) + 'static) -> EventId {
        assert!(at >= self.now, "cannot schedule an event in the past ({at} < {})", self.now);
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.heap.push(Scheduled { at, id, body: Box::new(body) });
        id
    }

    /// Schedule `body` to fire `after` from now.
    pub fn schedule_in(
        &mut self,
        after: SimDuration,
        body: impl FnOnce(&mut Sim<M>) + 'static,
    ) -> EventId {
        let at = self.now + after;
        self.schedule_at(at, body)
    }

    /// Schedule `body` to fire at the current instant, after all events
    /// already scheduled for this instant.
    pub fn schedule_now(&mut self, body: impl FnOnce(&mut Sim<M>) + 'static) -> EventId {
        self.schedule_at(self.now, body)
    }

    /// Cancel a pending event. Returns `true` if the event had not yet fired
    /// (and had not already been cancelled — though after a compaction pass
    /// has reaped the event, a repeated cancel of the same id may report
    /// `true` again).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_id {
            return false;
        }
        // We cannot cheaply tell "already fired" from "pending" without a
        // side table, so record the cancellation and let the pop path drop
        // it. Inserting an id that already fired is harmless: it can never
        // be popped again.
        let fresh = self.cancelled.insert(id);
        // Lazy compaction: once cancellations outweigh half the queue, the
        // heap is mostly dead entries (or the cancelled set is mostly ids
        // that already fired). Rebuild both so long-horizon runs with heavy
        // cancellation stay bounded instead of reaping only on pop.
        if self.cancelled.len() > self.heap.len() / 2 {
            self.compact();
        }
        fresh
    }

    /// Drop every cancelled entry from the heap and clear the cancelled set.
    /// Ids left in the set but absent from the heap have already fired and
    /// can never pop again, so forgetting them is safe.
    fn compact(&mut self) {
        let heap = std::mem::take(&mut self.heap);
        let cancelled = std::mem::take(&mut self.cancelled);
        self.heap = heap.into_iter().filter(|ev| !cancelled.contains(&ev.id)).collect();
    }

    /// Execute the next event, if any. Returns `false` when the future-event
    /// list is empty.
    pub fn step(&mut self) -> bool {
        while let Some(ev) = self.heap.pop() {
            if self.cancelled.remove(&ev.id) {
                continue;
            }
            debug_assert!(ev.at >= self.now);
            self.now = ev.at;
            self.executed += 1;
            (ev.body)(self);
            return true;
        }
        false
    }

    /// Run until the future-event list is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until the clock would pass `deadline`; events at exactly
    /// `deadline` are executed. The clock is left at
    /// `min(deadline, time of last event)`.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            // Peek past cancelled entries without executing.
            let next_at = loop {
                match self.heap.peek() {
                    None => return,
                    Some(ev) if self.cancelled.contains(&ev.id) => {
                        let ev = self.heap.pop().expect("peeked entry vanished");
                        self.cancelled.remove(&ev.id);
                    }
                    Some(ev) => break ev.at,
                }
            };
            if next_at > deadline {
                return;
            }
            self.step();
        }
    }

    /// Run for a span of simulated time from now.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now + span;
        self.run_until(deadline);
        // If the event list drained early the clock lags; advance it so that
        // back-to-back `run_for` calls cover contiguous windows.
        if self.now < deadline {
            self.now = deadline;
        }
    }
}

impl<M: Default> Default for Sim<M> {
    fn default() -> Self {
        Sim::new(M::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Default)]
    struct Log(Vec<(u64, &'static str)>);

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(Log::default());
        fn push(s: &mut Sim<Log>, name: &'static str) {
            let t = s.now().0;
            s.model_mut().0.push((t, name));
        }
        sim.schedule_at(SimTime(30), |s| push(s, "c"));
        sim.schedule_at(SimTime(10), |s| push(s, "a"));
        sim.schedule_at(SimTime(20), |s| push(s, "b"));
        sim.run();
        assert_eq!(sim.model().0, vec![(10, "a"), (20, "b"), (30, "c")]);
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn same_time_events_fire_fifo() {
        let mut sim = Sim::new(Log::default());
        for (i, name) in ["first", "second", "third", "fourth"].iter().enumerate() {
            let name: &'static str = name;
            sim.schedule_at(SimTime(5), move |s| s.model_mut().0.push((i as u64, name)));
        }
        sim.run();
        let names: Vec<_> = sim.model().0.iter().map(|&(_, n)| n).collect();
        assert_eq!(names, vec!["first", "second", "third", "fourth"]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new(Log::default());
        fn push(s: &mut Sim<Log>, name: &'static str) {
            let t = s.now().0;
            s.model_mut().0.push((t, name));
        }
        sim.schedule_at(SimTime(1), |s| {
            push(s, "outer");
            s.schedule_in(SimDuration(9), |s| push(s, "inner"));
        });
        sim.run();
        assert_eq!(sim.model().0, vec![(1, "outer"), (10, "inner")]);
    }

    #[test]
    fn schedule_now_runs_after_events_already_due() {
        let mut sim = Sim::new(Log::default());
        fn push(s: &mut Sim<Log>, name: &'static str) {
            let t = s.now().0;
            s.model_mut().0.push((t, name));
        }
        sim.schedule_at(SimTime::ZERO, |s| {
            s.schedule_now(|s| push(s, "late"));
            push(s, "early");
        });
        sim.schedule_at(SimTime::ZERO, |s| push(s, "mid"));
        sim.run();
        let names: Vec<_> = sim.model().0.iter().map(|&(_, n)| n).collect();
        assert_eq!(names, vec!["early", "mid", "late"]);
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim = Sim::new(Log::default());
        let id = sim.schedule_at(SimTime(5), |s| s.model_mut().0.push((5, "cancelled")));
        sim.schedule_at(SimTime(6), |s| s.model_mut().0.push((6, "kept")));
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double-cancel reports false");
        sim.run();
        assert_eq!(sim.model().0, vec![(6, "kept")]);
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut sim = Sim::new(Log::default());
        assert!(!sim.cancel(EventId(42)));
    }

    #[test]
    fn run_until_stops_at_deadline_inclusive() {
        let mut sim = Sim::new(Log::default());
        sim.schedule_at(SimTime(10), |s| s.model_mut().0.push((10, "in")));
        sim.schedule_at(SimTime(11), |s| s.model_mut().0.push((11, "out")));
        sim.run_until(SimTime(10));
        assert_eq!(sim.model().0, vec![(10, "in")]);
        assert_eq!(sim.events_pending(), 1);
        sim.run();
        assert_eq!(sim.model().0.len(), 2);
    }

    #[test]
    fn run_for_advances_clock_even_when_idle() {
        let mut sim = Sim::new(Log::default());
        sim.run_for(SimDuration::from_micros(7));
        assert_eq!(sim.now(), SimTime(7_000));
        sim.run_for(SimDuration::from_micros(3));
        assert_eq!(sim.now(), SimTime(10_000));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Sim::new(Log::default());
        sim.schedule_at(SimTime(10), |s| {
            s.schedule_at(SimTime(5), |_| {});
        });
        sim.run();
    }

    #[test]
    fn periodic_self_rescheduling_pattern() {
        // A timer that re-arms itself five times.
        let count = Rc::new(RefCell::new(0u32));
        fn tick(s: &mut Sim<Rc<RefCell<u32>>>) {
            *s.model().borrow_mut() += 1;
            if *s.model().borrow() < 5 {
                s.schedule_in(SimDuration::from_millis(10), tick);
            }
        }
        let mut sim = Sim::new(Rc::clone(&count));
        sim.schedule_now(tick);
        sim.run();
        assert_eq!(*count.borrow(), 5);
        assert_eq!(sim.now(), SimTime(40_000_000));
    }

    #[test]
    fn trace_records_when_enabled() {
        let mut sim = Sim::new(Log::default()).with_trace(16);
        sim.schedule_at(SimTime(3), |s| s.trace(|| "hello".to_string()));
        sim.run();
        assert_eq!(sim.trace_records().len(), 1);
        assert_eq!(sim.trace_records()[0].at, SimTime(3));
        assert_eq!(sim.trace_records()[0].label, "hello");
    }

    #[test]
    fn heavy_cancellation_keeps_queue_bounded() {
        // Regression: cancelled events used to sit in the heap until they
        // popped, so schedule-then-cancel churn grew the queue without
        // bound over a long horizon.
        let mut sim = Sim::new(Log::default());
        sim.schedule_at(SimTime(2_000_000), |s| s.model_mut().0.push((0, "keeper")));
        let mut high_water = 0usize;
        for round in 0..100_000u64 {
            let id = sim.schedule_at(SimTime(1_000_000 + round), |_| {
                panic!("cancelled event fired");
            });
            assert!(sim.cancel(id));
            high_water = high_water.max(sim.queue_len());
        }
        assert!(
            high_water <= 8,
            "queue grew to {high_water} entries under schedule/cancel churn"
        );
        assert_eq!(sim.events_pending(), 1);
        sim.run();
        assert_eq!(sim.model().0, vec![(0, "keeper")]);
    }

    #[test]
    fn compaction_preserves_survivors_and_order() {
        let mut sim = Sim::new(Log::default());
        // Interleave keepers with cancelled decoys so several compaction
        // passes run while keepers are in the heap.
        let mut decoys = Vec::new();
        for i in 0..50u64 {
            sim.schedule_at(SimTime(10 + i), move |s| {
                let t = s.now().0;
                s.model_mut().0.push((t, "keep"));
            });
            for j in 0..10u64 {
                decoys.push(sim.schedule_at(SimTime(500 + i * 10 + j), |_| {
                    panic!("cancelled event fired");
                }));
            }
        }
        for id in decoys {
            assert!(sim.cancel(id));
        }
        sim.run();
        let times: Vec<u64> = sim.model().0.iter().map(|&(t, _)| t).collect();
        assert_eq!(times, (10..60).collect::<Vec<_>>());
        assert_eq!(sim.events_executed(), 50);
    }

    #[test]
    fn cancelled_events_do_not_block_run_until() {
        let mut sim = Sim::new(Log::default());
        let id = sim.schedule_at(SimTime(5), |_| {});
        sim.cancel(id);
        sim.run_until(SimTime(100));
        assert_eq!(sim.events_executed(), 0);
        assert_eq!(sim.events_pending(), 0);
    }
}
