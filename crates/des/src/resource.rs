//! Waiting primitives for event-driven models.
//!
//! Because events are closures over `&mut Sim<M>`, a resource cannot invoke
//! a waiter directly while it is itself borrowed from the model. Instead,
//! [`Resource::release`] and [`WaitQueue::wake_one`] *return* the waiter
//! closure; the caller schedules it with [`crate::sim::Sim::schedule_now`].
//! This hand-off keeps the borrow checker happy without `RefCell`s and makes
//! wake-up ordering explicit and FIFO.

use std::collections::VecDeque;

use crate::sim::EventFn;

/// A counted resource (semaphore) with FIFO waiters.
pub struct Resource<M> {
    capacity: usize,
    in_use: usize,
    waiters: VecDeque<EventFn<M>>,
    /// Total number of grants ever made, for accounting.
    grants: u64,
}

impl<M> Resource<M> {
    /// A resource with `capacity` simultaneous holders.
    ///
    /// # Panics
    /// Panics if `capacity` is zero — a zero-capacity resource can never be
    /// acquired and always indicates a configuration bug.
    pub fn new(capacity: usize) -> Resource<M> {
        assert!(capacity > 0, "resource capacity must be positive");
        Resource { capacity, in_use: 0, waiters: VecDeque::new(), grants: 0 }
    }

    /// Units currently held.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Units currently free.
    pub fn available(&self) -> usize {
        self.capacity - self.in_use
    }

    /// Number of queued waiters.
    pub fn waiting(&self) -> usize {
        self.waiters.len()
    }

    /// Total number of grants made over the resource's lifetime.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Acquire one unit if available. Returns `true` on success.
    pub fn try_acquire(&mut self) -> bool {
        if self.in_use < self.capacity {
            self.in_use += 1;
            self.grants += 1;
            true
        } else {
            false
        }
    }

    /// Acquire one unit, or enqueue `waiter` to run (already holding the
    /// unit) when one frees up. Returns `true` if acquired immediately —
    /// in that case `waiter` is dropped unused.
    pub fn acquire_or_wait(&mut self, waiter: impl FnOnce(&mut crate::sim::Sim<M>) + 'static) -> bool {
        if self.try_acquire() {
            true
        } else {
            self.waiters.push_back(Box::new(waiter));
            false
        }
    }

    /// Release one unit. If a waiter is queued, the unit transfers to it and
    /// its closure is returned for the caller to schedule.
    ///
    /// # Panics
    /// Panics if nothing is held — a double release is always a model bug.
    #[must_use = "a returned waiter must be scheduled or it deadlocks"]
    pub fn release(&mut self) -> Option<EventFn<M>> {
        assert!(self.in_use > 0, "release of a resource that is not held");
        match self.waiters.pop_front() {
            Some(w) => {
                // Unit transfers: in_use stays the same.
                self.grants += 1;
                Some(w)
            }
            None => {
                self.in_use -= 1;
                None
            }
        }
    }
}

/// A FIFO queue of suspended waiters (a condition-variable analogue).
pub struct WaitQueue<M> {
    waiters: VecDeque<EventFn<M>>,
}

impl<M> Default for WaitQueue<M> {
    fn default() -> Self {
        WaitQueue { waiters: VecDeque::new() }
    }
}

impl<M> WaitQueue<M> {
    /// An empty queue.
    pub fn new() -> WaitQueue<M> {
        WaitQueue::default()
    }

    /// Number of suspended waiters.
    pub fn len(&self) -> usize {
        self.waiters.len()
    }

    /// True when no one is waiting.
    pub fn is_empty(&self) -> bool {
        self.waiters.is_empty()
    }

    /// Suspend `waiter` until woken.
    pub fn wait(&mut self, waiter: impl FnOnce(&mut crate::sim::Sim<M>) + 'static) {
        self.waiters.push_back(Box::new(waiter));
    }

    /// Pop the oldest waiter, if any, for the caller to schedule.
    #[must_use = "a returned waiter must be scheduled or it is lost"]
    pub fn wake_one(&mut self) -> Option<EventFn<M>> {
        self.waiters.pop_front()
    }

    /// Drain all waiters, in FIFO order, for the caller to schedule.
    #[must_use = "returned waiters must be scheduled or they are lost"]
    pub fn wake_all(&mut self) -> Vec<EventFn<M>> {
        self.waiters.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Sim;

    /// A model holding a resource plus an observation log. The resource is
    /// taken out of the model (`Option::take`) while events manipulate it,
    /// mirroring how larger models sidestep double borrows.
    struct M {
        res: Option<Resource<M>>,
        log: Vec<&'static str>,
    }

    #[test]
    fn try_acquire_until_exhausted() {
        let mut r: Resource<()> = Resource::new(2);
        assert!(r.try_acquire());
        assert!(r.try_acquire());
        assert!(!r.try_acquire());
        assert_eq!(r.in_use(), 2);
        assert_eq!(r.available(), 0);
        assert_eq!(r.grants(), 2);
    }

    #[test]
    fn release_without_waiters_frees_unit() {
        let mut r: Resource<()> = Resource::new(1);
        assert!(r.try_acquire());
        assert!(r.release().is_none());
        assert_eq!(r.in_use(), 0);
        assert!(r.try_acquire());
    }

    #[test]
    #[should_panic(expected = "not held")]
    fn double_release_panics() {
        let mut r: Resource<()> = Resource::new(1);
        let _ = r.release();
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: Resource<()> = Resource::new(0);
    }

    #[test]
    fn waiter_receives_unit_on_release() {
        let model = M { res: Some(Resource::new(1)), log: vec![] };
        let mut sim = Sim::new(model);
        sim.schedule_now(|s| {
            let mut res = s.model_mut().res.take().expect("resource present");
            assert!(res.try_acquire());
            let immediate = res.acquire_or_wait(|s| {
                s.model_mut().log.push("waiter-ran");
            });
            assert!(!immediate, "second acquire must queue");
            assert_eq!(res.waiting(), 1);
            // Holder releases: the unit transfers to the waiter.
            let w = res.release().expect("waiter transferred");
            assert_eq!(res.in_use(), 1, "unit stays accounted to the waiter");
            s.model_mut().res = Some(res);
            s.schedule_now(w);
        });
        sim.run();
        assert_eq!(sim.model().log, vec!["waiter-ran"]);
    }

    #[test]
    fn acquire_or_wait_succeeds_immediately_when_free() {
        let mut r: Resource<()> = Resource::new(1);
        let got = r.acquire_or_wait(|_| panic!("waiter must not be kept"));
        assert!(got);
        assert_eq!(r.waiting(), 0);
    }

    #[test]
    fn wait_queue_is_fifo() {
        let model = M { res: None, log: vec![] };
        let mut sim = Sim::new(model);
        let mut q: WaitQueue<M> = WaitQueue::new();
        q.wait(|s: &mut Sim<M>| s.model_mut().log.push("first"));
        q.wait(|s: &mut Sim<M>| s.model_mut().log.push("second"));
        assert_eq!(q.len(), 2);
        let w1 = q.wake_one().expect("first waiter");
        sim.schedule_now(w1);
        for w in q.wake_all() {
            sim.schedule_now(w);
        }
        assert!(q.is_empty());
        sim.run();
        assert_eq!(sim.model().log, vec!["first", "second"]);
    }
}
