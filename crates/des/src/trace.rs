//! Bounded execution traces.
//!
//! Traces serve two purposes: debugging a model, and *determinism testing* —
//! two runs of the same seeded model must produce byte-identical traces.
//! [`Trace::to_value`] serializes the collected records as JSON so they can
//! be archived, diffed, and statically checked by `mgps-analysis`.

use minijson::Value;

use crate::time::SimTime;

/// One timestamped trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated time at which the record was emitted.
    pub at: SimTime,
    /// Free-form label describing the event.
    pub label: String,
}

/// A bounded, append-only trace. When full, new records are dropped (the
/// prefix of a run is the interesting part for determinism checks) and the
/// drop count is recorded.
#[derive(Debug, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

impl Trace {
    /// A trace that records nothing.
    pub fn disabled() -> Trace {
        Trace::default()
    }

    /// An enabled trace holding at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> Trace {
        Trace { records: Vec::new(), capacity, dropped: 0, enabled: true }
    }

    /// Whether records are being collected.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append a record, dropping it if the trace is full or disabled.
    pub fn push(&mut self, record: TraceRecord) {
        if !self.enabled {
            return;
        }
        if self.records.len() < self.capacity {
            self.records.push(record);
        } else {
            self.dropped += 1;
        }
    }

    /// Records collected so far, in emission order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records dropped because the trace was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the trace as one line per record, for golden-file comparison.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&format!("{} {}\n", r.at.as_nanos(), r.label));
        }
        out
    }

    /// Serialize the collected records (plus the drop count) as JSON.
    pub fn to_value(&self) -> Value {
        let records = self
            .records
            .iter()
            .enumerate()
            .map(|(seq, r)| {
                Value::object(vec![
                    ("seq", (seq as u64).into()),
                    ("at_ns", r.at.as_nanos().into()),
                    ("label", r.label.as_str().into()),
                ])
            })
            .collect();
        Value::object(vec![
            ("dropped", self.dropped.into()),
            ("records", Value::Array(records)),
        ])
    }

    /// Rebuild the records of a [`Self::to_value`] serialization.
    ///
    /// # Errors
    /// A description of the first missing or mistyped field.
    pub fn records_from_value(v: &Value) -> Result<Vec<TraceRecord>, String> {
        let mut out = Vec::new();
        for r in v
            .get("records")
            .and_then(Value::as_array)
            .ok_or("missing array field 'records'")?
        {
            let at = r
                .get("at_ns")
                .and_then(Value::as_u64)
                .ok_or("missing integer field 'at_ns'")?;
            let label = r
                .get("label")
                .and_then(Value::as_str)
                .ok_or("missing string field 'label'")?;
            out.push(TraceRecord { at: SimTime(at), label: label.to_string() });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.push(TraceRecord { at: SimTime(1), label: "x".into() });
        assert!(t.records().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn bounded_capacity_drops_suffix() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5 {
            t.push(TraceRecord { at: SimTime(i), label: format!("e{i}") });
        }
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.records()[0].label, "e0");
        assert_eq!(t.records()[1].label, "e1");
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn json_serialization_round_trips() {
        let mut t = Trace::with_capacity(2);
        t.push(TraceRecord { at: SimTime(5), label: "alpha".into() });
        t.push(TraceRecord { at: SimTime(9), label: "beta".into() });
        t.push(TraceRecord { at: SimTime(12), label: "dropped".into() });
        let v = t.to_value();
        assert_eq!(v.get("dropped").and_then(Value::as_u64), Some(1));
        let text = v.to_json();
        let back = Trace::records_from_value(&minijson::parse(&text).unwrap()).unwrap();
        assert_eq!(back, t.records());
    }

    #[test]
    fn render_is_line_oriented() {
        let mut t = Trace::with_capacity(8);
        t.push(TraceRecord { at: SimTime(5), label: "alpha".into() });
        t.push(TraceRecord { at: SimTime(9), label: "beta".into() });
        assert_eq!(t.render(), "5 alpha\n9 beta\n");
    }
}
