//! Measurement helpers for models: time-weighted averages (utilization),
//! online mean/variance, and fixed-bin histograms.

use crate::time::{SimDuration, SimTime};

/// Tracks a piecewise-constant value over simulated time and reports its
/// time-weighted average — the canonical way to measure utilization or
/// queue length in a discrete-event model.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    value: f64,
    last_change: SimTime,
    weighted_sum: f64, // integral of value dt, in value·ns
    start: SimTime,
    min: f64,
    max: f64,
}

impl TimeWeighted {
    /// Start tracking at `now` with an initial value.
    pub fn new(now: SimTime, initial: f64) -> TimeWeighted {
        TimeWeighted {
            value: initial,
            last_change: now,
            weighted_sum: 0.0,
            start: now,
            min: initial,
            max: initial,
        }
    }

    /// Record that the value changed to `value` at time `now`.
    ///
    /// `now` must be monotonically non-decreasing across calls.
    pub fn set(&mut self, now: SimTime, value: f64) {
        let dt = now.since(self.last_change).as_nanos() as f64;
        self.weighted_sum += self.value * dt;
        self.value = value;
        self.last_change = now;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adjust the value by `delta` at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// The current value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Minimum value observed.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum value observed.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Time-weighted mean over `[start, now]`. Returns the current value if
    /// no time has elapsed.
    pub fn mean(&self, now: SimTime) -> f64 {
        let total = now.since(self.start).as_nanos() as f64;
        if total == 0.0 {
            return self.value;
        }
        let tail = now.since(self.last_change).as_nanos() as f64;
        (self.weighted_sum + self.value * tail) / total
    }
}

/// Accumulates the total time a binary condition (busy/idle) held, yielding
/// a utilization fraction.
#[derive(Debug, Clone)]
pub struct BusyTracker {
    busy: bool,
    since: SimTime,
    busy_total: SimDuration,
    start: SimTime,
}

impl BusyTracker {
    /// Start tracking at `now`, initially idle.
    pub fn new(now: SimTime) -> BusyTracker {
        BusyTracker { busy: false, since: now, busy_total: SimDuration::ZERO, start: now }
    }

    /// Mark the resource busy at `now`. Idempotent.
    pub fn set_busy(&mut self, now: SimTime) {
        if !self.busy {
            self.busy = true;
            self.since = now;
        }
    }

    /// Mark the resource idle at `now`. Idempotent.
    pub fn set_idle(&mut self, now: SimTime) {
        if self.busy {
            self.busy_total += now.since(self.since);
            self.busy = false;
            self.since = now;
        }
    }

    /// Whether the resource is currently busy.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Total busy time through `now`.
    pub fn busy_time(&self, now: SimTime) -> SimDuration {
        let mut t = self.busy_total;
        if self.busy {
            t += now.since(self.since);
        }
        t
    }

    /// Busy fraction of `[start, now]`, in `[0, 1]`. Zero if no time elapsed.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let total = now.since(self.start).as_nanos();
        if total == 0 {
            return 0.0;
        }
        self.busy_time(now).as_nanos() as f64 / total as f64
    }
}

/// Online mean and variance (Welford's algorithm) over f64 samples.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> OnlineStats {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// A histogram with uniform-width bins over `[lo, hi)`; samples outside the
/// range land in saturating under/overflow bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// A histogram of `nbins` uniform bins covering `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `nbins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Histogram {
        assert!(nbins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram { lo, hi, bins: vec![0; nbins], underflow: 0, overflow: 0 }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Count of samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of samples at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_weighted_mean_integrates_steps() {
        let mut tw = TimeWeighted::new(SimTime(0), 0.0);
        tw.set(SimTime(10), 1.0); // 0 for 10ns
        tw.set(SimTime(30), 3.0); // 1 for 20ns
        // now 3 for 10ns more
        let mean = tw.mean(SimTime(40));
        // (0*10 + 1*20 + 3*10) / 40 = 50/40
        assert!((mean - 1.25).abs() < 1e-12);
        assert_eq!(tw.min(), 0.0);
        assert_eq!(tw.max(), 3.0);
    }

    #[test]
    fn time_weighted_add_is_relative() {
        let mut tw = TimeWeighted::new(SimTime(0), 2.0);
        tw.add(SimTime(5), 3.0);
        assert_eq!(tw.value(), 5.0);
        tw.add(SimTime(10), -4.0);
        assert_eq!(tw.value(), 1.0);
    }

    #[test]
    fn time_weighted_mean_with_zero_elapsed_is_current_value() {
        let tw = TimeWeighted::new(SimTime(7), 42.0);
        assert_eq!(tw.mean(SimTime(7)), 42.0);
    }

    #[test]
    fn busy_tracker_accumulates_intervals() {
        let mut b = BusyTracker::new(SimTime(0));
        b.set_busy(SimTime(10));
        b.set_idle(SimTime(30));
        b.set_busy(SimTime(40));
        // busy [10,30] and [40,50] => 30ns of 50ns
        assert_eq!(b.busy_time(SimTime(50)), SimDuration(30));
        assert!((b.utilization(SimTime(50)) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn busy_tracker_is_idempotent() {
        let mut b = BusyTracker::new(SimTime(0));
        b.set_busy(SimTime(10));
        b.set_busy(SimTime(20)); // should not reset the interval start
        b.set_idle(SimTime(30));
        b.set_idle(SimTime(40));
        assert_eq!(b.busy_time(SimTime(40)), SimDuration(20));
    }

    #[test]
    fn online_stats_match_closed_form() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // population variance is 4 => sample variance = 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_online_stats_are_benign() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 9.99, -0.1, 10.0, 55.0] {
            h.record(x);
        }
        assert_eq!(h.bins(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
