//! # `des` — a deterministic discrete-event simulation engine
//!
//! The substrate beneath the Cell Broadband Engine model in this workspace.
//! It provides:
//!
//! * [`time`] — integer-nanosecond simulated clock types;
//! * [`sim`] — the event loop: a future-event list with FIFO tie-breaking,
//!   cancellation, and bounded-horizon runs;
//! * [`resource`] — counted resources and wait queues with explicit,
//!   borrow-checker-friendly waiter hand-off;
//! * [`stats`] — time-weighted averages, busy/utilization trackers, online
//!   moments and histograms;
//! * [`trace`] — bounded execution traces used for debugging and for
//!   bit-determinism tests.
//!
//! Determinism is a design requirement, not an accident: two events
//! scheduled for the same instant always fire in scheduling order, so every
//! simulation in this workspace is reproducible from its seed.
//!
//! ```
//! use des::prelude::*;
//!
//! let mut sim = Sim::new(0u64);
//! sim.schedule_at(SimTime::ZERO + SimDuration::from_micros(5), |s| {
//!     *s.model_mut() += 1;
//! });
//! sim.run();
//! assert_eq!(*sim.model(), 1);
//! assert_eq!(sim.now(), SimTime(5_000));
//! ```

#![warn(missing_docs)]

pub mod calendar;
pub mod resource;
pub mod sim;
pub mod stats;
pub mod time;
pub mod trace;

/// Convenient glob import for model code.
pub mod prelude {
    pub use crate::calendar::CalendarQueue;
    pub use crate::resource::{Resource, WaitQueue};
    pub use crate::sim::{EventFn, EventId, Sim};
    pub use crate::stats::{BusyTracker, Histogram, OnlineStats, TimeWeighted};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{Trace, TraceRecord};
}
