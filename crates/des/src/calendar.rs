//! A calendar queue: O(1)-amortized pending-event set for models that
//! manage their own event streams.
//!
//! The core [`crate::sim::Sim`] uses a binary heap — optimal at the event
//! counts the Cell model produces. Large-scale models (millions of pending
//! events with roughly uniform inter-event gaps) do better with a calendar
//! queue (Brown 1988): a ring of time buckets of fixed width, resized as
//! occupancy drifts, giving amortized O(1) enqueue/dequeue. This
//! implementation keeps the engine's determinism contract: ties break on
//! an insertion sequence number, FIFO.

use crate::time::SimTime;

/// One pending entry.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

/// A calendar queue over payloads `T`, ordered by `(time, insertion seq)`.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    buckets: Vec<Vec<Entry<T>>>,
    /// Bucket width in nanoseconds.
    width: u64,
    /// Index of the bucket the cursor is in.
    cursor: usize,
    /// Start time of the cursor's current year lap for `cursor`.
    cursor_time: u64,
    len: usize,
    next_seq: u64,
    /// Resize thresholds.
    min_buckets: usize,
}

impl<T> CalendarQueue<T> {
    /// An empty queue with an initial bucket width guess (ns). The width
    /// adapts as the queue resizes; the guess only matters for warm-up.
    pub fn new(initial_width_ns: u64) -> CalendarQueue<T> {
        let width = initial_width_ns.max(1);
        CalendarQueue {
            buckets: (0..16).map(|_| Vec::new()).collect(),
            width,
            cursor: 0,
            cursor_time: 0,
            len: 0,
            next_seq: 0,
            min_buckets: 16,
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bucket_of(&self, at: SimTime) -> usize {
        ((at.as_nanos() / self.width) as usize) % self.buckets.len()
    }

    /// Insert `payload` at time `at`.
    ///
    /// # Panics
    /// Panics if `at` precedes an already-popped time (the clock cannot
    /// run backwards).
    pub fn push(&mut self, at: SimTime, payload: T) {
        assert!(
            at.as_nanos() >= self.cursor_time.saturating_sub(self.width),
            "cannot schedule into the past"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = self.bucket_of(at);
        self.buckets[idx].push(Entry { at, seq, payload });
        self.len += 1;
        if self.len > 2 * self.buckets.len() {
            self.resize(self.buckets.len() * 2);
        }
    }

    /// The earliest `(time, payload)` without removing it.
    pub fn peek(&self) -> Option<(SimTime, &T)> {
        self.scan_min().map(|(b, i)| {
            let e = &self.buckets[b][i];
            (e.at, &e.payload)
        })
    }

    /// Remove and return the earliest entry (FIFO among ties).
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let (b, i) = self.scan_min()?;
        let e = self.buckets[b].swap_remove(i);
        self.len -= 1;
        self.cursor = b;
        self.cursor_time = e.at.as_nanos();
        if self.len < self.buckets.len() / 4 && self.buckets.len() > self.min_buckets {
            self.resize(self.buckets.len() / 2);
        }
        Some((e.at, e.payload))
    }

    /// Locate the minimum entry. Starts at the cursor bucket and walks one
    /// calendar year; falls back to a full scan when the year is sparse.
    fn scan_min(&self) -> Option<(usize, usize)> {
        if self.len == 0 {
            return None;
        }
        let nb = self.buckets.len();
        // Walk buckets within the current year window.
        let year = self.width * nb as u64;
        let mut lap_start = self.cursor_time.saturating_sub(self.width);
        // Bounded number of laps to stay O(len): at most until the max
        // possible time among entries — fall back to direct scan.
        for _ in 0..2 {
            for step in 0..nb {
                let b = (self.cursor + step) % nb;
                let window_end = lap_start + (step as u64 + 2) * self.width;
                if let Some((i, e)) = self.min_in_bucket(b) {
                    if e.at.as_nanos() < window_end {
                        return Some((b, i));
                    }
                }
            }
            lap_start += year;
        }
        // Sparse: direct global scan.
        let mut best: Option<(usize, usize)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            if let Some((i, e)) = self.min_in_bucket(b) {
                let better = match best {
                    None => true,
                    Some((bb, bi)) => {
                        let cur = &self.buckets[bb][bi];
                        (e.at, e.seq) < (cur.at, cur.seq)
                    }
                };
                if better {
                    best = Some((b, i));
                }
                let _ = bucket;
            }
        }
        best
    }

    fn min_in_bucket(&self, b: usize) -> Option<(usize, &Entry<T>)> {
        self.buckets[b].iter().enumerate().min_by_key(|(_, e)| (e.at, e.seq))
    }

    fn resize(&mut self, new_n: usize) {
        let new_n = new_n.max(self.min_buckets);
        if new_n == self.buckets.len() {
            return;
        }
        // Re-estimate width from the average gap of a sample of entries.
        let mut times: Vec<u64> =
            self.buckets.iter().flatten().take(64).map(|e| e.at.as_nanos()).collect();
        times.sort_unstable();
        if times.len() >= 2 {
            let span = times[times.len() - 1].saturating_sub(times[0]);
            let avg_gap = (span / (times.len() as u64 - 1)).max(1);
            self.width = avg_gap.max(1);
        }
        let old = std::mem::replace(
            &mut self.buckets,
            (0..new_n).map(|_| Vec::new()).collect(),
        );
        for e in old.into_iter().flatten() {
            let idx = ((e.at.as_nanos() / self.width) as usize) % new_n;
            self.buckets[idx].push(e);
        }
        self.cursor = ((self.cursor_time / self.width) as usize) % new_n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new(10);
        for &t in &[30u64, 10, 20, 5, 25] {
            q.push(SimTime(t), t);
        }
        let mut out = Vec::new();
        while let Some((at, v)) = q.pop() {
            assert_eq!(at.as_nanos(), v);
            out.push(v);
        }
        assert_eq!(out, vec![5, 10, 20, 25, 30]);
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_among_ties() {
        let mut q = CalendarQueue::new(100);
        for i in 0..10 {
            q.push(SimTime(42), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = CalendarQueue::new(50);
        q.push(SimTime(100), "a");
        q.push(SimTime(200), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime(150), "c");
        q.push(SimTime(120), "d");
        assert_eq!(q.pop().unwrap().1, "d");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn resize_preserves_order_under_load() {
        let mut q = CalendarQueue::new(1);
        // Push enough to force several grows, with deliberately clustered
        // and spread times.
        let mut times = Vec::new();
        for i in 0..500u64 {
            let t = (i * 37) % 1000 + if i % 3 == 0 { 100_000 } else { 0 };
            times.push(t);
            q.push(SimTime(t), t);
        }
        times.sort_unstable();
        let mut popped = Vec::new();
        while let Some((_, v)) = q.pop() {
            popped.push(v);
        }
        assert_eq!(popped, times);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new(10);
        for &t in &[9u64, 3, 7] {
            q.push(SimTime(t), t);
        }
        while !q.is_empty() {
            let (pt, &pv) = q.peek().unwrap();
            let (at, v) = q.pop().unwrap();
            assert_eq!((pt, pv), (at, v));
        }
    }

    #[test]
    fn len_tracks_operations() {
        let mut q = CalendarQueue::new(10);
        assert_eq!(q.len(), 0);
        q.push(SimTime(1), ());
        q.push(SimTime(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
