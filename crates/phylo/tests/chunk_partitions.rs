//! Chunked/whole kernel equivalence and the scalar/SIMD feature matrix.
//!
//! The work-sharing teams split the pattern space into arbitrary chunks,
//! so any partition of `0..n` must reproduce the whole-range kernels —
//! for `newview` bit-identically (values *and* scaling exponents: the
//! scale-carry at chunk boundaries is the historical bug class), for the
//! `evaluate`/derivative sums up to FP reassociation of the partial sums.
//!
//! The same harness pins the two kernel paths ([`Scalar`] and [`Simd4`])
//! against each other: they are required to agree to ≤1 ulp per site term
//! and produce identical scaling counts, and in fact agree exactly.

use phylo::alignment::{Alignment, PatternAlignment};
use phylo::lanes::{Scalar, Simd4};
use phylo::likelihood::{Clv, ClvArena, LikelihoodEngine};
use phylo::model::Jc69;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A CLV with adversarial contents: magnitudes straddling the rescaling
/// threshold (so chunk boundaries land next to rescale decisions) and
/// nonzero incoming scale exponents (the carry that must survive
/// chunking).
fn random_clv(n: usize, rng: &mut SmallRng) -> Clv {
    let mut vals = Vec::with_capacity(n * 4);
    let mut scale = Vec::with_capacity(n);
    for _ in 0..n {
        for _ in 0..4 {
            let mag = match rng.gen_range(0..4u8) {
                0 => 1e-110, // below SCALE_THRESHOLD: forces rescaling
                1 => 1e-60,
                _ => 0.5,
            };
            vals.push(mag * (0.5 + rng.gen::<f64>()));
        }
        scale.push(rng.gen_range(0..3u32));
    }
    Clv::from_raw(vals, scale)
}

/// Like [`random_clv`], but honoring the invariant rescaling maintains:
/// at least one state per pattern is of normal magnitude. `evaluate` /
/// derivative inputs always satisfy this (they are rescaled `newview`
/// outputs); without it `l·l` underflows and the derivative ratio is
/// legitimately NaN.
fn random_rescaled_clv(n: usize, rng: &mut SmallRng) -> Clv {
    let (mut vals, scale) = random_clv(n, rng).into_raw();
    for p in 0..n {
        let anchor = rng.gen_range(0..4);
        vals[p * 4 + anchor] = 0.2 + rng.gen::<f64>();
    }
    Clv::from_raw(vals, scale)
}

/// Turn fractional cut points into a sorted partition of `0..n`.
fn partition(n: usize, cuts: &[f64]) -> Vec<usize> {
    let mut bounds: Vec<usize> = cuts.iter().map(|f| (f * n as f64) as usize).collect();
    bounds.push(0);
    bounds.push(n);
    bounds.sort_unstable();
    bounds.dedup();
    bounds
}

/// Distance in units-in-the-last-place between two finite doubles.
fn ulp_diff(a: f64, b: f64) -> u64 {
    // Map to a monotone integer line (sign-magnitude -> offset binary).
    fn ordered(x: f64) -> i64 {
        let b = x.to_bits() as i64;
        if b < 0 { i64::MIN ^ b } else { b }
    }
    ordered(a).abs_diff(ordered(b))
}

proptest! {
    /// Any partition of the pattern space, spliced back together,
    /// reproduces the whole-range `newview` bit-for-bit — values and
    /// scaling exponents.
    #[test]
    fn newview_over_any_partition_is_bit_identical(
        seed in 0u64..u64::MAX,
        sites in 8usize..160,
        cuts in prop::collection::vec(0.0f64..1.0, 0..6),
    ) {
        let aln = Alignment::synthetic(4, sites, &Jc69, 0.3, seed ^ 0xA5A5);
        let data = PatternAlignment::compress(&aln);
        let engine = LikelihoodEngine::new(&Jc69, &data);
        let n = data.n_patterns();
        let mut rng = SmallRng::seed_from_u64(seed);
        let left = random_clv(n, &mut rng);
        let right = random_clv(n, &mut rng);
        let (tl, tr) = (rng.gen_range(1e-4..2.0), rng.gen_range(1e-4..2.0));

        let whole = engine.newview(&left, tl, &right, tr);
        prop_assert!(whole.total_scalings() > 0, "adversarial CLVs should force rescaling");

        let bounds = partition(n, &cuts);
        let mut arena = ClvArena::new();
        let mut assembled = engine.empty_clv();
        for w in bounds.windows(2) {
            let piece = engine.newview_chunk_in(&left, tl, &right, tr, w[0]..w[1], &mut arena);
            assembled.splice(w[0], &piece);
            arena.put(piece);
        }
        prop_assert_eq!(&whole, &assembled);

        // And chunk by chunk, the two kernel paths agree exactly.
        for w in bounds.windows(2) {
            let mut a = arena.take(w[1] - w[0]);
            let mut b = arena.take(w[1] - w[0]);
            engine.newview_range_into_with::<Scalar>(&left, tl, &right, tr, w[0]..w[1], &mut a);
            engine.newview_range_into_with::<Simd4>(&left, tl, &right, tr, w[0]..w[1], &mut b);
            prop_assert_eq!(&a, &b, "scalar/simd divergence in chunk {}..{}", w[0], w[1]);
        }
    }

    /// Partial `evaluate`/derivative sums over any partition reproduce the
    /// whole-range sums (up to reassociation of the partials), and the two
    /// kernel paths agree to ≤1 ulp per site term — in practice exactly.
    #[test]
    fn evaluate_and_derivatives_over_any_partition_sum_to_whole(
        seed in 0u64..u64::MAX,
        sites in 8usize..160,
        cuts in prop::collection::vec(0.0f64..1.0, 0..6),
    ) {
        let aln = Alignment::synthetic(4, sites, &Jc69, 0.3, seed ^ 0x5A5A);
        let data = PatternAlignment::compress(&aln);
        let engine = LikelihoodEngine::new(&Jc69, &data);
        let n = data.n_patterns();
        let mut rng = SmallRng::seed_from_u64(seed);
        let u = random_rescaled_clv(n, &mut rng);
        let v = random_rescaled_clv(n, &mut rng);
        let t = rng.gen_range(1e-4..2.0);

        let whole = engine.evaluate(&u, &v, t);
        let (wd1, wd2) = engine.lnl_derivatives(&u, &v, t);
        let bounds = partition(n, &cuts);
        let (mut sum, mut d1, mut d2) = (0.0, 0.0, 0.0);
        for w in bounds.windows(2) {
            sum += engine.evaluate_range(&u, &v, t, w[0]..w[1]);
            let (a, b) = engine.lnl_derivatives_range(&u, &v, t, w[0]..w[1]);
            d1 += a;
            d2 += b;
        }
        let tol = 1e-9 * (1.0 + whole.abs());
        prop_assert!((sum - whole).abs() < tol, "evaluate: {sum} vs {whole}");
        prop_assert!((d1 - wd1).abs() < 1e-9 * (1.0 + wd1.abs()), "d1: {d1} vs {wd1}");
        prop_assert!((d2 - wd2).abs() < 1e-9 * (1.0 + wd2.abs()), "d2: {d2} vs {wd2}");

        // Per-site terms across the paths: ≤1 ulp apart (exact today).
        for i in 0..n {
            let a = engine.evaluate_range_with::<Scalar>(&u, &v, t, i..i + 1);
            let b = engine.evaluate_range_with::<Simd4>(&u, &v, t, i..i + 1);
            prop_assert!(ulp_diff(a, b) <= 1, "site {i}: {a} vs {b}");
        }
        let (s1, s2) = engine.lnl_derivatives_range_with::<Scalar>(&u, &v, t, 0..n);
        let (v1, v2) = engine.lnl_derivatives_range_with::<Simd4>(&u, &v, t, 0..n);
        prop_assert!(ulp_diff(s1, v1) <= 1 && ulp_diff(s2, v2) <= 1);
    }
}

/// The two paths make identical rescaling decisions on a workload that
/// actually rescales (deep caterpillar), and the engine's default path —
/// whichever the `simd-kernels` feature selects — matches both.
#[test]
fn kernel_paths_produce_identical_scaling_counts() {
    let aln = Alignment::synthetic(48, 24, &Jc69, 0.5, 9);
    let data = PatternAlignment::compress(&aln);
    let engine = LikelihoodEngine::new(&Jc69, &data);
    let mut rng = SmallRng::seed_from_u64(17);
    let n = data.n_patterns();
    let left = random_clv(n, &mut rng);
    let right = random_clv(n, &mut rng);

    let mut a = engine.empty_clv();
    let mut b = engine.empty_clv();
    engine.newview_range_with::<Scalar>(&left, 0.7, &right, 1.3, 0..n, &mut a);
    engine.newview_range_with::<Simd4>(&left, 0.7, &right, 1.3, 0..n, &mut b);
    assert!(a.total_scalings() > 0, "workload must rescale for this test to bite");
    assert_eq!(a.total_scalings(), b.total_scalings());
    assert_eq!(a, b, "paths diverged beyond scaling counts");

    let default = engine.newview(&left, 0.7, &right, 1.3);
    assert_eq!(default, a, "engine default path disagrees with the explicit paths");
}

/// Off-by-one chunk boundary regression: a splice ending exactly at
/// `n_patterns` is legal; one pattern further must panic with a message
/// naming the offending range.
#[test]
fn splice_accepts_exact_boundary_and_names_range_on_overflow() {
    let aln = Alignment::synthetic(4, 40, &Jc69, 0.1, 3);
    let data = PatternAlignment::compress(&aln);
    let engine = LikelihoodEngine::new(&Jc69, &data);
    let n = data.n_patterns();
    let tip = engine.tip_clv(0);

    // Last chunk flush against the end: fine, and scale moves with vals.
    let mut whole = engine.empty_clv();
    let piece = engine.newview_chunk(&tip, 0.1, &engine.tip_clv(1), 0.2, n - 3..n);
    whole.splice(n - 3, &piece);
    for (off, i) in (n - 3..n).enumerate() {
        assert_eq!(whole.pattern(i), piece.pattern(off));
        assert_eq!(whole.scale_of(i), piece.scale_of(off));
    }

    // One pattern past the end: rejected, range in the message.
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut c = engine.empty_clv();
        c.splice(n - 2, &piece);
    }))
    .unwrap_err();
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    let want = format!("{}..{}", n - 2, n + 1);
    assert!(msg.contains(&want), "panic message {msg:?} should name range {want}");

    // A start near usize::MAX must not wrap past the bound check.
    let wrap = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut c = engine.empty_clv();
        c.splice(usize::MAX - 1, &piece);
    }));
    assert!(wrap.is_err(), "overflowing splice start must panic, not silently write");
}

/// The arena recycles storage (hits after warm-up) and recycled buffers
/// produce the same chunks as fresh ones.
#[test]
fn clv_arena_reuses_storage_without_changing_results() {
    let aln = Alignment::synthetic(4, 120, &Jc69, 0.2, 5);
    let data = PatternAlignment::compress(&aln);
    let engine = LikelihoodEngine::new(&Jc69, &data);
    let n = data.n_patterns();
    let (l, r) = (engine.tip_clv(0), engine.tip_clv(1));

    let mut arena = ClvArena::new();
    let fresh = engine.newview_chunk(&l, 0.1, &r, 0.2, 0..n);
    for _ in 0..8 {
        let piece = engine.newview_chunk_in(&l, 0.1, &r, 0.2, 0..n, &mut arena);
        assert_eq!(piece, fresh);
        arena.put(piece);
        // Differently-sized chunks reuse the same (larger) storage.
        let half = engine.newview_chunk_in(&l, 0.1, &r, 0.2, 0..n / 2, &mut arena);
        assert_eq!(half.n_patterns(), n / 2);
        assert_eq!(half.pattern(0), fresh.pattern(0));
        arena.put(half);
    }
    let (hits, misses) = arena.stats();
    assert!(hits >= 14, "arena should recycle, got {hits} hits / {misses} misses");
    assert!(misses <= 2, "at most the warm-up allocations may miss, got {misses}");
}
