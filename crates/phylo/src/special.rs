//! Special functions for rate-heterogeneity modelling: log-gamma,
//! regularized incomplete gamma, its inverse, and Yang's discrete-gamma
//! rate categories.
//!
//! Everything is implemented from first principles (Lanczos approximation,
//! series/continued-fraction evaluation, Newton inversion) so the crate
//! stays dependency-free; accuracy targets are ~1e-10, far beyond what
//! likelihood ratios can resolve.

#![allow(clippy::needless_range_loop)] // index loops mirror the math in dense kernels

/// Natural log of the gamma function, via the Lanczos approximation
/// (g = 7, n = 9 coefficients; |error| < 1e-13 for x > 0).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    // Lanczos coefficients (g = 7).
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps the approximation in its sweet spot.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise
/// (Numerical Recipes' `gammp`).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0");
    assert!(x >= 0.0, "gamma_p requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut ap = a;
    for _ in 0..500 {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Upper regularized incomplete gamma `Q(a, x)` by Lentz's continued
/// fraction (valid for `x >= a + 1`).
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Inverse of [`gamma_p`] in `x`: the `p`-quantile of the Gamma(a, 1)
/// distribution. Newton iteration with bisection safeguards.
///
/// # Panics
/// Panics unless `0 <= p < 1`.
pub fn gamma_p_inv(a: f64, p: f64) -> f64 {
    assert!((0.0..1.0).contains(&p), "quantile level must be in [0, 1), got {p}");
    if p == 0.0 {
        return 0.0;
    }
    // Bracket the root.
    let mut lo = 0.0f64;
    let mut hi = a.max(1.0);
    while gamma_p(a, hi) < p {
        hi *= 2.0;
        assert!(hi < 1e12, "failed to bracket gamma quantile");
    }
    // Newton from the midpoint, falling back to bisection when the step
    // leaves the bracket.
    let mut x = 0.5 * (lo + hi);
    for _ in 0..128 {
        let f = gamma_p(a, x) - p;
        if f > 0.0 {
            hi = x;
        } else {
            lo = x;
        }
        // Derivative of P(a, x): the Gamma(a,1) density.
        let dens = (-x + (a - 1.0) * x.ln() - ln_gamma(a)).exp();
        let step = if dens > 1e-300 { f / dens } else { f64::NAN };
        let next = x - step;
        x = if next.is_finite() && next > lo && next < hi {
            next
        } else {
            0.5 * (lo + hi)
        };
        if (hi - lo) < 1e-14 * x.max(1.0) {
            break;
        }
    }
    x
}

/// Yang (1994) discrete-gamma rates: `k` equal-probability categories of a
/// Gamma(α, α) distribution (mean 1), each represented by its conditional
/// mean. The returned rates are ascending and average exactly 1.
///
/// # Panics
/// Panics unless `alpha > 0` and `k >= 1`.
pub fn discrete_gamma_rates(alpha: f64, k: usize) -> Vec<f64> {
    assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
    assert!(k >= 1, "need at least one category");
    if k == 1 {
        return vec![1.0];
    }
    // Quantile boundaries of Gamma(alpha, beta = alpha): x = q / alpha
    // where q are Gamma(alpha, 1) quantiles.
    let boundaries: Vec<f64> = (1..k)
        .map(|i| gamma_p_inv(alpha, i as f64 / k as f64) / alpha)
        .collect();
    // Category mean via the identity
    //   E[X · 1{X < b}] = P(alpha + 1, b·alpha) for X ~ Gamma(alpha, alpha).
    let partial = |b: f64| gamma_p(alpha + 1.0, b * alpha);
    let mut rates = Vec::with_capacity(k);
    let mut prev = 0.0;
    for i in 0..k {
        let next = if i + 1 == k { 1.0 } else { partial(boundaries[i]) };
        rates.push((next - prev) * k as f64);
        prev = next;
    }
    // Exact mean-1 normalization (guards accumulated round-off).
    let mean: f64 = rates.iter().sum::<f64>() / k as f64;
    for r in &mut rates {
        *r /= mean;
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1; Γ(5) = 24; Γ(1/2) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-12);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
        // Recurrence Γ(x+1) = xΓ(x).
        for &x in &[0.3, 1.7, 4.2, 11.0] {
            assert!((ln_gamma(x + 1.0) - (x.ln() + ln_gamma(x))).abs() < 1e-11, "x={x}");
        }
    }

    #[test]
    fn gamma_p_against_exponential_closed_form() {
        // P(1, x) = 1 - e^{-x}.
        for &x in &[0.0f64, 0.1, 1.0, 3.0, 10.0] {
            let want = 1.0 - (-x).exp();
            assert!((gamma_p(1.0, x) - want).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn gamma_p_against_erf_relation() {
        // P(1/2, x) = erf(√x); check at x where erf is known:
        // erf(1) ≈ 0.8427007929497149.
        assert!((gamma_p(0.5, 1.0) - 0.842_700_792_949_714_9).abs() < 1e-12);
    }

    #[test]
    fn gamma_p_is_monotone_and_bounded() {
        for &a in &[0.2, 0.7, 1.0, 2.5, 9.0] {
            let mut last = 0.0;
            for i in 1..200 {
                let x = i as f64 * 0.1;
                let p = gamma_p(a, x);
                assert!((0.0..=1.0).contains(&p));
                assert!(p >= last - 1e-14, "a={a} x={x}");
                last = p;
            }
            assert!(gamma_p(a, 100.0) > 0.999999);
        }
    }

    #[test]
    fn gamma_quantile_round_trips() {
        for &a in &[0.3, 0.8, 1.0, 2.0, 5.5] {
            for &p in &[0.05, 0.25, 0.5, 0.75, 0.95] {
                let x = gamma_p_inv(a, p);
                let back = gamma_p(a, x);
                assert!((back - p).abs() < 1e-9, "a={a} p={p}: quantile {x} gives {back}");
            }
        }
    }

    #[test]
    fn discrete_gamma_rates_average_one_and_ascend() {
        for &alpha in &[0.1, 0.5, 1.0, 2.0, 10.0] {
            for &k in &[1usize, 2, 4, 8] {
                let rates = discrete_gamma_rates(alpha, k);
                assert_eq!(rates.len(), k);
                let mean: f64 = rates.iter().sum::<f64>() / k as f64;
                assert!((mean - 1.0).abs() < 1e-12, "alpha={alpha} k={k}: mean {mean}");
                for w in rates.windows(2) {
                    assert!(w[0] <= w[1], "alpha={alpha} k={k}: {rates:?}");
                }
                assert!(rates.iter().all(|&r| r >= 0.0));
            }
        }
    }

    #[test]
    fn small_alpha_spreads_rates_large_alpha_concentrates() {
        let spread = discrete_gamma_rates(0.2, 4);
        let tight = discrete_gamma_rates(200.0, 4);
        assert!(spread[3] / spread[0].max(1e-12) > 50.0, "{spread:?}");
        // At alpha = 200 the std dev is ~0.07, so the outer category means
        // sit within ~25% of each other.
        assert!(tight[3] / tight[0] < 1.3, "{tight:?}");
    }

    #[test]
    fn yang_1994_reference_values() {
        // Yang (1994), Table 1 style check: alpha = 0.5, K = 4 mean rates
        // ≈ [0.0334, 0.2519, 0.8203, 2.8944].
        let r = discrete_gamma_rates(0.5, 4);
        let want = [0.0334, 0.2519, 0.8203, 2.8944];
        for (got, want) in r.iter().zip(want) {
            assert!((got - want).abs() < 2e-3, "{r:?}");
        }
    }

    #[test]
    #[should_panic(expected = "positive argument")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }
}
