//! # `phylo` — maximum-likelihood phylogenetic inference
//!
//! A self-contained reimplementation of the computational core of
//! RAxML-VI-HPC, the application the PPoPP 2007 multigrain-parallelization
//! paper evaluates. It provides real (not mocked) versions of the three
//! kernels the paper off-loads to SPEs — `newview`, `evaluate`, `makenewz`
//! — plus everything around them: alignments with site-pattern compression,
//! JC69/K80 substitution models, unrooted binary trees with NNI
//! rearrangement, randomized hill-climbing search, and non-parametric
//! bootstrapping.
//!
//! The crate is deliberately independent of the scheduling runtime; the
//! workspace root provides `LoopBody` adapters that feed these kernels to
//! the multigrain scheduler.
//!
//! ```
//! use phylo::prelude::*;
//!
//! let aln = Alignment::synthetic(8, 200, &Jc69, 0.1, 42);
//! let data = PatternAlignment::compress(&aln);
//! let result = hill_climb(&Jc69, &data, &SearchConfig::default(), 7);
//! assert!(result.lnl.is_finite() && result.lnl < 0.0);
//! ```

#![warn(missing_docs)]

pub mod alignment;
pub mod analysis;
pub mod bootstrap;
pub mod dna;
pub mod io;
pub mod lanes;
pub mod likelihood;
pub mod linalg;
pub mod mixture;
pub mod model;
pub mod protein;
pub mod search;
pub mod special;
pub mod spr;
pub mod tree;

/// Convenient glob import.
pub mod prelude {
    pub use crate::alignment::{Alignment, AlignmentError, PatternAlignment};
    pub use crate::analysis::{run_analysis, run_bootstrap, run_inference, AnalysisResult};
    pub use crate::bootstrap::{bootstrap_replicate, bootstrap_weights, support_values};
    pub use crate::dna::{StateMask, STATES};
    pub use crate::io::{parse_newick, NewickError};
    pub use crate::lanes::{KernelPath, Scalar, Simd4};
    pub use crate::likelihood::{Clv, ClvArena, LikelihoodEngine};
    pub use crate::mixture::{estimate_alpha, GammaEngine};
pub use crate::model::{Gtr, Jc69, Matrix, ScaledModel, SubstModel, K80};
    pub use crate::protein::{AaMask, PoissonAa, ProteinData, ProteinEngine, AA_STATES};
pub use crate::special::discrete_gamma_rates;
    pub use crate::search::{
        hill_climb, hill_climb_with, spr_hill_climb, spr_hill_climb_with, ScoringEngine,
        SearchConfig, SearchResult,
    };
    pub use crate::spr::SprMove;
pub use crate::tree::{EdgeId, NniMove, Tree};
}
