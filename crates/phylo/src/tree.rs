//! Unrooted binary phylogenetic trees.
//!
//! Nodes `0..n_taxa` are tips (in alignment row order); nodes
//! `n_taxa..2·n_taxa-2` are internal, each of degree 3. Branch lengths live
//! on edges. Trees support random stepwise-addition construction (RAxML
//! starts every independent search from a distinct randomized tree) and
//! nearest-neighbor-interchange (NNI) rearrangement for hill climbing.

use rand::rngs::SmallRng;
use rand::Rng;

/// Identifies an edge within a [`Tree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub usize);

#[derive(Debug, Clone, PartialEq)]
struct Edge {
    a: usize,
    b: usize,
    length: f64,
}

/// An unrooted binary tree with branch lengths.
#[derive(Debug, Clone, PartialEq)]
pub struct Tree {
    n_taxa: usize,
    /// Per node: (neighbor node, connecting edge).
    adj: Vec<Vec<(usize, EdgeId)>>,
    edges: Vec<Edge>,
}

/// A record of an applied NNI move, sufficient to undo it.
#[derive(Debug, Clone, Copy)]
pub struct NniMove {
    /// The internal edge the interchange happened across.
    pub edge: EdgeId,
    /// The subtree edge that moved from the `u` side to the `v` side.
    pub moved_from_u: EdgeId,
    /// The subtree edge that moved from the `v` side to the `u` side.
    pub moved_from_v: EdgeId,
}

impl Tree {
    /// Minimum sensible branch length (used as optimizer lower bound too).
    pub const MIN_BRANCH: f64 = 1e-6;

    /// Build a tree over `n_taxa` tips by random stepwise addition, all
    /// branch lengths set to `default_len`.
    ///
    /// # Panics
    /// Panics if `n_taxa < 2` or `default_len` is not positive/finite.
    pub fn random(n_taxa: usize, default_len: f64, rng: &mut SmallRng) -> Tree {
        assert!(n_taxa >= 2, "a tree needs at least two taxa");
        assert!(default_len.is_finite() && default_len > 0.0, "bad default length");
        let n_nodes = if n_taxa == 2 { 2 } else { 2 * n_taxa - 2 };
        let mut t = Tree { n_taxa, adj: vec![Vec::new(); n_nodes], edges: Vec::new() };
        if n_taxa == 2 {
            t.add_edge(0, 1, default_len);
            return t;
        }
        // Start from the 3-taxon star: internal node joins tips 0,1,2.
        let first_internal = n_taxa;
        for tip in 0..3 {
            t.add_edge(tip, first_internal, default_len);
        }
        for (next_internal, tip) in (first_internal + 1..).zip(3..n_taxa) {
            // Attach `tip` to a uniformly random existing edge.
            let eid = EdgeId(rng.gen_range(0..t.edges.len()));
            t.attach_tip(tip, eid, next_internal, default_len);
        }
        debug_assert!(t.validate().is_ok());
        t
    }

    /// Subdivide `eid` with new internal node `mid` and hang `tip` off it.
    fn attach_tip(&mut self, tip: usize, eid: EdgeId, mid: usize, default_len: f64) {
        let Edge { a, b, length } = self.edges[eid.0].clone();
        // Re-point the existing edge at (a, mid), halving its length.
        self.edges[eid.0] = Edge { a, b: mid, length: (length / 2.0).max(Self::MIN_BRANCH) };
        Self::replace_adj(&mut self.adj[a], b, mid, eid);
        self.adj[b].retain(|&(_, e)| e != eid);
        self.adj[mid].push((a, eid));
        // New edge (mid, b) with the other half.
        let e2 = EdgeId(self.edges.len());
        self.edges.push(Edge { a: mid, b, length: (length / 2.0).max(Self::MIN_BRANCH) });
        self.adj[mid].push((b, e2));
        self.adj[b].push((mid, e2));
        // New pendant edge (mid, tip).
        self.add_edge(mid, tip, default_len);
    }

    /// Build a caterpillar (fully pectinate) tree: tips hang in order off a
    /// central path. The deepest tip is `n_taxa - 1` levels from the first
    /// — the worst case for conditional-likelihood underflow, used to
    /// exercise the rescaling machinery.
    pub fn caterpillar(n_taxa: usize, branch_len: f64) -> Tree {
        assert!(n_taxa >= 2, "a tree needs at least two taxa");
        assert!(branch_len.is_finite() && branch_len > 0.0, "bad branch length");
        let n_nodes = if n_taxa == 2 { 2 } else { 2 * n_taxa - 2 };
        let mut t = Tree { n_taxa, adj: vec![Vec::new(); n_nodes], edges: Vec::new() };
        if n_taxa == 2 {
            t.add_edge(0, 1, branch_len);
            return t;
        }
        // Internal spine: nodes n_taxa .. 2n_taxa-3.
        let first = n_taxa;
        let last = 2 * n_taxa - 3;
        t.add_edge(0, first, branch_len);
        t.add_edge(1, first, branch_len);
        for (i, spine) in (first..last).enumerate() {
            t.add_edge(spine, spine + 1, branch_len);
            t.add_edge(2 + i, spine + 1, branch_len);
        }
        t.add_edge(n_taxa - 1, last, branch_len);
        debug_assert!(t.validate().is_ok());
        t
    }

    /// Assemble a tree from an explicit edge list (used by the Newick
    /// parser). `n_nodes` covers tips and internal nodes; callers must
    /// supply a structurally valid binary tree — [`Tree::validate`] is the
    /// arbiter.
    pub(crate) fn from_edges(n_taxa: usize, n_nodes: usize, edges: &[(usize, usize, f64)]) -> Tree {
        let mut t = Tree { n_taxa, adj: vec![Vec::new(); n_nodes], edges: Vec::new() };
        for &(a, b, len) in edges {
            t.add_edge(a, b, len);
        }
        t
    }

    fn add_edge(&mut self, a: usize, b: usize, length: f64) {
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge { a, b, length });
        self.adj[a].push((b, id));
        self.adj[b].push((a, id));
    }

    fn replace_adj(adj: &mut [(usize, EdgeId)], old: usize, new: usize, edge: EdgeId) {
        for entry in adj.iter_mut() {
            if entry.1 == edge && entry.0 == old {
                entry.0 = new;
                return;
            }
        }
        panic!("adjacency entry to replace not found");
    }

    /// Number of tips.
    pub fn n_taxa(&self) -> usize {
        self.n_taxa
    }

    /// Total nodes (tips + internal).
    pub fn n_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges (`2·n_taxa - 3` for binary unrooted trees).
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether `node` is a tip.
    pub fn is_tip(&self, node: usize) -> bool {
        node < self.n_taxa
    }

    /// The endpoints of `eid`.
    pub fn endpoints(&self, eid: EdgeId) -> (usize, usize) {
        let e = &self.edges[eid.0];
        (e.a, e.b)
    }

    /// The branch length of `eid`.
    pub fn length(&self, eid: EdgeId) -> f64 {
        self.edges[eid.0].length
    }

    /// Set the branch length of `eid` (clamped to [`Self::MIN_BRANCH`]).
    pub fn set_length(&mut self, eid: EdgeId, length: f64) {
        assert!(length.is_finite(), "branch length must be finite");
        self.edges[eid.0].length = length.max(Self::MIN_BRANCH);
    }

    /// Neighbors of `node` as (neighbor, connecting edge) pairs.
    pub fn neighbors(&self, node: usize) -> &[(usize, EdgeId)] {
        &self.adj[node]
    }

    /// All edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edges.len()).map(EdgeId)
    }

    /// Edges whose both endpoints are internal nodes (the NNI candidates).
    pub fn internal_edges(&self) -> Vec<EdgeId> {
        self.edge_ids()
            .filter(|&e| {
                let (a, b) = self.endpoints(e);
                !self.is_tip(a) && !self.is_tip(b)
            })
            .collect()
    }

    /// Sum of all branch lengths.
    pub fn total_length(&self) -> f64 {
        self.edges.iter().map(|e| e.length).sum()
    }

    /// Apply a nearest-neighbor interchange across internal edge `eid`.
    ///
    /// With `u—v` the edge, `u`'s other neighbors `(a, b)` and `v`'s
    /// `(c, d)`: variant 0 swaps `b↔c`, variant 1 swaps `b↔d`. Applying the
    /// same move again restores the original topology.
    ///
    /// # Panics
    /// Panics if `eid` is not an internal edge or `variant > 1`.
    pub fn nni(&mut self, eid: EdgeId, variant: u8) -> NniMove {
        assert!(variant < 2, "NNI has exactly two variants");
        let (u, v) = self.endpoints(eid);
        assert!(
            !self.is_tip(u) && !self.is_tip(v),
            "NNI requires an internal edge"
        );
        let (b, eb) = self.other_neighbors(u, v)[1];
        let others_v = self.other_neighbors(v, u);
        let (_c, ec) = if variant == 0 { others_v[0] } else { others_v[1] };
        // Reconnect: b hangs off v, c hangs off u. Branch lengths travel
        // with their subtrees. `reconnect` fixes the adjacency of all four
        // touched nodes.
        let _ = b;
        self.reconnect(eb, u, v);
        self.reconnect(ec, v, u);
        debug_assert!(self.validate().is_ok());
        NniMove { edge: eid, moved_from_u: eb, moved_from_v: ec }
    }

    /// Undo `mv`, restoring the pre-move topology exactly.
    pub fn undo_nni(&mut self, mv: NniMove) {
        let (u, v) = self.endpoints(mv.edge);
        // `moved_from_u` now hangs off v; return it to u, and vice versa.
        self.reconnect(mv.moved_from_u, v, u);
        self.reconnect(mv.moved_from_v, u, v);
        debug_assert!(self.validate().is_ok());
    }

    /// The two neighbors of `node` other than `exclude` (requires an
    /// internal node). Sorted by node id so NNI variant selection is stable
    /// under the adjacency-order churn that moves cause.
    fn other_neighbors(&self, node: usize, exclude: usize) -> [(usize, EdgeId); 2] {
        let mut out = [(usize::MAX, EdgeId(usize::MAX)); 2];
        let mut i = 0;
        for &(n, e) in &self.adj[node] {
            if n != exclude {
                out[i] = (n, e);
                i += 1;
            }
        }
        assert_eq!(i, 2, "expected an internal node of degree 3");
        out.sort_by_key(|&(n, _)| n);
        out
    }

    /// Move the far endpoint of `eid` from `from` to `to`, updating edge
    /// endpoints and the adjacency of `from`/`to` (but *not* of the moved
    /// subtree's node, which keeps the same edge id).
    fn reconnect(&mut self, eid: EdgeId, from: usize, to: usize) {
        let e = &mut self.edges[eid.0];
        let moved = if e.a == from {
            e.a = to;
            e.b
        } else if e.b == from {
            e.b = to;
            e.a
        } else {
            panic!("edge {eid:?} not incident to node {from}");
        };
        self.adj[from].retain(|&(_, x)| x != eid);
        self.adj[to].push((moved, eid));
        // The moved node's adjacency entry must point at `to` now.
        for entry in self.adj[moved].iter_mut() {
            if entry.1 == eid {
                entry.0 = to;
            }
        }
    }

    /// Move the endpoint of `eid` currently at `from` over to `to`
    /// (adjacency kept consistent on all three nodes). Crate-internal
    /// building block for SPR.
    pub(crate) fn reattach_endpoint(&mut self, eid: EdgeId, from: usize, to: usize) {
        self.reconnect(eid, from, to);
    }

    /// Remove `eid`'s adjacency entry at `endpoint`, leaving the edge
    /// dangling on that side until [`Tree::attach_edge`] re-homes it.
    pub(crate) fn detach_edge(&mut self, eid: EdgeId, endpoint: usize) {
        let before = self.adj[endpoint].len();
        self.adj[endpoint].retain(|&(_, e)| e != eid);
        debug_assert_eq!(self.adj[endpoint].len() + 1, before, "edge was not attached there");
    }

    /// Re-home the dangling endpoint of `eid` (created by
    /// [`Tree::detach_edge`]) onto `node`.
    pub(crate) fn attach_edge(&mut self, eid: EdgeId, node: usize) {
        let (a, b) = self.endpoints(eid);
        let a_attached = self.adj[a].iter().any(|&(_, e)| e == eid);
        let kept = if a_attached { a } else { b };
        {
            let e = &mut self.edges[eid.0];
            if a_attached {
                e.b = node;
            } else {
                e.a = node;
            }
        }
        self.adj[node].push((kept, eid));
        for entry in self.adj[kept].iter_mut() {
            if entry.1 == eid {
                entry.0 = node;
            }
        }
    }

    /// Validate structural invariants: degree (tips 1, internal 3), edge
    /// count, symmetric adjacency, connectivity.
    pub fn validate(&self) -> Result<(), String> {
        let expected_edges = if self.n_taxa == 2 { 1 } else { 2 * self.n_taxa - 3 };
        if self.edges.len() != expected_edges {
            return Err(format!("expected {expected_edges} edges, found {}", self.edges.len()));
        }
        for node in 0..self.n_nodes() {
            let deg = self.adj[node].len();
            let want = if self.is_tip(node) { 1 } else { 3 };
            if deg != want {
                return Err(format!("node {node}: degree {deg}, expected {want}"));
            }
            for &(nb, e) in &self.adj[node] {
                let (a, b) = self.endpoints(e);
                if !((a == node && b == nb) || (b == node && a == nb)) {
                    return Err(format!("adjacency of {node} disagrees with edge {e:?}"));
                }
                if !self.adj[nb].iter().any(|&(n2, e2)| n2 == node && e2 == e) {
                    return Err(format!("asymmetric adjacency between {node} and {nb}"));
                }
            }
        }
        // Connectivity via DFS.
        let mut seen = vec![false; self.n_nodes()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(n) = stack.pop() {
            for &(nb, _) in &self.adj[n] {
                if !seen[nb] {
                    seen[nb] = true;
                    stack.push(nb);
                }
            }
        }
        if seen.iter().any(|&s| !s) {
            return Err("tree is disconnected".into());
        }
        Ok(())
    }

    /// Render as a Newick string, rooted (for display) at the internal node
    /// adjacent to tip 0, with `names` labelling the tips.
    ///
    /// # Panics
    /// Panics if `names.len() != n_taxa`.
    pub fn to_newick(&self, names: &[String]) -> String {
        assert_eq!(names.len(), self.n_taxa, "one name per taxon required");
        if self.n_taxa == 2 {
            return format!(
                "({}:{:.6},{}:{:.6});",
                names[0],
                self.length(EdgeId(0)) / 2.0,
                names[1],
                self.length(EdgeId(0)) / 2.0
            );
        }
        let (root, root_edge) = self.adj[0][0];
        let mut s = String::new();
        s.push('(');
        s.push_str(&format!("{}:{:.6}", names[0], self.length(root_edge)));
        for &(child, e) in &self.adj[root] {
            if e != root_edge {
                s.push(',');
                self.newick_rec(child, root, e, names, &mut s);
            }
        }
        s.push_str(");");
        s
    }

    fn newick_rec(&self, node: usize, parent: usize, via: EdgeId, names: &[String], s: &mut String) {
        if self.is_tip(node) {
            s.push_str(&format!("{}:{:.6}", names[node], self.length(via)));
            return;
        }
        s.push('(');
        let mut first = true;
        for &(child, e) in &self.adj[node] {
            if child != parent || e != via {
                if !first {
                    s.push(',');
                }
                first = false;
                self.newick_rec(child, node, e, names, s);
            }
        }
        s.push_str(&format!("):{:.6}", self.length(via)));
    }

    /// The multiset of tip bipartitions induced by internal edges — a
    /// topology fingerprint for comparing trees irrespective of edge ids.
    pub fn bipartitions(&self) -> std::collections::BTreeSet<Vec<bool>> {
        let mut out = std::collections::BTreeSet::new();
        for e in self.internal_edges() {
            let (a, _b) = self.endpoints(e);
            // Tips reachable from `a` without crossing `e`.
            let mut side = vec![false; self.n_taxa];
            let mut seen = vec![false; self.n_nodes()];
            let mut stack = vec![a];
            seen[a] = true;
            while let Some(n) = stack.pop() {
                if self.is_tip(n) {
                    side[n] = true;
                }
                for &(nb, ne) in &self.adj[n] {
                    if ne != e && !seen[nb] {
                        seen[nb] = true;
                        stack.push(nb);
                    }
                }
            }
            // Canonicalize: side containing tip 0.
            if !side[0] {
                for s in side.iter_mut() {
                    *s = !*s;
                }
            }
            out.insert(side);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn two_taxon_tree() {
        let t = Tree::random(2, 0.1, &mut rng(1));
        assert_eq!(t.n_edges(), 1);
        assert_eq!(t.n_nodes(), 2);
        assert!(t.validate().is_ok());
        assert!(t.internal_edges().is_empty());
    }

    #[test]
    fn random_trees_are_valid_binary_trees() {
        for n in [3, 4, 5, 8, 16, 42] {
            for seed in 0..5 {
                let t = Tree::random(n, 0.1, &mut rng(seed));
                assert_eq!(t.n_edges(), 2 * n - 3, "n={n}");
                t.validate().unwrap_or_else(|e| panic!("n={n} seed={seed}: {e}"));
            }
        }
    }

    #[test]
    fn different_seeds_give_different_topologies() {
        let a = Tree::random(12, 0.1, &mut rng(1));
        let b = Tree::random(12, 0.1, &mut rng(2));
        assert_ne!(a.bipartitions(), b.bipartitions());
    }

    #[test]
    fn set_length_clamps_to_minimum() {
        let mut t = Tree::random(4, 0.1, &mut rng(0));
        let e = EdgeId(0);
        t.set_length(e, 0.0);
        assert_eq!(t.length(e), Tree::MIN_BRANCH);
        t.set_length(e, 0.42);
        assert!((t.length(e) - 0.42).abs() < 1e-15);
    }

    #[test]
    fn internal_edge_count() {
        // Unrooted binary tree with n tips has n-3 internal edges.
        for n in [4, 6, 10, 42] {
            let t = Tree::random(n, 0.1, &mut rng(3));
            assert_eq!(t.internal_edges().len(), n - 3, "n={n}");
        }
    }

    #[test]
    fn nni_preserves_validity_and_changes_topology() {
        let mut t = Tree::random(8, 0.1, &mut rng(5));
        let before = t.bipartitions();
        let e = t.internal_edges()[0];
        let mv = t.nni(e, 0);
        t.validate().expect("NNI result must be a valid tree");
        assert_ne!(t.bipartitions(), before, "NNI must change the topology");
        t.undo_nni(mv);
        t.validate().unwrap();
        assert_eq!(t.bipartitions(), before, "undo must restore the topology");
    }

    #[test]
    fn both_nni_variants_differ() {
        let mut t = Tree::random(8, 0.1, &mut rng(6));
        let e = t.internal_edges()[1];
        let base = t.bipartitions();
        let mv0 = t.nni(e, 0);
        let v0 = t.bipartitions();
        t.undo_nni(mv0);
        let mv1 = t.nni(e, 1);
        let v1 = t.bipartitions();
        t.undo_nni(mv1);
        assert_eq!(t.bipartitions(), base);
        assert_ne!(v0, v1, "the two NNI alternatives must be distinct");
        assert_ne!(v0, base);
        assert_ne!(v1, base);
    }

    #[test]
    fn nni_on_every_internal_edge_round_trips() {
        let mut t = Tree::random(16, 0.1, &mut rng(7));
        let base = t.bipartitions();
        for e in t.internal_edges() {
            for v in 0..2 {
                let mv = t.nni(e, v);
                t.validate().unwrap();
                t.undo_nni(mv);
                t.validate().unwrap();
            }
        }
        assert_eq!(t.bipartitions(), base);
    }

    #[test]
    #[should_panic(expected = "internal edge")]
    fn nni_rejects_pendant_edges() {
        let mut t = Tree::random(5, 0.1, &mut rng(8));
        let pendant = t
            .edge_ids()
            .find(|&e| {
                let (a, b) = t.endpoints(e);
                t.is_tip(a) || t.is_tip(b)
            })
            .unwrap();
        let _ = t.nni(pendant, 0);
    }

    #[test]
    fn newick_mentions_every_taxon() {
        let t = Tree::random(6, 0.1, &mut rng(9));
        let names: Vec<String> = (0..6).map(|i| format!("t{i}")).collect();
        let nwk = t.to_newick(&names);
        for n in &names {
            assert!(nwk.contains(n.as_str()), "{nwk} missing {n}");
        }
        assert!(nwk.ends_with(");"));
        assert_eq!(nwk.matches('(').count(), nwk.matches(')').count());
    }

    #[test]
    fn total_length_sums_branches() {
        let t = Tree::random(5, 0.25, &mut rng(10));
        let manual: f64 = t.edge_ids().map(|e| t.length(e)).sum();
        assert!((t.total_length() - manual).abs() < 1e-12);
    }

    #[test]
    fn bipartitions_have_expected_count() {
        let t = Tree::random(10, 0.1, &mut rng(11));
        assert_eq!(t.bipartitions().len(), 7, "n-3 distinct internal bipartitions");
    }
}
