//! Newick tree I/O.
//!
//! [`crate::tree::Tree::to_newick`] renders; this module parses the result
//! (and general Newick produced by other tools) back into a [`Tree`],
//! matching tip labels against a caller-supplied taxon list. Rooted
//! two-child inputs are unrooted by suppressing the degree-2 root, so
//! `parse(render(t))` reproduces `t` exactly.

use std::collections::HashMap;

use crate::tree::Tree;

/// Errors from Newick parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum NewickError {
    /// Unexpected character at byte offset.
    Unexpected {
        /// Byte offset into the input.
        at: usize,
        /// What was found.
        found: char,
        /// What the parser was expecting.
        expected: &'static str,
    },
    /// Input ended prematurely.
    UnexpectedEnd,
    /// A tip label not present in the taxon list.
    UnknownTaxon(String),
    /// A taxon appearing more than once.
    DuplicateTaxon(String),
    /// Tree has fewer than 2 tips, or a taxon from the list is missing.
    WrongTaxa {
        /// Taxa expected (from the caller's list).
        expected: usize,
        /// Tips actually found.
        found: usize,
    },
    /// A malformed branch length.
    BadLength(String),
    /// An inner node with a single child (other than a 2-child root).
    UnaryNode,
    /// An inner node with more than 3 children cannot be binary.
    PolytomyUnsupported,
}

impl std::fmt::Display for NewickError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NewickError::Unexpected { at, found, expected } => {
                write!(f, "unexpected {found:?} at byte {at}, expected {expected}")
            }
            NewickError::UnexpectedEnd => f.write_str("unexpected end of input"),
            NewickError::UnknownTaxon(t) => write!(f, "unknown taxon {t:?}"),
            NewickError::DuplicateTaxon(t) => write!(f, "duplicate taxon {t:?}"),
            NewickError::WrongTaxa { expected, found } => {
                write!(f, "expected {expected} taxa, found {found}")
            }
            NewickError::BadLength(s) => write!(f, "bad branch length {s:?}"),
            NewickError::UnaryNode => f.write_str("unary inner node"),
            NewickError::PolytomyUnsupported => {
                f.write_str("polytomies are not supported (binary trees only)")
            }
        }
    }
}

impl std::error::Error for NewickError {}

/// A parsed subtree: either a tip index or an inner node with children.
enum Node {
    Tip(usize),
    Inner(Vec<(Node, f64)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    names: HashMap<&'a str, usize>,
    seen: Vec<bool>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<char> {
        self.bytes.get(self.pos).map(|&b| b as char)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), NewickError> {
        self.skip_ws();
        match self.peek() {
            Some(f) if f == c => {
                self.pos += 1;
                Ok(())
            }
            Some(f) => Err(NewickError::Unexpected {
                at: self.pos,
                found: f,
                expected: match c {
                    '(' => "'('",
                    ')' => "')'",
                    ';' => "';'",
                    _ => "punctuation",
                },
            }),
            None => Err(NewickError::UnexpectedEnd),
        }
    }

    fn parse_label(&mut self) -> Result<&'a str, NewickError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(c) if !"(),:;".contains(c) && !c.is_whitespace()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(match self.peek() {
                Some(f) => NewickError::Unexpected { at: self.pos, found: f, expected: "a label" },
                None => NewickError::UnexpectedEnd,
            });
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii labels"))
    }

    fn parse_length(&mut self) -> Result<f64, NewickError> {
        self.skip_ws();
        if self.peek() != Some(':') {
            // Newick allows omitted lengths; default small.
            return Ok(Tree::MIN_BRANCH);
        }
        self.pos += 1;
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || "+-.eE".contains(c)) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .ok()
            .filter(|l| l.is_finite() && *l >= 0.0)
            .ok_or_else(|| NewickError::BadLength(text.to_string()))
    }

    fn parse_subtree(&mut self) -> Result<Node, NewickError> {
        self.skip_ws();
        if self.peek() == Some('(') {
            self.pos += 1;
            let mut children = Vec::new();
            loop {
                let child = self.parse_subtree()?;
                let len = self.parse_length()?;
                children.push((child, len));
                self.skip_ws();
                match self.peek() {
                    Some(',') => {
                        self.pos += 1;
                    }
                    Some(')') => {
                        self.pos += 1;
                        break;
                    }
                    Some(f) => {
                        return Err(NewickError::Unexpected {
                            at: self.pos,
                            found: f,
                            expected: "',' or ')'",
                        })
                    }
                    None => return Err(NewickError::UnexpectedEnd),
                }
            }
            if children.len() < 2 {
                return Err(NewickError::UnaryNode);
            }
            Ok(Node::Inner(children))
        } else {
            let label = self.parse_label()?;
            let &tip = self
                .names
                .get(label)
                .ok_or_else(|| NewickError::UnknownTaxon(label.to_string()))?;
            if self.seen[tip] {
                return Err(NewickError::DuplicateTaxon(label.to_string()));
            }
            self.seen[tip] = true;
            Ok(Node::Tip(tip))
        }
    }
}

/// Parse a Newick string into an unrooted binary [`Tree`], mapping tip
/// labels to indices via `taxa` (the alignment's taxon order).
///
/// Accepts both rooted (2-child root) and unrooted (3-child root) inputs;
/// a 2-child root is suppressed by fusing its two edges.
///
/// # Errors
/// Any [`NewickError`] on malformed input, unknown/duplicate/missing taxa,
/// or polytomies.
pub fn parse_newick(text: &str, taxa: &[String]) -> Result<Tree, NewickError> {
    let names: HashMap<&str, usize> =
        taxa.iter().enumerate().map(|(i, n)| (n.as_str(), i)).collect();
    let mut p = Parser { bytes: text.as_bytes(), pos: 0, names, seen: vec![false; taxa.len()] };
    let root = p.parse_subtree()?;
    // Tolerate a trailing root length, then require ';'.
    let _ = p.parse_length()?;
    p.expect(';')?;

    let found = p.seen.iter().filter(|&&s| s).count();
    if found != taxa.len() || taxa.len() < 2 {
        return Err(NewickError::WrongTaxa { expected: taxa.len(), found });
    }

    // Normalize the root: unrooted trees need a 3-child root (or a single
    // edge for 2 taxa).
    let children = match root {
        Node::Tip(_) => return Err(NewickError::WrongTaxa { expected: taxa.len(), found: 1 }),
        Node::Inner(c) => c,
    };
    let mut builder = TreeBuilder::new(taxa.len());
    match children.len() {
        2 => {
            if taxa.len() == 2 {
                // Two tips: one edge with the summed length.
                let (a, la) = &children[0];
                let (b, lb) = &children[1];
                match (a, b) {
                    (Node::Tip(x), Node::Tip(y)) => {
                        let t = builder.finish_two_taxon(*x, *y, la + lb);
                        return {
                            t.validate().expect("2-taxon tree valid");
                            Ok(t)
                        };
                    }
                    _ => return Err(NewickError::PolytomyUnsupported),
                }
            }
            // Suppress the degree-2 root: its two children join directly.
            let mut iter = children.into_iter();
            let (left, ll) = iter.next().expect("two children");
            let (right, rl) = iter.next().expect("two children");
            let l_node = builder.build(left)?;
            let r_node = builder.build(right)?;
            builder.connect(l_node, r_node, ll + rl);
        }
        3 => {
            let center = builder.new_internal();
            for (child, len) in children {
                let c = builder.build(child)?;
                builder.connect(center, c, len);
            }
        }
        _ => return Err(NewickError::PolytomyUnsupported),
    }
    let t = builder.finish();
    t.validate().map_err(|_| NewickError::PolytomyUnsupported)?;
    Ok(t)
}

/// Incremental unrooted-tree builder used by the parser.
struct TreeBuilder {
    n_taxa: usize,
    next_internal: usize,
    edges: Vec<(usize, usize, f64)>,
}

impl TreeBuilder {
    fn new(n_taxa: usize) -> TreeBuilder {
        TreeBuilder { n_taxa, next_internal: n_taxa, edges: Vec::new() }
    }

    fn new_internal(&mut self) -> usize {
        let id = self.next_internal;
        self.next_internal += 1;
        id
    }

    fn build(&mut self, node: Node) -> Result<usize, NewickError> {
        match node {
            Node::Tip(i) => Ok(i),
            Node::Inner(children) => {
                if children.len() != 2 {
                    return Err(NewickError::PolytomyUnsupported);
                }
                let id = self.new_internal();
                for (child, len) in children {
                    let c = self.build(child)?;
                    self.connect(id, c, len);
                }
                Ok(id)
            }
        }
    }

    fn connect(&mut self, a: usize, b: usize, len: f64) {
        self.edges.push((a, b, len.max(Tree::MIN_BRANCH)));
    }

    fn finish(self) -> Tree {
        Tree::from_edges(self.n_taxa, self.next_internal, &self.edges)
    }

    fn finish_two_taxon(&mut self, a: usize, b: usize, len: f64) -> Tree {
        Tree::from_edges(self.n_taxa, self.n_taxa, &[(a, b, len.max(Tree::MIN_BRANCH))])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::EdgeId;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("t{i}")).collect()
    }

    #[test]
    fn round_trip_random_trees() {
        for seed in 0..8 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = 4 + (seed as usize % 10);
            let tree = Tree::random(n, 0.17, &mut rng);
            let taxa = names(n);
            let text = tree.to_newick(&taxa);
            let back = parse_newick(&text, &taxa)
                .unwrap_or_else(|e| panic!("seed {seed}: {e} in {text}"));
            assert_eq!(back.bipartitions(), tree.bipartitions(), "seed {seed}: {text}");
            assert!(
                (back.total_length() - tree.total_length()).abs() < 1e-4,
                "lengths drifted: {} vs {}",
                back.total_length(),
                tree.total_length()
            );
        }
    }

    #[test]
    fn parses_handwritten_unrooted() {
        let taxa = names(4);
        let t = parse_newick("(t0:0.1,t1:0.2,(t2:0.3,t3:0.4):0.5);", &taxa).unwrap();
        t.validate().unwrap();
        assert_eq!(t.n_taxa(), 4);
        // (t2,t3) form a clade.
        let bip = t.bipartitions();
        assert_eq!(bip.len(), 1);
    }

    #[test]
    fn parses_rooted_input_by_unrooting() {
        let taxa = names(4);
        let rooted = parse_newick("((t0:0.1,t1:0.2):0.05,(t2:0.3,t3:0.4):0.05);", &taxa).unwrap();
        rooted.validate().unwrap();
        assert_eq!(rooted.n_edges(), 5);
        let unrooted = parse_newick("(t0:0.1,t1:0.2,(t2:0.3,t3:0.4):0.1);", &taxa).unwrap();
        assert_eq!(rooted.bipartitions(), unrooted.bipartitions());
    }

    #[test]
    fn two_taxon_tree_round_trips() {
        let taxa = names(2);
        let t = parse_newick("(t0:0.25,t1:0.25);", &taxa).unwrap();
        assert_eq!(t.n_edges(), 1);
        assert!((t.length(EdgeId(0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn missing_lengths_default() {
        let taxa = names(3);
        let t = parse_newick("(t0,t1,t2);", &taxa).unwrap();
        t.validate().unwrap();
        for e in t.edge_ids() {
            assert_eq!(t.length(e), Tree::MIN_BRANCH);
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let taxa = names(3);
        let t = parse_newick(" ( t0 : 0.1 , t1 : 0.2 , t2 : 0.3 ) ; ", &taxa).unwrap();
        t.validate().unwrap();
    }

    #[test]
    fn error_cases() {
        let taxa = names(4);
        assert!(matches!(
            parse_newick("(t0:0.1,bogus:0.2,(t2:0.3,t3:0.4):0.5);", &taxa),
            Err(NewickError::UnknownTaxon(_))
        ));
        assert!(matches!(
            parse_newick("(t0:0.1,t0:0.2,(t2:0.3,t3:0.4):0.5);", &taxa),
            Err(NewickError::DuplicateTaxon(_))
        ));
        assert!(matches!(
            parse_newick("(t0:0.1,t1:0.2,(t2:0.3,t3:0.4):0.5)", &taxa),
            Err(NewickError::UnexpectedEnd)
        ));
        assert!(matches!(
            parse_newick("(t0:0.1,t1:0.2,t2:0.3);", &taxa),
            Err(NewickError::WrongTaxa { expected: 4, found: 3 })
        ));
        assert!(matches!(
            parse_newick("(t0:0.1,t1:0.2,t2:0.3,t3:0.1,t0:0.1);", &taxa),
            Err(NewickError::DuplicateTaxon(_)) | Err(NewickError::PolytomyUnsupported)
        ));
        assert!(matches!(
            parse_newick("(t0:abc,t1:0.2,(t2:0.3,t3:0.4):0.5);", &taxa),
            Err(NewickError::BadLength(_)) | Err(NewickError::Unexpected { .. })
        ));
    }

    #[test]
    fn parse_feeds_the_likelihood_engine() {
        use crate::alignment::{Alignment, PatternAlignment};
        use crate::likelihood::LikelihoodEngine;
        use crate::model::Jc69;
        let aln = Alignment::synthetic(5, 60, &Jc69, 0.1, 4);
        let data = PatternAlignment::compress(&aln);
        let taxa = aln.taxa().to_vec();
        let mut rng = SmallRng::seed_from_u64(2);
        let tree = Tree::random(5, 0.1, &mut rng);
        let parsed = parse_newick(&tree.to_newick(&taxa), &taxa).unwrap();
        let engine = LikelihoodEngine::new(&Jc69, &data);
        let a = engine.log_likelihood(&tree);
        let b = engine.log_likelihood(&parsed);
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }
}
