//! Non-parametric bootstrapping (§3.1).
//!
//! A bootstrap replicate re-samples alignment columns with replacement and
//! re-runs the inference on the re-sampled data. With site-pattern
//! compression this is a pure *weight change*: the patterns stay put and
//! each pattern's weight becomes the number of times any of its columns was
//! drawn. Replicate confidence values are the fraction of replicate trees
//! containing each bipartition of the best-known tree.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::alignment::PatternAlignment;
use crate::tree::Tree;

/// Produce the re-sampled weight vector of one bootstrap replicate,
/// deterministic in `seed`.
pub fn bootstrap_weights(data: &PatternAlignment, seed: u64) -> Vec<u32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_sites = data.n_sites();
    let col2pat = data.column_pattern();
    let mut weights = vec![0u32; data.n_patterns()];
    for _ in 0..n_sites {
        let col = rng.gen_range(0..n_sites);
        weights[col2pat[col]] += 1;
    }
    weights
}

/// A bootstrap replicate: the same patterns with re-sampled weights.
pub fn bootstrap_replicate(data: &PatternAlignment, seed: u64) -> PatternAlignment {
    data.with_weights(bootstrap_weights(data, seed))
}

/// Support values for the bipartitions of `reference`, as the fraction of
/// `replicates` containing each bipartition. Returned in the iteration
/// order of [`Tree::bipartitions`].
pub fn support_values(reference: &Tree, replicates: &[Tree]) -> Vec<f64> {
    let ref_bips: Vec<_> = reference.bipartitions().into_iter().collect();
    if replicates.is_empty() {
        return vec![0.0; ref_bips.len()];
    }
    let rep_bips: Vec<_> = replicates.iter().map(Tree::bipartitions).collect();
    ref_bips
        .iter()
        .map(|bip| {
            let hits = rep_bips.iter().filter(|set| set.contains(bip)).count();
            hits as f64 / replicates.len() as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::Alignment;
    use crate::model::Jc69;

    fn data() -> PatternAlignment {
        PatternAlignment::compress(&Alignment::synthetic(6, 300, &Jc69, 0.1, 17))
    }

    #[test]
    fn bootstrap_weights_sum_to_site_count() {
        let d = data();
        for seed in 0..20 {
            let w = bootstrap_weights(&d, seed);
            let total: u32 = w.iter().sum();
            assert_eq!(total as usize, d.n_sites(), "seed {seed}");
        }
    }

    #[test]
    fn bootstrap_is_deterministic_in_seed() {
        let d = data();
        assert_eq!(bootstrap_weights(&d, 5), bootstrap_weights(&d, 5));
        assert_ne!(bootstrap_weights(&d, 5), bootstrap_weights(&d, 6));
    }

    #[test]
    fn replicate_shares_patterns_with_original() {
        let d = data();
        let rep = bootstrap_replicate(&d, 9);
        assert_eq!(rep.n_patterns(), d.n_patterns());
        assert_eq!(rep.n_sites(), d.n_sites());
        for t in 0..d.n_taxa() {
            for p in 0..d.n_patterns() {
                assert_eq!(rep.mask(t, p), d.mask(t, p));
            }
        }
    }

    #[test]
    fn resampling_typically_drops_some_patterns() {
        // With n draws from n columns, ~1/e of columns are missed, so some
        // patterns should reach weight zero on realistic data.
        let d = data();
        let w = bootstrap_weights(&d, 1);
        assert!(
            w.contains(&0),
            "expected at least one dropped pattern out of {}",
            w.len()
        );
    }

    #[test]
    fn support_of_identical_replicates_is_one() {
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(3);
        let t = Tree::random(8, 0.1, &mut rng);
        let reps = vec![t.clone(), t.clone(), t.clone()];
        let s = support_values(&t, &reps);
        assert_eq!(s.len(), 5); // 8 - 3 bipartitions
        assert!(s.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn support_against_disagreeing_replicates_is_fractional() {
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(4);
        let reference = Tree::random(8, 0.1, &mut rng);
        let mut other = reference.clone();
        let e = other.internal_edges()[0];
        other.nni(e, 0);
        let reps = vec![reference.clone(), other];
        let s = support_values(&reference, &reps);
        assert!(s.iter().any(|&v| v < 1.0), "some bipartition lost support: {s:?}");
        assert!(s.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn support_with_no_replicates_is_zero() {
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(5);
        let t = Tree::random(6, 0.1, &mut rng);
        let s = support_values(&t, &[]);
        assert!(s.iter().all(|&v| v == 0.0));
    }
}
