//! Randomized hill-climbing tree search.
//!
//! RAxML's rapid hill climbing alternates branch-length optimization with
//! topological rearrangements, starting each independent inference from a
//! distinct randomized tree (§3.1). We implement the same skeleton with
//! nearest-neighbor interchanges: optimize branches, sweep all internal
//! edges trying both NNI alternatives, keep any improvement, repeat until a
//! sweep finds nothing better.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::alignment::PatternAlignment;
use crate::likelihood::LikelihoodEngine;
use crate::model::SubstModel;
use crate::tree::Tree;

/// Anything that can score trees and optimize their branch lengths.
///
/// [`LikelihoodEngine`] is the direct implementation; the workspace's
/// multigrain runtime provides an implementation that off-loads the
/// likelihood kernels to virtual SPEs, letting the *same* search code run
/// either way (exactly the paper's dual PPE/SPE code-path arrangement).
pub trait ScoringEngine {
    /// Log-likelihood of `tree`.
    fn score(&mut self, tree: &Tree) -> f64;
    /// Optimize all branch lengths in place; returns the final score.
    fn optimize_branches(&mut self, tree: &mut Tree, max_passes: usize, epsilon: f64) -> f64;
}

impl<M: SubstModel> ScoringEngine for LikelihoodEngine<'_, M> {
    fn score(&mut self, tree: &Tree) -> f64 {
        self.log_likelihood(tree)
    }
    fn optimize_branches(&mut self, tree: &mut Tree, max_passes: usize, epsilon: f64) -> f64 {
        LikelihoodEngine::optimize_branches(self, tree, max_passes, epsilon)
    }
}

/// Tuning knobs for the hill climber.
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// Maximum NNI improvement sweeps.
    pub max_rounds: usize,
    /// Branch-length optimization passes between sweeps.
    pub branch_passes: usize,
    /// Convergence threshold on the log-likelihood.
    pub epsilon: f64,
    /// Initial branch length for random starting trees.
    pub initial_branch: f64,
    /// Independent randomized starts per search (RAxML runs several
    /// inferences from distinct starting trees; greedy climbs from one
    /// random tree routinely stall in local optima).
    pub restarts: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            max_rounds: 10,
            branch_passes: 2,
            epsilon: 1e-4,
            initial_branch: 0.1,
            restarts: 3,
        }
    }
}

/// The outcome of one inference (tree search).
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The best tree found.
    pub tree: Tree,
    /// Its log-likelihood.
    pub lnl: f64,
    /// NNI moves accepted.
    pub accepted_moves: usize,
    /// Improvement sweeps executed.
    pub rounds: usize,
}

/// Run one randomized hill-climbing search over `data` under `model`,
/// deterministic in `seed`.
pub fn hill_climb<M: SubstModel>(
    model: &M,
    data: &PatternAlignment,
    cfg: &SearchConfig,
    seed: u64,
) -> SearchResult {
    let mut engine = LikelihoodEngine::new(model, data);
    hill_climb_with(&mut engine, data.n_taxa(), cfg, seed)
}

/// The engine-generic hill climber: identical policy to [`hill_climb`],
/// but scoring through any [`ScoringEngine`]. Runs `cfg.restarts`
/// independent climbs from distinct random starting trees (all drawn from
/// the one seeded stream, so results stay deterministic in `seed`) and
/// returns the best.
pub fn hill_climb_with(
    engine: &mut impl ScoringEngine,
    n_taxa: usize,
    cfg: &SearchConfig,
    seed: u64,
) -> SearchResult {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut best: Option<SearchResult> = None;
    for _ in 0..cfg.restarts.max(1) {
        let r = climb_once(engine, n_taxa, cfg, &mut rng);
        if best.as_ref().is_none_or(|b| r.lnl > b.lnl) {
            best = Some(r);
        }
    }
    best.expect("at least one restart runs")
}

/// One greedy NNI climb from a fresh random tree drawn from `rng`.
fn climb_once(
    engine: &mut impl ScoringEngine,
    n_taxa: usize,
    cfg: &SearchConfig,
    rng: &mut SmallRng,
) -> SearchResult {
    let mut tree = Tree::random(n_taxa, cfg.initial_branch, rng);
    let mut lnl = engine.optimize_branches(&mut tree, cfg.branch_passes, cfg.epsilon);
    let mut accepted = 0usize;
    let mut rounds = 0usize;

    for _ in 0..cfg.max_rounds {
        rounds += 1;
        let mut improved = false;
        for edge in tree.internal_edges() {
            for variant in 0..2u8 {
                // Rejection must restore branch lengths too: candidate
                // evaluation re-optimizes every branch, and undoing only
                // the topology would leave the tree in a mongrel state.
                let saved_lengths: Vec<f64> = tree.edge_ids().map(|e| tree.length(e)).collect();
                let mv = tree.nni(edge, variant);
                let candidate = engine.optimize_branches(&mut tree, cfg.branch_passes, cfg.epsilon);
                if candidate > lnl + cfg.epsilon {
                    lnl = candidate;
                    accepted += 1;
                    improved = true;
                    // Keep the move; continue from the new topology.
                    break;
                }
                tree.undo_nni(mv);
                for (e, len) in tree.edge_ids().zip(saved_lengths) {
                    tree.set_length(e, len);
                }
            }
        }
        if !improved {
            break;
        }
    }
    // Final tightening.
    lnl = engine.optimize_branches(&mut tree, cfg.branch_passes * 2, cfg.epsilon / 10.0);
    SearchResult { tree, lnl, accepted_moves: accepted, rounds }
}

/// SPR-based hill climbing: like [`hill_climb_with`] but rearranging with
/// radius-limited subtree pruning and regrafting — RAxML's actual move set,
/// able to escape local optima NNI cannot.
pub fn spr_hill_climb_with(
    engine: &mut impl ScoringEngine,
    n_taxa: usize,
    cfg: &SearchConfig,
    radius: usize,
    seed: u64,
) -> SearchResult {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut best: Option<SearchResult> = None;
    for _ in 0..cfg.restarts.max(1) {
        let r = spr_climb_once(engine, n_taxa, cfg, radius, &mut rng);
        if best.as_ref().is_none_or(|b| r.lnl > b.lnl) {
            best = Some(r);
        }
    }
    best.expect("at least one restart runs")
}

/// One greedy SPR climb from a fresh random tree drawn from `rng`.
fn spr_climb_once(
    engine: &mut impl ScoringEngine,
    n_taxa: usize,
    cfg: &SearchConfig,
    radius: usize,
    rng: &mut SmallRng,
) -> SearchResult {
    let mut tree = Tree::random(n_taxa, cfg.initial_branch, rng);
    let mut lnl = engine.optimize_branches(&mut tree, cfg.branch_passes, cfg.epsilon);
    let mut accepted = 0usize;
    let mut rounds = 0usize;

    for _ in 0..cfg.max_rounds {
        rounds += 1;
        let mut improved = false;
        'prune: for prune in tree.edge_ids().collect::<Vec<_>>() {
            let (pa, pb) = tree.endpoints(prune);
            for root in [pa, pb] {
                let targets = tree.spr_targets(prune, root, radius);
                for target in targets {
                    let saved: Vec<f64> = tree.edge_ids().map(|e| tree.length(e)).collect();
                    let mv = tree.spr(prune, root, target);
                    let candidate =
                        engine.optimize_branches(&mut tree, cfg.branch_passes, cfg.epsilon);
                    if candidate > lnl + cfg.epsilon {
                        lnl = candidate;
                        accepted += 1;
                        improved = true;
                        // Keep the move; this prune edge's neighborhood
                        // changed, so move on to the next one.
                        continue 'prune;
                    }
                    tree.undo_spr(mv);
                    for (e, len) in tree.edge_ids().zip(saved) {
                        tree.set_length(e, len);
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    lnl = engine.optimize_branches(&mut tree, cfg.branch_passes * 2, cfg.epsilon / 10.0);
    SearchResult { tree, lnl, accepted_moves: accepted, rounds }
}

/// SPR hill climbing with the default (direct) likelihood engine.
pub fn spr_hill_climb<M: SubstModel>(
    model: &M,
    data: &PatternAlignment,
    cfg: &SearchConfig,
    radius: usize,
    seed: u64,
) -> SearchResult {
    let mut engine = LikelihoodEngine::new(model, data);
    spr_hill_climb_with(&mut engine, data.n_taxa(), cfg, radius, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::Alignment;
    use crate::model::Jc69;

    /// Small, strongly structured data so the search has a clear target.
    fn structured_data() -> PatternAlignment {
        // Two clearly separated clades: (a,b) vs (c,d) — 30 sites of signal.
        let a = Alignment::from_strings(&[
            ("a", "AAAAAAAAAACCCCCCCCCCGGGGGGGGGG"),
            ("b", "AAAAAAAAAACCCCCCCCCCGGGGGGGGGG"),
            ("c", "TTTTTTTTTTGGGGGGGGGGAAAAAAAAAA"),
            ("d", "TTTTTTTTTTGGGGGGGGGGAAAAAAAAAA"),
            ("e", "TTTTTTTTTTGGGGGGGGGGCCCCCCCCCC"),
        ])
        .unwrap();
        PatternAlignment::compress(&a)
    }

    #[test]
    fn search_is_deterministic_in_seed() {
        let data = structured_data();
        let r1 = hill_climb(&Jc69, &data, &SearchConfig::default(), 42);
        let r2 = hill_climb(&Jc69, &data, &SearchConfig::default(), 42);
        assert_eq!(r1.lnl, r2.lnl);
        assert_eq!(r1.tree.bipartitions(), r2.tree.bipartitions());
    }

    #[test]
    fn different_starts_converge_to_comparable_likelihoods() {
        let data = structured_data();
        let scores: Vec<f64> = (0..4)
            .map(|seed| hill_climb(&Jc69, &data, &SearchConfig::default(), seed).lnl)
            .collect();
        let best = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let worst = scores.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            best - worst < 5.0,
            "searches diverged wildly: best {best}, worst {worst}"
        );
    }

    #[test]
    fn search_recovers_the_obvious_clade() {
        let data = structured_data();
        let r = hill_climb(&Jc69, &data, &SearchConfig::default(), 1);
        // (a,b) must form a clade: some bipartition separates {0,1} from
        // the rest.
        let found = r.tree.bipartitions().iter().any(|side| {
            let ab: Vec<usize> = side
                .iter()
                .enumerate()
                .filter_map(|(i, &s)| s.then_some(i))
                .collect();
            ab == vec![0, 1] || ab == vec![0, 2, 3, 4].into_iter().collect::<Vec<_>>()
        });
        assert!(found, "search failed to recover the (a,b) clade: {:?}", r.tree.bipartitions());
    }

    #[test]
    fn search_beats_its_starting_tree() {
        let data = PatternAlignment::compress(&Alignment::synthetic(10, 150, &Jc69, 0.1, 33));
        let cfg = SearchConfig::default();
        let engine = LikelihoodEngine::new(&Jc69, &data);
        let mut rng = SmallRng::seed_from_u64(99);
        let start = Tree::random(10, cfg.initial_branch, &mut rng);
        let start_lnl = engine.log_likelihood(&start);
        let r = hill_climb(&Jc69, &data, &cfg, 99);
        assert!(
            r.lnl > start_lnl,
            "search result {} should beat unoptimized random start {}",
            r.lnl,
            start_lnl
        );
        r.tree.validate().unwrap();
    }

    #[test]
    fn spr_search_is_deterministic_and_valid() {
        let data = structured_data();
        let cfg = SearchConfig { max_rounds: 4, branch_passes: 1, epsilon: 1e-3, initial_branch: 0.1, restarts: 1 };
        let a = spr_hill_climb(&Jc69, &data, &cfg, 3, 11);
        let b = spr_hill_climb(&Jc69, &data, &cfg, 3, 11);
        assert_eq!(a.lnl, b.lnl);
        a.tree.validate().unwrap();
        assert!(a.lnl.is_finite() && a.lnl < 0.0);
    }

    #[test]
    fn spr_matches_or_beats_nni_from_the_same_start() {
        let data = PatternAlignment::compress(&Alignment::synthetic(8, 120, &Jc69, 0.12, 55));
        let cfg = SearchConfig { max_rounds: 4, branch_passes: 1, epsilon: 1e-3, initial_branch: 0.1, restarts: 1 };
        for seed in [1u64, 2] {
            let nni = hill_climb(&Jc69, &data, &cfg, seed);
            let spr = spr_hill_climb(&Jc69, &data, &cfg, 3, seed);
            assert!(
                spr.lnl >= nni.lnl - 0.5,
                "seed {seed}: SPR {} should not lose clearly to NNI {}",
                spr.lnl,
                nni.lnl
            );
        }
    }

    #[test]
    fn result_tree_is_structurally_valid() {
        let data = PatternAlignment::compress(&Alignment::synthetic(8, 100, &Jc69, 0.12, 5));
        let r = hill_climb(&Jc69, &data, &SearchConfig::default(), 7);
        r.tree.validate().unwrap();
        assert!(r.lnl.is_finite());
        assert!(r.rounds >= 1);
    }
}
