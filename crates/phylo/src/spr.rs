//! Subtree pruning and regrafting (SPR) — the rearrangement move behind
//! RAxML's rapid hill climbing. NNI (in [`crate::tree`]) only swaps
//! subtrees across one edge; SPR detaches a whole subtree and reattaches
//! it anywhere within a rearrangement radius, escaping local optima NNI
//! cannot.
//!
//! The move is expressed on the [`Tree`] arena without reallocating nodes
//! or edges: pruning reuses the junction node and its spare edge for the
//! regraft, so edge ids stay stable and moves are cheaply undoable.

use crate::tree::{EdgeId, Tree};

/// A record of an applied SPR move, sufficient to undo it exactly
/// (topology *and* branch lengths).
#[derive(Debug, Clone, Copy)]
pub struct SprMove {
    /// The junction node that was moved.
    junction: usize,
    /// Edge from the junction into the pruned subtree (unchanged).
    _subtree_edge: EdgeId,
    /// The edge that was merged at the prune site (now re-split on undo).
    merged_edge: EdgeId,
    /// The spare edge that re-subdivided the target (returns on undo).
    spare_edge: EdgeId,
    /// Original neighbors at the prune site and their edge lengths.
    a: usize,
    b: usize,
    len_ea: f64,
    len_eb: f64,
    /// The target edge that was split, and its original far endpoint/length.
    target: EdgeId,
    y: usize,
    len_target: f64,
}

impl Tree {
    /// All (junction, subtree-edge, target-edge) SPR candidates for the
    /// subtree hanging off `prune` on the side of `subtree_root`, with the
    /// regraft target at most `radius` edges from the prune site.
    ///
    /// The prune point must be an internal node; targets inside the pruned
    /// subtree, the prune-adjacent edges, and the subtree edge itself are
    /// excluded (regrafting there is a no-op or ill-formed).
    pub fn spr_targets(&self, prune: EdgeId, subtree_root: usize, radius: usize) -> Vec<EdgeId> {
        let (pa, pb) = self.endpoints(prune);
        let junction = if subtree_root == pa { pb } else { pa };
        assert!(
            subtree_root == pa || subtree_root == pb,
            "subtree root must be an endpoint of the prune edge"
        );
        if self.is_tip(junction) {
            return Vec::new(); // nothing to detach from
        }
        // Nodes inside the pruned subtree (beyond the junction).
        let mut in_subtree = vec![false; self.n_nodes()];
        in_subtree[subtree_root] = true;
        let mut stack = vec![subtree_root];
        while let Some(n) = stack.pop() {
            for &(nb, e) in self.neighbors(n) {
                if e != prune && !in_subtree[nb] {
                    in_subtree[nb] = true;
                    stack.push(nb);
                }
            }
        }
        // BFS outward from the junction through the remaining tree,
        // collecting edges up to the radius.
        let adjacent: Vec<EdgeId> =
            self.neighbors(junction).iter().map(|&(_, e)| e).collect();
        let mut out = Vec::new();
        let mut seen = vec![false; self.n_nodes()];
        seen[junction] = true;
        let mut frontier = vec![junction];
        for _hop in 0..radius {
            let mut next = Vec::new();
            for &n in &frontier {
                for &(nb, e) in self.neighbors(n) {
                    if in_subtree[nb] || seen[nb] || e == prune {
                        continue;
                    }
                    seen[nb] = true;
                    if !adjacent.contains(&e) {
                        out.push(e);
                    }
                    next.push(nb);
                }
            }
            frontier = next;
        }
        out
    }

    /// Apply an SPR: prune the subtree on the `subtree_root` side of
    /// `prune` and regraft it into `target`.
    ///
    /// # Panics
    /// Panics if the junction is not internal, `target` is adjacent to the
    /// junction, or `target` lies inside the pruned subtree (use
    /// [`Tree::spr_targets`] to enumerate legal targets).
    pub fn spr(&mut self, prune: EdgeId, subtree_root: usize, target: EdgeId) -> SprMove {
        let (pa, pb) = self.endpoints(prune);
        let junction = if subtree_root == pa { pb } else { pa };
        assert!(!self.is_tip(junction), "SPR junction must be internal");
        let neighbors: Vec<(usize, EdgeId)> = self
            .neighbors(junction)
            .iter()
            .copied()
            .filter(|&(_, e)| e != prune)
            .collect();
        assert_eq!(neighbors.len(), 2, "degree-3 junction expected");
        let (a, ea) = neighbors[0];
        let (b, eb) = neighbors[1];
        assert!(target != ea && target != eb && target != prune, "illegal SPR target");

        let len_ea = self.length(ea);
        let len_eb = self.length(eb);
        let (tx, ty) = self.endpoints(target);
        assert!(tx != junction && ty != junction, "target adjacent to junction");
        let len_target = self.length(target);

        // 1. Detach: merge a—junction—b into a single edge. `ea` becomes
        //    (a, b) with the combined length; `eb` is freed as the spare.
        self.reattach_endpoint(ea, junction, b);
        self.set_length(ea, len_ea + len_eb);
        self.detach_edge(eb, b);
        // `eb` now dangles from the junction only.

        // 2. Regraft: split `target` (x—y) into x—junction (reusing
        //    `target`) and junction—y (reusing `eb`), halving the length.
        self.reattach_endpoint(target, ty, junction);
        self.set_length(target, (len_target / 2.0).max(Tree::MIN_BRANCH));
        self.attach_edge(eb, ty);
        self.set_length(eb, (len_target / 2.0).max(Tree::MIN_BRANCH));

        debug_assert!(self.validate().is_ok(), "SPR produced an invalid tree");
        SprMove {
            junction,
            _subtree_edge: prune,
            merged_edge: ea,
            spare_edge: eb,
            a,
            b,
            len_ea,
            len_eb,
            target,
            y: ty,
            len_target,
        }
    }

    /// Undo `mv`, restoring topology and branch lengths exactly.
    pub fn undo_spr(&mut self, mv: SprMove) {
        // Reverse of regraft: free the spare edge and heal the target.
        self.detach_edge(mv.spare_edge, mv.y);
        self.reattach_endpoint(mv.target, mv.junction, mv.y);
        self.set_length(mv.target, mv.len_target);
        // Reverse of detach: re-split a—b around the junction.
        self.reattach_endpoint(mv.merged_edge, mv.b, mv.junction);
        self.set_length(mv.merged_edge, mv.len_ea);
        let _ = mv.a;
        self.attach_edge(mv.spare_edge, mv.b);
        self.set_length(mv.spare_edge, mv.len_eb);
        debug_assert!(self.validate().is_ok(), "SPR undo produced an invalid tree");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    /// A (prune edge, subtree root) pair with at least one legal target.
    fn pick_prune(tree: &Tree, radius: usize) -> (EdgeId, usize, Vec<EdgeId>) {
        for e in tree.edge_ids() {
            let (a, b) = tree.endpoints(e);
            for root in [a, b] {
                let targets = tree.spr_targets(e, root, radius);
                if !targets.is_empty() {
                    return (e, root, targets);
                }
            }
        }
        panic!("no SPR candidates in tree");
    }

    #[test]
    fn spr_produces_valid_trees_and_undo_restores() {
        for seed in 0..10 {
            let mut tree = Tree::random(12, 0.1, &mut rng(seed));
            let before_bips = tree.bipartitions();
            let before_len = tree.total_length();
            let (prune, root, targets) = pick_prune(&tree, 3);
            for &target in &targets {
                let mv = tree.spr(prune, root, target);
                tree.validate().unwrap();
                tree.undo_spr(mv);
                tree.validate().unwrap();
                assert_eq!(tree.bipartitions(), before_bips, "seed {seed}");
                assert!((tree.total_length() - before_len).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn spr_changes_the_topology() {
        let mut tree = Tree::random(10, 0.1, &mut rng(3));
        let before = tree.bipartitions();
        let (prune, root, targets) = pick_prune(&tree, 4);
        let mv = tree.spr(prune, root, targets[targets.len() - 1]);
        assert_ne!(tree.bipartitions(), before, "SPR must rearrange");
        tree.undo_spr(mv);
        assert_eq!(tree.bipartitions(), before);
    }

    #[test]
    fn radius_limits_candidates() {
        let tree = Tree::random(20, 0.1, &mut rng(5));
        let e = tree.internal_edges()[0];
        let (a, _) = tree.endpoints(e);
        let near = tree.spr_targets(e, a, 1);
        let far = tree.spr_targets(e, a, 6);
        assert!(near.len() <= far.len());
        for t in &near {
            assert!(far.contains(t), "radius sets must nest");
        }
    }

    #[test]
    fn targets_exclude_pruned_subtree_and_adjacent_edges() {
        let tree = Tree::random(12, 0.1, &mut rng(7));
        let e = tree.internal_edges()[0];
        let (root, junction) = tree.endpoints(e);
        let targets = tree.spr_targets(e, root, 10);
        // Collect subtree nodes.
        let mut in_subtree = vec![false; tree.n_nodes()];
        in_subtree[root] = true;
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            for &(nb, ne) in tree.neighbors(n) {
                if ne != e && !in_subtree[nb] {
                    in_subtree[nb] = true;
                    stack.push(nb);
                }
            }
        }
        for &t in &targets {
            let (x, y) = tree.endpoints(t);
            assert!(!in_subtree[x] && !in_subtree[y], "target {t:?} inside pruned subtree");
            assert!(x != junction && y != junction, "target {t:?} adjacent to junction");
        }
    }

    #[test]
    fn pruning_at_a_tip_yields_no_candidates() {
        let tree = Tree::random(8, 0.1, &mut rng(9));
        // Pendant edge, pruning the *internal* side: junction is the tip.
        let pendant = tree
            .edge_ids()
            .find(|&e| {
                let (a, b) = tree.endpoints(e);
                tree.is_tip(a) || tree.is_tip(b)
            })
            .unwrap();
        let (a, b) = tree.endpoints(pendant);
        let internal = if tree.is_tip(a) { b } else { a };
        assert!(tree.spr_targets(pendant, internal, 5).is_empty());
    }

    #[test]
    fn chained_sprs_round_trip_in_reverse_order() {
        let mut tree = Tree::random(14, 0.1, &mut rng(11));
        let before = tree.bipartitions();
        let (p1, r1, t1) = pick_prune(&tree, 3);
        let mv1 = tree.spr(p1, r1, t1[0]);
        let (p2, r2, t2) = pick_prune(&tree, 3);
        let mv2 = tree.spr(p2, r2, t2[0]);
        tree.undo_spr(mv2);
        tree.undo_spr(mv1);
        assert_eq!(tree.bipartitions(), before);
    }
}
