//! The maximum-likelihood kernels: `newview`, `evaluate`, `makenewz`.
//!
//! These are the three functions that consume 98.77 % of RAxML's runtime
//! (§5.1) and are off-loaded to the SPEs:
//!
//! * [`LikelihoodEngine::newview`] — Felsenstein pruning: combine two child
//!   conditional likelihood vectors (CLVs) across their branches into the
//!   parent's CLV;
//! * [`LikelihoodEngine::evaluate`] — the log-likelihood at an edge; its
//!   inner loop is exactly the paper's Figure 3, complete with the
//!   per-site scaling exponent (`x2[i].exp * log(minlikelihood)`);
//! * [`LikelihoodEngine::makenewz`] — Newton–Raphson branch-length
//!   optimization using analytic first and second derivatives.
//!
//! All three iterate over *site patterns* with per-pattern weights and no
//! loop-carried dependencies — the loop-level parallelism the runtime
//! work-shares across SPEs. `evaluate_range` / `newview_range` expose the
//! chunked forms used by the work-sharing teams.

#![allow(clippy::needless_range_loop)] // index loops mirror the math in dense kernels

use std::ops::Range;

use crate::alignment::PatternAlignment;
use crate::dna::STATES;
use crate::lanes::{DefaultPath, KernelPath};
use crate::model::SubstModel;
#[cfg(test)]
use crate::model::Matrix;
use crate::tree::{EdgeId, Tree};

/// Likelihood values below this threshold trigger rescaling (RAxML's
/// `minlikelihood`).
pub const SCALE_THRESHOLD: f64 = 1e-100;
/// The rescaling multiplier (1 / `SCALE_THRESHOLD`).
pub const SCALE_MULTIPLIER: f64 = 1e100;

/// `ln(SCALE_THRESHOLD)`: each scaling event contributes this to a site's
/// log-likelihood — the `log(minlikelihood)` of the paper's Figure 3.
pub fn log_scale() -> f64 {
    SCALE_THRESHOLD.ln()
}

/// Upper bound on branch lengths during optimization.
pub const MAX_BRANCH: f64 = 10.0;
/// Newton iteration cap in `makenewz`.
pub const NEWTON_MAX_ITERS: usize = 32;
/// Convergence threshold on the branch-length step.
pub const NEWTON_EPS: f64 = 1e-9;

/// Clamp a branch length to the optimizer's legal interval.
pub fn clamp_branch(t: f64) -> f64 {
    t.clamp(Tree::MIN_BRANCH, MAX_BRANCH)
}

/// One damped Newton step on a branch length given the log-likelihood
/// derivatives at `t`. Returns `(next_t, converged)`. Shared by the direct
/// and the off-loaded `makenewz` implementations so they agree bit-for-bit.
pub fn newton_branch_step(t: f64, d1: f64, d2: f64) -> (f64, bool) {
    let step = if d2 < 0.0 {
        -d1 / d2
    } else {
        // Non-concave region: move along the gradient with a small fixed
        // fraction of the current length.
        0.25 * t * d1.signum()
    };
    // Damp huge steps; Newton far from the optimum can overshoot.
    let step = step.clamp(-0.5 * t.max(0.01), 2.0 * t.max(0.01));
    let next = clamp_branch(t + step);
    let converged = (next - t).abs() < NEWTON_EPS;
    (next, converged)
}

/// A conditional likelihood vector for every site pattern, plus per-pattern
/// scaling exponents (the `exp` field of RAxML's likelihood vectors).
#[derive(Debug, Clone, PartialEq)]
pub struct Clv {
    /// `vals[pattern * 4 + state]`.
    vals: Vec<f64>,
    /// Number of times each pattern was rescaled.
    scale: Vec<u32>,
}

impl Clv {
    /// Patterns covered.
    pub fn n_patterns(&self) -> usize {
        self.scale.len()
    }

    /// The 4-vector of `pattern`.
    pub fn pattern(&self, pattern: usize) -> &[f64] {
        &self.vals[pattern * STATES..(pattern + 1) * STATES]
    }

    /// The scaling exponent of `pattern`.
    pub fn scale_of(&self, pattern: usize) -> u32 {
        self.scale[pattern]
    }

    /// Total scaling events across all patterns (diagnostic).
    pub fn total_scalings(&self) -> u64 {
        self.scale.iter().map(|&s| s as u64).sum()
    }

    /// Assemble a CLV from raw storage (used by chunked/off-loaded
    /// producers that compute pattern ranges on different cores).
    ///
    /// # Panics
    /// Panics unless `vals.len() == 4 * scale.len()`.
    pub fn from_raw(vals: Vec<f64>, scale: Vec<u32>) -> Clv {
        assert_eq!(vals.len(), STATES * scale.len(), "CLV storage size mismatch");
        Clv { vals, scale }
    }

    /// The raw storage: `(values, scaling exponents)`.
    pub fn as_raw(&self) -> (&[f64], &[u32]) {
        (&self.vals, &self.scale)
    }

    /// Overwrite patterns `[start, start + part.n_patterns())` with `part`,
    /// splicing `vals` and `scale` together so the two can never disagree.
    ///
    /// # Panics
    /// Panics — naming the offending range — if the splice falls outside
    /// this CLV. The bound is checked with overflow-safe arithmetic so a
    /// pathological `start` near `usize::MAX` is rejected here rather than
    /// surfacing as an unrelated slice panic.
    pub fn splice(&mut self, start: usize, part: &Clv) {
        let n = part.n_patterns();
        let end = start.saturating_add(n);
        assert!(
            end <= self.n_patterns(),
            "splice range {start}..{end} outside CLV of {} patterns",
            self.n_patterns(),
        );
        self.vals[start * STATES..(start + n) * STATES].copy_from_slice(&part.vals);
        self.scale[start..start + n].copy_from_slice(&part.scale);
    }

    /// Tear a CLV back into raw storage (for recycling via [`ClvArena`]).
    pub fn into_raw(self) -> (Vec<f64>, Vec<u32>) {
        (self.vals, self.scale)
    }
}

/// A free list of CLV storage for the native hot path.
///
/// Chunked `newview` producers and the splice targets that reassemble
/// their pieces used to allocate (and zero) `vec![0.0; n * STATES]` per
/// call; at one off-load per internal node per tree evaluation that is
/// thousands of short-lived multi-kilobyte allocations per optimization
/// pass. An arena is owned per worker (never shared across processes) and
/// recycles the `vals`/`scale` pairs across passes instead.
///
/// Buffers handed out by [`ClvArena::take`] have **unspecified contents**
/// — callers overwrite every pattern they claim (range kernels write their
/// whole range; splice targets are covered by a full partition), so zeroing
/// would be pure overhead.
#[derive(Debug, Default)]
pub struct ClvArena {
    free: Vec<(Vec<f64>, Vec<u32>)>,
    hits: u64,
    misses: u64,
}

impl ClvArena {
    /// Retain at most this many free buffers; beyond it, returned storage
    /// is dropped so a degree spike cannot pin memory forever.
    const MAX_FREE: usize = 64;

    /// An empty arena.
    pub fn new() -> ClvArena {
        ClvArena::default()
    }

    /// A CLV of `n` patterns with unspecified contents, reusing recycled
    /// storage when a free buffer has sufficient capacity.
    pub fn take(&mut self, n: usize) -> Clv {
        let want = n * STATES;
        if let Some(pos) = self
            .free
            .iter()
            .rposition(|(v, s)| v.capacity() >= want && s.capacity() >= n)
        {
            self.hits += 1;
            let (mut vals, mut scale) = self.free.swap_remove(pos);
            vals.resize(want, 0.0);
            scale.resize(n, 0);
            Clv { vals, scale }
        } else {
            self.misses += 1;
            Clv { vals: vec![0.0; want], scale: vec![0; n] }
        }
    }

    /// Recycle a CLV's storage into the free list.
    pub fn put(&mut self, clv: Clv) {
        if self.free.len() < Self::MAX_FREE {
            self.free.push(clv.into_raw());
        }
    }

    /// `(reuse hits, allocation misses)` since construction (diagnostic).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// View a pattern slice as the fixed-width lane array the kernel paths
/// operate on.
#[inline(always)]
fn four(s: &[f64]) -> &[f64; 4] {
    const { assert!(STATES == 4) };
    s.try_into().expect("pattern slice is 4 wide")
}

/// The likelihood engine: a substitution model bound to a pattern-compressed
/// alignment.
pub struct LikelihoodEngine<'a, M: SubstModel> {
    model: &'a M,
    data: &'a PatternAlignment,
}

impl<'a, M: SubstModel> LikelihoodEngine<'a, M> {
    /// Bind `model` to `data`.
    pub fn new(model: &'a M, data: &'a PatternAlignment) -> Self {
        LikelihoodEngine { model, data }
    }

    /// The pattern-compressed alignment.
    pub fn data(&self) -> &PatternAlignment {
        self.data
    }

    /// The tip CLV of `taxon`: indicator vectors from its state masks.
    pub fn tip_clv(&self, taxon: usize) -> Clv {
        let n = self.data.n_patterns();
        let mut vals = Vec::with_capacity(n * STATES);
        for p in 0..n {
            vals.extend_from_slice(&self.data.mask(taxon, p).tip_clv());
        }
        Clv { vals, scale: vec![0; n] }
    }

    /// Fill `out` (any contents) with the tip CLV of `taxon` — the
    /// arena-recycling form of [`Self::tip_clv`].
    ///
    /// # Panics
    /// Panics if `out` is not sized for this alignment.
    pub fn tip_clv_into(&self, taxon: usize, out: &mut Clv) {
        let n = self.data.n_patterns();
        assert_eq!(out.n_patterns(), n, "tip CLV size mismatch");
        for p in 0..n {
            out.vals[p * STATES..(p + 1) * STATES]
                .copy_from_slice(&self.data.mask(taxon, p).tip_clv());
            out.scale[p] = 0;
        }
    }

    /// Felsenstein pruning step over all patterns: the parent CLV from two
    /// children across branches `t_left` and `t_right`.
    pub fn newview(&self, left: &Clv, t_left: f64, right: &Clv, t_right: f64) -> Clv {
        let n = self.data.n_patterns();
        let mut out = Clv { vals: vec![0.0; n * STATES], scale: vec![0; n] };
        self.newview_range(left, t_left, right, t_right, 0..n, &mut out);
        out
    }

    /// A newly computed CLV covering only `range` (an off-loadable chunk;
    /// splice the pieces with [`Clv::splice`] / [`Clv::from_raw`]).
    pub fn newview_chunk(
        &self,
        left: &Clv,
        t_left: f64,
        right: &Clv,
        t_right: f64,
        range: Range<usize>,
    ) -> Clv {
        let mut out = Clv { vals: vec![0.0; range.len() * STATES], scale: vec![0; range.len()] };
        self.newview_range_into(left, t_left, right, t_right, range, &mut out);
        out
    }

    /// [`Self::newview_chunk`] drawing its output buffer from `arena` —
    /// the allocation-free form the off-loaded hot path uses.
    pub fn newview_chunk_in(
        &self,
        left: &Clv,
        t_left: f64,
        right: &Clv,
        t_right: f64,
        range: Range<usize>,
        arena: &mut ClvArena,
    ) -> Clv {
        let mut out = arena.take(range.len());
        self.newview_range_into(left, t_left, right, t_right, range, &mut out);
        out
    }

    /// The chunked form of [`Self::newview`]: fill `out` for `range` only.
    /// Chunks are independent, so a work-sharing team can split the pattern
    /// space across SPEs.
    ///
    /// # Panics
    /// Panics if CLV sizes disagree with the alignment.
    pub fn newview_range(
        &self,
        left: &Clv,
        t_left: f64,
        right: &Clv,
        t_right: f64,
        range: Range<usize>,
        out: &mut Clv,
    ) {
        self.newview_range_with::<DefaultPath>(left, t_left, right, t_right, range, out);
    }

    /// [`Self::newview_range`] through an explicit kernel path (the
    /// feature-matrix tests and benches pin [`crate::lanes::Scalar`] vs
    /// [`crate::lanes::Simd4`] against each other here).
    pub fn newview_range_with<K: KernelPath>(
        &self,
        left: &Clv,
        t_left: f64,
        right: &Clv,
        t_right: f64,
        range: Range<usize>,
        out: &mut Clv,
    ) {
        let n = self.data.n_patterns();
        assert_eq!(out.n_patterns(), n, "output CLV size mismatch");
        let (head, tail) = (range.start * STATES, range.end * STATES);
        self.newview_body::<K>(
            left,
            t_left,
            right,
            t_right,
            range.clone(),
            &mut out.vals[head..tail],
            &mut out.scale[range],
        );
    }

    /// Compute patterns `range` of a `newview` directly into range-sized
    /// output slices (`out_vals.len() == STATES * range.len()`,
    /// `out_scale.len() == range.len()`), skipping the full-width buffer
    /// entirely — the form chunk producers use.
    ///
    /// # Panics
    /// Panics if CLV or output sizes disagree with the alignment/range.
    pub fn newview_range_into(
        &self,
        left: &Clv,
        t_left: f64,
        right: &Clv,
        t_right: f64,
        range: Range<usize>,
        out: &mut Clv,
    ) {
        self.newview_range_into_with::<DefaultPath>(left, t_left, right, t_right, range, out);
    }

    /// [`Self::newview_range_into`] through an explicit kernel path.
    pub fn newview_range_into_with<K: KernelPath>(
        &self,
        left: &Clv,
        t_left: f64,
        right: &Clv,
        t_right: f64,
        range: Range<usize>,
        out: &mut Clv,
    ) {
        assert_eq!(out.n_patterns(), range.len(), "chunk output CLV size mismatch");
        let Clv { vals, scale } = out;
        self.newview_body::<K>(left, t_left, right, t_right, range, vals, scale);
    }

    /// The one generic chunk body both kernel paths share: patterns
    /// `range` of the pruning step, written to range-sized slices.
    #[allow(clippy::too_many_arguments)] // the pruning step's full operand list
    fn newview_body<K: KernelPath>(
        &self,
        left: &Clv,
        t_left: f64,
        right: &Clv,
        t_right: f64,
        range: Range<usize>,
        out_vals: &mut [f64],
        out_scale: &mut [u32],
    ) {
        let n = self.data.n_patterns();
        assert_eq!(left.n_patterns(), n, "left CLV size mismatch");
        assert_eq!(right.n_patterns(), n, "right CLV size mismatch");
        assert!(range.end <= n, "chunk range {range:?} outside {n} patterns");
        assert_eq!(out_vals.len(), range.len() * STATES, "chunk vals size mismatch");
        assert_eq!(out_scale.len(), range.len(), "chunk scale size mismatch");
        let pl = K::prepare(&self.model.prob_matrix(t_left));
        let pr = K::prepare(&self.model.prob_matrix(t_right));
        for (j, i) in range.enumerate() {
            let l = four(left.pattern(i));
            let r = four(right.pattern(i));
            let suml = K::matvec(&pl, l);
            let sumr = K::matvec(&pr, r);
            let o = &mut out_vals[j * STATES..(j + 1) * STATES];
            let mut min_ok = false;
            for x in 0..STATES {
                let v = suml[x] * sumr[x];
                o[x] = v;
                if v > SCALE_THRESHOLD {
                    min_ok = true;
                }
            }
            let mut scale = left.scale[i] + right.scale[i];
            if !min_ok {
                for x in 0..STATES {
                    o[x] *= SCALE_MULTIPLIER;
                }
                scale += 1;
            }
            out_scale[j] = scale;
        }
    }

    /// An all-zero CLV buffer sized for this alignment, for chunked
    /// [`Self::newview_range`] filling.
    pub fn empty_clv(&self) -> Clv {
        let n = self.data.n_patterns();
        Clv { vals: vec![0.0; n * STATES], scale: vec![0; n] }
    }

    /// Log-likelihood of the tree state summarized by CLVs `u` and `v` at
    /// the two ends of an edge of length `t` — the paper's Figure 3 loop
    /// over all patterns.
    pub fn evaluate(&self, u: &Clv, v: &Clv, t: f64) -> f64 {
        self.evaluate_range(u, v, t, 0..self.data.n_patterns())
    }

    /// The chunked form of [`Self::evaluate`]: the partial log-likelihood
    /// sum over `range`. Summing chunk results over a partition of the
    /// pattern space reproduces [`Self::evaluate`] exactly (modulo FP
    /// reassociation) — this is the loop the paper parallelizes first.
    pub fn evaluate_range(&self, u: &Clv, v: &Clv, t: f64, range: Range<usize>) -> f64 {
        self.evaluate_range_with::<DefaultPath>(u, v, t, range)
    }

    /// [`Self::evaluate_range`] through an explicit kernel path.
    pub fn evaluate_range_with<K: KernelPath>(
        &self,
        u: &Clv,
        v: &Clv,
        t: f64,
        range: Range<usize>,
    ) -> f64 {
        let p = K::prepare(&self.model.prob_matrix(t));
        let pi = self.model.base_freqs();
        let ln_min = log_scale();
        let w = self.data.weights();
        let mut sum = 0.0;
        for i in range {
            let lu = four(u.pattern(i));
            let inner = K::matvec(&p, four(v.pattern(i)));
            let mut term = 0.0;
            for x in 0..STATES {
                term += pi[x] * lu[x] * inner[x];
            }
            // term = log(term) + exp * log(minlikelihood); sum += w * term
            let ln = term.max(f64::MIN_POSITIVE).ln()
                + (u.scale[i] + v.scale[i]) as f64 * ln_min;
            sum += w[i] as f64 * ln;
        }
        sum
    }

    /// Per-pattern *linear* likelihood terms at an edge: `(term, exp)`
    /// where the true site likelihood is `term · SCALE_THRESHOLD^exp`.
    /// Mixture models combine these across rate categories before taking
    /// logs.
    pub fn site_terms(&self, u: &Clv, v: &Clv, t: f64) -> Vec<(f64, u32)> {
        let p = DefaultPath::prepare(&self.model.prob_matrix(t));
        let pi = self.model.base_freqs();
        let mut out = Vec::with_capacity(self.data.n_patterns());
        for i in 0..self.data.n_patterns() {
            let lu = four(u.pattern(i));
            let inner = DefaultPath::matvec(&p, four(v.pattern(i)));
            let mut term = 0.0;
            for x in 0..STATES {
                term += pi[x] * lu[x] * inner[x];
            }
            out.push((term, u.scale_of(i) + v.scale_of(i)));
        }
        out
    }

    /// First and second derivatives of the log-likelihood with respect to
    /// the length of the edge between `u` and `v`, at length `t`.
    pub fn lnl_derivatives(&self, u: &Clv, v: &Clv, t: f64) -> (f64, f64) {
        self.lnl_derivatives_range(u, v, t, 0..self.data.n_patterns())
    }

    /// Chunked derivative sums over `range` (the off-loadable inner loop of
    /// `makenewz`); partial `(d1, d2)` pairs add across a partition.
    pub fn lnl_derivatives_range(
        &self,
        u: &Clv,
        v: &Clv,
        t: f64,
        range: Range<usize>,
    ) -> (f64, f64) {
        self.lnl_derivatives_range_with::<DefaultPath>(u, v, t, range)
    }

    /// [`Self::lnl_derivatives_range`] through an explicit kernel path.
    pub fn lnl_derivatives_range_with<K: KernelPath>(
        &self,
        u: &Clv,
        v: &Clv,
        t: f64,
        range: Range<usize>,
    ) -> (f64, f64) {
        let p = K::prepare(&self.model.prob_matrix(t));
        let d1m = K::prepare(&self.model.d1_matrix(t));
        let d2m = K::prepare(&self.model.d2_matrix(t));
        let pi = self.model.base_freqs();
        let w = self.data.weights();
        let mut d1 = 0.0;
        let mut d2 = 0.0;
        for i in range {
            let lu = four(u.pattern(i));
            let lv = four(v.pattern(i));
            let s = K::matvec(&p, lv);
            let ds = K::matvec(&d1m, lv);
            let dds = K::matvec(&d2m, lv);
            let (mut l, mut dl, mut ddl) = (0.0, 0.0, 0.0);
            for x in 0..STATES {
                let f = pi[x] * lu[x];
                l += f * s[x];
                dl += f * ds[x];
                ddl += f * dds[x];
            }
            // Scaling factors multiply l, dl, ddl identically, so the
            // ratios below are scale-free.
            let l = l.max(f64::MIN_POSITIVE);
            let wi = w[i] as f64;
            d1 += wi * dl / l;
            d2 += wi * (ddl * l - dl * dl) / (l * l);
        }
        (d1, d2)
    }

    /// Newton–Raphson branch-length optimization (`makenewz`): the length
    /// in `[MIN_BRANCH, MAX_BRANCH]` maximizing the log-likelihood of the
    /// edge between `u` and `v`, starting from `t0`.
    pub fn makenewz(&self, u: &Clv, v: &Clv, t0: f64) -> f64 {
        let mut t = clamp_branch(t0);
        for _ in 0..NEWTON_MAX_ITERS {
            let (d1, d2) = self.lnl_derivatives(u, v, t);
            let (next, converged) = newton_branch_step(t, d1, d2);
            t = next;
            if converged {
                break;
            }
        }
        t
    }

    /// Directional CLV of `node` seen from `parent` (the full Felsenstein
    /// recursion; tips are indicator CLVs).
    pub fn clv_toward(&self, tree: &Tree, node: usize, parent: usize) -> Clv {
        if tree.is_tip(node) {
            return self.tip_clv(node);
        }
        let mut children = tree
            .neighbors(node)
            .iter()
            .filter(|&&(n, _)| n != parent)
            .copied()
            .collect::<Vec<_>>();
        assert_eq!(children.len(), 2, "internal nodes have exactly two children seen from a parent");
        // Deterministic order for reproducible FP results.
        children.sort_by_key(|&(n, _)| n);
        let (c1, e1) = children[0];
        let (c2, e2) = children[1];
        let l1 = self.clv_toward(tree, c1, node);
        let l2 = self.clv_toward(tree, c2, node);
        self.newview(&l1, tree.length(e1), &l2, tree.length(e2))
    }

    /// The log-likelihood of `tree`, evaluated at `edge`.
    pub fn log_likelihood_at(&self, tree: &Tree, edge: EdgeId) -> f64 {
        let (a, b) = tree.endpoints(edge);
        let cu = self.clv_toward(tree, a, b);
        let cv = self.clv_toward(tree, b, a);
        self.evaluate(&cu, &cv, tree.length(edge))
    }

    /// The log-likelihood of `tree` (evaluated at edge 0; by likelihood
    /// invariance any edge gives the same value).
    pub fn log_likelihood(&self, tree: &Tree) -> f64 {
        self.log_likelihood_at(tree, EdgeId(0))
    }

    /// One full pass of branch-length optimization: `makenewz` on every
    /// edge in id order. Returns the log-likelihood after the pass.
    pub fn optimize_branches_pass(&self, tree: &mut Tree) -> f64 {
        for e in tree.edge_ids().collect::<Vec<_>>() {
            let (a, b) = tree.endpoints(e);
            let cu = self.clv_toward(tree, a, b);
            let cv = self.clv_toward(tree, b, a);
            let t = self.makenewz(&cu, &cv, tree.length(e));
            tree.set_length(e, t);
        }
        self.log_likelihood(tree)
    }

    /// Optimize branch lengths until the log-likelihood improves by less
    /// than `epsilon` between passes (at most `max_passes`). Returns the
    /// final log-likelihood.
    pub fn optimize_branches(&self, tree: &mut Tree, max_passes: usize, epsilon: f64) -> f64 {
        let mut last = f64::NEG_INFINITY;
        let mut lnl = self.log_likelihood(tree);
        for _ in 0..max_passes {
            if (lnl - last).abs() < epsilon {
                break;
            }
            last = lnl;
            lnl = self.optimize_branches_pass(tree);
        }
        lnl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::Alignment;
    use crate::model::Jc69;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn toy() -> PatternAlignment {
        let a = Alignment::from_strings(&[
            ("a", "ACGTACGTAA"),
            ("b", "ACGTACGTAC"),
            ("c", "ACGTTCGTAG"),
            ("d", "AAGTTCGAAG"),
        ])
        .unwrap();
        PatternAlignment::compress(&a)
    }

    /// Brute-force likelihood: sum over all internal-state assignments.
    fn brute_force_lnl(tree: &Tree, data: &PatternAlignment, model: &impl SubstModel) -> f64 {
        let n_internal = tree.n_nodes() - tree.n_taxa();
        let pi = model.base_freqs();
        let mats: Vec<(usize, usize, Matrix)> = tree
            .edge_ids()
            .map(|e| {
                let (a, b) = tree.endpoints(e);
                (a, b, model.prob_matrix(tree.length(e)))
            })
            .collect();
        let mut lnl = 0.0;
        for pat in 0..data.n_patterns() {
            let mut site_l = 0.0;
            // Enumerate internal assignments; tips sum over their allowed
            // states (ambiguity support).
            let combos = STATES.pow(n_internal as u32);
            for combo in 0..combos {
                let state_of = |node: usize, tip_state: usize| -> usize {
                    if node < tree.n_taxa() {
                        tip_state
                    } else {
                        (combo / STATES.pow((node - tree.n_taxa()) as u32)) % STATES
                    }
                };
                // For tips we must sum over allowed states; do that by
                // treating each edge factor as a sum when the endpoint is a
                // tip. Root the likelihood at internal node n_taxa.
                let mut prod = pi[state_of(tree.n_taxa(), 0)];
                for &(a, b, ref m) in &mats {
                    let factor = match (a < tree.n_taxa(), b < tree.n_taxa()) {
                        (false, false) => m[state_of(a, 0)][state_of(b, 0)],
                        (false, true) => {
                            let sa = state_of(a, 0);
                            (0..STATES)
                                .filter(|&s| data.mask(b, pat).allows(s))
                                .map(|s| m[sa][s])
                                .sum()
                        }
                        (true, false) => {
                            let sb = state_of(b, 0);
                            (0..STATES)
                                .filter(|&s| data.mask(a, pat).allows(s))
                                .map(|s| m[s][sb])
                                .sum()
                        }
                        (true, true) => unreachable!("tip-tip edge in n>=3 tree"),
                    };
                    prod *= factor;
                }
                site_l += prod;
            }
            lnl += data.weights()[pat] as f64 * site_l.ln();
        }
        lnl
    }

    #[test]
    fn engine_matches_brute_force_on_four_taxa() {
        let data = toy();
        let mut rng = SmallRng::seed_from_u64(11);
        let tree = Tree::random(4, 0.12, &mut rng);
        let engine = LikelihoodEngine::new(&Jc69, &data);
        let fast = engine.log_likelihood(&tree);
        let brute = brute_force_lnl(&tree, &data, &Jc69);
        assert!(
            (fast - brute).abs() < 1e-9,
            "pruning {fast} vs brute force {brute}"
        );
    }

    #[test]
    fn likelihood_is_invariant_to_evaluation_edge() {
        let data = toy();
        let mut rng = SmallRng::seed_from_u64(3);
        let tree = Tree::random(4, 0.2, &mut rng);
        let engine = LikelihoodEngine::new(&Jc69, &data);
        let base = engine.log_likelihood_at(&tree, EdgeId(0));
        for e in tree.edge_ids() {
            let lnl = engine.log_likelihood_at(&tree, e);
            assert!(
                (lnl - base).abs() < 1e-8,
                "edge {e:?}: {lnl} differs from {base}"
            );
        }
    }

    #[test]
    fn evaluate_range_chunks_sum_to_whole() {
        let data = toy();
        let mut rng = SmallRng::seed_from_u64(5);
        let tree = Tree::random(4, 0.15, &mut rng);
        let engine = LikelihoodEngine::new(&Jc69, &data);
        let (a, b) = tree.endpoints(EdgeId(0));
        let cu = engine.clv_toward(&tree, a, b);
        let cv = engine.clv_toward(&tree, b, a);
        let t = tree.length(EdgeId(0));
        let whole = engine.evaluate(&cu, &cv, t);
        let n = data.n_patterns();
        for k in [2, 3, 4] {
            let mut sum = 0.0;
            let mut start = 0;
            for c in 0..k {
                let end = n * (c + 1) / k;
                sum += engine.evaluate_range(&cu, &cv, t, start..end);
                start = end;
            }
            assert!((sum - whole).abs() < 1e-10, "k={k}: {sum} vs {whole}");
        }
    }

    #[test]
    fn newview_range_chunks_match_whole() {
        let data = toy();
        let engine = LikelihoodEngine::new(&Jc69, &data);
        let l = engine.tip_clv(0);
        let r = engine.tip_clv(1);
        let whole = engine.newview(&l, 0.1, &r, 0.2);
        let mut chunked = engine.empty_clv();
        let n = data.n_patterns();
        engine.newview_range(&l, 0.1, &r, 0.2, 0..n / 2, &mut chunked);
        engine.newview_range(&l, 0.1, &r, 0.2, n / 2..n, &mut chunked);
        assert_eq!(whole, chunked);
    }

    #[test]
    fn scaling_keeps_deep_trees_finite() {
        // A caterpillar stacks n-2 newview steps end to end; each level
        // shrinks the conditional likelihoods by roughly P(change), so a
        // few hundred levels underflow f64 without rescaling.
        const N: usize = 260;
        let aln = Alignment::synthetic(N, 12, &Jc69, 0.5, 9);
        let data = PatternAlignment::compress(&aln);
        let tree = Tree::caterpillar(N, 1.0);
        let engine = LikelihoodEngine::new(&Jc69, &data);
        let lnl = engine.log_likelihood(&tree);
        assert!(lnl.is_finite(), "log-likelihood must stay finite, got {lnl}");
        assert!(lnl < 0.0);
        // And rescaling must actually have occurred for the test to mean
        // anything: evaluate from the pendant edge of tip 0, whose far-side
        // CLV accumulates the whole spine.
        let deep_edge = tree.neighbors(0)[0].1;
        let (a, b) = tree.endpoints(deep_edge);
        let clv_a = engine.clv_toward(&tree, a, b);
        let clv_b = engine.clv_toward(&tree, b, a);
        assert!(
            clv_a.total_scalings() + clv_b.total_scalings() > 0,
            "expected rescaling on a deep caterpillar"
        );
        let lnl2 = engine.evaluate(&clv_a, &clv_b, tree.length(deep_edge));
        assert!((lnl - lnl2).abs() < 1e-6, "evaluation edges disagree: {lnl} vs {lnl2}");
    }

    #[test]
    fn caterpillar_trees_are_valid() {
        for n in [2, 3, 4, 8, 50] {
            let t = Tree::caterpillar(n, 0.1);
            t.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn makenewz_finds_the_mle_branch_length() {
        let data = toy();
        let engine = LikelihoodEngine::new(&Jc69, &data);
        let mut rng = SmallRng::seed_from_u64(7);
        let tree = Tree::random(4, 0.1, &mut rng);
        let (a, b) = tree.endpoints(EdgeId(0));
        let cu = engine.clv_toward(&tree, a, b);
        let cv = engine.clv_toward(&tree, b, a);
        let t_opt = engine.makenewz(&cu, &cv, 0.05);
        let lnl_opt = engine.evaluate(&cu, &cv, t_opt);
        // The optimum must beat a grid of alternatives.
        for t in [0.001, 0.01, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0] {
            let lnl = engine.evaluate(&cu, &cv, t);
            assert!(
                lnl <= lnl_opt + 1e-6,
                "t={t}: lnl {lnl} beats 'optimal' {lnl_opt} at t_opt={t_opt}"
            );
        }
        // And it must agree when started from a very different point.
        let t_opt2 = engine.makenewz(&cu, &cv, 1.5);
        assert!((t_opt - t_opt2).abs() < 1e-4, "{t_opt} vs {t_opt2}");
    }

    #[test]
    fn optimize_branches_monotonically_improves() {
        let aln = Alignment::synthetic(8, 120, &Jc69, 0.1, 21);
        let data = PatternAlignment::compress(&aln);
        let engine = LikelihoodEngine::new(&Jc69, &data);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut tree = Tree::random(8, 0.5, &mut rng); // deliberately bad lengths
        let before = engine.log_likelihood(&tree);
        let mut prev = before;
        for _ in 0..4 {
            let lnl = engine.optimize_branches_pass(&mut tree);
            assert!(lnl >= prev - 1e-6, "pass regressed: {lnl} < {prev}");
            prev = lnl;
        }
        assert!(prev > before + 1.0, "optimization should improve markedly");
    }

    #[test]
    fn optimize_branches_converges_with_epsilon() {
        let data = toy();
        let engine = LikelihoodEngine::new(&Jc69, &data);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut tree = Tree::random(4, 0.3, &mut rng);
        let lnl = engine.optimize_branches(&mut tree, 50, 1e-8);
        // One more pass should change almost nothing.
        let lnl2 = engine.optimize_branches_pass(&mut tree);
        assert!((lnl2 - lnl).abs() < 1e-4);
    }

    #[test]
    fn identical_sequences_favor_zero_branches() {
        let a = Alignment::from_strings(&[
            ("a", "ACGTACGT"),
            ("b", "ACGTACGT"),
            ("c", "ACGTACGT"),
            ("d", "ACGTACGT"),
        ])
        .unwrap();
        let data = PatternAlignment::compress(&a);
        let engine = LikelihoodEngine::new(&Jc69, &data);
        let mut rng = SmallRng::seed_from_u64(8);
        let mut tree = Tree::random(4, 0.2, &mut rng);
        engine.optimize_branches(&mut tree, 30, 1e-9);
        assert!(
            tree.total_length() < 0.01,
            "identical data should shrink branches, total {}",
            tree.total_length()
        );
    }

    #[test]
    fn weights_scale_the_likelihood() {
        let data = toy();
        let doubled = data.with_weights(data.weights().iter().map(|&w| w * 2).collect());
        let mut rng = SmallRng::seed_from_u64(12);
        let tree = Tree::random(4, 0.1, &mut rng);
        let l1 = LikelihoodEngine::new(&Jc69, &data).log_likelihood(&tree);
        let l2 = LikelihoodEngine::new(&Jc69, &doubled).log_likelihood(&tree);
        assert!((l2 - 2.0 * l1).abs() < 1e-8);
    }

    #[test]
    fn zero_weight_patterns_contribute_nothing() {
        let data = toy();
        let mut w: Vec<u32> = data.weights().to_vec();
        let dropped = w[0];
        w[0] = 0;
        let reduced = data.with_weights(w);
        let mut rng = SmallRng::seed_from_u64(13);
        let tree = Tree::random(4, 0.1, &mut rng);
        let full = LikelihoodEngine::new(&Jc69, &data).log_likelihood(&tree);
        let part = LikelihoodEngine::new(&Jc69, &reduced).log_likelihood(&tree);
        assert!(part > full, "dropping {dropped} copies of a pattern must raise lnL");
    }
}
