//! Γ-distributed rate heterogeneity across sites (Yang 1994) — the
//! `GTR+Γ` likelihood RAxML computes in production.
//!
//! Site rates follow a discretized Gamma(α, α) with `K` equal-probability
//! categories; the site likelihood is the average over categories of the
//! plain likelihood with all branch lengths scaled by the category rate:
//!
//! ```text
//! L_i = (1/K) · Σ_k L_i(r_k · T)
//! ```
//!
//! [`GammaEngine`] reuses the single-rate [`LikelihoodEngine`] per category
//! (via [`ScaledModel`]) and combines per-site terms with careful scaling-
//! exponent alignment, so deep trees stay finite exactly as in the
//! single-rate code path.

#![allow(clippy::needless_range_loop)] // index loops mirror the math in dense kernels

use crate::alignment::PatternAlignment;
use crate::likelihood::{clamp_branch, log_scale, Clv, LikelihoodEngine, MAX_BRANCH};
use crate::model::{ScaledModel, SubstModel};
use crate::search::ScoringEngine;
use crate::special::discrete_gamma_rates;
use crate::tree::{EdgeId, Tree};

/// The Γ-mixture likelihood engine.
pub struct GammaEngine<'a, M: SubstModel> {
    model: &'a M,
    data: &'a PatternAlignment,
    rates: Vec<f64>,
    alpha: f64,
}

impl<'a, M: SubstModel> GammaEngine<'a, M> {
    /// A `K`-category discrete-Γ engine with shape `alpha` over `data`.
    ///
    /// # Panics
    /// Panics unless `alpha > 0` and `categories >= 1`.
    pub fn new(model: &'a M, data: &'a PatternAlignment, alpha: f64, categories: usize) -> Self {
        let rates = discrete_gamma_rates(alpha, categories);
        GammaEngine { model, data, rates, alpha }
    }

    /// The category rates in use (ascending, mean 1).
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// The shape parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Per-category directional CLVs for the evaluation edge `(a ← b)`.
    fn category_clvs(&self, tree: &Tree, node: usize, parent: usize) -> Vec<Clv> {
        self.rates
            .iter()
            .map(|&r| {
                let sm = ScaledModel { inner: self.model, rate: r };
                LikelihoodEngine::new(&sm, self.data).clv_toward(tree, node, parent)
            })
            .collect()
    }

    /// Mixture log-likelihood at an edge given per-category CLV pairs.
    fn edge_lnl(&self, us: &[Clv], vs: &[Clv], t: f64) -> f64 {
        let k = self.rates.len();
        let n = self.data.n_patterns();
        let w = self.data.weights();
        let ln_min = log_scale();

        // Per-category per-site (term, exp) pairs.
        let mut terms: Vec<Vec<(f64, u32)>> = Vec::with_capacity(k);
        for (c, &r) in self.rates.iter().enumerate() {
            let sm = ScaledModel { inner: self.model, rate: r };
            let eng = LikelihoodEngine::new(&sm, self.data);
            terms.push(eng.site_terms(&us[c], &vs[c], t));
        }

        let mut lnl = 0.0;
        for i in 0..n {
            // Align the categories on the smallest scaling exponent: the
            // true value of category c is term_c · S^{exp_c} with S = 1e-100,
            // so categories more than two exponents above the minimum
            // contribute nothing representable.
            let min_exp = terms.iter().map(|t| t[i].1).min().expect("k >= 1");
            let mut sum = 0.0;
            for t in &terms {
                let (term, exp) = t[i];
                let shift = exp - min_exp;
                if shift <= 2 {
                    sum += term * 1e-100f64.powi(shift as i32);
                }
            }
            let site = (sum / k as f64).max(f64::MIN_POSITIVE).ln() + min_exp as f64 * ln_min;
            lnl += w[i] as f64 * site;
        }
        lnl
    }

    /// Mixture log-likelihood of `tree`.
    pub fn log_likelihood(&self, tree: &Tree) -> f64 {
        let e = EdgeId(0);
        let (a, b) = tree.endpoints(e);
        let us = self.category_clvs(tree, a, b);
        let vs = self.category_clvs(tree, b, a);
        self.edge_lnl(&us, &vs, tree.length(e))
    }

    /// Golden-section maximization of the mixture likelihood over one
    /// branch length (derivative-free; the mixture's analytic derivatives
    /// buy little at 4 categories).
    fn optimize_edge(&self, us: &[Clv], vs: &[Clv], t0: f64) -> f64 {
        const INVPHI: f64 = 0.618_033_988_749_894_9;
        let mut lo = Tree::MIN_BRANCH;
        let mut hi = MAX_BRANCH.min((t0 * 32.0).max(1.0));
        let mut x1 = hi - INVPHI * (hi - lo);
        let mut x2 = lo + INVPHI * (hi - lo);
        let mut f1 = self.edge_lnl(us, vs, x1);
        let mut f2 = self.edge_lnl(us, vs, x2);
        for _ in 0..64 {
            if (hi - lo) < 1e-7 * hi.max(1e-3) {
                break;
            }
            if f1 < f2 {
                lo = x1;
                x1 = x2;
                f1 = f2;
                x2 = lo + INVPHI * (hi - lo);
                f2 = self.edge_lnl(us, vs, x2);
            } else {
                hi = x2;
                x2 = x1;
                f2 = f1;
                x1 = hi - INVPHI * (hi - lo);
                f1 = self.edge_lnl(us, vs, x1);
            }
        }
        clamp_branch(0.5 * (lo + hi))
    }

    /// One branch-length optimization pass over every edge; returns the
    /// resulting mixture log-likelihood.
    pub fn optimize_branches_pass(&self, tree: &mut Tree) -> f64 {
        for e in tree.edge_ids().collect::<Vec<_>>() {
            let (a, b) = tree.endpoints(e);
            let us = self.category_clvs(tree, a, b);
            let vs = self.category_clvs(tree, b, a);
            let t = self.optimize_edge(&us, &vs, tree.length(e));
            tree.set_length(e, t);
        }
        self.log_likelihood(tree)
    }
}

/// Estimate the Γ shape parameter α by golden-section maximization of the
/// mixture likelihood of `tree` over `alpha ∈ [lo, hi]` (log-spaced
/// search; α is a scale-free shape). Returns `(alpha, lnl)`.
///
/// # Panics
/// Panics unless `0 < lo < hi` and `categories >= 1`.
pub fn estimate_alpha<M: SubstModel>(
    model: &M,
    data: &PatternAlignment,
    tree: &Tree,
    categories: usize,
    lo: f64,
    hi: f64,
) -> (f64, f64) {
    assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
    const INVPHI: f64 = 0.618_033_988_749_894_9;
    let f = |alpha: f64| GammaEngine::new(model, data, alpha, categories).log_likelihood(tree);
    // Search in log-alpha space.
    let (mut a, mut b) = (lo.ln(), hi.ln());
    let mut x1 = b - INVPHI * (b - a);
    let mut x2 = a + INVPHI * (b - a);
    let mut f1 = f(x1.exp());
    let mut f2 = f(x2.exp());
    for _ in 0..40 {
        if (b - a) < 1e-4 {
            break;
        }
        if f1 < f2 {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + INVPHI * (b - a);
            f2 = f(x2.exp());
        } else {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - INVPHI * (b - a);
            f1 = f(x1.exp());
        }
    }
    let alpha = (0.5 * (a + b)).exp();
    (alpha, f(alpha))
}

impl<M: SubstModel> ScoringEngine for GammaEngine<'_, M> {
    fn score(&mut self, tree: &Tree) -> f64 {
        self.log_likelihood(tree)
    }

    fn optimize_branches(&mut self, tree: &mut Tree, max_passes: usize, epsilon: f64) -> f64 {
        let mut last = f64::NEG_INFINITY;
        let mut lnl = self.log_likelihood(tree);
        for _ in 0..max_passes {
            if (lnl - last).abs() < epsilon {
                break;
            }
            last = lnl;
            lnl = self.optimize_branches_pass(tree);
        }
        lnl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::Alignment;
    use crate::model::{Gtr, Jc69};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn data() -> PatternAlignment {
        PatternAlignment::compress(&Alignment::synthetic(6, 120, &Jc69, 0.15, 33))
    }

    #[test]
    fn one_category_equals_plain_engine() {
        let d = data();
        let mut rng = SmallRng::seed_from_u64(1);
        let tree = Tree::random(6, 0.1, &mut rng);
        let gamma = GammaEngine::new(&Jc69, &d, 0.7, 1);
        let plain = LikelihoodEngine::new(&Jc69, &d);
        let a = gamma.log_likelihood(&tree);
        let b = plain.log_likelihood(&tree);
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn huge_alpha_converges_to_rate_homogeneity() {
        let d = data();
        let mut rng = SmallRng::seed_from_u64(2);
        let tree = Tree::random(6, 0.12, &mut rng);
        let gamma = GammaEngine::new(&Jc69, &d, 1e4, 4);
        let plain = LikelihoodEngine::new(&Jc69, &d);
        let a = gamma.log_likelihood(&tree);
        let b = plain.log_likelihood(&tree);
        assert!((a - b).abs() < 0.05, "alpha=1e4: {a} vs plain {b}");
    }

    #[test]
    fn mixture_matches_manual_category_average_on_small_data() {
        // Manual check: compute each category's per-site likelihood with a
        // separately scaled engine and average by hand.
        let aln = Alignment::from_strings(&[
            ("a", "ACGTAC"),
            ("b", "ACGTTC"),
            ("c", "AAGTAC"),
            ("d", "ACGAAC"),
        ])
        .unwrap();
        let d = PatternAlignment::compress(&aln);
        let mut rng = SmallRng::seed_from_u64(3);
        let tree = Tree::random(4, 0.2, &mut rng);

        let k = 4;
        let gamma = GammaEngine::new(&Jc69, &d, 0.5, k);
        let got = gamma.log_likelihood(&tree);

        // Manual: per category, per site linear likelihoods via site_terms
        // (no deep scaling on this tiny tree: all exps are 0).
        let e = EdgeId(0);
        let (a, b) = tree.endpoints(e);
        let mut per_site = vec![0.0f64; d.n_patterns()];
        for &r in gamma.rates() {
            let sm = ScaledModel { inner: &Jc69, rate: r };
            let eng = LikelihoodEngine::new(&sm, &d);
            let cu = eng.clv_toward(&tree, a, b);
            let cv = eng.clv_toward(&tree, b, a);
            for (i, (term, exp)) in eng.site_terms(&cu, &cv, tree.length(e)).into_iter().enumerate()
            {
                assert_eq!(exp, 0, "tiny tree must not rescale");
                per_site[i] += term / k as f64;
            }
        }
        let want: f64 = per_site
            .iter()
            .zip(d.weights())
            .map(|(&l, &w)| w as f64 * l.ln())
            .sum();
        assert!((got - want).abs() < 1e-10, "{got} vs manual {want}");
    }

    #[test]
    fn gamma_improves_fit_on_rate_heterogeneous_data() {
        // Build data whose halves evolved at very different rates; +Γ must
        // beat the homogeneous model on the same (optimized) tree.
        let fast = Alignment::synthetic(6, 150, &Jc69, 0.5, 9);
        let slow = Alignment::synthetic(6, 150, &Jc69, 0.01, 9);
        let rows: Vec<(String, String)> = (0..6)
            .map(|t| {
                let name = format!("t{t}");
                let mut seq = String::new();
                for s in 0..150 {
                    seq.push(fast.mask(t, s).to_char());
                }
                for s in 0..150 {
                    seq.push(slow.mask(t, s).to_char());
                }
                (name, seq)
            })
            .collect();
        let borrowed: Vec<(&str, &str)> =
            rows.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
        let d = PatternAlignment::compress(&Alignment::from_strings(&borrowed).unwrap());

        let mut rng = SmallRng::seed_from_u64(4);
        let mut tree = Tree::random(6, 0.1, &mut rng);
        let mut plain_tree = tree.clone();

        let mut gamma = GammaEngine::new(&Jc69, &d, 0.4, 4);
        let lnl_gamma = ScoringEngine::optimize_branches(&mut gamma, &mut tree, 3, 1e-4);
        let plain = LikelihoodEngine::new(&Jc69, &d);
        let lnl_plain = plain.optimize_branches(&mut plain_tree, 3, 1e-4);
        assert!(
            lnl_gamma > lnl_plain + 2.0,
            "+Γ should fit heterogeneous data better: {lnl_gamma} vs {lnl_plain}"
        );
    }

    #[test]
    fn gamma_engine_drives_the_generic_hill_climb() {
        let d = data();
        let mut engine = GammaEngine::new(&Jc69, &d, 0.8, 4);
        let cfg = crate::search::SearchConfig {
            max_rounds: 2,
            branch_passes: 1,
            epsilon: 1e-3,
            initial_branch: 0.1,
            restarts: 1,
        };
        let r = crate::search::hill_climb_with(&mut engine, d.n_taxa(), &cfg, 5);
        r.tree.validate().unwrap();
        assert!(r.lnl.is_finite() && r.lnl < 0.0);
    }

    #[test]
    fn gtr_gamma_end_to_end() {
        let gtr = Gtr::example();
        let aln = Alignment::synthetic(6, 100, &gtr, 0.1, 11);
        let d = PatternAlignment::compress(&aln);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut tree = Tree::random(6, 0.1, &mut rng);
        let mut engine = GammaEngine::new(&gtr, &d, 0.6, 4);
        let before = engine.log_likelihood(&tree);
        let after = ScoringEngine::optimize_branches(&mut engine, &mut tree, 3, 1e-4);
        assert!(after >= before - 1e-9, "optimization regressed: {after} < {before}");
        assert!(after.is_finite());
    }

    #[test]
    fn alpha_estimation_separates_heterogeneous_from_homogeneous_data() {
        // Homogeneous data: the estimate runs to the upper boundary (no
        // heterogeneity to explain). Mixed-rate data: a small alpha wins.
        let homog = PatternAlignment::compress(&Alignment::synthetic(6, 240, &Jc69, 0.1, 51));
        let fast = Alignment::synthetic(6, 120, &Jc69, 0.6, 52);
        let slow = Alignment::synthetic(6, 120, &Jc69, 0.01, 52);
        let rows: Vec<(String, String)> = (0..6)
            .map(|t| {
                let mut seq = String::new();
                for s in 0..120 {
                    seq.push(fast.mask(t, s).to_char());
                }
                for s in 0..120 {
                    seq.push(slow.mask(t, s).to_char());
                }
                (format!("t{t}"), seq)
            })
            .collect();
        let borrowed: Vec<(&str, &str)> =
            rows.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
        let hetero = PatternAlignment::compress(&Alignment::from_strings(&borrowed).unwrap());

        // Use searched trees: topology misfit on a random tree would
        // itself masquerade as rate heterogeneity.
        let cfg = crate::search::SearchConfig::default();
        let tree_h = crate::search::hill_climb(&Jc69, &homog, &cfg, 8).tree;
        let (alpha_homog, lnl_homog) = estimate_alpha(&Jc69, &homog, &tree_h, 4, 0.05, 50.0);

        let tree_x = crate::search::hill_climb(&Jc69, &hetero, &cfg, 8).tree;
        let (alpha_hetero, lnl_hetero) = estimate_alpha(&Jc69, &hetero, &tree_x, 4, 0.05, 50.0);

        assert!(
            alpha_hetero < 1.0,
            "mixed-rate data should estimate strong heterogeneity, got alpha {alpha_hetero}"
        );
        // On homogeneous data the alpha surface is flat near the optimum
        // (a point estimate is unstable), so assert on the likelihood-ratio
        // signal instead: fitting alpha buys almost nothing there, but a
        // lot on the mixed-rate data.
        let homog_flat = GammaEngine::new(&Jc69, &homog, 50.0, 4).log_likelihood(&tree_h);
        assert!(
            lnl_homog - homog_flat < 3.0,
            "no heterogeneity signal expected: fitted {lnl_homog} vs alpha=50 {homog_flat} (alpha_hat {alpha_homog})"
        );
        let hetero_flat = GammaEngine::new(&Jc69, &hetero, 50.0, 4).log_likelihood(&tree_x);
        assert!(
            lnl_hetero - hetero_flat > 10.0,
            "strong signal expected: fitted {lnl_hetero} vs alpha=50 {hetero_flat}"
        );
        // The fitted alpha must beat an arbitrary one on the same data.
        let bad = GammaEngine::new(&Jc69, &hetero, 10.0, 4).log_likelihood(&tree_x);
        assert!(lnl_hetero > bad, "{lnl_hetero} vs {bad}");
    }

    #[test]
    fn scaling_alignment_keeps_deep_gamma_trees_finite() {
        let aln = Alignment::synthetic(200, 10, &Jc69, 0.5, 21);
        let d = PatternAlignment::compress(&aln);
        let tree = Tree::caterpillar(200, 1.0);
        let gamma = GammaEngine::new(&Jc69, &d, 0.5, 4);
        let lnl = gamma.log_likelihood(&tree);
        assert!(lnl.is_finite() && lnl < 0.0, "deep Γ mixture must stay finite: {lnl}");
    }
}
