//! Multiple sequence alignments: storage, site-pattern compression,
//! PHYLIP-style text I/O, and a synthetic-data generator that evolves
//! sequences down a random tree (our stand-in for the paper's `42_SC`
//! input file: 42 organisms × 1167 nucleotides).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::dna::{StateMask, STATES};
use crate::model::SubstModel;

/// A multiple sequence alignment over DNA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    taxa: Vec<String>,
    /// `seqs[taxon][site]`, as state masks.
    seqs: Vec<Vec<StateMask>>,
}

/// Errors from alignment construction or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlignmentError {
    /// Sequences of unequal length.
    RaggedRows {
        /// Name of the offending taxon.
        taxon: String,
        /// Its sequence length.
        len: usize,
        /// The expected length.
        expected: usize,
    },
    /// A character outside the IUPAC DNA alphabet.
    BadCharacter {
        /// Name of the offending taxon.
        taxon: String,
        /// 0-based site index.
        site: usize,
        /// The character found.
        ch: char,
    },
    /// Fewer than two taxa, or zero sites.
    TooSmall,
    /// PHYLIP header malformed or inconsistent with the body.
    BadHeader(String),
}

impl std::fmt::Display for AlignmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlignmentError::RaggedRows { taxon, len, expected } => {
                write!(f, "taxon {taxon}: sequence length {len}, expected {expected}")
            }
            AlignmentError::BadCharacter { taxon, site, ch } => {
                write!(f, "taxon {taxon}, site {site}: invalid character {ch:?}")
            }
            AlignmentError::TooSmall => f.write_str("alignment needs >= 2 taxa and >= 1 site"),
            AlignmentError::BadHeader(msg) => write!(f, "bad PHYLIP header: {msg}"),
        }
    }
}

impl std::error::Error for AlignmentError {}

impl Alignment {
    /// Build an alignment from taxon names and IUPAC strings.
    ///
    /// # Errors
    /// Rejects ragged rows, invalid characters, and degenerate sizes.
    pub fn from_strings(rows: &[(&str, &str)]) -> Result<Alignment, AlignmentError> {
        if rows.len() < 2 {
            return Err(AlignmentError::TooSmall);
        }
        let expected = rows[0].1.chars().count();
        if expected == 0 {
            return Err(AlignmentError::TooSmall);
        }
        let mut taxa = Vec::with_capacity(rows.len());
        let mut seqs = Vec::with_capacity(rows.len());
        for (name, seq) in rows {
            let mut masks = Vec::with_capacity(expected);
            for (site, ch) in seq.chars().enumerate() {
                let m = StateMask::from_char(ch).ok_or_else(|| AlignmentError::BadCharacter {
                    taxon: (*name).to_string(),
                    site,
                    ch,
                })?;
                masks.push(m);
            }
            if masks.len() != expected {
                return Err(AlignmentError::RaggedRows {
                    taxon: (*name).to_string(),
                    len: masks.len(),
                    expected,
                });
            }
            taxa.push((*name).to_string());
            seqs.push(masks);
        }
        Ok(Alignment { taxa, seqs })
    }

    /// Number of taxa (sequences).
    pub fn n_taxa(&self) -> usize {
        self.taxa.len()
    }

    /// Number of alignment columns.
    pub fn n_sites(&self) -> usize {
        self.seqs[0].len()
    }

    /// Taxon names, in row order.
    pub fn taxa(&self) -> &[String] {
        &self.taxa
    }

    /// The state mask of `taxon` at `site`.
    pub fn mask(&self, taxon: usize, site: usize) -> StateMask {
        self.seqs[taxon][site]
    }

    /// Serialize to (relaxed) sequential PHYLIP.
    pub fn to_phylip(&self) -> String {
        let mut out = format!("{} {}\n", self.n_taxa(), self.n_sites());
        for (name, seq) in self.taxa.iter().zip(&self.seqs) {
            out.push_str(name);
            out.push(' ');
            out.extend(seq.iter().map(|m| m.to_char()));
            out.push('\n');
        }
        out
    }

    /// Parse relaxed sequential PHYLIP (header line `ntaxa nsites`, then one
    /// `name sequence` line per taxon).
    ///
    /// # Errors
    /// Rejects malformed headers, invalid characters, and size mismatches.
    pub fn from_phylip(text: &str) -> Result<Alignment, AlignmentError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or_else(|| AlignmentError::BadHeader("empty input".into()))?;
        let mut parts = header.split_whitespace();
        let n_taxa: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| AlignmentError::BadHeader("missing taxon count".into()))?;
        let n_sites: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| AlignmentError::BadHeader("missing site count".into()))?;
        let mut rows: Vec<(String, String)> = Vec::with_capacity(n_taxa);
        for line in lines {
            let mut p = line.split_whitespace();
            let name = p
                .next()
                .ok_or_else(|| AlignmentError::BadHeader("row without name".into()))?
                .to_string();
            let seq: String = p.collect();
            rows.push((name, seq));
        }
        if rows.len() != n_taxa {
            return Err(AlignmentError::BadHeader(format!(
                "header claims {n_taxa} taxa, found {}",
                rows.len()
            )));
        }
        let borrowed: Vec<(&str, &str)> =
            rows.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
        let aln = Alignment::from_strings(&borrowed)?;
        if aln.n_sites() != n_sites {
            return Err(AlignmentError::BadHeader(format!(
                "header claims {n_sites} sites, found {}",
                aln.n_sites()
            )));
        }
        Ok(aln)
    }

    /// Parse FASTA (`>name` header lines, sequence possibly wrapped over
    /// multiple lines). Order of appearance defines taxon indices.
    ///
    /// # Errors
    /// Rejects empty input, sequences before the first header, duplicate
    /// names, invalid characters, and ragged lengths.
    pub fn from_fasta(text: &str) -> Result<Alignment, AlignmentError> {
        let mut rows: Vec<(String, String)> = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('>') {
                let name = name.split_whitespace().next().unwrap_or("").to_string();
                if name.is_empty() {
                    return Err(AlignmentError::BadHeader("empty FASTA header".into()));
                }
                if rows.iter().any(|(n, _)| *n == name) {
                    return Err(AlignmentError::BadHeader(format!("duplicate taxon {name}")));
                }
                rows.push((name, String::new()));
            } else {
                match rows.last_mut() {
                    Some((_, seq)) => seq.push_str(line),
                    None => {
                        return Err(AlignmentError::BadHeader(
                            "sequence data before the first '>' header".into(),
                        ))
                    }
                }
            }
        }
        if rows.is_empty() {
            return Err(AlignmentError::BadHeader("no FASTA records".into()));
        }
        let borrowed: Vec<(&str, &str)> =
            rows.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
        Alignment::from_strings(&borrowed)
    }

    /// Serialize to FASTA, wrapping sequences at 70 columns.
    pub fn to_fasta(&self) -> String {
        let mut out = String::new();
        for (name, seq) in self.taxa.iter().zip(&self.seqs) {
            out.push('>');
            out.push_str(name);
            out.push('\n');
            for chunk in seq.chunks(70) {
                out.extend(chunk.iter().map(|m| m.to_char()));
                out.push('\n');
            }
        }
        out
    }

    /// Generate a synthetic alignment by evolving sequences down a random
    /// coalescent-ish tree under `model`. Deterministic in `seed`.
    ///
    /// `mean_branch` controls divergence (expected substitutions per site
    /// per branch); 0.05–0.2 gives RAxML-realistic signal.
    pub fn synthetic<M: SubstModel>(
        n_taxa: usize,
        n_sites: usize,
        model: &M,
        mean_branch: f64,
        seed: u64,
    ) -> Alignment {
        assert!(n_taxa >= 2 && n_sites >= 1, "degenerate alignment size");
        assert!(mean_branch > 0.0 && mean_branch.is_finite());
        let mut rng = SmallRng::seed_from_u64(seed);
        // Evolve down an implicit random binary tree built by splitting:
        // maintain a frontier of (sequence, depth) and split until we have
        // n_taxa leaves.
        let freqs = model.base_freqs();
        let root: Vec<usize> = (0..n_sites).map(|_| sample_state(&freqs, &mut rng)).collect();
        let mut frontier: Vec<Vec<usize>> = vec![root];
        while frontier.len() < n_taxa {
            // Split the first (oldest) lineage into two children.
            let parent = frontier.remove(0);
            for _ in 0..2 {
                let t = sample_branch(mean_branch, &mut rng);
                let p = model.prob_matrix(t);
                let child: Vec<usize> =
                    parent.iter().map(|&s| sample_transition(&p[s], &mut rng)).collect();
                frontier.push(child);
            }
        }
        let taxa: Vec<String> = (0..n_taxa).map(|i| format!("taxon{i:03}")).collect();
        let seqs: Vec<Vec<StateMask>> = frontier
            .into_iter()
            .take(n_taxa)
            .map(|states| states.into_iter().map(StateMask::from_state).collect())
            .collect();
        Alignment { taxa, seqs }
    }

    /// The paper's `42_SC` workload shape: 42 organisms, 1167 nucleotides.
    pub fn synthetic_42_sc<M: SubstModel>(model: &M, seed: u64) -> Alignment {
        Alignment::synthetic(42, 1167, model, 0.08, seed)
    }
}

fn sample_state(freqs: &[f64; STATES], rng: &mut SmallRng) -> usize {
    sample_transition(freqs, rng)
}

fn sample_transition(probs: &[f64; STATES], rng: &mut SmallRng) -> usize {
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for (s, &p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            return s;
        }
    }
    STATES - 1
}

fn sample_branch(mean: f64, rng: &mut SmallRng) -> f64 {
    // Exponential branch lengths, floored to keep P(t) well conditioned.
    let u: f64 = rng.gen::<f64>().max(1e-12);
    (-u.ln() * mean).max(1e-6)
}

/// A site-pattern-compressed view of an alignment.
///
/// Identical columns are merged; each pattern carries an integer weight.
/// The likelihood kernels iterate over patterns, which is both what RAxML
/// does and what makes bootstrap re-weighting (§3.1) a pure weight change.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternAlignment {
    /// `patterns[taxon][pattern]` state masks.
    patterns: Vec<Vec<StateMask>>,
    /// Multiplicity of each pattern in the original alignment.
    weights: Vec<u32>,
    /// Original column → pattern index (needed for bootstrapping).
    column_pattern: Vec<usize>,
    n_taxa: usize,
}

impl PatternAlignment {
    /// Compress `aln` into site patterns.
    pub fn compress(aln: &Alignment) -> PatternAlignment {
        let n_taxa = aln.n_taxa();
        let n_sites = aln.n_sites();
        let mut index: std::collections::HashMap<Vec<u8>, usize> = std::collections::HashMap::new();
        let mut patterns: Vec<Vec<StateMask>> = vec![Vec::new(); n_taxa];
        let mut weights: Vec<u32> = Vec::new();
        let mut column_pattern = Vec::with_capacity(n_sites);
        for site in 0..n_sites {
            let col: Vec<u8> = (0..n_taxa).map(|t| aln.mask(t, site).0).collect();
            let next = weights.len();
            let pat = *index.entry(col).or_insert(next);
            if pat == weights.len() {
                for (t, pcol) in patterns.iter_mut().enumerate() {
                    pcol.push(aln.mask(t, site));
                }
                weights.push(0);
            }
            weights[pat] += 1;
            column_pattern.push(pat);
        }
        PatternAlignment { patterns, weights, column_pattern, n_taxa }
    }

    /// Number of taxa.
    pub fn n_taxa(&self) -> usize {
        self.n_taxa
    }

    /// Number of distinct site patterns.
    pub fn n_patterns(&self) -> usize {
        self.weights.len()
    }

    /// Number of original alignment columns.
    pub fn n_sites(&self) -> usize {
        self.column_pattern.len()
    }

    /// Pattern weights (multiplicities). Sum equals [`Self::n_sites`] for a
    /// freshly compressed alignment, and for every bootstrap replicate.
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// The mask of `taxon` at `pattern`.
    pub fn mask(&self, taxon: usize, pattern: usize) -> StateMask {
        self.patterns[taxon][pattern]
    }

    /// Original column → pattern mapping.
    pub fn column_pattern(&self) -> &[usize] {
        &self.column_pattern
    }

    /// A replicate with the same patterns but different weights (used by
    /// the bootstrapper).
    pub fn with_weights(&self, weights: Vec<u32>) -> PatternAlignment {
        assert_eq!(weights.len(), self.weights.len(), "weight vector length mismatch");
        PatternAlignment {
            patterns: self.patterns.clone(),
            weights,
            column_pattern: self.column_pattern.clone(),
            n_taxa: self.n_taxa,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Jc69;

    fn toy() -> Alignment {
        Alignment::from_strings(&[
            ("ta", "ACGTAC"),
            ("tb", "ACGTAC"),
            ("tc", "ACGTTT"),
            ("td", "AAGTTT"),
        ])
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let a = toy();
        assert_eq!(a.n_taxa(), 4);
        assert_eq!(a.n_sites(), 6);
        assert_eq!(a.taxa()[2], "tc");
        assert_eq!(a.mask(3, 1), StateMask::from_char('A').unwrap());
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = Alignment::from_strings(&[("a", "ACGT"), ("b", "ACG")]).unwrap_err();
        assert!(matches!(err, AlignmentError::RaggedRows { .. }));
    }

    #[test]
    fn bad_character_rejected_with_location() {
        let err = Alignment::from_strings(&[("a", "ACGT"), ("b", "ACZT")]).unwrap_err();
        assert_eq!(
            err,
            AlignmentError::BadCharacter { taxon: "b".into(), site: 2, ch: 'Z' }
        );
    }

    #[test]
    fn too_small_rejected() {
        assert_eq!(
            Alignment::from_strings(&[("a", "ACGT")]).unwrap_err(),
            AlignmentError::TooSmall
        );
    }

    #[test]
    fn phylip_round_trip() {
        let a = toy();
        let text = a.to_phylip();
        let b = Alignment::from_phylip(&text).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn phylip_header_validation() {
        assert!(matches!(
            Alignment::from_phylip("banana\n").unwrap_err(),
            AlignmentError::BadHeader(_)
        ));
        assert!(matches!(
            Alignment::from_phylip("3 4\na ACGT\nb ACGT\n").unwrap_err(),
            AlignmentError::BadHeader(_)
        ));
        assert!(matches!(
            Alignment::from_phylip("2 5\na ACGT\nb ACGT\n").unwrap_err(),
            AlignmentError::BadHeader(_)
        ));
    }

    #[test]
    fn fasta_round_trip_with_wrapping() {
        let a = Alignment::synthetic(5, 173, &crate::model::Jc69, 0.1, 3);
        let text = a.to_fasta();
        assert!(text.starts_with('>'));
        let b = Alignment::from_fasta(&text).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fasta_accepts_multiline_and_descriptions() {
        let a = Alignment::from_fasta(">a some description\nACG\nT\n>b\nACGT\n").unwrap();
        assert_eq!(a.n_taxa(), 2);
        assert_eq!(a.n_sites(), 4);
        assert_eq!(a.taxa()[0], "a");
    }

    #[test]
    fn fasta_error_cases() {
        assert!(matches!(Alignment::from_fasta(""), Err(AlignmentError::BadHeader(_))));
        assert!(matches!(
            Alignment::from_fasta("ACGT\n>a\nACGT\n"),
            Err(AlignmentError::BadHeader(_))
        ));
        assert!(matches!(
            Alignment::from_fasta(">a\nACGT\n>a\nACGT\n"),
            Err(AlignmentError::BadHeader(_))
        ));
        assert!(matches!(
            Alignment::from_fasta(">a\nACGT\n>b\nACG\n"),
            Err(AlignmentError::RaggedRows { .. })
        ));
        assert!(matches!(
            Alignment::from_fasta(">\nACGT\n>b\nACGT\n"),
            Err(AlignmentError::BadHeader(_))
        ));
    }

    #[test]
    fn synthetic_is_deterministic_in_seed() {
        let a = Alignment::synthetic(8, 200, &Jc69, 0.1, 7);
        let b = Alignment::synthetic(8, 200, &Jc69, 0.1, 7);
        let c = Alignment::synthetic(8, 200, &Jc69, 0.1, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.n_taxa(), 8);
        assert_eq!(a.n_sites(), 200);
    }

    #[test]
    fn synthetic_42_sc_matches_paper_shape() {
        let a = Alignment::synthetic_42_sc(&Jc69, 42);
        assert_eq!(a.n_taxa(), 42);
        assert_eq!(a.n_sites(), 1167);
    }

    #[test]
    fn synthetic_sequences_are_related_not_identical() {
        let a = Alignment::synthetic(6, 500, &Jc69, 0.08, 3);
        // Any two sequences should agree on much more than the 25% random
        // baseline but less than 100%.
        for i in 0..a.n_taxa() {
            for j in (i + 1)..a.n_taxa() {
                let same = (0..a.n_sites()).filter(|&s| a.mask(i, s) == a.mask(j, s)).count();
                let frac = same as f64 / a.n_sites() as f64;
                assert!(frac > 0.5, "taxa {i},{j} only {frac} identical — no signal");
                assert!(frac < 1.0, "taxa {i},{j} identical — no divergence");
            }
        }
    }

    #[test]
    fn pattern_compression_preserves_counts() {
        let a = toy();
        let p = PatternAlignment::compress(&a);
        assert_eq!(p.n_taxa(), 4);
        assert_eq!(p.n_sites(), 6);
        assert!(p.n_patterns() <= 6);
        let total: u32 = p.weights().iter().sum();
        assert_eq!(total as usize, a.n_sites());
        // Every column maps to a pattern with matching masks.
        for (site, &pat) in p.column_pattern().iter().enumerate() {
            for t in 0..4 {
                assert_eq!(p.mask(t, pat), a.mask(t, site));
            }
        }
    }

    #[test]
    fn duplicate_columns_share_a_pattern() {
        let a = Alignment::from_strings(&[("a", "AAAA"), ("b", "CCCC"), ("c", "GGGG")]).unwrap();
        let p = PatternAlignment::compress(&a);
        assert_eq!(p.n_patterns(), 1);
        assert_eq!(p.weights(), &[4]);
    }

    #[test]
    fn with_weights_replaces_weights_only() {
        let p = PatternAlignment::compress(&toy());
        let w = vec![1u32; p.n_patterns()];
        let q = p.with_weights(w.clone());
        assert_eq!(q.weights(), &w[..]);
        assert_eq!(q.n_patterns(), p.n_patterns());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn with_weights_length_checked() {
        let p = PatternAlignment::compress(&toy());
        let _ = p.with_weights(vec![1u32; p.n_patterns() + 1]);
    }
}
