//! Small dense linear algebra for substitution models: a cyclic Jacobi
//! eigensolver for symmetric 4×4 matrices.
//!
//! General time-reversible (GTR) models need `P(t) = exp(Qt)`, computed by
//! spectral decomposition of the symmetrized rate matrix. Four states keep
//! everything tiny, so a fixed-size Jacobi iteration (quadratically
//! convergent, unconditionally stable for symmetric input) is the right
//! tool — no external linear-algebra dependency required.

#![allow(clippy::needless_range_loop)] // index loops mirror the math in dense kernels

use crate::dna::STATES;
use crate::model::Matrix;

/// Result of a symmetric eigendecomposition: `a = V · diag(λ) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, ascending.
    pub values: [f64; STATES],
    /// Orthonormal eigenvectors as **columns**: `vectors[r][c]` is
    /// component `r` of eigenvector `c`.
    pub vectors: Matrix,
}

/// Eigendecompose a symmetric matrix by cyclic Jacobi rotations.
///
/// # Panics
/// Panics if `a` is not symmetric to 1e-9 (callers symmetrize first; an
/// asymmetric input indicates a modelling bug, not a numerical one).
pub fn sym_eigen(a: Matrix) -> SymEigen {
    for r in 0..STATES {
        for c in (r + 1)..STATES {
            assert!(
                (a[r][c] - a[c][r]).abs() < 1e-9,
                "matrix not symmetric at ({r},{c}): {} vs {}",
                a[r][c],
                a[c][r]
            );
        }
    }
    let mut a = a;
    let mut v: Matrix = [[0.0; STATES]; STATES];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }

    const MAX_SWEEPS: usize = 64;
    for _ in 0..MAX_SWEEPS {
        let off: f64 = (0..STATES)
            .flat_map(|r| ((r + 1)..STATES).map(move |c| (r, c)))
            .map(|(r, c)| a[r][c] * a[r][c])
            .sum();
        if off < 1e-30 {
            break;
        }
        for p in 0..STATES {
            for q in (p + 1)..STATES {
                let apq = a[p][q];
                if apq.abs() < 1e-300 {
                    continue;
                }
                // Classic Jacobi rotation angle.
                let theta = (a[q][q] - a[p][p]) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // A ← Jᵀ A J applied in place.
                for k in 0..STATES {
                    let akp = a[k][p];
                    let akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for k in 0..STATES {
                    let apk = a[p][k];
                    let aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                // V ← V J.
                for k in 0..STATES {
                    let vkp = v[k][p];
                    let vkq = v[k][q];
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract and sort ascending by eigenvalue.
    let mut pairs: Vec<(f64, [f64; STATES])> = (0..STATES)
        .map(|c| {
            let mut col = [0.0; STATES];
            for (r, cr) in col.iter_mut().enumerate() {
                *cr = v[r][c];
            }
            (a[c][c], col)
        })
        .collect();
    pairs.sort_by(|x, y| x.0.total_cmp(&y.0));

    let mut values = [0.0; STATES];
    let mut vectors = [[0.0; STATES]; STATES];
    for (c, (lambda, col)) in pairs.into_iter().enumerate() {
        values[c] = lambda;
        for (r, &cr) in col.iter().enumerate() {
            vectors[r][c] = cr;
        }
    }
    SymEigen { values, vectors }
}

/// Multiply two 4×4 matrices.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = [[0.0; STATES]; STATES];
    for r in 0..STATES {
        for c in 0..STATES {
            let mut s = 0.0;
            for (k, bk) in b.iter().enumerate() {
                s += a[r][k] * bk[c];
            }
            out[r][c] = s;
        }
    }
    out
}

/// Transpose a 4×4 matrix.
pub fn transpose(a: &Matrix) -> Matrix {
    let mut out = [[0.0; STATES]; STATES];
    for r in 0..STATES {
        for c in 0..STATES {
            out[c][r] = a[r][c];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_abs_diff(a: &Matrix, b: &Matrix) -> f64 {
        let mut m: f64 = 0.0;
        for r in 0..STATES {
            for c in 0..STATES {
                m = m.max((a[r][c] - b[r][c]).abs());
            }
        }
        m
    }

    fn reconstruct(e: &SymEigen) -> Matrix {
        let mut d = [[0.0; STATES]; STATES];
        for (i, row) in d.iter_mut().enumerate() {
            row[i] = e.values[i];
        }
        matmul(&matmul(&e.vectors, &d), &transpose(&e.vectors))
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let mut a = [[0.0; 4]; 4];
        a[0][0] = 3.0;
        a[1][1] = -1.0;
        a[2][2] = 0.5;
        a[3][3] = 7.0;
        let e = sym_eigen(a);
        assert_eq!(e.values, [-1.0, 0.5, 3.0, 7.0]);
        assert!(max_abs_diff(&reconstruct(&e), &a) < 1e-12);
    }

    #[test]
    fn dense_symmetric_reconstructs() {
        let a = [
            [4.0, 1.0, 0.5, 0.2],
            [1.0, 3.0, 0.7, 0.1],
            [0.5, 0.7, 2.0, 0.3],
            [0.2, 0.1, 0.3, 1.0],
        ];
        let e = sym_eigen(a);
        assert!(max_abs_diff(&reconstruct(&e), &a) < 1e-10, "reconstruction failed");
        // Eigenvalues ascending.
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = [
            [2.0, -1.0, 0.0, 0.0],
            [-1.0, 2.0, -1.0, 0.0],
            [0.0, -1.0, 2.0, -1.0],
            [0.0, 0.0, -1.0, 2.0],
        ];
        let e = sym_eigen(a);
        let vtv = matmul(&transpose(&e.vectors), &e.vectors);
        for r in 0..4 {
            for c in 0..4 {
                let want = if r == c { 1.0 } else { 0.0 };
                assert!((vtv[r][c] - want).abs() < 1e-10, "VᵀV[{r}][{c}] = {}", vtv[r][c]);
            }
        }
    }

    #[test]
    fn known_eigenvalues_of_tridiagonal_laplacian() {
        // Eigenvalues of tridiag(-1, 2, -1) of size 4: 2 - 2cos(kπ/5).
        let a = [
            [2.0, -1.0, 0.0, 0.0],
            [-1.0, 2.0, -1.0, 0.0],
            [0.0, -1.0, 2.0, -1.0],
            [0.0, 0.0, -1.0, 2.0],
        ];
        let e = sym_eigen(a);
        let want: Vec<f64> = (1..=4)
            .map(|k| 2.0 - 2.0 * (k as f64 * std::f64::consts::PI / 5.0).cos())
            .collect();
        for (got, want) in e.values.iter().zip(want) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn asymmetric_input_rejected() {
        let mut a = [[0.0; 4]; 4];
        a[0][1] = 1.0;
        a[1][0] = 2.0;
        let _ = sym_eigen(a);
    }

    #[test]
    fn matmul_and_transpose_basics() {
        let i: Matrix = {
            let mut m = [[0.0; 4]; 4];
            for (k, row) in m.iter_mut().enumerate() {
                row[k] = 1.0;
            }
            m
        };
        let a = [
            [1.0, 2.0, 3.0, 4.0],
            [5.0, 6.0, 7.0, 8.0],
            [9.0, 10.0, 11.0, 12.0],
            [13.0, 14.0, 15.0, 16.0],
        ];
        assert_eq!(matmul(&a, &i), a);
        assert_eq!(matmul(&i, &a), a);
        assert_eq!(transpose(&transpose(&a)), a);
    }
}
