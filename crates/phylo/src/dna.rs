//! DNA alphabet with IUPAC ambiguity codes.
//!
//! Sequences are stored as 4-bit state masks (bit 0 = A, 1 = C, 2 = G,
//! 3 = T). A tip's conditional likelihood vector is 1.0 for every state the
//! mask allows — exactly how RAxML treats ambiguous characters.

/// Number of nucleotide states.
pub const STATES: usize = 4;

/// Index of each unambiguous nucleotide in likelihood vectors.
pub const A: usize = 0;
/// Cytosine.
pub const C: usize = 1;
/// Guanine.
pub const G: usize = 2;
/// Thymine.
pub const T: usize = 3;

/// A 4-bit nucleotide state mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StateMask(pub u8);

impl StateMask {
    /// The fully-ambiguous mask (gap / `N`): any state.
    pub const ANY: StateMask = StateMask(0b1111);

    /// Parse one IUPAC nucleotide character (case-insensitive).
    /// Returns `None` for characters outside the DNA alphabet.
    pub fn from_char(c: char) -> Option<StateMask> {
        let m = match c.to_ascii_uppercase() {
            'A' => 0b0001,
            'C' => 0b0010,
            'G' => 0b0100,
            'T' | 'U' => 0b1000,
            'R' => 0b0101, // A or G (purine)
            'Y' => 0b1010, // C or T (pyrimidine)
            'S' => 0b0110, // G or C
            'W' => 0b1001, // A or T
            'K' => 0b1100, // G or T
            'M' => 0b0011, // A or C
            'B' => 0b1110, // not A
            'D' => 0b1101, // not C
            'H' => 0b1011, // not G
            'V' => 0b0111, // not T
            'N' | '-' | '?' | '.' | 'X' => 0b1111,
            _ => return None,
        };
        Some(StateMask(m))
    }

    /// Render the mask back to its canonical IUPAC character.
    pub fn to_char(self) -> char {
        match self.0 {
            0b0001 => 'A',
            0b0010 => 'C',
            0b0100 => 'G',
            0b1000 => 'T',
            0b0101 => 'R',
            0b1010 => 'Y',
            0b0110 => 'S',
            0b1001 => 'W',
            0b1100 => 'K',
            0b0011 => 'M',
            0b1110 => 'B',
            0b1101 => 'D',
            0b1011 => 'H',
            0b0111 => 'V',
            _ => 'N',
        }
    }

    /// The unambiguous mask for state index `s` (0..4).
    pub fn from_state(s: usize) -> StateMask {
        debug_assert!(s < STATES);
        StateMask(1 << s)
    }

    /// Whether state index `s` is allowed by this mask.
    #[inline]
    pub fn allows(self, s: usize) -> bool {
        self.0 & (1 << s) != 0
    }

    /// True for masks that allow exactly one state.
    pub fn is_unambiguous(self) -> bool {
        self.0.count_ones() == 1
    }

    /// The tip conditional-likelihood vector: 1.0 where allowed.
    pub fn tip_clv(self) -> [f64; STATES] {
        let mut v = [0.0; STATES];
        for (s, slot) in v.iter_mut().enumerate() {
            if self.allows(s) {
                *slot = 1.0;
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unambiguous_round_trip() {
        for (ch, s) in [('A', A), ('C', C), ('G', G), ('T', T)] {
            let m = StateMask::from_char(ch).unwrap();
            assert_eq!(m, StateMask::from_state(s));
            assert!(m.is_unambiguous());
            assert_eq!(m.to_char(), ch);
            let clv = m.tip_clv();
            for (i, &v) in clv.iter().enumerate() {
                assert_eq!(v, if i == s { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn lowercase_and_uracil() {
        assert_eq!(StateMask::from_char('a'), StateMask::from_char('A'));
        assert_eq!(StateMask::from_char('u'), StateMask::from_char('T'));
    }

    #[test]
    fn ambiguity_codes_allow_the_right_states() {
        let r = StateMask::from_char('R').unwrap();
        assert!(r.allows(A) && r.allows(G) && !r.allows(C) && !r.allows(T));
        let y = StateMask::from_char('Y').unwrap();
        assert!(y.allows(C) && y.allows(T) && !y.allows(A) && !y.allows(G));
        let n = StateMask::from_char('N').unwrap();
        assert_eq!(n, StateMask::ANY);
        assert_eq!(n.tip_clv(), [1.0; 4]);
        assert_eq!(StateMask::from_char('-').unwrap(), StateMask::ANY);
    }

    #[test]
    fn every_iupac_code_round_trips() {
        for ch in "ACGTRYSWKMBDHVN".chars() {
            let m = StateMask::from_char(ch).unwrap();
            assert_eq!(m.to_char(), ch, "round trip of {ch}");
        }
    }

    #[test]
    fn invalid_characters_rejected() {
        assert_eq!(StateMask::from_char('Z'), None);
        assert_eq!(StateMask::from_char('1'), None);
        assert_eq!(StateMask::from_char(' '), None);
    }
}
