//! Whole-analysis drivers: the task-level work units of the paper.
//!
//! A "publishable" phylogenetic analysis (§3.1) runs 20–200 distinct
//! inferences on the original alignment plus 100–1,000 bootstrap analyses.
//! Each is an independent task — the embarrassing task-level parallelism
//! the EDTLP scheduler feeds to the SPEs. [`run_inference`] and
//! [`run_bootstrap`] are exactly those tasks.

use crate::alignment::PatternAlignment;
use crate::bootstrap::bootstrap_replicate;
use crate::model::SubstModel;
use crate::search::{hill_climb, SearchConfig, SearchResult};

/// One independent inference on the original alignment, from a randomized
/// starting tree determined by `seed`.
pub fn run_inference<M: SubstModel>(
    model: &M,
    data: &PatternAlignment,
    cfg: &SearchConfig,
    seed: u64,
) -> SearchResult {
    hill_climb(model, data, cfg, seed)
}

/// One non-parametric bootstrap: re-sample columns (seeded), then search.
pub fn run_bootstrap<M: SubstModel>(
    model: &M,
    data: &PatternAlignment,
    cfg: &SearchConfig,
    seed: u64,
) -> SearchResult {
    let replicate = bootstrap_replicate(data, seed);
    hill_climb(model, &replicate, cfg, seed ^ 0x9e37_79b9_7f4a_7c15)
}

/// A complete small-scale analysis: `n_inferences` searches for the
/// best-known tree plus `n_bootstraps` bootstraps, all sequential. The
/// parallel runtimes distribute exactly these calls; this function is the
/// single-processor reference.
pub fn run_analysis<M: SubstModel>(
    model: &M,
    data: &PatternAlignment,
    cfg: &SearchConfig,
    n_inferences: usize,
    n_bootstraps: usize,
    seed: u64,
) -> AnalysisResult {
    let mut best: Option<SearchResult> = None;
    for i in 0..n_inferences {
        let r = run_inference(model, data, cfg, seed.wrapping_add(i as u64));
        if best.as_ref().is_none_or(|b| r.lnl > b.lnl) {
            best = Some(r);
        }
    }
    let replicates: Vec<SearchResult> = (0..n_bootstraps)
        .map(|i| run_bootstrap(model, data, cfg, seed.wrapping_add(1_000 + i as u64)))
        .collect();
    let best = best.expect("n_inferences must be >= 1");
    let support = crate::bootstrap::support_values(
        &best.tree,
        &replicates.iter().map(|r| r.tree.clone()).collect::<Vec<_>>(),
    );
    AnalysisResult { best, replicates, support }
}

/// The outcome of [`run_analysis`].
#[derive(Debug, Clone)]
pub struct AnalysisResult {
    /// The best-scoring inference.
    pub best: SearchResult,
    /// All bootstrap replicates.
    pub replicates: Vec<SearchResult>,
    /// Support of the best tree's bipartitions across the replicates.
    pub support: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::{Alignment, PatternAlignment};
    use crate::model::Jc69;

    fn small() -> PatternAlignment {
        PatternAlignment::compress(&Alignment::synthetic(6, 120, &Jc69, 0.1, 77))
    }

    fn quick_cfg() -> SearchConfig {
        SearchConfig { max_rounds: 3, branch_passes: 1, epsilon: 1e-3, initial_branch: 0.1, restarts: 1 }
    }

    #[test]
    fn inference_and_bootstrap_are_deterministic() {
        let d = small();
        let cfg = quick_cfg();
        let a = run_inference(&Jc69, &d, &cfg, 5);
        let b = run_inference(&Jc69, &d, &cfg, 5);
        assert_eq!(a.lnl, b.lnl);
        let ba = run_bootstrap(&Jc69, &d, &cfg, 5);
        let bb = run_bootstrap(&Jc69, &d, &cfg, 5);
        assert_eq!(ba.lnl, bb.lnl);
    }

    #[test]
    fn bootstrap_differs_from_plain_inference() {
        let d = small();
        let cfg = quick_cfg();
        let inf = run_inference(&Jc69, &d, &cfg, 9);
        let boot = run_bootstrap(&Jc69, &d, &cfg, 9);
        assert_ne!(inf.lnl, boot.lnl, "resampled data must change the score");
    }

    #[test]
    fn full_analysis_produces_support_values() {
        let d = small();
        let cfg = quick_cfg();
        let res = run_analysis(&Jc69, &d, &cfg, 2, 4, 123);
        assert_eq!(res.replicates.len(), 4);
        assert_eq!(res.support.len(), d.n_taxa() - 3);
        assert!(res.support.iter().all(|&s| (0.0..=1.0).contains(&s)));
        assert!(res.best.lnl >= res.replicates.iter().map(|r| r.lnl).fold(f64::NEG_INFINITY, f64::max) - 1e9);
        res.best.tree.validate().unwrap();
    }

    #[test]
    fn best_of_multiple_inferences_is_max() {
        let d = small();
        let cfg = quick_cfg();
        let res = run_analysis(&Jc69, &d, &cfg, 3, 0, 11);
        for i in 0..3 {
            let r = run_inference(&Jc69, &d, &cfg, 11 + i);
            assert!(res.best.lnl >= r.lnl - 1e-9);
        }
    }
}
