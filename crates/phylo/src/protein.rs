//! Amino-acid (protein) likelihood support.
//!
//! RAxML analyzes "multiple alignments of DNA or AA sequences" (§3); this
//! module provides the AA side: a 20-state alphabet with IUPAC ambiguity
//! codes, pattern-compressed protein alignments, the Poisson (Felsenstein
//! 1981 / "JC69-for-proteins") substitution model in closed form, and a
//! likelihood engine with the same Felsenstein-pruning + per-site-rescaling
//! structure as the DNA engine. It plugs into the generic search through
//! [`crate::search::ScoringEngine`], so NNI hill climbing works on protein
//! data unchanged.

#![allow(clippy::needless_range_loop)] // index loops mirror the math in dense kernels

use crate::likelihood::{SCALE_MULTIPLIER, SCALE_THRESHOLD};
use crate::search::ScoringEngine;
use crate::tree::{EdgeId, Tree};

/// Number of amino-acid states.
pub const AA_STATES: usize = 20;

/// Canonical amino-acid ordering (one-letter codes).
pub const AA_CODES: [char; AA_STATES] = [
    'A', 'R', 'N', 'D', 'C', 'Q', 'E', 'G', 'H', 'I', 'L', 'K', 'M', 'F', 'P', 'S', 'T', 'W',
    'Y', 'V',
];

/// A 20-bit amino-acid state mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AaMask(pub u32);

impl AaMask {
    /// Fully ambiguous (X / gap): any amino acid.
    pub const ANY: AaMask = AaMask((1 << AA_STATES) - 1);

    /// Parse a one-letter amino-acid code (case-insensitive), including
    /// the ambiguity codes B (N/D), Z (Q/E), J (I/L), X and gaps.
    pub fn from_char(c: char) -> Option<AaMask> {
        let c = c.to_ascii_uppercase();
        if let Some(idx) = AA_CODES.iter().position(|&a| a == c) {
            return Some(AaMask(1 << idx));
        }
        let mask = |chars: &[char]| {
            AaMask(chars.iter().map(|&ch| 1u32 << aa_index(ch)).fold(0, |a, b| a | b))
        };
        match c {
            'B' => Some(mask(&['N', 'D'])),
            'Z' => Some(mask(&['Q', 'E'])),
            'J' => Some(mask(&['I', 'L'])),
            'X' | '-' | '?' | '.' | '*' => Some(AaMask::ANY),
            _ => None,
        }
    }

    /// Whether state `s` is allowed.
    #[inline]
    pub fn allows(self, s: usize) -> bool {
        self.0 & (1 << s) != 0
    }

    /// Render back to a one-letter code (`X` for anything ambiguous other
    /// than B/Z/J).
    pub fn to_char(self) -> char {
        if self.0.count_ones() == 1 {
            return AA_CODES[self.0.trailing_zeros() as usize];
        }
        let of = |chars: &[char]| chars.iter().map(|&c| 1u32 << aa_index(c)).fold(0, |a, b| a | b);
        if self.0 == of(&['N', 'D']) {
            'B'
        } else if self.0 == of(&['Q', 'E']) {
            'Z'
        } else if self.0 == of(&['I', 'L']) {
            'J'
        } else {
            'X'
        }
    }
}

fn aa_index(c: char) -> usize {
    AA_CODES.iter().position(|&a| a == c).expect("canonical amino acid")
}

/// A pattern-compressed protein alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProteinData {
    taxa: Vec<String>,
    /// `patterns[taxon][pattern]`.
    patterns: Vec<Vec<AaMask>>,
    weights: Vec<u32>,
    n_sites: usize,
}

impl ProteinData {
    /// Build from `(name, sequence)` rows of one-letter codes.
    ///
    /// # Errors
    /// Returns a message for ragged rows, invalid characters, or fewer
    /// than two taxa.
    pub fn from_strings(rows: &[(&str, &str)]) -> Result<ProteinData, String> {
        if rows.len() < 2 {
            return Err("need at least two sequences".into());
        }
        let n_sites = rows[0].1.chars().count();
        if n_sites == 0 {
            return Err("empty alignment".into());
        }
        let mut seqs: Vec<Vec<AaMask>> = Vec::with_capacity(rows.len());
        let mut taxa = Vec::with_capacity(rows.len());
        for (name, seq) in rows {
            let masks: Result<Vec<AaMask>, String> = seq
                .chars()
                .enumerate()
                .map(|(i, c)| {
                    AaMask::from_char(c).ok_or_else(|| format!("{name} site {i}: bad residue {c:?}"))
                })
                .collect();
            let masks = masks?;
            if masks.len() != n_sites {
                return Err(format!("{name}: length {} != {n_sites}", masks.len()));
            }
            taxa.push((*name).to_string());
            seqs.push(masks);
        }
        // Pattern compression, as in the DNA path.
        let mut index = std::collections::HashMap::new();
        let mut patterns: Vec<Vec<AaMask>> = vec![Vec::new(); rows.len()];
        let mut weights: Vec<u32> = Vec::new();
        for site in 0..n_sites {
            let col: Vec<u32> = seqs.iter().map(|s| s[site].0).collect();
            let next = weights.len();
            let pat = *index.entry(col).or_insert(next);
            if pat == weights.len() {
                for (t, pcol) in patterns.iter_mut().enumerate() {
                    pcol.push(seqs[t][site]);
                }
                weights.push(0);
            }
            weights[pat] += 1;
        }
        Ok(ProteinData { taxa, patterns, weights, n_sites })
    }

    /// Parse a protein FASTA file.
    ///
    /// # Errors
    /// Returns a message for malformed FASTA or residues outside the
    /// alphabet.
    pub fn from_fasta(text: &str) -> Result<ProteinData, String> {
        let mut rows: Vec<(String, String)> = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(h) = line.strip_prefix('>') {
                let name = h.split_whitespace().next().unwrap_or("");
                if name.is_empty() {
                    return Err("empty FASTA header".into());
                }
                rows.push((name.to_string(), String::new()));
            } else {
                rows.last_mut().ok_or("sequence before first header")?.1.push_str(line);
            }
        }
        let borrowed: Vec<(&str, &str)> =
            rows.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
        ProteinData::from_strings(&borrowed)
    }

    /// Number of taxa.
    pub fn n_taxa(&self) -> usize {
        self.taxa.len()
    }

    /// Distinct site patterns.
    pub fn n_patterns(&self) -> usize {
        self.weights.len()
    }

    /// Original alignment columns.
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// Taxon names.
    pub fn taxa(&self) -> &[String] {
        &self.taxa
    }

    /// The mask of `taxon` at `pattern`.
    pub fn mask(&self, taxon: usize, pattern: usize) -> AaMask {
        self.patterns[taxon][pattern]
    }

    /// Pattern multiplicities.
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }
}

/// The Poisson amino-acid model: all substitutions equally likely, uniform
/// frequencies — the 20-state analogue of JC69, in closed form:
/// `P_same(t) = 1/20 + 19/20·e^{-20t/19}`,
/// `P_diff(t) = 1/20·(1 − e^{-20t/19})` (rate normalized to one expected
/// substitution per unit branch length).
#[derive(Debug, Clone, Copy, Default)]
pub struct PoissonAa;

impl PoissonAa {
    const N: f64 = AA_STATES as f64;

    /// `(P_same, P_diff)` at branch length `t`.
    pub fn probs(&self, t: f64) -> (f64, f64) {
        let e = (-Self::N * t / (Self::N - 1.0)).exp();
        let same = 1.0 / Self::N + (Self::N - 1.0) / Self::N * e;
        let diff = (1.0 - e) / Self::N;
        (same, diff)
    }
}

/// A per-pattern 20-state conditional likelihood vector with scaling
/// exponents.
#[derive(Debug, Clone, PartialEq)]
pub struct AaClv {
    vals: Vec<f64>, // n_patterns * 20
    scale: Vec<u32>,
}

/// The protein likelihood engine (Poisson model).
pub struct ProteinEngine<'a> {
    model: PoissonAa,
    data: &'a ProteinData,
}

impl<'a> ProteinEngine<'a> {
    /// Bind the Poisson model to `data`.
    pub fn new(model: PoissonAa, data: &'a ProteinData) -> Self {
        ProteinEngine { model, data }
    }

    fn tip_clv(&self, taxon: usize) -> AaClv {
        let n = self.data.n_patterns();
        let mut vals = vec![0.0; n * AA_STATES];
        for p in 0..n {
            let m = self.data.mask(taxon, p);
            for s in 0..AA_STATES {
                if m.allows(s) {
                    vals[p * AA_STATES + s] = 1.0;
                }
            }
        }
        AaClv { vals, scale: vec![0; n] }
    }

    /// Felsenstein pruning step. With the Poisson model,
    /// `Σ_y P[x][y]·L[y] = P_diff·S + (P_same − P_diff)·L[x]` where
    /// `S = Σ_y L[y]` — an O(states) kernel instead of O(states²).
    fn newview(&self, left: &AaClv, t_left: f64, right: &AaClv, t_right: f64) -> AaClv {
        let n = self.data.n_patterns();
        let (same_l, diff_l) = self.model.probs(t_left);
        let (same_r, diff_r) = self.model.probs(t_right);
        let mut out = AaClv { vals: vec![0.0; n * AA_STATES], scale: vec![0; n] };
        for i in 0..n {
            let l = &left.vals[i * AA_STATES..(i + 1) * AA_STATES];
            let r = &right.vals[i * AA_STATES..(i + 1) * AA_STATES];
            let sum_l: f64 = l.iter().sum();
            let sum_r: f64 = r.iter().sum();
            let mut any_big = false;
            for x in 0..AA_STATES {
                let a = diff_l * sum_l + (same_l - diff_l) * l[x];
                let b = diff_r * sum_r + (same_r - diff_r) * r[x];
                let v = a * b;
                out.vals[i * AA_STATES + x] = v;
                if v > SCALE_THRESHOLD {
                    any_big = true;
                }
            }
            let mut scale = left.scale[i] + right.scale[i];
            if !any_big {
                for x in 0..AA_STATES {
                    out.vals[i * AA_STATES + x] *= SCALE_MULTIPLIER;
                }
                scale += 1;
            }
            out.scale[i] = scale;
        }
        out
    }

    fn clv_toward(&self, tree: &Tree, node: usize, parent: usize) -> AaClv {
        if tree.is_tip(node) {
            return self.tip_clv(node);
        }
        let mut children: Vec<_> =
            tree.neighbors(node).iter().filter(|&&(n, _)| n != parent).copied().collect();
        children.sort_by_key(|&(n, _)| n);
        let (c1, e1) = children[0];
        let (c2, e2) = children[1];
        let l = self.clv_toward(tree, c1, node);
        let r = self.clv_toward(tree, c2, node);
        self.newview(&l, tree.length(e1), &r, tree.length(e2))
    }

    /// Log-likelihood of `tree` under the Poisson model.
    pub fn log_likelihood(&self, tree: &Tree) -> f64 {
        let e = EdgeId(0);
        let (a, b) = tree.endpoints(e);
        let u = self.clv_toward(tree, a, b);
        let v = self.clv_toward(tree, b, a);
        self.evaluate(&u, &v, tree.length(e))
    }

    fn evaluate(&self, u: &AaClv, v: &AaClv, t: f64) -> f64 {
        let (same, diff) = self.model.probs(t);
        let pi = 1.0 / AA_STATES as f64;
        let ln_min = SCALE_THRESHOLD.ln();
        let mut lnl = 0.0;
        for i in 0..self.data.n_patterns() {
            let lu = &u.vals[i * AA_STATES..(i + 1) * AA_STATES];
            let lv = &v.vals[i * AA_STATES..(i + 1) * AA_STATES];
            let sum_v: f64 = lv.iter().sum();
            let mut term = 0.0;
            for x in 0..AA_STATES {
                let inner = diff * sum_v + (same - diff) * lv[x];
                term += pi * lu[x] * inner;
            }
            let ln = term.max(f64::MIN_POSITIVE).ln()
                + (u.scale[i] + v.scale[i]) as f64 * ln_min;
            lnl += self.data.weights()[i] as f64 * ln;
        }
        lnl
    }

    /// Golden-section optimization of one branch (derivative-free).
    fn optimize_edge(&self, u: &AaClv, v: &AaClv, t0: f64) -> f64 {
        const INVPHI: f64 = 0.618_033_988_749_894_9;
        let (mut lo, mut hi) = (Tree::MIN_BRANCH, 10.0f64.min((t0 * 32.0).max(1.0)));
        let mut x1 = hi - INVPHI * (hi - lo);
        let mut x2 = lo + INVPHI * (hi - lo);
        let mut f1 = self.evaluate(u, v, x1);
        let mut f2 = self.evaluate(u, v, x2);
        for _ in 0..64 {
            if (hi - lo) < 1e-7 * hi.max(1e-3) {
                break;
            }
            if f1 < f2 {
                lo = x1;
                x1 = x2;
                f1 = f2;
                x2 = lo + INVPHI * (hi - lo);
                f2 = self.evaluate(u, v, x2);
            } else {
                hi = x2;
                x2 = x1;
                f2 = f1;
                x1 = hi - INVPHI * (hi - lo);
                f1 = self.evaluate(u, v, x1);
            }
        }
        0.5 * (lo + hi)
    }
}

impl ScoringEngine for ProteinEngine<'_> {
    fn score(&mut self, tree: &Tree) -> f64 {
        self.log_likelihood(tree)
    }

    fn optimize_branches(&mut self, tree: &mut Tree, max_passes: usize, epsilon: f64) -> f64 {
        let mut last = f64::NEG_INFINITY;
        let mut lnl = self.log_likelihood(tree);
        for _ in 0..max_passes {
            if (lnl - last).abs() < epsilon {
                break;
            }
            last = lnl;
            for e in tree.edge_ids().collect::<Vec<_>>() {
                let (a, b) = tree.endpoints(e);
                let u = self.clv_toward(tree, a, b);
                let v = self.clv_toward(tree, b, a);
                let t = self.optimize_edge(&u, &v, tree.length(e));
                tree.set_length(e, t);
            }
            lnl = self.log_likelihood(tree);
        }
        lnl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn alphabet_round_trips() {
        for (i, &c) in AA_CODES.iter().enumerate() {
            let m = AaMask::from_char(c).unwrap();
            assert!(m.allows(i));
            assert_eq!(m.0.count_ones(), 1);
            assert_eq!(m.to_char(), c);
        }
        assert_eq!(AaMask::from_char('x').unwrap(), AaMask::ANY);
        assert_eq!(AaMask::from_char('-').unwrap(), AaMask::ANY);
        assert_eq!(AaMask::from_char('O'), None, "pyrrolysine not in the 20");
        let b = AaMask::from_char('B').unwrap();
        assert!(b.allows(aa_index('N')) && b.allows(aa_index('D')) && !b.allows(aa_index('A')));
        assert_eq!(b.to_char(), 'B');
        assert_eq!(AaMask::from_char('Z').unwrap().to_char(), 'Z');
        assert_eq!(AaMask::from_char('J').unwrap().to_char(), 'J');
    }

    #[test]
    fn poisson_limits_and_stochasticity() {
        let m = PoissonAa;
        let (s0, d0) = m.probs(0.0);
        assert!((s0 - 1.0).abs() < 1e-12 && d0.abs() < 1e-12);
        let (si, di) = m.probs(1e6);
        assert!((si - 0.05).abs() < 1e-9 && (di - 0.05).abs() < 1e-9);
        for &t in &[0.01, 0.1, 1.0, 5.0] {
            let (s, d) = m.probs(t);
            assert!((s + 19.0 * d - 1.0).abs() < 1e-12, "row sum at t={t}");
            assert!(s > d, "same must dominate at finite t");
        }
        // Rate normalization: 1 - P_same ≈ t for small t.
        let t = 1e-6;
        let (s, _) = m.probs(t);
        assert!(((1.0 - s) / t - 1.0).abs() < 1e-3);
    }

    fn toy() -> ProteinData {
        ProteinData::from_strings(&[
            ("a", "ARNDCQEGHI"),
            ("b", "ARNDCQEGHL"),
            ("c", "ARNDCREGHI"),
            ("d", "AKNDCREGHI"),
        ])
        .unwrap()
    }

    #[test]
    fn protein_fasta_parses() {
        let d = ProteinData::from_fasta(">a\nARND\nCQ\n>b desc\nARNDCQ\n").unwrap();
        assert_eq!(d.n_taxa(), 2);
        assert_eq!(d.n_sites(), 6);
        assert!(ProteinData::from_fasta("ARND\n>a\n").is_err());
        assert!(ProteinData::from_fasta(">a\nAR!D\n>b\nARND\n").is_err());
    }

    #[test]
    fn construction_and_compression() {
        let d = toy();
        assert_eq!(d.n_taxa(), 4);
        assert_eq!(d.n_sites(), 10);
        assert!(d.n_patterns() <= 10);
        assert_eq!(d.weights().iter().sum::<u32>() as usize, 10);
        assert!(ProteinData::from_strings(&[("a", "AR")]).is_err());
        assert!(ProteinData::from_strings(&[("a", "AR"), ("b", "A")]).is_err());
        assert!(ProteinData::from_strings(&[("a", "A!"), ("b", "AR")]).is_err());
    }

    /// Brute force over internal states for a 4-taxon tree (2 internal
    /// nodes → 400 combinations) validates the pruning implementation.
    #[test]
    fn engine_matches_brute_force() {
        let d = toy();
        let mut rng = SmallRng::seed_from_u64(3);
        let tree = Tree::random(4, 0.2, &mut rng);
        let engine = ProteinEngine::new(PoissonAa, &d);
        let fast = engine.log_likelihood(&tree);

        let m = PoissonAa;
        let prob = |t: f64, x: usize, y: usize| {
            let (s, df) = m.probs(t);
            if x == y {
                s
            } else {
                df
            }
        };
        let mut brute = 0.0;
        for pat in 0..d.n_patterns() {
            let mut site = 0.0;
            for s1 in 0..AA_STATES {
                for s2 in 0..AA_STATES {
                    let state_of = |node: usize| if node == 4 { s1 } else { s2 };
                    let mut prod = 1.0 / AA_STATES as f64;
                    for e in tree.edge_ids() {
                        let (a, b) = tree.endpoints(e);
                        let t = tree.length(e);
                        let f = match (tree.is_tip(a), tree.is_tip(b)) {
                            (false, false) => prob(t, state_of(a), state_of(b)),
                            (false, true) => (0..AA_STATES)
                                .filter(|&s| d.mask(b, pat).allows(s))
                                .map(|s| prob(t, state_of(a), s))
                                .sum(),
                            (true, false) => (0..AA_STATES)
                                .filter(|&s| d.mask(a, pat).allows(s))
                                .map(|s| prob(t, s, state_of(b)))
                                .sum(),
                            (true, true) => unreachable!(),
                        };
                        prod *= f;
                    }
                    site += prod;
                }
            }
            brute += d.weights()[pat] as f64 * site.ln();
        }
        assert!((fast - brute).abs() < 1e-8, "pruning {fast} vs brute {brute}");
    }

    #[test]
    fn likelihood_edge_invariance() {
        let d = toy();
        let mut rng = SmallRng::seed_from_u64(5);
        let tree = Tree::random(4, 0.15, &mut rng);
        let engine = ProteinEngine::new(PoissonAa, &d);
        let base = engine.log_likelihood(&tree);
        for e in tree.edge_ids() {
            let (a, b) = tree.endpoints(e);
            let u = engine.clv_toward(&tree, a, b);
            let v = engine.clv_toward(&tree, b, a);
            let lnl = engine.evaluate(&u, &v, tree.length(e));
            assert!((lnl - base).abs() < 1e-8, "edge {e:?}");
        }
    }

    #[test]
    fn protein_search_end_to_end() {
        // Strongly structured protein data: (a,b) vs (c,d,e).
        let d = ProteinData::from_strings(&[
            ("a", "AAAAAAAAAARRRRRRRRRR"),
            ("b", "AAAAAAAAAARRRRRRRRRR"),
            ("c", "WWWWWWWWWWYYYYYYYYYY"),
            ("d", "WWWWWWWWWWYYYYYYYYYY"),
            ("e", "WWWWWWWWWWVVVVVVVVVV"),
        ])
        .unwrap();
        let mut engine = ProteinEngine::new(PoissonAa, &d);
        let cfg = crate::search::SearchConfig::default();
        let r = crate::search::hill_climb_with(&mut engine, d.n_taxa(), &cfg, 3);
        r.tree.validate().unwrap();
        // (a,b) must form a clade.
        let found = r.tree.bipartitions().iter().any(|side| {
            let members: Vec<usize> =
                side.iter().enumerate().filter_map(|(i, &s)| s.then_some(i)).collect();
            members == vec![0, 1] || members == vec![0, 2, 3, 4]
        });
        assert!(found, "protein search failed to recover (a,b): {:?}", r.tree.bipartitions());
    }

    #[test]
    fn deep_protein_trees_stay_finite() {
        let rows: Vec<(String, String)> = (0..150)
            .map(|i| {
                let c = AA_CODES[i % AA_STATES];
                (format!("t{i}"), std::iter::repeat_n(c, 8).collect())
            })
            .collect();
        let borrowed: Vec<(&str, &str)> =
            rows.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
        let d = ProteinData::from_strings(&borrowed).unwrap();
        let tree = Tree::caterpillar(150, 1.0);
        let lnl = ProteinEngine::new(PoissonAa, &d).log_likelihood(&tree);
        assert!(lnl.is_finite() && lnl < 0.0, "{lnl}");
    }
}
