//! 4-wide f64 lane kernels for the likelihood hot path.
//!
//! The paper's SPE kernels were hand-vectorized; this module is the host
//! equivalent: the 4×4 matrix–vector product at the heart of `newview`,
//! `evaluate`, and the `makenewz` derivatives, written two ways behind one
//! trait so the chunk bodies in [`crate::likelihood`] stay generic:
//!
//! * [`Scalar`] — the pinned-reproduction path: the literal row-major
//!   double loop the repo has always shipped. Its floating-point operation
//!   order is frozen; checker verdicts and replay digests depend on it.
//! * [`Simd4`] — the `simd-kernels` path: the matrix is transposed once
//!   per kernel call into column lanes and each product is four manually
//!   unrolled 4-wide multiply–adds with independent per-lane accumulators,
//!   the shape LLVM turns into packed vector arithmetic. No dependencies,
//!   no intrinsics — just lane-structured code.
//!
//! Both paths accumulate in the same `y` order per output lane, so they
//! produce numerically identical results (including scaling decisions);
//! the feature-matrix tests assert exact agreement, which is stronger than
//! the ≤1 ulp budget they are allowed.

#![allow(clippy::needless_range_loop)] // index loops mirror the math in dense kernels

use crate::model::Matrix;

/// A way of computing `P · v` for a 4-state model: the single operation
/// all three likelihood kernels spend their time in.
///
/// `prepare` runs once per kernel call (per matrix), `matvec` once per
/// site pattern; implementations may pick whatever matrix layout makes
/// `matvec` fastest.
pub trait KernelPath: Copy + Send + Sync + 'static {
    /// The prepared (possibly re-laid-out) form of a probability matrix.
    type Prepared: Send + Sync;
    /// Human-readable path name for benches and diagnostics.
    const NAME: &'static str;
    /// Re-lay-out `m` for this path. Called once per kernel invocation.
    fn prepare(m: &Matrix) -> Self::Prepared;
    /// The 4-vector `[Σ_y m[x][y]·v[y]; x in 0..4]`.
    fn matvec(p: &Self::Prepared, v: &[f64; 4]) -> [f64; 4];
}

/// The pinned scalar path: row-major accumulation, one output state at a
/// time, exactly as the pre-vectorization kernels computed it.
#[derive(Clone, Copy, Debug, Default)]
pub struct Scalar;

impl KernelPath for Scalar {
    type Prepared = Matrix;
    const NAME: &'static str = "scalar";

    #[inline(always)]
    fn prepare(m: &Matrix) -> Matrix {
        *m
    }

    #[inline(always)]
    fn matvec(p: &Matrix, v: &[f64; 4]) -> [f64; 4] {
        let mut out = [0.0; 4];
        for x in 0..4 {
            let mut s = 0.0;
            for y in 0..4 {
                s += p[x][y] * v[y];
            }
            out[x] = s;
        }
        out
    }
}

/// Column lanes of a matrix: `cols[y][x] = m[x][y]`, so `P · v` becomes
/// `Σ_y cols[y] · v[y]` — four broadcast multiply–adds over a 4-wide lane.
pub type ColumnLanes = [[f64; 4]; 4];

/// The `simd-kernels` path: column-lane layout with manually unrolled
/// 4-wide multiply–adds. Each output lane accumulates in the same `y`
/// order as [`Scalar`], so the two paths agree exactly; the win is that
/// the four accumulator chains are independent lanes instead of one
/// horizontal reduction per output state.
#[derive(Clone, Copy, Debug, Default)]
pub struct Simd4;

impl KernelPath for Simd4 {
    type Prepared = ColumnLanes;
    const NAME: &'static str = "simd4";

    #[inline(always)]
    fn prepare(m: &Matrix) -> ColumnLanes {
        let mut cols = [[0.0; 4]; 4];
        for x in 0..4 {
            for y in 0..4 {
                cols[y][x] = m[x][y];
            }
        }
        cols
    }

    #[inline(always)]
    fn matvec(cols: &ColumnLanes, v: &[f64; 4]) -> [f64; 4] {
        let acc = madd4([0.0; 4], &cols[0], v[0]);
        let acc = madd4(acc, &cols[1], v[1]);
        let acc = madd4(acc, &cols[2], v[2]);
        madd4(acc, &cols[3], v[3])
    }
}

/// `acc + lane·s` across all four lanes (mul then add, never fused, so the
/// lane path rounds exactly like the scalar path).
#[inline(always)]
fn madd4(acc: [f64; 4], lane: &[f64; 4], s: f64) -> [f64; 4] {
    [
        acc[0] + lane[0] * s,
        acc[1] + lane[1] * s,
        acc[2] + lane[2] * s,
        acc[3] + lane[3] * s,
    ]
}

/// The default path kernels dispatch to: [`Simd4`] when the
/// `simd-kernels` feature is on, the pinned [`Scalar`] otherwise.
#[cfg(feature = "simd-kernels")]
pub type DefaultPath = Simd4;
/// The default path kernels dispatch to: [`Simd4`] when the
/// `simd-kernels` feature is on, the pinned [`Scalar`] otherwise.
#[cfg(not(feature = "simd-kernels"))]
pub type DefaultPath = Scalar;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix(seed: f64) -> Matrix {
        let mut m = [[0.0; 4]; 4];
        for x in 0..4 {
            for y in 0..4 {
                // Deterministic, sign-varying entries (derivative matrices
                // have negative entries; the paths must agree there too).
                m[x][y] = ((x * 4 + y) as f64 * 0.37 + seed).sin();
            }
        }
        m
    }

    #[test]
    fn scalar_and_simd4_matvec_agree_exactly() {
        for s in 0..32 {
            let m = sample_matrix(s as f64 * 0.11);
            let v = [0.25 + s as f64, 1e-120, 0.0, 3.5 - s as f64 * 0.2];
            let a = Scalar::matvec(&Scalar::prepare(&m), &v);
            let b = Simd4::matvec(&Simd4::prepare(&m), &v);
            for x in 0..4 {
                assert_eq!(a[x], b[x], "lane {x} diverged on seed {s}");
            }
        }
    }

    #[test]
    fn prepare_transposes() {
        let m = sample_matrix(1.0);
        let cols = Simd4::prepare(&m);
        for x in 0..4 {
            for y in 0..4 {
                assert_eq!(cols[y][x], m[x][y]);
            }
        }
    }
}
