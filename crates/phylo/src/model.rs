//! Nucleotide substitution models.
//!
//! A model supplies the transition-probability matrix `P(t)` over a branch
//! of length `t` (expected substitutions per site), its first and second
//! derivatives in `t` (needed by the Newton–Raphson branch-length optimizer
//! `makenewz`), and the equilibrium base frequencies.
//!
//! Two classic closed-form models are provided: Jukes–Cantor (JC69) and
//! Kimura two-parameter (K80). Both are normalized so that branch lengths
//! measure expected substitutions per site.

#![allow(clippy::needless_range_loop)] // index loops mirror the math in dense kernels

use crate::dna::STATES;
use crate::linalg::{sym_eigen, SymEigen};

/// A 4×4 matrix over nucleotide states.
pub type Matrix = [[f64; STATES]; STATES];

/// A time-reversible nucleotide substitution model.
pub trait SubstModel: Send + Sync {
    /// Transition probabilities `P(t)[x][y] = Pr(y at end | x at start)`.
    fn prob_matrix(&self, t: f64) -> Matrix;

    /// Entry-wise `dP/dt`.
    fn d1_matrix(&self, t: f64) -> Matrix;

    /// Entry-wise `d²P/dt²`.
    fn d2_matrix(&self, t: f64) -> Matrix;

    /// Equilibrium base frequencies π.
    fn base_freqs(&self) -> [f64; STATES];
}

impl<M: SubstModel + ?Sized> SubstModel for &M {
    fn prob_matrix(&self, t: f64) -> Matrix {
        (**self).prob_matrix(t)
    }
    fn d1_matrix(&self, t: f64) -> Matrix {
        (**self).d1_matrix(t)
    }
    fn d2_matrix(&self, t: f64) -> Matrix {
        (**self).d2_matrix(t)
    }
    fn base_freqs(&self) -> [f64; STATES] {
        (**self).base_freqs()
    }
}

/// A model with all branch lengths scaled by a fixed `rate` — the building
/// block of discrete-Γ mixtures: category `k` evaluates the tree under
/// `ScaledModel { inner, rate: r_k }`.
#[derive(Debug, Clone, Copy)]
pub struct ScaledModel<M> {
    /// The underlying substitution model.
    pub inner: M,
    /// The rate multiplier applied to every branch length.
    pub rate: f64,
}

impl<M: SubstModel> SubstModel for ScaledModel<M> {
    fn prob_matrix(&self, t: f64) -> Matrix {
        self.inner.prob_matrix(self.rate * t)
    }
    fn d1_matrix(&self, t: f64) -> Matrix {
        // Chain rule: d/dt P(r·t) = r · P'(r·t).
        let mut m = self.inner.d1_matrix(self.rate * t);
        for row in m.iter_mut() {
            for v in row.iter_mut() {
                *v *= self.rate;
            }
        }
        m
    }
    fn d2_matrix(&self, t: f64) -> Matrix {
        let mut m = self.inner.d2_matrix(self.rate * t);
        let r2 = self.rate * self.rate;
        for row in m.iter_mut() {
            for v in row.iter_mut() {
                *v *= r2;
            }
        }
        m
    }
    fn base_freqs(&self) -> [f64; STATES] {
        self.inner.base_freqs()
    }
}

/// Jukes–Cantor 1969: all substitutions equally likely, uniform
/// frequencies.
#[derive(Debug, Clone, Copy, Default)]
pub struct Jc69;

impl SubstModel for Jc69 {
    fn prob_matrix(&self, t: f64) -> Matrix {
        let e = (-4.0 * t / 3.0).exp();
        let same = 0.25 + 0.75 * e;
        let diff = 0.25 - 0.25 * e;
        fill(same, diff, diff)
    }

    fn d1_matrix(&self, t: f64) -> Matrix {
        let e = (-4.0 * t / 3.0).exp();
        // d/dt of e is -4/3 e.
        let same = -e;
        let diff = e / 3.0;
        fill(same, diff, diff)
    }

    fn d2_matrix(&self, t: f64) -> Matrix {
        let e = (-4.0 * t / 3.0).exp();
        let same = 4.0 / 3.0 * e;
        let diff = -4.0 / 9.0 * e;
        fill(same, diff, diff)
    }

    fn base_freqs(&self) -> [f64; STATES] {
        [0.25; STATES]
    }
}

/// Kimura 1980: distinct transition (A↔G, C↔T) and transversion rates,
/// parameterized by the transition/transversion rate ratio κ.
#[derive(Debug, Clone, Copy)]
pub struct K80 {
    /// Transition/transversion rate ratio (κ = 1 reduces to JC69).
    pub kappa: f64,
}

impl K80 {
    /// A K80 model with ratio `kappa`.
    ///
    /// # Panics
    /// Panics unless `kappa` is finite and positive.
    pub fn new(kappa: f64) -> K80 {
        assert!(kappa.is_finite() && kappa > 0.0, "kappa must be positive");
        K80 { kappa }
    }

    /// Rates normalized so the expected substitution rate is 1:
    /// per-state total rate α + 2β with α = κβ ⇒ β = 1/(κ+2).
    fn rates(&self) -> (f64, f64) {
        let beta = 1.0 / (self.kappa + 2.0);
        (self.kappa * beta, beta)
    }
}

impl SubstModel for K80 {
    fn prob_matrix(&self, t: f64) -> Matrix {
        let (alpha, beta) = self.rates();
        let e2 = (-4.0 * beta * t).exp();
        let e1 = (-2.0 * (alpha + beta) * t).exp();
        let same = 0.25 + 0.25 * e2 + 0.5 * e1;
        let transition = 0.25 + 0.25 * e2 - 0.5 * e1;
        let transversion = 0.25 - 0.25 * e2;
        fill(same, transition, transversion)
    }

    fn d1_matrix(&self, t: f64) -> Matrix {
        let (alpha, beta) = self.rates();
        let e2 = (-4.0 * beta * t).exp();
        let e1 = (-2.0 * (alpha + beta) * t).exp();
        let de2 = -4.0 * beta * e2;
        let de1 = -2.0 * (alpha + beta) * e1;
        let same = 0.25 * de2 + 0.5 * de1;
        let transition = 0.25 * de2 - 0.5 * de1;
        let transversion = -0.25 * de2;
        fill(same, transition, transversion)
    }

    fn d2_matrix(&self, t: f64) -> Matrix {
        let (alpha, beta) = self.rates();
        let e2 = (-4.0 * beta * t).exp();
        let e1 = (-2.0 * (alpha + beta) * t).exp();
        let d2e2 = 16.0 * beta * beta * e2;
        let d2e1 = 4.0 * (alpha + beta) * (alpha + beta) * e1;
        let same = 0.25 * d2e2 + 0.5 * d2e1;
        let transition = 0.25 * d2e2 - 0.5 * d2e1;
        let transversion = -0.25 * d2e2;
        fill(same, transition, transversion)
    }

    fn base_freqs(&self) -> [f64; STATES] {
        [0.25; STATES]
    }
}

/// The general time-reversible model (GTR): six exchangeability rates and
/// arbitrary equilibrium frequencies — the model RAxML actually runs.
///
/// `P(t) = exp(Qt)` is computed by spectral decomposition of the
/// similarity-transformed (symmetric) rate matrix, so `prob_matrix` and
/// its derivatives are closed-form in the precomputed eigensystem.
#[derive(Debug, Clone)]
pub struct Gtr {
    rates: [f64; 6],
    freqs: [f64; STATES],
    /// Eigenvalues of the normalized rate matrix.
    eigenvalues: [f64; STATES],
    /// `D^{-1/2} · U`: left spectral factor.
    left: Matrix,
    /// `Uᵀ · D^{1/2}`: right spectral factor.
    right: Matrix,
}

impl Gtr {
    /// A GTR model from exchangeabilities `rates` (order: AC, AG, AT, CG,
    /// CT, GT) and equilibrium frequencies `freqs` (A, C, G, T).
    ///
    /// The rate matrix is normalized so branch lengths measure expected
    /// substitutions per site.
    ///
    /// # Panics
    /// Panics on non-positive rates, non-positive frequencies, or
    /// frequencies that do not sum to 1 (within 1e-9).
    pub fn new(rates: [f64; 6], freqs: [f64; STATES]) -> Gtr {
        assert!(rates.iter().all(|&r| r.is_finite() && r > 0.0), "rates must be positive");
        assert!(freqs.iter().all(|&f| f.is_finite() && f > 0.0), "frequencies must be positive");
        let total: f64 = freqs.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "frequencies must sum to 1, got {total}");

        // Assemble Q: q[i][j] = s_ij * pi_j (i != j), diagonal = -rowsum.
        let s = Self::exchangeability_matrix(rates);
        let mut q = [[0.0; STATES]; STATES];
        for i in 0..STATES {
            let mut rowsum = 0.0;
            for j in 0..STATES {
                if i != j {
                    q[i][j] = s[i][j] * freqs[j];
                    rowsum += q[i][j];
                }
            }
            q[i][i] = -rowsum;
        }
        // Normalize: mean rate 1 at equilibrium.
        let mean_rate: f64 = (0..STATES).map(|i| -freqs[i] * q[i][i]).sum();
        for row in q.iter_mut() {
            for v in row.iter_mut() {
                *v /= mean_rate;
            }
        }

        // Symmetrize: B = D^{1/2} Q D^{-1/2}, D = diag(pi).
        let sq: Vec<f64> = freqs.iter().map(|f| f.sqrt()).collect();
        let mut b = [[0.0; STATES]; STATES];
        for i in 0..STATES {
            for j in 0..STATES {
                b[i][j] = q[i][j] * sq[i] / sq[j];
            }
        }
        // Guard against round-off asymmetry before the strict eigensolver.
        for i in 0..STATES {
            for j in (i + 1)..STATES {
                let m = 0.5 * (b[i][j] + b[j][i]);
                b[i][j] = m;
                b[j][i] = m;
            }
        }
        let SymEigen { values, vectors } = sym_eigen(b);

        let mut left = [[0.0; STATES]; STATES];
        let mut right = [[0.0; STATES]; STATES];
        for i in 0..STATES {
            for k in 0..STATES {
                left[i][k] = vectors[i][k] / sq[i];
                right[k][i] = vectors[i][k] * sq[i];
            }
        }
        Gtr { rates, freqs, eigenvalues: values, left, right }
    }

    /// The canonical test instance with unequal rates and frequencies.
    pub fn example() -> Gtr {
        Gtr::new([1.2, 3.9, 0.7, 1.1, 4.2, 1.0], [0.32, 0.18, 0.24, 0.26])
    }

    /// The exchangeability parameters (AC, AG, AT, CG, CT, GT).
    pub fn rates(&self) -> [f64; 6] {
        self.rates
    }

    fn exchangeability_matrix(r: [f64; 6]) -> Matrix {
        let [ac, ag, at, cg, ct, gt] = r;
        [
            [0.0, ac, ag, at],
            [ac, 0.0, cg, ct],
            [ag, cg, 0.0, gt],
            [at, ct, gt, 0.0],
        ]
    }

    /// `Σ_k left[i][k] · f(λ_k) · right[k][j]` for `f = exp`, `λ·exp`, or
    /// `λ²·exp` scaled by `t`.
    fn spectral(&self, t: f64, order: u32) -> Matrix {
        let mut out = [[0.0; STATES]; STATES];
        let mut factors = [0.0; STATES];
        for (k, f) in factors.iter_mut().enumerate() {
            let lam = self.eigenvalues[k];
            *f = lam.powi(order as i32) * (lam * t).exp();
        }
        for i in 0..STATES {
            for j in 0..STATES {
                let mut sum = 0.0;
                for (k, &f) in factors.iter().enumerate() {
                    sum += self.left[i][k] * f * self.right[k][j];
                }
                out[i][j] = sum;
            }
        }
        out
    }
}

impl SubstModel for Gtr {
    fn prob_matrix(&self, t: f64) -> Matrix {
        self.spectral(t, 0)
    }

    fn d1_matrix(&self, t: f64) -> Matrix {
        self.spectral(t, 1)
    }

    fn d2_matrix(&self, t: f64) -> Matrix {
        self.spectral(t, 2)
    }

    fn base_freqs(&self) -> [f64; STATES] {
        self.freqs
    }
}

/// Build a K80-shaped matrix from the three distinct entry classes.
/// State order A, C, G, T; transitions are A↔G and C↔T.
fn fill(same: f64, transition: f64, transversion: f64) -> Matrix {
    let mut m = [[transversion; STATES]; STATES];
    for (s, row) in m.iter_mut().enumerate() {
        row[s] = same;
    }
    m[0][2] = transition; // A -> G
    m[2][0] = transition;
    m[1][3] = transition; // C -> T
    m[3][1] = transition;
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows_sum_to_one(m: &Matrix) {
        for row in m {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "row sums to {s}");
        }
    }

    #[test]
    fn jc69_limits() {
        let p0 = Jc69.prob_matrix(0.0);
        for x in 0..4 {
            for y in 0..4 {
                let want = if x == y { 1.0 } else { 0.0 };
                assert!((p0[x][y] - want).abs() < 1e-12);
            }
        }
        let pinf = Jc69.prob_matrix(1e6);
        for row in &pinf {
            for &v in row {
                assert!((v - 0.25).abs() < 1e-9, "long branches equilibrate");
            }
        }
        rows_sum_to_one(&Jc69.prob_matrix(0.37));
    }

    #[test]
    fn jc69_derivatives_match_finite_differences() {
        let t = 0.2;
        let h = 1e-6;
        let p_plus = Jc69.prob_matrix(t + h);
        let p_minus = Jc69.prob_matrix(t - h);
        let d1 = Jc69.d1_matrix(t);
        let d2 = Jc69.d2_matrix(t);
        let p = Jc69.prob_matrix(t);
        for x in 0..4 {
            for y in 0..4 {
                let fd1 = (p_plus[x][y] - p_minus[x][y]) / (2.0 * h);
                let fd2 = (p_plus[x][y] - 2.0 * p[x][y] + p_minus[x][y]) / (h * h);
                assert!((d1[x][y] - fd1).abs() < 1e-6, "d1[{x}][{y}]");
                assert!((d2[x][y] - fd2).abs() < 1e-3, "d2[{x}][{y}]");
            }
        }
    }

    #[test]
    fn k80_reduces_to_jc69_at_kappa_one() {
        let k = K80::new(1.0);
        for &t in &[0.01, 0.1, 0.5, 2.0] {
            let pk = k.prob_matrix(t);
            let pj = Jc69.prob_matrix(t);
            for x in 0..4 {
                for y in 0..4 {
                    assert!((pk[x][y] - pj[x][y]).abs() < 1e-12, "t={t} [{x}][{y}]");
                }
            }
        }
    }

    #[test]
    fn k80_rows_sum_to_one_and_transitions_dominate() {
        let k = K80::new(4.0);
        let p = k.prob_matrix(0.3);
        rows_sum_to_one(&p);
        // With kappa > 1, a transition (A->G) must be more likely than a
        // transversion (A->C).
        assert!(p[0][2] > p[0][1]);
        // Symmetry (time reversibility with uniform frequencies).
        for x in 0..4 {
            for y in 0..4 {
                assert!((p[x][y] - p[y][x]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn k80_derivatives_match_finite_differences() {
        let k = K80::new(2.5);
        let t = 0.15;
        let h = 1e-6;
        let p_plus = k.prob_matrix(t + h);
        let p_minus = k.prob_matrix(t - h);
        let p = k.prob_matrix(t);
        let d1 = k.d1_matrix(t);
        let d2 = k.d2_matrix(t);
        for x in 0..4 {
            for y in 0..4 {
                let fd1 = (p_plus[x][y] - p_minus[x][y]) / (2.0 * h);
                let fd2 = (p_plus[x][y] - 2.0 * p[x][y] + p_minus[x][y]) / (h * h);
                assert!((d1[x][y] - fd1).abs() < 1e-6);
                assert!((d2[x][y] - fd2).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn k80_branch_length_is_expected_substitutions() {
        // At small t, 1 - P(same) ≈ t (rate normalization check).
        let k = K80::new(3.0);
        let t = 1e-4;
        let p = k.prob_matrix(t);
        let p_change = 1.0 - p[0][0];
        assert!((p_change / t - 1.0).abs() < 1e-3, "got rate {}", p_change / t);
        // Same for JC69.
        let pj = Jc69.prob_matrix(t);
        assert!(((1.0 - pj[0][0]) / t - 1.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "kappa")]
    fn k80_rejects_nonpositive_kappa() {
        let _ = K80::new(0.0);
    }

    #[test]
    fn gtr_with_uniform_parameters_reduces_to_jc69() {
        let g = Gtr::new([1.0; 6], [0.25; 4]);
        for &t in &[0.01, 0.1, 0.5, 2.0] {
            let pg = g.prob_matrix(t);
            let pj = Jc69.prob_matrix(t);
            for x in 0..4 {
                for y in 0..4 {
                    assert!((pg[x][y] - pj[x][y]).abs() < 1e-10, "t={t} [{x}][{y}]");
                }
            }
        }
    }

    #[test]
    fn gtr_rows_sum_to_one_and_start_at_identity() {
        let g = Gtr::example();
        rows_sum_to_one(&g.prob_matrix(0.3));
        let p0 = g.prob_matrix(0.0);
        for x in 0..4 {
            for y in 0..4 {
                let want = if x == y { 1.0 } else { 0.0 };
                assert!((p0[x][y] - want).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn gtr_converges_to_its_stationary_distribution() {
        let g = Gtr::example();
        let p = g.prob_matrix(200.0);
        for row in &p {
            for (j, &v) in row.iter().enumerate() {
                assert!((v - g.base_freqs()[j]).abs() < 1e-9, "P(inf)[.][{j}] = {v}");
            }
        }
    }

    #[test]
    fn gtr_satisfies_detailed_balance() {
        let g = Gtr::example();
        let p = g.prob_matrix(0.4);
        let pi = g.base_freqs();
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    (pi[i] * p[i][j] - pi[j] * p[j][i]).abs() < 1e-12,
                    "reversibility violated at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn gtr_branch_length_is_expected_substitutions() {
        let g = Gtr::example();
        let t = 1e-5;
        let p = g.prob_matrix(t);
        let pi = g.base_freqs();
        let change: f64 = (0..4).map(|i| pi[i] * (1.0 - p[i][i])).sum();
        assert!((change / t - 1.0).abs() < 1e-3, "normalized rate {}", change / t);
    }

    #[test]
    fn gtr_derivatives_match_finite_differences() {
        let g = Gtr::example();
        let t = 0.25;
        let h = 1e-6;
        let p_plus = g.prob_matrix(t + h);
        let p_minus = g.prob_matrix(t - h);
        let p = g.prob_matrix(t);
        let d1 = g.d1_matrix(t);
        let d2 = g.d2_matrix(t);
        for x in 0..4 {
            for y in 0..4 {
                let fd1 = (p_plus[x][y] - p_minus[x][y]) / (2.0 * h);
                let fd2 = (p_plus[x][y] - 2.0 * p[x][y] + p_minus[x][y]) / (h * h);
                assert!((d1[x][y] - fd1).abs() < 1e-6, "d1[{x}][{y}]: {} vs {}", d1[x][y], fd1);
                assert!((d2[x][y] - fd2).abs() < 1e-3, "d2[{x}][{y}]");
            }
        }
    }

    #[test]
    fn gtr_probabilities_stay_in_unit_interval() {
        let g = Gtr::example();
        for &t in &[1e-6, 0.01, 0.1, 1.0, 10.0, 100.0] {
            for row in &g.prob_matrix(t) {
                for &v in row {
                    assert!((-1e-12..=1.0 + 1e-12).contains(&v), "t={t}: {v}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn gtr_rejects_bad_frequencies() {
        let _ = Gtr::new([1.0; 6], [0.3, 0.3, 0.3, 0.3]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gtr_rejects_zero_rate() {
        let _ = Gtr::new([0.0, 1.0, 1.0, 1.0, 1.0, 1.0], [0.25; 4]);
    }

    #[test]
    fn scaled_model_composes_with_the_chain_rule() {
        let m = ScaledModel { inner: Jc69, rate: 2.5 };
        let t = 0.1;
        // P matches the inner model at the scaled time.
        let p = m.prob_matrix(t);
        let want = Jc69.prob_matrix(2.5 * t);
        for x in 0..4 {
            for y in 0..4 {
                assert!((p[x][y] - want[x][y]).abs() < 1e-15);
            }
        }
        // Derivatives match finite differences of the scaled model itself.
        let h = 1e-7;
        let d1 = m.d1_matrix(t);
        let pp = m.prob_matrix(t + h);
        let pm = m.prob_matrix(t - h);
        for x in 0..4 {
            for y in 0..4 {
                let fd = (pp[x][y] - pm[x][y]) / (2.0 * h);
                assert!((d1[x][y] - fd).abs() < 1e-6, "[{x}][{y}]");
            }
        }
        // Rate 1 is the identity wrapper.
        let id = ScaledModel { inner: Jc69, rate: 1.0 };
        assert_eq!(id.prob_matrix(0.3), Jc69.prob_matrix(0.3));
    }
}
