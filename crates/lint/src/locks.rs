//! Lexical lock-order analysis over `mgps-runtime`.
//!
//! Finds every `.lock()` call, names the lock by the last plain field or
//! binding in the receiver chain (`self.shared.state.lock()` → `state`;
//! `self.fault_state.as_ref()?.lock()` → `fault_state`), and tracks guard
//! liveness lexically:
//!
//! * a `let`-bound guard lives until its enclosing block closes or an
//!   explicit `drop(guard)`;
//! * a temporary guard (`self.x.lock().do_it()`) lives until the end of
//!   its statement — deliberately *over*-approximating `if`-condition
//!   temporaries (dropped earlier at runtime) so that `match x.lock().y`
//!   temporaries, which genuinely live for the whole match, are covered.
//!
//! Every acquisition that happens while another guard is (lexically) live
//! adds an edge `held → acquired` to the lock-order graph. The rule fails
//! on any cycle, including the self-edge of a double acquisition. This is
//! the static complement of the loom models: loom explores schedules of
//! the orders that exist, this proves no conflicting order exists in the
//! first place.

use crate::lexer::TokKind;
use crate::{Finding, SourceFile};

/// One acquisition site.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Lock name (receiver's last plain field/binding).
    pub lock: String,
    /// Repo-relative file.
    pub file: String,
    /// 1-based line of the `.lock()` call.
    pub line: u32,
}

/// One `held → acquired` edge with its witnessing site.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// The lock already held.
    pub held: String,
    /// The lock acquired under it.
    pub acquired: String,
    /// Where the inner acquisition happens.
    pub site: LockSite,
}

/// The lock-order graph of the scanned tree.
#[derive(Debug, Clone, Default)]
pub struct LockGraph {
    /// Every acquisition site seen (deduplicated by file/line).
    pub sites: Vec<LockSite>,
    /// Nested-acquisition edges.
    pub edges: Vec<LockEdge>,
    /// Detected cycles, as lock-name paths (`a → b → a`).
    pub cycles: Vec<Vec<String>>,
}

struct Guard {
    lock: String,
    /// Binding name for `let` guards; `None` for statement temporaries.
    name: Option<String>,
    /// Brace depth at acquisition.
    depth: usize,
}

/// Scan one file, appending sites and edges to `graph`.
pub fn scan_file(file: &SourceFile, skip_tests: bool, graph: &mut LockGraph) {
    let toks = &file.lexed.toks;
    let mut held: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                held.retain(|g| g.depth <= depth);
            }
            ";" => held.retain(|g| !(g.name.is_none() && g.depth == depth)),
            "drop"
                // `drop(guard)` ends a named guard early.
                if toks.get(i + 1).is_some_and(|t| t.text == "(") => {
                    if let Some(arg) = toks.get(i + 2) {
                        held.retain(|g| g.name.as_deref() != Some(arg.text.as_str()));
                    }
                }
            "lock" => {
                let is_call = i > 0
                    && toks[i - 1].text == "."
                    && toks.get(i + 1).is_some_and(|t| t.text == "(")
                    && toks.get(i + 2).is_some_and(|t| t.text == ")");
                if is_call && !(skip_tests && file.lexed.in_test_region(t.line)) {
                    let lock = receiver_name(file, i - 1).unwrap_or_else(|| "<expr>".into());
                    let site = LockSite { lock: lock.clone(), file: file.rel.clone(), line: t.line };
                    for g in &held {
                        graph.edges.push(LockEdge {
                            held: g.lock.clone(),
                            acquired: lock.clone(),
                            site: site.clone(),
                        });
                    }
                    if !graph.sites.iter().any(|s| s.file == site.file && s.line == site.line) {
                        graph.sites.push(site);
                    }
                    // `let decision = m.lock().decide(…);` binds the *result*
                    // of `decide`, not the guard — the guard is a statement
                    // temporary. Only a statement that ends right after the
                    // `.lock()` call (modulo `.unwrap()`/`.expect(…)`/`?`)
                    // binds the guard itself.
                    let name = if guard_is_statement_value(file, i) {
                        let_target(file, i)
                    } else {
                        None
                    };
                    held.push(Guard { lock, name, depth });
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Walk back from the closing token at `i` (`)` or `]`) to its matching
/// opener, returning the opener's index.
fn balance_back(toks: &[crate::lexer::Tok], mut i: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0usize;
    loop {
        let t = toks[i].text.as_str();
        if t == close {
            depth += 1;
        } else if t == open {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        if i == 0 {
            return None;
        }
        i -= 1;
    }
}

/// Walk the postfix chain left of the `.` at `dot` and return the last
/// plain field or binding: method calls (`.as_ref()`, `.expect(…)`),
/// `?`, and index expressions are skipped until a non-call ident appears
/// (`self.shared.state.lock()` → `state`;
/// `self.fault_state.as_ref().unwrap().lock()` → `fault_state`).
fn receiver_name(file: &SourceFile, dot: usize) -> Option<String> {
    let toks = &file.lexed.toks;
    let mut i = dot; // points at '.'
    loop {
        if i == 0 {
            return None;
        }
        i -= 1; // token left of the '.'
        // Skip trailing `?`, call argument lists, and index expressions.
        loop {
            match toks[i].text.as_str() {
                "?" => {
                    if i == 0 {
                        return None;
                    }
                    i -= 1;
                }
                ")" => {
                    i = balance_back(toks, i, "(", ")")?;
                    if i == 0 {
                        return None;
                    }
                    i -= 1;
                }
                "]" => {
                    i = balance_back(toks, i, "[", "]")?;
                    if i == 0 {
                        return None;
                    }
                    i -= 1;
                }
                _ => break,
            }
        }
        if toks[i].kind != TokKind::Ident {
            return None;
        }
        let is_call = toks.get(i + 1).is_some_and(|t| t.text == "(");
        if !is_call {
            return Some(toks[i].text.clone());
        }
        // A method name: the chain continues across the '.' to its left.
        if i == 0 || toks[i - 1].text != "." {
            return None;
        }
        i -= 1; // at the '.'; the outer loop steps left of it
    }
}

/// True when the `.lock()` call at token `at` is the final value of its
/// statement, i.e. the guard itself is what a surrounding `let` binds.
/// `.unwrap()` / `.expect(…)` wrappers and `?` forward the guard; any
/// other postfix (`.decide(…)`, `.field`) consumes it within the
/// statement.
fn guard_is_statement_value(file: &SourceFile, at: usize) -> bool {
    let toks = &file.lexed.toks;
    let mut j = at + 3; // past `lock ( )`
    loop {
        match toks.get(j).map(|t| t.text.as_str()) {
            Some(";") => return true,
            Some("?") => j += 1,
            Some(".") => {
                let forwards = toks
                    .get(j + 1)
                    .is_some_and(|t| t.text == "unwrap" || t.text == "expect")
                    && toks.get(j + 2).is_some_and(|t| t.text == "(");
                if !forwards {
                    return false;
                }
                let mut d = 0usize;
                let mut k = j + 2;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "(" => d += 1,
                        ")" => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                j = k + 1;
            }
            _ => return false,
        }
    }
}

/// If the statement containing token `at` is a `let` binding, return the
/// bound name (skipping `mut`).
fn let_target(file: &SourceFile, at: usize) -> Option<String> {
    let toks = &file.lexed.toks;
    let mut i = at;
    while i > 0 {
        let t = &toks[i].text;
        if t == ";" || t == "{" || t == "}" {
            return None;
        }
        if t == "let" {
            let mut k = i + 1;
            if toks.get(k).is_some_and(|t| t.text == "mut") {
                k += 1;
            }
            let b = toks.get(k)?;
            return (b.kind == TokKind::Ident).then(|| b.text.clone());
        }
        i -= 1;
    }
    None
}

/// Detect cycles in the edge set; returns findings (one per cycle) and
/// records the cycles on the graph.
pub fn cycle_findings(graph: &mut LockGraph, why: &str) -> Vec<Finding> {
    let mut nodes: Vec<String> = Vec::new();
    for e in &graph.edges {
        for n in [&e.held, &e.acquired] {
            if !nodes.contains(n) {
                nodes.push(n.clone());
            }
        }
    }
    let mut cycles: Vec<Vec<String>> = Vec::new();
    // DFS from each node; report one cycle per distinct start node.
    for start in &nodes {
        let mut stack = vec![(start.clone(), vec![start.clone()])];
        let mut seen: Vec<String> = Vec::new();
        while let Some((node, path)) = stack.pop() {
            for e in graph.edges.iter().filter(|e| e.held == node) {
                if e.acquired == *start {
                    let mut cyc = path.clone();
                    cyc.push(start.clone());
                    // Canonical form: only keep the rotation that starts
                    // at the lexicographically smallest lock, so each
                    // cycle is reported once.
                    if cyc[..cyc.len() - 1].iter().min() == Some(start)
                        && !cycles.contains(&cyc)
                    {
                        cycles.push(cyc);
                    }
                } else if !seen.contains(&e.acquired) && !path.contains(&e.acquired) {
                    seen.push(e.acquired.clone());
                    let mut p = path.clone();
                    p.push(e.acquired.clone());
                    stack.push((e.acquired.clone(), p));
                }
            }
        }
    }
    let mut out = Vec::new();
    for cyc in &cycles {
        let witness = graph
            .edges
            .iter()
            .find(|e| e.held == cyc[0] && cyc.get(1).is_some_and(|n| *n == e.acquired));
        let (file, line) = witness.map_or((String::from("?"), 0), |e| {
            (e.site.file.clone(), e.site.line)
        });
        out.push(Finding {
            rule: "lock-order".into(),
            file,
            line,
            col: 1,
            excerpt: String::new(),
            why: why.to_string(),
            note: format!("lock-order cycle: {}", cyc.join(" -> ")),
        });
    }
    graph.cycles = cycles;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn file(src: &str) -> SourceFile {
        SourceFile { rel: "t.rs".into(), lines: src.lines().map(String::from).collect(), lexed: lex(src) }
    }

    fn graph_of(src: &str) -> LockGraph {
        let mut g = LockGraph::default();
        scan_file(&file(src), true, &mut g);
        g
    }

    #[test]
    fn nested_let_guards_create_an_edge() {
        let g = graph_of(
            "fn f(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n}\n",
        );
        assert_eq!(g.edges.len(), 1);
        assert_eq!((g.edges[0].held.as_str(), g.edges[0].acquired.as_str()), ("alpha", "beta"));
    }

    #[test]
    fn sequential_temporaries_do_not_nest() {
        let g = graph_of("fn f(&self) {\n    self.alpha.lock().push(1);\n    self.beta.lock().push(2);\n}\n");
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn drop_ends_a_guard() {
        let g = graph_of(
            "fn f(&self) {\n    let a = self.alpha.lock();\n    drop(a);\n    let b = self.beta.lock();\n}\n",
        );
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn block_close_ends_a_guard() {
        let g = graph_of(
            "fn f(&self) {\n    {\n        let a = self.alpha.lock();\n    }\n    let b = self.beta.lock();\n}\n",
        );
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn method_chain_receivers_resolve_to_the_field() {
        let g = graph_of("fn f(&self) {\n    let s = self.fault_state.as_ref().unwrap().lock();\n}\n");
        assert_eq!(g.sites.len(), 1);
        assert_eq!(g.sites[0].lock, "fault_state");
    }

    #[test]
    fn let_of_a_guard_method_result_is_a_temporary() {
        // Binds the decision, not the guard: no edge to the later lock.
        let g = graph_of(
            "fn f(&self) {\n    let d = self.alpha.lock().decide(1, true);\n    \
             let b = self.alpha.lock();\n}\n",
        );
        assert!(g.edges.is_empty(), "{:?}", g.edges);
        assert_eq!(g.sites.len(), 2);
    }

    #[test]
    fn unwrap_wrapped_guard_still_binds() {
        let g = graph_of(
            "fn f(&self) {\n    let a = self.alpha.lock().unwrap();\n    \
             let b = self.beta.lock();\n}\n",
        );
        assert_eq!(g.edges.len(), 1);
        assert_eq!((g.edges[0].held.as_str(), g.edges[0].acquired.as_str()), ("alpha", "beta"));
    }

    #[test]
    fn opposite_orders_are_a_cycle() {
        let src = "fn f(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n}\n\
                   fn g(&self) {\n    let b = self.beta.lock();\n    let a = self.alpha.lock();\n}\n";
        let mut g = graph_of(src);
        let findings = cycle_findings(&mut g, "why");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].note.contains("alpha -> beta -> alpha"), "{}", findings[0].note);
    }

    #[test]
    fn double_acquisition_is_a_self_cycle() {
        let src = "fn f(&self) {\n    let a = self.alpha.lock();\n    let b = self.alpha.lock();\n}\n";
        let mut g = graph_of(src);
        let findings = cycle_findings(&mut g, "why");
        assert_eq!(findings.len(), 1);
        assert!(findings[0].note.contains("alpha -> alpha"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "fn f(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n}\n\
                   fn g(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n}\n";
        let mut g = graph_of(src);
        assert!(cycle_findings(&mut g, "why").is_empty());
        assert_eq!(g.edges.len(), 2);
    }
}
