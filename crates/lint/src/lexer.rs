//! A small Rust lexer for static analysis.
//!
//! This is not a compiler front end: it produces a flat token stream with
//! source spans, which is exactly what the rule layer needs to match
//! forbidden constructs *in code* while ignoring the same spelling inside
//! comments, string literals, and raw strings — the false-hit classes of
//! the old substring grep. Three properties matter:
//!
//! * **Comments and strings are stripped from the token stream** but not
//!   discarded: comments are collected separately (allow-markers live in
//!   them) and string/char literals become opaque literal tokens so rules
//!   can still reason about position without matching their contents.
//! * **Every token carries `line`/`col`** (1-based), so findings point at
//!   clickable locations.
//! * **`#[cfg(test)]` regions are delimited.** Rules that only guard
//!   production behavior (panic paths, iteration order) skip them; rules
//!   that guard the determinism of the tree as a whole (clocks, RNG)
//!   do not.
//!
//! The lexer is intentionally forgiving: unterminated literals lex to the
//! end of file rather than erroring, because an audit must never be the
//! thing that fails to parse the tree rustc already accepted.

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Punctuation. Multi-character `::` is glued into one token; all
    /// other punctuation is one character per token.
    Punct,
    /// String, raw-string, byte-string, or char literal (contents opaque).
    Literal,
    /// Numeric literal.
    Number,
    /// A lifetime (`'a`). Kept distinct so `'a` never looks like a char.
    Lifetime,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// The token text (empty for [`TokKind::Literal`] — contents are
    /// deliberately opaque so rules cannot match inside strings).
    pub text: String,
    /// What it is.
    pub kind: TokKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
}

/// One comment, kept for allow-marker parsing.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment body (without the `//` / `/*` introducer).
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// A lexed source file.
#[derive(Debug, Clone)]
pub struct Lexed {
    /// Code tokens, in source order.
    pub toks: Vec<Tok>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
    /// Inclusive line ranges covered by `#[cfg(test)]` items.
    pub test_regions: Vec<(u32, u32)>,
}

impl Lexed {
    /// Whether `line` falls inside a `#[cfg(test)]` item.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions.iter().any(|&(a, b)| line >= a && line <= b)
    }
}

/// Lex `src` into tokens, comments, and test regions.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);
        // Line comment (also covers doc comments `///` and `//!`).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i + 2;
            while i < chars.len() && chars[i] != '\n' {
                bump!();
            }
            let text: String = chars[start..i].iter().collect();
            comments.push(Comment { text, line: tline });
            continue;
        }
        // Block comment, possibly nested (Rust allows it).
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = i + 2;
            bump!();
            bump!();
            let mut depth = 1usize;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    bump!();
                    bump!();
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    bump!();
                    bump!();
                } else {
                    bump!();
                }
            }
            let end = i.saturating_sub(2).max(start);
            let text: String = chars[start..end].iter().collect();
            comments.push(Comment { text, line: tline });
            continue;
        }
        // Raw strings: r"...", r#"..."#, br#"..."# (any # count).
        if (c == 'r' || c == 'b') && is_raw_string_start(&chars, i) {
            let mut j = i;
            if chars[j] == 'b' {
                j += 1;
            }
            j += 1; // past 'r'
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            // Consume up to and including the opening quote.
            while i <= j {
                bump!();
            }
            // Scan for `"` followed by `hashes` `#`s.
            'raw: while i < chars.len() {
                if chars[i] == '"' {
                    let mut k = 1usize;
                    let mut ok = true;
                    while k <= hashes {
                        if chars.get(i + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                        k += 1;
                    }
                    if ok {
                        for _ in 0..=hashes {
                            bump!();
                        }
                        break 'raw;
                    }
                }
                bump!();
            }
            toks.push(Tok { text: String::new(), kind: TokKind::Literal, line: tline, col: tcol });
            continue;
        }
        // Plain and byte strings.
        if c == '"' || (c == 'b' && chars.get(i + 1) == Some(&'"')) {
            if c == 'b' {
                bump!();
            }
            bump!(); // opening quote
            while i < chars.len() && chars[i] != '"' {
                if chars[i] == '\\' && i + 1 < chars.len() {
                    bump!();
                }
                bump!();
            }
            if i < chars.len() {
                bump!(); // closing quote
            }
            toks.push(Tok { text: String::new(), kind: TokKind::Literal, line: tline, col: tcol });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let is_lifetime = match next {
                Some(n) if n == '_' || n.is_alphabetic() => {
                    // 'a' is a char, 'a (no closing quote) is a lifetime.
                    // Find the end of the ident run and check for a quote.
                    let mut j = i + 1;
                    while chars.get(j).is_some_and(|ch| ch.is_alphanumeric() || *ch == '_') {
                        j += 1;
                    }
                    chars.get(j) != Some(&'\'')
                }
                _ => false,
            };
            if is_lifetime {
                bump!(); // the quote
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    bump!();
                }
                let text: String = chars[start..i].iter().collect();
                toks.push(Tok { text, kind: TokKind::Lifetime, line: tline, col: tcol });
            } else {
                bump!(); // opening quote
                while i < chars.len() && chars[i] != '\'' {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        bump!();
                    }
                    bump!();
                }
                if i < chars.len() {
                    bump!(); // closing quote
                }
                toks.push(Tok {
                    text: String::new(),
                    kind: TokKind::Literal,
                    line: tline,
                    col: tcol,
                });
            }
            continue;
        }
        // Identifiers and keywords.
        if c == '_' || c.is_alphabetic() {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                bump!();
            }
            let text: String = chars[start..i].iter().collect();
            toks.push(Tok { text, kind: TokKind::Ident, line: tline, col: tcol });
            continue;
        }
        // Numbers (coarse: `1.5` lexes as Number, Punct('.'), Number —
        // no rule needs numeric values, only that they are not idents).
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                bump!();
            }
            let text: String = chars[start..i].iter().collect();
            toks.push(Tok { text, kind: TokKind::Number, line: tline, col: tcol });
            continue;
        }
        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }
        // Punctuation; glue `::` (the only multi-char operator rules
        // match on paths).
        if c == ':' && chars.get(i + 1) == Some(&':') {
            bump!();
            bump!();
            toks.push(Tok { text: "::".into(), kind: TokKind::Punct, line: tline, col: tcol });
            continue;
        }
        bump!();
        toks.push(Tok { text: c.to_string(), kind: TokKind::Punct, line: tline, col: tcol });
    }

    let test_regions = find_test_regions(&toks);
    Lexed { toks, comments, test_regions }
}

fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) != Some(&'r') {
            return false;
        }
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    // Must not be the start of an identifier like `raw` or `brr`.
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Find line ranges of items annotated `#[cfg(test)]`: from the attribute
/// to the closing brace of the item body (or the terminating `;` for
/// brace-less items).
fn find_test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i + 6 < toks.len() {
        let is_attr = toks[i].text == "#"
            && toks[i + 1].text == "["
            && toks[i + 2].text == "cfg"
            && toks[i + 3].text == "("
            && toks[i + 4].text == "test"
            && toks[i + 5].text == ")"
            && toks[i + 6].text == "]";
        if !is_attr {
            i += 1;
            continue;
        }
        let start_line = toks[i].line;
        let mut j = i + 7;
        // Skip any further attributes on the same item.
        while j + 1 < toks.len() && toks[j].text == "#" && toks[j + 1].text == "[" {
            let mut depth = 0usize;
            j += 1;
            while j < toks.len() {
                if toks[j].text == "[" {
                    depth += 1;
                } else if toks[j].text == "]" {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Scan to the item body: the first `{` begins it; a `;` first
        // means a brace-less item (e.g. `#[cfg(test)] use ...;`).
        let mut end_line = start_line;
        while j < toks.len() {
            if toks[j].text == ";" {
                end_line = toks[j].line;
                j += 1;
                break;
            }
            if toks[j].text == "{" {
                let mut depth = 0usize;
                while j < toks.len() {
                    if toks[j].text == "{" {
                        depth += 1;
                    } else if toks[j].text == "}" {
                        depth -= 1;
                        if depth == 0 {
                            end_line = toks[j].line;
                            break;
                        }
                    }
                    j += 1;
                }
                j += 1;
                break;
            }
            j += 1;
        }
        regions.push((start_line, end_line));
        i = j.max(i + 1);
    }
    regions
}

/// Positions in `toks` where the texts of `needle` appear consecutively.
pub fn find_seq(toks: &[Tok], needle: &[&str]) -> Vec<usize> {
    if needle.is_empty() || toks.len() < needle.len() {
        return Vec::new();
    }
    let mut hits = Vec::new();
    'outer: for i in 0..=(toks.len() - needle.len()) {
        for (k, want) in needle.iter().enumerate() {
            if toks[i + k].text != *want {
                continue 'outer;
            }
        }
        hits.push(i);
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_do_not_tokenize() {
        let src = r##"
// Instant::now in a comment
/* SystemTime in a block /* nested */ comment */
let s = "Instant::now inside a string";
let r = r#"SystemTime raw"#;
let t = Instant::now();
"##;
        let lx = lex(src);
        let hits = find_seq(&lx.toks, &["Instant", "::", "now"]);
        assert_eq!(hits.len(), 1, "only the code use should match");
        assert_eq!(lx.toks[hits[0]].line, 6);
        assert!(find_seq(&lx.toks, &["SystemTime"]).is_empty());
        assert_eq!(lx.comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lx = lex("fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x';");
        assert_eq!(lx.toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(), 3);
        assert_eq!(lx.toks.iter().filter(|t| t.kind == TokKind::Literal).count(), 1);
    }

    #[test]
    fn cfg_test_regions_are_delimited() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let lx = lex(src);
        assert_eq!(lx.test_regions, vec![(2, 5)]);
        assert!(lx.in_test_region(4));
        assert!(!lx.in_test_region(1));
        assert!(!lx.in_test_region(6));
    }

    #[test]
    fn cfg_test_skips_additional_attributes() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests {\n    fn t() {}\n}\n";
        let lx = lex(src);
        assert_eq!(lx.test_regions, vec![(1, 5)]);
    }

    #[test]
    fn spans_are_one_based_and_accurate() {
        let lx = lex("let x = 1;\n  foo();\n");
        let foo = lx.toks.iter().find(|t| t.text == "foo").unwrap();
        assert_eq!((foo.line, foo.col), (2, 3));
    }

    #[test]
    fn double_colon_is_one_token() {
        let lx = lex("a::b:c");
        let texts: Vec<&str> = lx.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["a", "::", "b", ":", "c"]);
    }
}
