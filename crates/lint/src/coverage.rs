//! Event-vocabulary coverage: every `EventKind` variant must be alive on
//! all four surfaces of the observability pipeline.
//!
//! The vocabulary is parsed from the `EventKind` enum in
//! `crates/cellsim/src/event.rs`. For each variant the analysis then
//! requires a non-test `EventKind::<Variant>` reference in each surface:
//!
//! | column   | surface                                              |
//! |----------|------------------------------------------------------|
//! | sim      | `crates/cellsim/src` (minus `event.rs` itself) plus  |
//! |          | `crates/obs/src/live.rs` — the health detector is    |
//! |          | the designated emitter of `Health` on both engines   |
//! | native   | `crates/obs/src/native.rs` (the trace mapping) plus  |
//! |          | `src/serve.rs` and `crates/obs/src/live.rs` (the     |
//! |          | live plane that embeds `Health` on native runs)      |
//! | checker  | `crates/analysis/src`                                |
//! | obs      | `crates/obs/src` minus `native.rs` (folds/exports)   |
//!
//! A hole means an event class that can be recorded but silently bypasses
//! part of the pipeline — exactly how a new variant added for a future
//! roadmap item would otherwise dodge the checker.

use crate::lexer::find_seq;
use crate::{Finding, SourceFile};

/// The four pipeline surfaces, in matrix column order.
pub const COLUMNS: [&str; 4] = ["sim", "native", "checker", "obs"];

/// Coverage of one variant across the four columns.
#[derive(Debug, Clone)]
pub struct VariantCoverage {
    /// Variant name.
    pub variant: String,
    /// Per-column hit counts, indexed like [`COLUMNS`].
    pub counts: [usize; 4],
}

impl VariantCoverage {
    /// Columns with zero references.
    pub fn holes(&self) -> Vec<&'static str> {
        COLUMNS
            .iter()
            .zip(self.counts.iter())
            .filter(|(_, c)| **c == 0)
            .map(|(n, _)| *n)
            .collect()
    }
}

/// The full coverage matrix.
#[derive(Debug, Clone, Default)]
pub struct CoverageMatrix {
    /// One row per variant, in declaration order.
    pub rows: Vec<VariantCoverage>,
}

impl CoverageMatrix {
    /// Total number of empty cells.
    pub fn hole_count(&self) -> usize {
        self.rows.iter().map(|r| r.holes().len()).sum()
    }
}

/// Parse the variant names of `pub enum EventKind { … }` from the lexed
/// event module, in declaration order.
pub fn parse_variants(event_file: &SourceFile) -> Vec<String> {
    let toks = &event_file.lexed.toks;
    let Some(start) = find_seq(toks, &["enum", "EventKind", "{"]).first().copied() else {
        return Vec::new();
    };
    let mut variants = Vec::new();
    let mut depth = 0usize;
    let mut i = start + 2; // at '{'
    let mut expect_variant = false;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "{" => {
                depth += 1;
                if depth == 1 {
                    expect_variant = true;
                }
                // Entering a variant's field block: the next variant comes
                // after it closes.
                if depth == 2 {
                    expect_variant = false;
                }
            }
            "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
                if depth == 1 {
                    expect_variant = false; // wait for the comma
                }
            }
            "," if depth == 1 => expect_variant = true,
            "#" if depth == 1 => {
                // Skip attribute groups between variants.
                if toks.get(i + 1).is_some_and(|t| t.text == "[") {
                    let mut d = 0usize;
                    i += 1;
                    while i < toks.len() {
                        match toks[i].text.as_str() {
                            "[" => d += 1,
                            "]" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                }
            }
            text => {
                if depth == 1 && expect_variant && !text.is_empty() {
                    if text.chars().next().is_some_and(char::is_uppercase) {
                        variants.push(text.to_string());
                    }
                    expect_variant = false;
                }
            }
        }
        i += 1;
    }
    variants
}

/// Count non-test `EventKind::<variant>` references in `files`.
fn count_refs(variant: &str, files: &[&SourceFile]) -> usize {
    let mut n = 0;
    for f in files {
        for i in find_seq(&f.lexed.toks, &["EventKind", "::", variant]) {
            if !f.lexed.in_test_region(f.lexed.toks[i].line) {
                n += 1;
            }
        }
    }
    n
}

/// Build the coverage matrix and the findings for its holes.
///
/// `surfaces` holds the four file sets in [`COLUMNS`] order.
pub fn analyze(
    variants: &[String],
    surfaces: &[Vec<&SourceFile>; 4],
    why: &str,
    event_file_rel: &str,
) -> (CoverageMatrix, Vec<Finding>) {
    let mut matrix = CoverageMatrix::default();
    let mut findings = Vec::new();
    for v in variants {
        let counts = [
            count_refs(v, &surfaces[0]),
            count_refs(v, &surfaces[1]),
            count_refs(v, &surfaces[2]),
            count_refs(v, &surfaces[3]),
        ];
        let row = VariantCoverage { variant: v.clone(), counts };
        let holes = row.holes();
        if !holes.is_empty() {
            findings.push(Finding {
                rule: "event-coverage".into(),
                file: event_file_rel.to_string(),
                line: 0,
                col: 0,
                excerpt: String::new(),
                why: why.to_string(),
                note: format!(
                    "EventKind::{v} has no non-test reference on surface(s): {}",
                    holes.join(", ")
                ),
            });
        }
        matrix.rows.push(row);
    }
    (matrix, findings)
}

/// Render the matrix as an aligned text table.
pub fn render(matrix: &CoverageMatrix) -> String {
    let name_w = matrix.rows.iter().map(|r| r.variant.len()).max().unwrap_or(7).max(7);
    let mut out = String::new();
    out.push_str(&format!(
        "  {:name_w$}  {:>5}  {:>6}  {:>7}  {:>5}\n",
        "variant", "sim", "native", "checker", "obs"
    ));
    for r in &matrix.rows {
        out.push_str(&format!(
            "  {:name_w$}  {:>5}  {:>6}  {:>7}  {:>5}\n",
            r.variant,
            cell(r.counts[0]),
            cell(r.counts[1]),
            cell(r.counts[2]),
            cell(r.counts[3]),
        ));
    }
    out
}

fn cell(n: usize) -> String {
    if n == 0 {
        "HOLE".into()
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile { rel: rel.into(), lines: src.lines().map(String::from).collect(), lexed: lex(src) }
    }

    #[test]
    fn variants_parse_in_order_with_fields_and_attrs() {
        let f = file(
            "event.rs",
            "pub enum EventKind {\n\
                 Offload { proc: usize, task: u64 },\n\
                 #[allow(dead_code)]\n\
                 Plain,\n\
                 Dma { spe: usize, element_bytes: Vec<usize> },\n\
             }\n",
        );
        assert_eq!(parse_variants(&f), vec!["Offload", "Plain", "Dma"]);
    }

    #[test]
    fn holes_are_reported_per_surface() {
        let ev = file("event.rs", "pub enum EventKind { A, B }\n");
        let sim = file("m.rs", "emit(EventKind::A); emit(EventKind::B);\n");
        let native = file("n.rs", "emit(EventKind::A);\n");
        let checker = file("c.rs", "match k { EventKind::A => 1, EventKind::B => 2 }\n");
        let obs = file("o.rs", "match k { EventKind::A => 1, EventKind::B => 2 }\n");
        let variants = parse_variants(&ev);
        let surfaces = [vec![&sim], vec![&native], vec![&checker], vec![&obs]];
        let (matrix, findings) = analyze(&variants, &surfaces, "why", "event.rs");
        assert_eq!(matrix.hole_count(), 1);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].note.contains("EventKind::B"));
        assert!(findings[0].note.contains("native"));
    }

    #[test]
    fn test_region_references_do_not_count() {
        let ev = file("event.rs", "pub enum EventKind { A }\n");
        let sim = file("m.rs", "#[cfg(test)]\nmod t {\n    fn f() { emit(EventKind::A); }\n}\n");
        let surfaces: [Vec<&SourceFile>; 4] =
            [vec![&sim], vec![&sim], vec![&sim], vec![&sim]];
        let (matrix, findings) = analyze(&parse_variants(&ev), &surfaces, "why", "event.rs");
        assert_eq!(matrix.hole_count(), 4);
        assert_eq!(findings.len(), 1);
    }
}
