//! The rule catalog and the token-level rule implementations.
//!
//! Three rule families live here:
//!
//! * **Needle rules** — forbidden token paths (`Instant::now`,
//!   `channel::unbounded`, `thread_rng`, …) scoped to directory roots.
//!   These are the old substring grep's rules re-based on the lexer, so a
//!   spelling inside a comment or string literal no longer counts, and
//!   `tests/` + `benches/` trees are now inside the scope.
//! * **`unordered-iter`** — iteration over `HashMap`/`HashSet` bindings in
//!   digest/checker/obs-export paths. Iteration order of hashed
//!   collections is randomized per instance; any fold that feeds a
//!   serialized report or a replay digest must iterate a `BTreeMap` (or
//!   sort first). Lookups (`get`/`insert`/`entry`/…) are fine.
//! * **`panic-path`** — `unwrap`/`expect`/`panic!` in the fault-recovery
//!   ladder and the serve-mode request path, where a panic turns graceful
//!   degradation into an outage. `#[cfg(test)]` regions are exempt.

use crate::lexer::{find_seq, Tok, TokKind};
use crate::{Finding, SourceFile};

/// Static description of one rule (name, scope, rationale, budget).
pub struct RuleMeta {
    /// Rule slug, as used by `xtask-allow:` markers.
    pub name: &'static str,
    /// Repo-relative roots the rule scans (dirs or single files).
    pub roots: &'static [&'static str],
    /// One-line rationale, echoed in findings and the JSON report.
    pub why: &'static str,
    /// Maximum justified `xtask-allow` exemptions before the audit fails.
    pub exemption_budget: usize,
    /// Whether `#[cfg(test)]` regions are skipped.
    pub skips_tests: bool,
}

/// The full catalog, in report order.
pub const CATALOG: &[RuleMeta] = &[
    RuleMeta {
        name: "wall-clock",
        roots: &["crates/des", "crates/cellsim"],
        why: "simulation code must use virtual SimTime, never host clocks",
        exemption_budget: 0,
        skips_tests: false,
    },
    RuleMeta {
        name: "unbounded-channel",
        roots: &["crates/mgps-runtime"],
        why: "native runtime channels must carry an explicit capacity bound",
        exemption_budget: 0,
        skips_tests: false,
    },
    RuleMeta {
        name: "trace-clock",
        roots: &["crates/mgps-runtime/src/tracing.rs"],
        why: "the tracing hot path must read time only through the designated monotonic TraceClock",
        exemption_budget: 3,
        skips_tests: false,
    },
    RuleMeta {
        name: "unordered-iter",
        roots: &[
            "crates/analysis/src",
            "crates/obs/src",
            "crates/cellsim/src/event.rs",
            "src/serve.rs",
        ],
        why: "HashMap/HashSet iteration order is randomized; digest, checker, and obs-export \
              paths must iterate ordered collections or replay digests diverge between runs",
        exemption_budget: 0,
        skips_tests: true,
    },
    RuleMeta {
        name: "rng-discipline",
        roots: &["crates", "src", "tests", "benches", "examples", "xtask"],
        why: "entropy-seeded RNGs (thread_rng/from_entropy) make runs irreproducible; \
              every RNG must be constructed from an explicit seed",
        exemption_budget: 0,
        skips_tests: false,
    },
    RuleMeta {
        name: "lock-order",
        roots: &["crates/mgps-runtime/src"],
        why: "a cycle in the lock-acquisition order graph is a potential deadlock the loom \
              models can only sample; the static graph must stay acyclic",
        exemption_budget: 0,
        skips_tests: true,
    },
    RuleMeta {
        name: "event-coverage",
        roots: &["crates/cellsim/src/event.rs"],
        why: "every EventKind variant must be emitted by the sim machine and the native \
              tracing path, matched by a checker arm, and consumed by an obs fold — a hole \
              means an event class the audit pipeline silently ignores",
        exemption_budget: 0,
        skips_tests: true,
    },
    RuleMeta {
        name: "panic-path",
        roots: &[
            "crates/mgps-runtime/src/faults.rs",
            "crates/mgps-runtime/src/native/adaptive.rs",
            "src/serve.rs",
        ],
        why: "unwrap/expect/panic! in the fault-recovery ladder or a serve request handler \
              converts graceful degradation into an outage",
        exemption_budget: 1,
        skips_tests: true,
    },
];

/// Look up a rule's metadata by name.
pub fn meta(name: &str) -> Option<&'static RuleMeta> {
    CATALOG.iter().find(|m| m.name == name)
}

/// Token needles for the needle-family rules (empty for the analyses that
/// have dedicated engines).
fn needles(rule: &str) -> &'static [&'static [&'static str]] {
    const CLOCKS: &[&[&str]] =
        &[&["std", "::", "time", "::", "Instant"], &["Instant", "::", "now"], &["SystemTime"]];
    const CHANNELS: &[&[&str]] =
        &[&["channel", "::", "unbounded"], &["mpsc", "::", "channel", "("], &["unbounded", "(", ")"]];
    const RNG: &[&[&str]] = &[&["thread_rng"], &["from_entropy"]];
    const PANICS: &[&[&str]] =
        &[&[".", "unwrap", "("], &[".", "expect", "("], &["panic", "!"], &["unreachable", "!"]];
    match rule {
        "wall-clock" | "trace-clock" => CLOCKS,
        "unbounded-channel" => CHANNELS,
        "rng-discipline" => RNG,
        "panic-path" => PANICS,
        _ => &[],
    }
}

fn finding(rule: &RuleMeta, file: &SourceFile, tok: &Tok, note: &str) -> Finding {
    Finding {
        rule: rule.name.to_string(),
        file: file.rel.clone(),
        line: tok.line,
        col: tok.col,
        excerpt: file.line_text(tok.line),
        why: rule.why.to_string(),
        note: note.to_string(),
    }
}

/// Run one needle-family rule over a lexed file.
pub fn run_needle_rule(rule: &RuleMeta, file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for needle in needles(rule.name) {
        for i in find_seq(&file.lexed.toks, needle) {
            let tok = &file.lexed.toks[i];
            if rule.skips_tests && file.lexed.in_test_region(tok.line) {
                continue;
            }
            out.push(finding(rule, file, tok, &format!("forbidden `{}`", needle.join(""))));
        }
    }
    out
}

/// Iterator-like methods whose call on a hashed collection leaks order.
const ORDER_LEAKS: &[&str] =
    &["iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "drain", "into_keys", "into_values"];

/// Run the `unordered-iter` analysis over a lexed file.
///
/// Pass 1 collects names bound to hashed collections, from type
/// ascriptions (`name: HashMap<…>`, struct fields included) and
/// initializers (`let name = HashMap::new()` / `with_capacity` /
/// `from`). Pass 2 flags `name.iter()`-family calls and
/// `for … in [&[mut]] name {` loops over those names. The analysis is
/// per-file and name-based — good enough for an audit that runs on every
/// commit, and every flagged site is a place a `BTreeMap` is the honest
/// fix.
pub fn run_unordered_iter(rule: &RuleMeta, file: &SourceFile) -> Vec<Finding> {
    let toks = &file.lexed.toks;
    let mut hashed: Vec<String> = Vec::new();
    for ty in ["HashMap", "HashSet"] {
        for i in find_seq(toks, &[ty]) {
            if i == 0 {
                continue;
            }
            let prev = &toks[i - 1];
            // `use std::collections::HashMap` — a use path, not a binding.
            if prev.text == "::" {
                // `= HashMap::new()` style initializer: walk back past the
                // path head to the `=`.
                continue;
            }
            let binder = if prev.text == ":" || prev.text == "=" {
                toks.get(i.wrapping_sub(2))
            } else {
                None
            };
            if let Some(b) = binder {
                if b.kind == TokKind::Ident && !hashed.contains(&b.text) {
                    hashed.push(b.text.clone());
                }
            }
        }
        // Initializers where the binder sits before a path: `let m =
        // HashMap::new()` has `=` directly before `HashMap`, which the
        // ascription arm above already caught (prev == "="). Turbofish
        // collects (`collect::<HashMap<_, _>>()`) have `<` before the
        // type; bind them to the let target if the statement has one.
        for i in find_seq(toks, &["<", ty]) {
            let mut j = i;
            // Walk back to the start of the statement.
            while j > 0 && toks[j].text != ";" && toks[j].text != "{" && toks[j].text != "let" {
                j -= 1;
            }
            if toks[j].text == "let" {
                let mut k = j + 1;
                if toks.get(k).is_some_and(|t| t.text == "mut") {
                    k += 1;
                }
                if let Some(b) = toks.get(k) {
                    if b.kind == TokKind::Ident && !hashed.contains(&b.text) {
                        hashed.push(b.text.clone());
                    }
                }
            }
        }
    }
    let mut out = Vec::new();
    for name in &hashed {
        for leak in ORDER_LEAKS {
            for i in find_seq(toks, &[name, ".", leak, "("]) {
                let tok = &toks[i];
                if rule.skips_tests && file.lexed.in_test_region(tok.line) {
                    continue;
                }
                out.push(finding(
                    rule,
                    file,
                    tok,
                    &format!("`{name}` is a hashed collection; `.{leak}()` leaks its order"),
                ));
            }
        }
        for i in find_seq(toks, &["in", name]) {
            if toks.get(i + 2).is_some_and(|t| t.text == "{") {
                let tok = &toks[i + 1];
                if rule.skips_tests && file.lexed.in_test_region(tok.line) {
                    continue;
                }
                out.push(finding(
                    rule,
                    file,
                    tok,
                    &format!("`{name}` is a hashed collection; `for … in {name}` leaks its order"),
                ));
            }
        }
        for pat in [["in", "&", name].as_slice(), ["in", "&", "mut", name].as_slice()] {
            for i in find_seq(toks, pat) {
                let at = i + pat.len() - 1;
                if toks.get(at + 1).is_some_and(|t| t.text == "{") {
                    let tok = &toks[at];
                    if rule.skips_tests && file.lexed.in_test_region(tok.line) {
                        continue;
                    }
                    out.push(finding(
                        rule,
                        file,
                        tok,
                        &format!("`{name}` is a hashed collection; `for … in &{name}` leaks its order"),
                    ));
                }
            }
        }
    }
    out.sort_by_key(|f| (f.line, f.col));
    out.dedup_by_key(|f| (f.line, f.col));
    out
}

/// Whether `lexed` contains any hit for `rule` under the *old* substring
/// semantics (plain line `contains`, comments and strings included).
/// Kept for the migration-proof tests: fixtures that pass the token
/// engine but would have failed the grep.
pub fn old_grep_hits(rule: &str, src: &str) -> usize {
    let legacy: &[&str] = match rule {
        "wall-clock" | "trace-clock" => {
            &["std::time::Instant", "Instant::now", "SystemTime", "time::SystemTime"]
        }
        "unbounded-channel" => &["channel::unbounded", "mpsc::channel(", "unbounded()"],
        _ => &[],
    };
    src.lines().filter(|l| legacy.iter().any(|n| l.contains(n))).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile { rel: rel.into(), lines: src.lines().map(String::from).collect(), lexed: lex(src) }
    }

    #[test]
    fn needle_rule_ignores_comments_and_strings() {
        let src = "/// call Instant::now() here\nlet s = \"Instant::now\";\nlet t = Instant::now();\n";
        let f = file("a.rs", src);
        let hits = run_needle_rule(meta("wall-clock").unwrap(), &f);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 3);
        // The same source would have produced three hits under the grep.
        assert_eq!(old_grep_hits("wall-clock", src), 3);
    }

    #[test]
    fn unordered_iter_flags_iteration_not_lookup() {
        let src = "let mut m: HashMap<u64, u64> = HashMap::new();\n\
                   m.insert(1, 2);\n\
                   let v = m.get(&1);\n\
                   for (k, v) in &m {\n    out.push(k);\n}\n\
                   let ks: Vec<_> = m.keys().collect();\n";
        let f = file("b.rs", src);
        let hits = run_unordered_iter(meta("unordered-iter").unwrap(), &f);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert_eq!(hits[0].line, 4);
        assert_eq!(hits[1].line, 7);
    }

    #[test]
    fn unordered_iter_tracks_turbofish_collect() {
        let src = "let grouped = rows.iter().collect::<HashMap<u64, u64>>();\n\
                   for r in grouped.values() {\n    touch(r);\n}\n";
        let f = file("c.rs", src);
        let hits = run_unordered_iter(meta("unordered-iter").unwrap(), &f);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn unordered_iter_allows_btreemap() {
        let src = "let mut m: BTreeMap<u64, u64> = BTreeMap::new();\nfor (k, v) in &m {\n    out.push(k);\n}\n";
        let f = file("d.rs", src);
        assert!(run_unordered_iter(meta("unordered-iter").unwrap(), &f).is_empty());
    }

    #[test]
    fn panic_path_skips_test_regions() {
        let src = "fn prod(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n";
        let f = file("e.rs", src);
        let hits = run_needle_rule(meta("panic-path").unwrap(), &f);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 1);
    }

    #[test]
    fn unwrap_or_default_is_not_unwrap() {
        let f = file("f.rs", "let v = m.get(&1).copied().unwrap_or_default();\n");
        assert!(run_needle_rule(meta("panic-path").unwrap(), &f).is_empty());
    }
}
