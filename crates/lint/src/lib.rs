//! mgps-lint: in-house static analysis for the multigrain workspace.
//!
//! The workspace's experimental claims rest on determinism: replay
//! digests, byte-identical unarmed chaos runs, and a 16-rule runtime
//! checker all assume nothing in the tree leaks nondeterminism. This
//! crate is the static half of that guarantee — a small Rust lexer
//! ([`lexer`]) plus eight rules that *prove* the discipline rather than
//! sampling it:
//!
//! 1. `wall-clock` — no host clocks in simulation code.
//! 2. `unbounded-channel` — every native channel carries a bound.
//! 3. `trace-clock` — one designated clock in the tracing hot path.
//! 4. `unordered-iter` — no hashed-collection iteration in digest,
//!    checker, or obs-export paths.
//! 5. `rng-discipline` — no entropy-seeded RNG constructors anywhere.
//! 6. `lock-order` — the runtime's lock-acquisition graph is acyclic.
//! 7. `event-coverage` — every `EventKind` variant is alive on all four
//!    pipeline surfaces (sim emit, native emit, checker arm, obs fold).
//! 8. `panic-path` — no `unwrap`/`expect`/`panic!` in the fault-recovery
//!    ladder or serve request handlers.
//!
//! A line can opt out with a trailing
//! `// xtask-allow: <rule> — <justification>` marker. The justification
//! is mandatory, every exemption is listed in the report, and each rule
//! carries an **exemption budget**: when the marker count for a rule
//! rises past its budget the audit fails, so exemptions cannot creep in
//! without a budget change review.
//!
//! Drivers: `cargo xtask lint [--json]` and `multigrain audit`.

#![warn(missing_docs)]

pub mod coverage;
pub mod lexer;
pub mod locks;
pub mod rules;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use minijson::Value;

use coverage::CoverageMatrix;
use lexer::Lexed;
use locks::LockGraph;
use rules::CATALOG;

/// One loaded-and-lexed source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path (forward slashes).
    pub rel: String,
    /// Source lines (for excerpts).
    pub lines: Vec<String>,
    /// The lexed token stream.
    pub lexed: Lexed,
}

impl SourceFile {
    /// Trimmed text of 1-based `line` (empty if out of range).
    pub fn line_text(&self, line: u32) -> String {
        self.lines.get(line as usize - 1).map(|l| l.trim().to_string()).unwrap_or_default()
    }
}

/// One FORBIDDEN finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule that fired.
    pub rule: String,
    /// Repo-relative file.
    pub file: String,
    /// 1-based line (0 for file-level findings like coverage holes).
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Trimmed source line.
    pub excerpt: String,
    /// The rule's rationale.
    pub why: String,
    /// What specifically matched.
    pub note: String,
}

/// One justified `xtask-allow` exemption.
#[derive(Debug, Clone)]
pub struct Exemption {
    /// The exempted rule.
    pub rule: String,
    /// Repo-relative file.
    pub file: String,
    /// 1-based line of the marker.
    pub line: u32,
    /// The marker's justification text.
    pub justification: String,
}

/// A parsed `xtask-allow` marker.
#[derive(Debug, Clone)]
struct Marker {
    rule: String,
    line: u32,
    justification: Option<String>,
}

/// The audit result: findings, exemptions, coverage matrix, lock graph.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// FORBIDDEN findings (the audit fails if non-empty).
    pub findings: Vec<Finding>,
    /// Justified exemptions (informational, bounded by budgets).
    pub exemptions: Vec<Exemption>,
    /// Marker count per rule (budget accounting).
    pub marker_counts: BTreeMap<String, usize>,
    /// The event-vocabulary coverage matrix.
    pub coverage: CoverageMatrix,
    /// The runtime's lock-order graph.
    pub lock_graph: LockGraph,
    /// Distinct files lexed.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the tree passed every rule.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The machine-readable report.
    pub fn to_value(&self) -> Value {
        let rules = Value::Array(
            CATALOG
                .iter()
                .map(|m| {
                    let findings = self.findings.iter().filter(|f| f.rule == m.name).count();
                    let exemptions = self.exemptions.iter().filter(|e| e.rule == m.name).count();
                    let markers = self.marker_counts.get(m.name).copied().unwrap_or(0);
                    Value::object(vec![
                        ("name", m.name.into()),
                        ("roots", Value::array(m.roots.iter().map(|r| Value::from(*r)))),
                        ("why", m.why.into()),
                        ("budget", m.exemption_budget.into()),
                        ("skips_tests", m.skips_tests.into()),
                        ("findings", findings.into()),
                        ("exemptions", exemptions.into()),
                        ("markers", markers.into()),
                    ])
                })
                .collect(),
        );
        let findings = Value::Array(
            self.findings
                .iter()
                .map(|f| {
                    Value::object(vec![
                        ("rule", f.rule.as_str().into()),
                        ("file", f.file.as_str().into()),
                        ("line", f.line.into()),
                        ("col", f.col.into()),
                        ("excerpt", f.excerpt.as_str().into()),
                        ("note", f.note.as_str().into()),
                        ("why", f.why.as_str().into()),
                    ])
                })
                .collect(),
        );
        let exemptions = Value::Array(
            self.exemptions
                .iter()
                .map(|e| {
                    Value::object(vec![
                        ("rule", e.rule.as_str().into()),
                        ("file", e.file.as_str().into()),
                        ("line", e.line.into()),
                        ("justification", e.justification.as_str().into()),
                    ])
                })
                .collect(),
        );
        let coverage = Value::object(vec![
            ("columns", Value::array(coverage::COLUMNS.iter().map(|c| Value::from(*c)))),
            (
                "rows",
                Value::Array(
                    self.coverage
                        .rows
                        .iter()
                        .map(|r| {
                            Value::object(vec![
                                ("variant", r.variant.as_str().into()),
                                ("sim", r.counts[0].into()),
                                ("native", r.counts[1].into()),
                                ("checker", r.counts[2].into()),
                                ("obs", r.counts[3].into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("holes", self.coverage.hole_count().into()),
        ]);
        let locks = Value::object(vec![
            ("sites", self.lock_graph.sites.len().into()),
            (
                "edges",
                Value::Array(
                    self.lock_graph
                        .edges
                        .iter()
                        .map(|e| {
                            Value::object(vec![
                                ("held", e.held.as_str().into()),
                                ("acquired", e.acquired.as_str().into()),
                                ("file", e.site.file.as_str().into()),
                                ("line", e.site.line.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "cycles",
                Value::Array(
                    self.lock_graph
                        .cycles
                        .iter()
                        .map(|c| Value::array(c.iter().map(|n| Value::from(n.as_str()))))
                        .collect(),
                ),
            ),
        ]);
        Value::object(vec![
            ("schema", "mgps-lint/v1".into()),
            ("clean", self.clean().into()),
            ("files_scanned", self.files_scanned.into()),
            ("rules", rules),
            ("findings", findings),
            ("exemptions", exemptions),
            ("coverage", coverage),
            ("locks", locks),
        ])
    }

    /// Human-readable rendering (what `cargo xtask lint` prints).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let loc = if f.line > 0 { format!("{}:{}", f.file, f.line) } else { f.file.clone() };
            out.push_str(&format!("FORBIDDEN [{}] {loc}\n", f.rule));
            if !f.excerpt.is_empty() {
                out.push_str(&format!("  {}\n", f.excerpt));
            }
            if !f.note.is_empty() {
                out.push_str(&format!("  note: {}\n", f.note));
            }
            out.push_str(&format!("  rule: {}\n", f.why));
        }
        for e in &self.exemptions {
            out.push_str(&format!(
                "ALLOWED [{}] {}:{} — {}\n",
                e.rule, e.file, e.line, e.justification
            ));
        }
        out.push_str("event-vocabulary coverage (non-test references per surface):\n");
        out.push_str(&coverage::render(&self.coverage));
        out.push_str(&format!(
            "lock-order: {} acquisition site(s), {} nesting edge(s), {} cycle(s)\n",
            self.lock_graph.sites.len(),
            self.lock_graph.edges.len(),
            self.lock_graph.cycles.len()
        ));
        if self.clean() {
            out.push_str(&format!(
                "mgps-lint: clean ({} rules, {} files, {} exemption(s))\n",
                CATALOG.len(),
                self.files_scanned,
                self.exemptions.len()
            ));
        } else {
            out.push_str(&format!("mgps-lint: {} violation(s)\n", self.findings.len()));
        }
        out
    }
}

/// Directory names the walker never descends into: vendored stand-ins,
/// build output, VCS metadata, and the lint fixture corpus (fixtures are
/// test vectors, most of which *must* trip a rule).
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", "fixtures", "node_modules"];

fn walk(root: &Path, out: &mut Vec<PathBuf>) {
    if root.is_file() {
        if root.extension().is_some_and(|e| e == "rs") {
            out.push(root.to_path_buf());
        }
        return;
    }
    let Ok(entries) = std::fs::read_dir(root) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Load-and-lex cache keyed by repo-relative path.
struct FileCache {
    root: PathBuf,
    files: BTreeMap<String, SourceFile>,
}

impl FileCache {
    fn new(root: &Path) -> FileCache {
        FileCache { root: root.to_path_buf(), files: BTreeMap::new() }
    }

    /// Repo-relative paths of every `.rs` file under `rel_root`.
    fn files_under(&mut self, rel_root: &str) -> Vec<String> {
        let mut paths = Vec::new();
        walk(&self.root.join(rel_root), &mut paths);
        paths.sort();
        let mut rels = Vec::new();
        for p in paths {
            let rel = p
                .strip_prefix(&self.root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            if self.load(&rel) {
                rels.push(rel);
            }
        }
        rels
    }

    fn load(&mut self, rel: &str) -> bool {
        if self.files.contains_key(rel) {
            return true;
        }
        let Ok(src) = std::fs::read_to_string(self.root.join(rel)) else {
            return false;
        };
        let file = SourceFile {
            rel: rel.to_string(),
            lines: src.lines().map(String::from).collect(),
            lexed: lexer::lex(&src),
        };
        self.files.insert(rel.to_string(), file);
        true
    }

    fn get(&self, rel: &str) -> Option<&SourceFile> {
        self.files.get(rel)
    }
}

/// Parse every `xtask-allow` marker in a file's comments.
fn markers_of(file: &SourceFile) -> Vec<Marker> {
    let mut out = Vec::new();
    for c in &file.lexed.comments {
        // A marker is the *whole* comment (`code; // xtask-allow: rule — why`).
        // Prose that merely mentions the syntax — doc comments, this line —
        // does not start with it and is ignored.
        let body = c.text.trim_start();
        if !body.starts_with("xtask-allow:") {
            continue;
        }
        let rest = &body["xtask-allow:".len()..];
        // Split `<rules> — <justification>`; accept an em dash or `--`.
        let (rules_part, justification) = if let Some(d) = rest.find('—') {
            (&rest[..d], Some(rest[d + '—'.len_utf8()..].trim().to_string()))
        } else if let Some(d) = rest.find("--") {
            (&rest[..d], Some(rest[d + 2..].trim().to_string()))
        } else {
            (rest, None)
        };
        let justification = justification.filter(|j| !j.is_empty());
        for rule in rules_part.split(',').map(str::trim).filter(|r| !r.is_empty()) {
            out.push(Marker {
                rule: rule.to_string(),
                line: c.line,
                justification: justification.clone(),
            });
        }
    }
    out
}

/// Run the full audit over the workspace at `root`.
pub fn audit(root: &Path) -> Report {
    let mut cache = FileCache::new(root);
    let mut report = Report::default();
    let mut raw: Vec<Finding> = Vec::new();
    // Per rule: repo-relative files in scope.
    let mut scope: BTreeMap<&'static str, Vec<String>> = BTreeMap::new();
    for m in CATALOG {
        let mut files = Vec::new();
        for r in m.roots {
            for rel in cache.files_under(r) {
                if !files.contains(&rel) {
                    files.push(rel);
                }
            }
        }
        scope.insert(m.name, files);
    }

    // Needle-family rules + unordered-iter.
    for m in CATALOG {
        match m.name {
            "wall-clock" | "unbounded-channel" | "trace-clock" | "rng-discipline"
            | "panic-path" => {
                for rel in &scope[m.name] {
                    if let Some(f) = cache.get(rel) {
                        raw.extend(rules::run_needle_rule(m, f));
                    }
                }
            }
            "unordered-iter" => {
                for rel in &scope[m.name] {
                    if let Some(f) = cache.get(rel) {
                        raw.extend(rules::run_unordered_iter(m, f));
                    }
                }
            }
            _ => {}
        }
    }

    // Lock-order analysis.
    let lock_meta = rules::meta("lock-order").expect("catalog has lock-order");
    let mut graph = LockGraph::default();
    for rel in &scope["lock-order"] {
        if let Some(f) = cache.get(rel) {
            locks::scan_file(f, lock_meta.skips_tests, &mut graph);
        }
    }
    raw.extend(locks::cycle_findings(&mut graph, lock_meta.why));
    report.lock_graph = graph;

    // Event-vocabulary coverage.
    let cov_meta = rules::meta("event-coverage").expect("catalog has event-coverage");
    let event_rel = "crates/cellsim/src/event.rs";
    cache.load(event_rel);
    let variants =
        cache.get(event_rel).map(coverage::parse_variants).unwrap_or_default();
    let surface_files: [Vec<String>; 4] = [
        // sim emit: the machine, plus the health detector (the designated
        // Health emitter on both engines).
        {
            let mut v: Vec<String> = cache
                .files_under("crates/cellsim/src")
                .into_iter()
                .filter(|r| r != event_rel)
                .collect();
            v.push("crates/obs/src/live.rs".into());
            v
        },
        // native emit: the trace→RunLog mapping, the serve plane, and the
        // health detector (serve's `merge_health_events` embeds the
        // detector's `Health` records into native RunLogs).
        vec![
            "crates/obs/src/native.rs".into(),
            "src/serve.rs".into(),
            "crates/obs/src/live.rs".into(),
        ],
        // checker arms.
        cache.files_under("crates/analysis/src"),
        // obs folds/exports (everything but the native mapping).
        cache
            .files_under("crates/obs/src")
            .into_iter()
            .filter(|r| r != "crates/obs/src/native.rs")
            .collect(),
    ];
    for s in &surface_files {
        for rel in s {
            cache.load(rel);
        }
    }
    let surfaces: [Vec<&SourceFile>; 4] = [
        surface_files[0].iter().filter_map(|r| cache.get(r)).collect(),
        surface_files[1].iter().filter_map(|r| cache.get(r)).collect(),
        surface_files[2].iter().filter_map(|r| cache.get(r)).collect(),
        surface_files[3].iter().filter_map(|r| cache.get(r)).collect(),
    ];
    let (matrix, cov_findings) = coverage::analyze(&variants, &surfaces, cov_meta.why, event_rel);
    raw.extend(cov_findings);
    report.coverage = matrix;

    // Allow-marker processing: suppress justified findings, flag
    // unjustified or unknown markers, and enforce budgets.
    for m in CATALOG {
        let mut markers_seen = 0usize;
        for rel in &scope[m.name] {
            let Some(f) = cache.get(rel) else { continue };
            for mk in markers_of(f) {
                if mk.rule != m.name {
                    continue;
                }
                match &mk.justification {
                    Some(j) => {
                        markers_seen += 1;
                        // Trailing markers exempt their own line; a marker
                        // on a comment line of its own exempts the line
                        // below it.
                        let before = raw.len();
                        raw.retain(|fd| {
                            !(fd.rule == m.name
                                && fd.file == *rel
                                && (fd.line == mk.line || fd.line == mk.line + 1))
                        });
                        let suppressed = before - raw.len();
                        // A justified marker is an exemption whether or not
                        // a finding fired this run: it is a standing claim
                        // that must stay visible and within budget.
                        let _ = suppressed;
                        report.exemptions.push(Exemption {
                            rule: m.name.to_string(),
                            file: rel.clone(),
                            line: mk.line,
                            justification: j.clone(),
                        });
                    }
                    None => raw.push(Finding {
                        rule: m.name.to_string(),
                        file: rel.clone(),
                        line: mk.line,
                        col: 1,
                        excerpt: f.line_text(mk.line),
                        why: m.why.to_string(),
                        note: "xtask-allow marker lacks a justification (write \
                               `// xtask-allow: <rule> — <why>`)"
                            .into(),
                    }),
                }
            }
        }
        report.marker_counts.insert(m.name.to_string(), markers_seen);
        if markers_seen > m.exemption_budget {
            raw.push(Finding {
                rule: m.name.to_string(),
                file: String::new(),
                line: 0,
                col: 0,
                excerpt: String::new(),
                why: m.why.to_string(),
                note: format!(
                    "exemption budget exceeded: {markers_seen} xtask-allow marker(s) against a \
                     budget of {} — remove exemptions or raise the budget in the rule catalog",
                    m.exemption_budget
                ),
            });
        }
    }
    // Markers naming a rule that does not exist are typos that would
    // silently exempt nothing.
    for (rel, f) in &cache.files {
        for mk in markers_of(f) {
            if rules::meta(&mk.rule).is_none() {
                raw.push(Finding {
                    rule: "allow-marker".into(),
                    file: rel.clone(),
                    line: mk.line,
                    col: 1,
                    excerpt: f.line_text(mk.line),
                    why: "xtask-allow markers must name a rule from the catalog".into(),
                    note: format!("unknown rule `{}`", mk.rule),
                });
            }
        }
    }

    let order = |rule: &str| CATALOG.iter().position(|m| m.name == rule).unwrap_or(usize::MAX);
    raw.sort_by(|a, b| {
        (order(&a.rule), &a.file, a.line, a.col).cmp(&(order(&b.rule), &b.file, b.line, b.col))
    });
    report.findings = raw;
    report.exemptions.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report.files_scanned = cache.files.len();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(tree: &[(&str, &str)]) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mgps-lint-{}-{:p}",
            std::process::id(),
            tree.as_ptr()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        for (rel, src) in tree {
            let p = dir.join(rel);
            std::fs::create_dir_all(p.parent().unwrap()).unwrap();
            std::fs::write(p, src).unwrap();
        }
        dir
    }

    #[test]
    fn clean_synthetic_tree_only_reports_coverage_holes_it_has() {
        let dir = synth(&[("crates/des/src/lib.rs", "pub fn f() {}\n")]);
        let report = audit(&dir);
        // No event.rs → no variants → no coverage holes; no findings.
        std::fs::remove_dir_all(&dir).ok();
        assert!(report.clean(), "{:?}", report.findings);
    }

    #[test]
    fn forbidden_clock_is_found_and_marker_without_justification_fails() {
        let dir = synth(&[(
            "crates/des/src/bad.rs",
            "fn f() { let t = Instant::now(); }\nfn g() { let t = Instant::now(); } // xtask-allow: wall-clock\n",
        )]);
        let report = audit(&dir);
        std::fs::remove_dir_all(&dir).ok();
        // Line 1: plain finding. Line 2: finding survives (no
        // justification) plus the marker-hygiene finding.
        let wall: Vec<_> = report.findings.iter().filter(|f| f.rule == "wall-clock").collect();
        assert_eq!(wall.len(), 3, "{wall:?}");
        assert!(report.exemptions.is_empty());
    }

    #[test]
    fn justified_marker_exempts_within_budget() {
        let dir = synth(&[(
            "crates/mgps-runtime/src/tracing.rs",
            "use std::time::Instant; // xtask-allow: trace-clock — designated clock reader\n",
        )]);
        let report = audit(&dir);
        std::fs::remove_dir_all(&dir).ok();
        assert!(report.clean(), "{:?}", report.findings);
        assert_eq!(report.exemptions.len(), 1);
        assert_eq!(report.exemptions[0].justification, "designated clock reader");
    }

    #[test]
    fn budget_overflow_fails_even_with_justifications() {
        let src: String = (0..4)
            .map(|i| {
                format!("fn f{i}() {{ let t = Instant::now(); }} // xtask-allow: trace-clock — reason {i}\n")
            })
            .collect();
        let dir = synth(&[("crates/mgps-runtime/src/tracing.rs", src.as_str())]);
        let report = audit(&dir);
        std::fs::remove_dir_all(&dir).ok();
        assert!(!report.clean());
        assert!(report.findings.iter().any(|f| f.note.contains("exemption budget exceeded")));
        assert_eq!(report.exemptions.len(), 4, "exemptions stay listed");
    }

    #[test]
    fn unknown_rule_marker_is_flagged() {
        let dir = synth(&[(
            "crates/des/src/lib.rs",
            "fn f() {} // xtask-allow: no-such-rule — because\n",
        )]);
        let report = audit(&dir);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "allow-marker");
    }

    #[test]
    fn report_json_has_the_stable_schema() {
        let dir = synth(&[("crates/des/src/lib.rs", "pub fn f() {}\n")]);
        let report = audit(&dir);
        std::fs::remove_dir_all(&dir).ok();
        let v = report.to_value();
        assert_eq!(v.get("schema").and_then(|s| s.as_str()), Some("mgps-lint/v1"));
        assert_eq!(v.get("clean").and_then(|c| c.as_bool()), Some(true));
        for key in ["files_scanned", "rules", "findings", "exemptions", "coverage", "locks"] {
            assert!(v.get(key).is_some(), "missing key {key}");
        }
        let rules = v.get("rules").and_then(|r| r.as_array()).unwrap();
        assert_eq!(rules.len(), rules::CATALOG.len());
        // The JSON must round-trip through the strict parser.
        let text = v.to_json_pretty();
        assert_eq!(minijson::parse(&text).unwrap(), v);
    }
}
