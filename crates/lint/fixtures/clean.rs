//! Fixture: a clean file — ordered collections, a single un-nested
//! lock, no clocks, no entropy, no panics. The audit must stay silent.
use std::collections::BTreeMap;
use std::sync::Mutex;

pub struct Clean {
    seen: Mutex<BTreeMap<u64, u64>>,
}

impl Clean {
    pub fn note(&self, k: u64, v: u64) {
        if let Ok(mut m) = self.seen.lock() {
            m.insert(k, v);
        }
    }
}
