//! Fixture: a lock-order cycle (`alpha → beta` in one method,
//! `beta → alpha` in another) — trips `lock-order` and nothing else.
use std::sync::Mutex;

pub struct Shared {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Shared {
    pub fn forward(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop(b);
        drop(a);
    }

    pub fn backward(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        drop(a);
        drop(b);
    }
}
