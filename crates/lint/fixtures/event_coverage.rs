//! Fixture: an event vocabulary whose variant no surface references —
//! planted as `crates/cellsim/src/event.rs` it holes all four coverage
//! columns and trips `event-coverage` and nothing else.
pub enum EventKind {
    Orphan { spe: usize },
}
