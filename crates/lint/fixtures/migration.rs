//! Fixture: the old substring grep's false-hit classes. The doc lines
//! and the string literal below spell out Instant::now and SystemTime;
//! the token engine must pass this file while the legacy scan counts
//! three hit lines.
//!
//! Timing is simulated here; code that reaches for `std::time::Instant`
//! is wrong by design.

pub fn describe() -> &'static str {
    "never call Instant::now or SystemTime in sim code"
}
