//! Fixture: trips `unbounded-channel` and nothing else.
use crossbeam::channel;

pub fn plumbing() -> (channel::Sender<u64>, channel::Receiver<u64>) {
    channel::unbounded()
}
