//! Fixture: trips `unordered-iter` and nothing else — one `for … in
//! &map` loop and one `.keys()` call on a hashed collection.
use std::collections::HashMap;

pub fn render() -> Vec<u64> {
    let mut tally: HashMap<u64, u64> = HashMap::new();
    tally.insert(1, 2);
    let mut out = Vec::new();
    for (k, _) in &tally {
        out.push(*k);
    }
    out.extend(tally.keys().copied());
    out
}
