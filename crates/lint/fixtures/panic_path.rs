//! Fixture: trips `panic-path` and nothing else (planted as the serve
//! request path).
pub fn handle(req: Option<&str>) -> String {
    let body = req.unwrap();
    if body.is_empty() {
        panic!("empty request");
    }
    body.to_string()
}
