//! Fixture: trips `trace-clock` and nothing else (planted as the
//! runtime's tracing.rs, the only file in that rule's scope).
use std::time::Instant;

pub fn now_ns() -> u128 {
    Instant::now().elapsed().as_nanos()
}
