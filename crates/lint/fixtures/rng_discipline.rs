//! Fixture: trips `rng-discipline` and nothing else.
pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
