//! The fixture corpus: every rule has a file under `fixtures/` that,
//! planted at an in-scope path of a synthetic tree, trips exactly that
//! rule — plus a clean file the audit must stay silent on, a
//! migration-proof file the old substring grep would have failed, and a
//! golden check of the JSON report's schema.

use std::path::{Path, PathBuf};

use mgps_lint::{audit, rules};
use minijson::Value;

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

/// Materialize `(repo-relative path, fixture file)` pairs as a temp tree.
fn plant(tag: &str, tree: &[(&str, &str)]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mgps-lint-fixture-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    for (rel, fix) in tree {
        let p = dir.join(rel);
        std::fs::create_dir_all(p.parent().unwrap()).unwrap();
        std::fs::write(&p, fixture(fix)).unwrap();
    }
    dir
}

/// Where each rule's fixture must live to fall inside that rule's scope.
const CORPUS: &[(&str, &str, &str)] = &[
    ("wall-clock", "crates/cellsim/src/machine.rs", "wall_clock.rs"),
    ("unbounded-channel", "crates/mgps-runtime/src/pool.rs", "unbounded_channel.rs"),
    ("trace-clock", "crates/mgps-runtime/src/tracing.rs", "trace_clock.rs"),
    ("unordered-iter", "crates/analysis/src/checker.rs", "unordered_iter.rs"),
    ("rng-discipline", "src/sim.rs", "rng_discipline.rs"),
    ("lock-order", "crates/mgps-runtime/src/state.rs", "lock_order_cycle.rs"),
    ("event-coverage", "crates/cellsim/src/event.rs", "event_coverage.rs"),
    ("panic-path", "src/serve.rs", "panic_path.rs"),
];

#[test]
fn every_rule_fixture_trips_exactly_its_rule() {
    for (rule, dest, fix) in CORPUS {
        let dir = plant(rule, &[(dest, fix)]);
        let report = audit(&dir);
        assert!(
            !report.findings.is_empty(),
            "{rule}: fixture {fix} planted at {dest} must trip"
        );
        for f in &report.findings {
            assert_eq!(
                f.rule, *rule,
                "{rule}: fixture {fix} tripped foreign rule {} at {}:{}",
                f.rule, f.file, f.line
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn the_clean_fixture_passes_every_rule() {
    let dir = plant("clean", &[("crates/mgps-runtime/src/clean.rs", "clean.rs")]);
    let report = audit(&dir);
    assert!(report.clean(), "clean fixture tripped: {:?}", report.findings);
    assert_eq!(report.files_scanned, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_lock_cycle_fixture_names_both_locks() {
    let dir = plant("cycle", &[("crates/mgps-runtime/src/state.rs", "lock_order_cycle.rs")]);
    let report = audit(&dir);
    assert_eq!(report.lock_graph.sites.len(), 4, "four acquisition sites");
    assert_eq!(report.lock_graph.edges.len(), 2, "{:?}", report.lock_graph.edges);
    assert!(!report.lock_graph.cycles.is_empty(), "the cycle must be detected");
    let cycle = &report.lock_graph.cycles[0];
    for lock in ["alpha", "beta"] {
        assert!(cycle.iter().any(|n| n == lock), "cycle {cycle:?} must pass through {lock}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_migration_fixture_passes_the_engine_but_fails_the_old_grep() {
    let src = fixture("migration.rs");
    let dir = plant("migration", &[("crates/cellsim/src/lib.rs", "migration.rs")]);
    let report = audit(&dir);
    assert!(
        report.clean(),
        "token engine must ignore comment/string spellings: {:?}",
        report.findings
    );
    // The very same bytes would have failed the legacy substring scan on
    // three separate lines — the false-hit classes this PR retires.
    assert_eq!(rules::old_grep_hits("wall-clock", &src), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_json_report_keeps_its_schema() {
    // A tree with one finding per family: needle (wall-clock), analysis
    // (lock-order cycle), and coverage (orphan variant).
    let dir = plant(
        "schema",
        &[
            ("crates/cellsim/src/machine.rs", "wall_clock.rs"),
            ("crates/cellsim/src/event.rs", "event_coverage.rs"),
            ("crates/mgps-runtime/src/state.rs", "lock_order_cycle.rs"),
        ],
    );
    let report = audit(&dir);
    let doc = minijson::parse(&report.to_value().to_json_pretty())
        .expect("report must serialize to valid JSON");

    assert_eq!(doc.get("schema").and_then(Value::as_str), Some("mgps-lint/v1"));
    assert_eq!(doc.get("clean").and_then(Value::as_bool), Some(false));
    assert!(doc.get("files_scanned").and_then(Value::as_u64).is_some());

    let rule_rows = doc.get("rules").and_then(Value::as_array).expect("rules array");
    assert_eq!(rule_rows.len(), rules::CATALOG.len(), "one row per catalog rule");
    for row in rule_rows {
        for key in ["name", "roots", "why", "budget", "skips_tests", "findings", "exemptions", "markers"] {
            assert!(row.get(key).is_some(), "rule row missing `{key}`");
        }
    }

    let findings = doc.get("findings").and_then(Value::as_array).expect("findings array");
    assert!(!findings.is_empty());
    for f in findings {
        for key in ["rule", "file", "line", "col", "excerpt", "note", "why"] {
            assert!(f.get(key).is_some(), "finding missing `{key}`");
        }
    }

    let cov = doc.get("coverage").expect("coverage object");
    assert!(cov.get("columns").and_then(Value::as_array).is_some_and(|c| c.len() == 4));
    assert!(cov.get("rows").and_then(Value::as_array).is_some_and(|r| !r.is_empty()));
    assert!(cov.get("holes").and_then(Value::as_u64).is_some_and(|h| h >= 4));

    let locks = doc.get("locks").expect("locks object");
    assert!(locks.get("sites").and_then(Value::as_u64).is_some_and(|s| s == 4));
    assert!(locks.get("edges").and_then(Value::as_array).is_some_and(|e| e.len() == 2));
    assert!(locks.get("cycles").and_then(Value::as_array).is_some_and(|c| !c.is_empty()));

    assert!(doc.get("exemptions").and_then(Value::as_array).is_some());
    let _ = std::fs::remove_dir_all(&dir);
}
