//! Checker fixtures: clean simulator runs must report zero violations,
//! seeded corruptions must each trip exactly the invariant they break,
//! and replay must be digest-deterministic in the seed.

use cellsim::event::{EventKind, EventRecord, RunLog, SchedulerTag, SwitchReason};
use cellsim::machine::{run, SimConfig};
use mgps_analysis::{check_run, trace_digest};
use mgps_runtime::faults::FaultPlan;
use mgps_runtime::policy::SchedulerKind;

/// Workload scale for the integration runs (large = fast).
const SCALE: usize = 4_000;

fn recorded_run(scheduler: SchedulerKind, n: usize, seed: u64) -> RunLog {
    let mut cfg = SimConfig::cell_42sc(scheduler, n, SCALE);
    cfg.seed = seed;
    cfg.record_events = true;
    run(cfg).run_log.expect("record_events was set")
}

#[test]
fn clean_runs_have_zero_violations_under_every_scheduler() {
    for scheduler in [
        SchedulerKind::Edtlp,
        SchedulerKind::LinuxLike,
        SchedulerKind::StaticHybrid { spes_per_loop: 2 },
        SchedulerKind::StaticHybrid { spes_per_loop: 4 },
        SchedulerKind::Mgps,
    ] {
        let log = recorded_run(scheduler, 2, 0x5eed);
        let report = check_run(&log);
        assert!(
            report.is_clean(),
            "{scheduler:?} run must satisfy every invariant:\n{}",
            report.render()
        );
        assert!(report.events_checked > 0, "{scheduler:?} run recorded no events");
        assert!(report.tasks_checked > 0, "{scheduler:?} run started no tasks");
    }
}

#[test]
fn digest_is_deterministic_in_the_seed() {
    let a = recorded_run(SchedulerKind::Mgps, 2, 0x5eed);
    let b = recorded_run(SchedulerKind::Mgps, 2, 0x5eed);
    assert_eq!(trace_digest(&a), trace_digest(&b), "same seed must replay identically");
    let c = recorded_run(SchedulerKind::Mgps, 2, 0xbeef);
    assert_ne!(trace_digest(&a), trace_digest(&c), "different seeds should diverge");
}

#[test]
fn serialized_log_round_trips_and_keeps_its_digest() {
    let log = recorded_run(SchedulerKind::Edtlp, 1, 7);
    let json = log.to_value().to_json();
    let back = RunLog::from_value(&minijson::parse(&json).expect("parse")).expect("round trip");
    assert_eq!(trace_digest(&log), trace_digest(&back));
    assert!(check_run(&back).is_clean());
}

// ---------------------------------------------------------------------------
// Seeded violations over a hand-built minimal (clean) log.
// ---------------------------------------------------------------------------

/// A minimal EDTLP log exercising one complete task lifecycle; the checker
/// must find it spotless, and each seeded corruption below must trip
/// exactly the invariant it breaks.
fn minimal_log() -> RunLog {
    let kinds = vec![
        (0, EventKind::Offload { proc: 0, task: 0 }),
        (0, EventKind::CtxSwitch { proc: 0, reason: SwitchReason::Offload, held_ns: 100 }),
        (10, EventKind::TaskStart { proc: 0, task: 0, degree: 1, team: vec![0] }),
        (10, EventKind::LsAlloc { spe: 0, bytes: 4096, in_use: 4096 }),
        (12, EventKind::Dma { spe: 0, element_bytes: vec![4096], local_addr: 0, main_addr: 0x1000 }),
        (12, EventKind::Chunk { task: 0, loop_iters: 64, start: 0, len: 64, worker: 0 }),
        (90, EventKind::TaskEnd { proc: 0, task: 0, team: vec![0] }),
        (90, EventKind::LsFree { spe: 0, bytes: 4096, in_use: 0 }),
    ];
    RunLog {
        scheduler: SchedulerTag::Edtlp,
        n_spes: 8,
        quantum_ns: 100_000,
        seed: 1,
        local_store_bytes: 256 * 1024,
        loop_iters: 64,
        mgps_window: None,
        fault_policy: None,
        tenant_weights: None,
        events: kinds
            .into_iter()
            .enumerate()
            .map(|(i, (at_ns, kind))| EventRecord { seq: i as u64, at_ns, kind })
            .collect(),
    }
}

fn rules_of(log: &RunLog) -> Vec<&'static str> {
    check_run(log).violations.into_iter().map(|v| v.rule).collect()
}

#[test]
fn minimal_log_is_clean() {
    let report = check_run(&minimal_log());
    assert!(report.is_clean(), "baseline fixture must be clean:\n{}", report.render());
}

#[test]
fn oversized_dma_element_is_flagged() {
    let mut log = minimal_log();
    // 32 KB in one element: double the MFC's 16 KB transfer cap.
    log.events[4].kind =
        EventKind::Dma { spe: 0, element_bytes: vec![32 * 1024], local_addr: 0, main_addr: 0x1000 };
    assert_eq!(rules_of(&log), vec!["dma-legality"]);
    let report = check_run(&log);
    assert_eq!(report.violations[0].seq, Some(4));
    assert!(report.violations[0].message.contains("32768 bytes"));
}

#[test]
fn misaligned_dma_is_flagged() {
    let mut log = minimal_log();
    log.events[4].kind =
        EventKind::Dma { spe: 0, element_bytes: vec![4096], local_addr: 8, main_addr: 0x1000 };
    assert_eq!(rules_of(&log), vec!["dma-legality"]);
}

#[test]
fn local_store_overflow_is_flagged() {
    let mut log = minimal_log();
    // 300 KB into a 256 KB local store.
    log.events[3].kind = EventKind::LsAlloc { spe: 0, bytes: 300_000, in_use: 300_000 };
    log.events[7].kind = EventKind::LsFree { spe: 0, bytes: 300_000, in_use: 0 };
    let report = check_run(&log);
    assert_eq!(rules_of(&log), vec!["local-store"]);
    assert!(report.violations[0].message.contains("over capacity"));
}

#[test]
fn overlapping_spe_tasks_are_flagged() {
    let mut log = minimal_log();
    // A second task starts on SPE 0 while task 0 still runs there. The
    // corrupted busy state also surfaces at the tasks' ends, so every
    // violation must carry the overlap rule and the start must be first.
    let overlap = vec![
        (12, EventKind::Offload { proc: 1, task: 1 }),
        (20, EventKind::TaskStart { proc: 1, task: 1, degree: 1, team: vec![0] }),
        (30, EventKind::Chunk { task: 1, loop_iters: 64, start: 0, len: 64, worker: 0 }),
        (40, EventKind::TaskEnd { proc: 1, task: 1, team: vec![0] }),
    ];
    // Splice after task 0's chunk dispatch (position 6), before its end.
    for (offset, (at_ns, kind)) in overlap.into_iter().enumerate() {
        log.events.insert(6 + offset, EventRecord { seq: 0, at_ns, kind });
    }
    for (i, e) in log.events.iter_mut().enumerate() {
        e.seq = i as u64;
    }
    let rules = rules_of(&log);
    assert!(!rules.is_empty(), "overlap must be detected");
    assert!(
        rules.iter().all(|r| *r == "spe-overlap"),
        "only the overlap invariant may fire, got {rules:?}"
    );
    let report = check_run(&log);
    assert!(report.violations[0].message.contains("while task 0 still runs there"));
}

#[test]
fn non_monotone_time_is_flagged() {
    let mut log = minimal_log();
    log.events[6].at_ns = 5; // TaskEnd before its TaskStart's timestamp
    assert_eq!(rules_of(&log), vec!["causal-time"]);
}

#[test]
fn out_of_order_grants_are_flagged() {
    let mut log = minimal_log();
    let extra = vec![
        (90, EventKind::Offload { proc: 1, task: 2 }),
        (90, EventKind::Offload { proc: 2, task: 3 }),
        // Task 3 jumps the FIFO queue ahead of task 2.
        (95, EventKind::TaskStart { proc: 2, task: 3, degree: 1, team: vec![1] }),
        (95, EventKind::Chunk { task: 3, loop_iters: 64, start: 0, len: 64, worker: 1 }),
        (96, EventKind::TaskEnd { proc: 2, task: 3, team: vec![1] }),
        (97, EventKind::TaskStart { proc: 1, task: 2, degree: 1, team: vec![2] }),
        (97, EventKind::Chunk { task: 2, loop_iters: 64, start: 0, len: 64, worker: 2 }),
        (98, EventKind::TaskEnd { proc: 1, task: 2, team: vec![2] }),
    ];
    let base = log.events.len();
    for (i, (at_ns, kind)) in extra.into_iter().enumerate() {
        log.events.push(EventRecord { seq: (base + i) as u64, at_ns, kind });
    }
    assert_eq!(rules_of(&log), vec!["fifo-order"]);
}

#[test]
fn quantum_switch_under_edtlp_is_flagged() {
    let mut log = minimal_log();
    log.events[1].kind =
        EventKind::CtxSwitch { proc: 0, reason: SwitchReason::Quantum, held_ns: 200_000 };
    assert_eq!(rules_of(&log), vec!["ctx-switch"]);
}

#[test]
fn degree_decision_outside_mgps_is_flagged() {
    let mut log = minimal_log();
    log.events.push(EventRecord {
        seq: 8,
        at_ns: 95,
        kind: EventKind::DegreeDecision {
            degree: 2,
            waiting: 1,
            n_spes: 8,
            window: 8,
            window_fill: 4,
        },
    });
    assert_eq!(rules_of(&log), vec!["mgps-degree"]);
}

#[test]
fn chunk_gap_is_flagged() {
    let mut log = minimal_log();
    // The single chunk covers only half the iteration space.
    log.events[5].kind = EventKind::Chunk { task: 0, loop_iters: 64, start: 0, len: 32, worker: 0 };
    assert_eq!(rules_of(&log), vec!["chunk-coverage"]);
}

// ---------------------------------------------------------------------------
// Fault-recovery and quarantine rules.
// ---------------------------------------------------------------------------

const FAULT_SPEC: &str = "seed=9,retries=1,backoff=1000,k=3,readmit=8";

fn fault_plan() -> FaultPlan {
    FaultPlan::parse(FAULT_SPEC).expect("fixture spec must parse")
}

/// [`minimal_log`] plus a second task that faults twice and degrades to
/// the PPE — a complete, policy-conforming recovery story the checker
/// must accept, and each corruption below must break.
fn faulted_log() -> RunLog {
    let plan = fault_plan();
    let mut log = minimal_log();
    log.fault_policy = Some(plan.to_spec());
    let tail = vec![
        (91, EventKind::Offload { proc: 1, task: 1 }),
        (95, EventKind::FaultInjected { spe: 1, task: 1, fault: "spe_stall".into(), attempt: 0 }),
        (100, EventKind::OffloadRetry { task: 1, attempt: 1, backoff_ns: plan.backoff_ns(1, 1) }),
        (105, EventKind::FaultInjected { spe: 1, task: 1, fault: "spe_crash".into(), attempt: 1 }),
        (110, EventKind::PpeFallback { proc: 1, task: 1, attempts: 2 }),
    ];
    let base = log.events.len();
    for (i, (at_ns, kind)) in tail.into_iter().enumerate() {
        log.events.push(EventRecord { seq: (base + i) as u64, at_ns, kind });
    }
    log
}

#[test]
fn conforming_fault_recovery_is_clean() {
    let report = check_run(&faulted_log());
    assert!(report.is_clean(), "recovery fixture must be clean:\n{}", report.render());
}

#[test]
fn unparseable_fault_policy_is_flagged() {
    let mut log = minimal_log();
    log.fault_policy = Some("definitely-not-a-spec".into());
    assert!(rules_of(&log).contains(&"fault-policy"));
}

#[test]
fn fault_events_without_a_declared_policy_are_flagged() {
    let mut log = faulted_log();
    log.fault_policy = None;
    assert!(rules_of(&log).contains(&"fault-recovery"));
}

#[test]
fn lost_task_is_flagged() {
    let mut log = faulted_log();
    log.events.pop(); // drop the PpeFallback: the faulted task resolves nowhere
    let report = check_run(&log);
    assert!(
        report.violations.iter().any(|v| v.rule == "fault-recovery" && v.message.contains("lost")),
        "dropping the fallback must lose the task:\n{}",
        report.render()
    );
}

#[test]
fn duplicated_completion_is_flagged() {
    let mut log = faulted_log();
    // Task 1 "also" completes on SPEs after falling back.
    let base = log.events.len();
    for (i, (at_ns, kind)) in [
        (115u64, EventKind::TaskStart { proc: 1, task: 1, degree: 1, team: vec![2] }),
        (116, EventKind::Chunk { task: 1, loop_iters: 64, start: 0, len: 64, worker: 2 }),
        (120, EventKind::TaskEnd { proc: 1, task: 1, team: vec![2] }),
    ]
    .into_iter()
    .enumerate()
    {
        log.events.push(EventRecord { seq: (base + i) as u64, at_ns, kind });
    }
    let report = check_run(&log);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.rule == "fault-recovery" && v.message.contains("duplicated")),
        "double completion must be flagged:\n{}",
        report.render()
    );
}

#[test]
fn undeclared_backoff_is_flagged() {
    let mut log = faulted_log();
    let declared = fault_plan().backoff_ns(1, 1);
    for e in &mut log.events {
        if let EventKind::OffloadRetry { backoff_ns, .. } = &mut e.kind {
            *backoff_ns = declared + 1;
        }
    }
    assert!(rules_of(&log).contains(&"fault-recovery"));
}

#[test]
fn double_quarantine_is_flagged() {
    let mut log = faulted_log();
    let base = log.events.len();
    for (i, at_ns) in [115u64, 120].into_iter().enumerate() {
        log.events.push(EventRecord {
            seq: (base + i) as u64,
            at_ns,
            kind: EventKind::SpeQuarantined { spe: 2, faults: 3 },
        });
    }
    let report = check_run(&log);
    assert!(
        report.violations.iter().any(|v| v.rule == "quarantine" && v.message.contains("twice")),
        "overlapping quarantine intervals must be flagged:\n{}",
        report.render()
    );
}

#[test]
fn readmission_without_quarantine_is_flagged() {
    let mut log = faulted_log();
    let base = log.events.len();
    log.events.push(EventRecord {
        seq: base as u64,
        at_ns: 115,
        kind: EventKind::SpeReadmitted { spe: 4 },
    });
    assert!(rules_of(&log).contains(&"quarantine"));
}

#[test]
fn work_on_a_quarantined_spe_is_flagged() {
    let mut log = faulted_log();
    // Quarantine SPE 0 before task 0 is granted to it.
    log.events.insert(
        1,
        EventRecord { seq: 0, at_ns: 1, kind: EventKind::SpeQuarantined { spe: 0, faults: 3 } },
    );
    for (i, e) in log.events.iter_mut().enumerate() {
        e.seq = i as u64;
    }
    assert!(rules_of(&log).contains(&"quarantine"));
}

#[test]
fn premature_quarantine_below_k_is_flagged() {
    let mut log = faulted_log();
    let base = log.events.len();
    log.events.push(EventRecord {
        seq: base as u64,
        at_ns: 115,
        kind: EventKind::SpeQuarantined { spe: 2, faults: 1 }, // policy says k=3
    });
    assert!(rules_of(&log).contains(&"quarantine"));
}

// ---------------------------------------------------------------------------
// Job-plane rules: exactly-once completion and DRR fairness.
// ---------------------------------------------------------------------------

/// Append `tail` to `log`, renumbering seq from the current end.
fn append(log: &mut RunLog, tail: Vec<(u64, EventKind)>) {
    let base = log.events.len();
    for (i, (at_ns, kind)) in tail.into_iter().enumerate() {
        log.events.push(EventRecord { seq: (base + i) as u64, at_ns, kind });
    }
}

fn submitted(job: u64, tenant: usize, queue_depth: usize) -> EventKind {
    EventKind::JobSubmitted {
        job,
        tenant,
        taxa: 8,
        sites: 64,
        bootstraps: 1,
        deadline_ns: 0,
        queue_depth,
        queue_cap: 8,
    }
}

#[test]
fn double_completion_trips_exactly_the_job_retry_rule() {
    let mut log = minimal_log();
    append(
        &mut log,
        vec![
            (100, submitted(50, 0, 1)),
            (110, EventKind::JobStarted { job: 50, tenant: 0, attempt: 0 }),
            // Both completions carry exact partitions of their spans, so
            // the lifecycle arithmetic is happy — only exactly-once breaks.
            (200, EventKind::JobCompleted {
                job: 50,
                tenant: 0,
                t_queue_ns: 10,
                t_dispatch_ns: 30,
                t_kernel_ns: 50,
                t_reduce_ns: 10,
            }),
            (300, EventKind::JobCompleted {
                job: 50,
                tenant: 0,
                t_queue_ns: 10,
                t_dispatch_ns: 30,
                t_kernel_ns: 100,
                t_reduce_ns: 60,
            }),
        ],
    );
    assert_eq!(rules_of(&log), vec!["job-retry"]);
    let report = check_run(&log);
    assert!(
        report.violations[0].message.contains("exactly-once completion is broken"),
        "{}",
        report.render()
    );
}

/// One balanced two-tenant job story: submissions for tenants 0 and 1,
/// dispatched in `start_order`, every job completed with an exact
/// partition. Tenant 0 jobs are 60/61, tenant 1 jobs are 70/71.
fn weighted_log(weights: Vec<u64>, start_order: [u64; 4]) -> RunLog {
    let mut log = minimal_log();
    log.tenant_weights = Some(weights);
    let tenant_of = |job: u64| usize::from(job >= 70);
    let submit_ns =
        |job: u64| 100 + (job % 10) + if job >= 70 { 2 } else { 0 }; // 60→100 61→101 70→102 71→103
    let mut tail = vec![
        (100, submitted(60, 0, 1)),
        (101, submitted(61, 0, 2)),
        (102, submitted(70, 1, 3)),
        (103, submitted(71, 1, 4)),
    ];
    for (i, job) in start_order.into_iter().enumerate() {
        tail.push((
            110 + i as u64,
            EventKind::JobStarted { job, tenant: tenant_of(job), attempt: 0 },
        ));
    }
    for (i, job) in start_order.into_iter().enumerate() {
        let at = 200 + i as u64;
        tail.push((
            at,
            EventKind::JobCompleted {
                job,
                tenant: tenant_of(job),
                t_queue_ns: at - submit_ns(job) - 90,
                t_dispatch_ns: 30,
                t_kernel_ns: 50,
                t_reduce_ns: 10,
            },
        ));
    }
    append(&mut log, tail);
    log
}

#[test]
fn drr_conforming_dispatch_under_declared_weights_is_clean() {
    // Weights 4:1 give tenant 0 the first four deficit units, so the whole
    // tenant-0 backlog drains before tenant 1 gets a turn.
    let log = weighted_log(vec![4, 1], [60, 61, 70, 71]);
    let report = check_run(&log);
    assert!(report.is_clean(), "DRR-conforming fixture must be clean:\n{}", report.render());
}

#[test]
fn weight_inverted_dispatch_trips_exactly_the_tenant_fairness_rule() {
    // The same story dispatched as if the weights were 1:4 — tenant 1
    // drains first against a header that promises tenant 0 priority.
    let log = weighted_log(vec![4, 1], [70, 71, 60, 61]);
    let rules = rules_of(&log);
    assert!(!rules.is_empty(), "inverted dispatch must be detected");
    assert!(
        rules.iter().all(|r| *r == "tenant-fairness"),
        "only the fairness invariant may fire, got {rules:?}"
    );
    let report = check_run(&log);
    assert!(
        report.violations[0].message.contains("deficit round-robin"),
        "{}",
        report.render()
    );
}

#[test]
fn armed_simulator_runs_stay_checker_clean_under_every_scheduler() {
    for scheduler in [
        SchedulerKind::Edtlp,
        SchedulerKind::LinuxLike,
        SchedulerKind::StaticHybrid { spes_per_loop: 2 },
        SchedulerKind::StaticHybrid { spes_per_loop: 4 },
        SchedulerKind::Mgps,
    ] {
        let mut cfg = SimConfig::cell_42sc(scheduler, 2, SCALE);
        cfg.seed = 0x5eed;
        cfg.record_events = true;
        cfg.faults =
            FaultPlan::parse("seed=5,stall=0.05,dma=0.02,broken=1").expect("spec must parse");
        let result = run(cfg);
        assert!(!result.unrecovered, "{scheduler:?}: recovery must complete every task");
        let log = result.run_log.expect("record_events was set");
        assert!(log.fault_policy.is_some(), "armed runs must declare their plan");
        let report = check_run(&log);
        assert!(
            report.is_clean(),
            "{scheduler:?} armed run must satisfy every invariant:\n{}",
            report.render()
        );
    }
}

#[test]
fn lethal_plan_trips_the_checker() {
    let mut cfg = SimConfig::cell_42sc(SchedulerKind::Edtlp, 2, SCALE);
    cfg.seed = 0x5eed;
    cfg.record_events = true;
    cfg.faults =
        FaultPlan::parse("seed=3,pin=crash@0,retries=0,fallback=off").expect("spec must parse");
    let result = run(cfg);
    assert!(result.unrecovered, "a lost task must surface in the report");
    let log = result.run_log.expect("record_events was set");
    let report = check_run(&log);
    assert!(
        report.violations.iter().any(|v| v.rule == "fault-recovery" && v.message.contains("lost")),
        "the checker must convict the lethal plan:\n{}",
        report.render()
    );
}
