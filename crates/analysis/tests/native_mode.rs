//! Checker semantics under [`CheckMode::Native`]: the relaxations admit
//! exactly the clock artifacts a preemptively-scheduled host run cannot
//! avoid, while every genuine scheduling invariant still trips, and
//! [`check_trace_sanity`] surfaces ring overflow before the merge can
//! hide it.

use cellsim::event::{EventKind, EventRecord, RunLog, SchedulerTag, SwitchReason};
use mgps_analysis::{check_run, check_run_with, check_trace_sanity, CheckMode};
use mgps_runtime::tracing::{TraceEventKind, Tracer};

/// A native-shaped log: no quantum, no global loop size (tasks carry
/// their own on chunk events).
fn native_log(events: Vec<(u64, EventKind)>) -> RunLog {
    RunLog {
        scheduler: SchedulerTag::Edtlp,
        n_spes: 4,
        quantum_ns: 0,
        seed: 0,
        local_store_bytes: 256 * 1024,
        loop_iters: 0,
        mgps_window: None,
            fault_policy: None,
            tenant_weights: None,
        events: events
            .into_iter()
            .enumerate()
            .map(|(i, (at_ns, kind))| EventRecord { seq: i as u64, at_ns, kind })
            .collect(),
    }
}

/// Two processes race: task 1 starts before task 0 (no FIFO across host
/// threads), the yielding process's context switch is recorded after it
/// re-acquires (later than its off-load instant), and each task's chunks
/// tile its own loop size.
fn racing_native_log() -> RunLog {
    native_log(vec![
        (100, EventKind::Offload { proc: 0, task: 0 }),
        (110, EventKind::Offload { proc: 1, task: 1 }),
        (120, EventKind::TaskStart { proc: 1, task: 1, degree: 1, team: vec![1] }),
        (121, EventKind::Chunk { task: 1, loop_iters: 50, start: 0, len: 50, worker: 1 }),
        (130, EventKind::CtxSwitch { proc: 0, reason: SwitchReason::Offload, held_ns: 90 }),
        (140, EventKind::TaskStart { proc: 0, task: 0, degree: 1, team: vec![0] }),
        (141, EventKind::Chunk { task: 0, loop_iters: 64, start: 0, len: 64, worker: 0 }),
        (200, EventKind::TaskEnd { proc: 1, task: 1, team: vec![1] }),
        (220, EventKind::TaskEnd { proc: 0, task: 0, team: vec![0] }),
    ])
}

#[test]
fn native_mode_admits_host_scheduling_artifacts() {
    let log = racing_native_log();
    let native = check_run_with(&log, CheckMode::Native);
    assert!(native.is_clean(), "{}", native.render());
    assert_eq!(native.tasks_checked, 2);
    // Busy accounting mirrors the timeline fold: each team member from
    // task start to task end.
    assert_eq!(native.spe_busy_ns, vec![80, 80, 0, 0]);

    // The same log under simulator rules trips the artifacts: task ids
    // out of FIFO order, a context switch off its off-load instant, and
    // chunks sized for their own loops instead of the (zero) global one.
    let sim = check_run(&log);
    let rules: Vec<&str> = sim.violations.iter().map(|v| v.rule).collect();
    assert!(rules.contains(&"fifo-order"), "{rules:?}");
    assert!(rules.contains(&"ctx-switch"), "{rules:?}");
    assert!(rules.contains(&"chunk-coverage"), "{rules:?}");
}

#[test]
fn native_team_members_with_empty_ranges_may_skip_chunks() {
    // A degree-3 team where one worker's partition came up empty: only
    // two chunks arrive, but they tile the loop — legal natively.
    let log = native_log(vec![
        (0, EventKind::Offload { proc: 0, task: 0 }),
        (10, EventKind::TaskStart { proc: 0, task: 0, degree: 3, team: vec![0, 1, 2] }),
        (11, EventKind::Chunk { task: 0, loop_iters: 2, start: 0, len: 1, worker: 0 }),
        (12, EventKind::Chunk { task: 0, loop_iters: 2, start: 1, len: 1, worker: 1 }),
        (50, EventKind::TaskEnd { proc: 0, task: 0, team: vec![0, 1, 2] }),
    ]);
    let report = check_run_with(&log, CheckMode::Native);
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn native_mode_still_catches_genuine_violations() {
    // Chunks that disagree on the loop size.
    let log = native_log(vec![
        (0, EventKind::Offload { proc: 0, task: 0 }),
        (10, EventKind::TaskStart { proc: 0, task: 0, degree: 2, team: vec![0, 1] }),
        (11, EventKind::Chunk { task: 0, loop_iters: 10, start: 0, len: 5, worker: 0 }),
        (12, EventKind::Chunk { task: 0, loop_iters: 12, start: 5, len: 7, worker: 1 }),
        (50, EventKind::TaskEnd { proc: 0, task: 0, team: vec![0, 1] }),
    ]);
    let report = check_run_with(&log, CheckMode::Native);
    assert!(report.violations.iter().any(|v| v.rule == "chunk-coverage"), "{}", report.render());

    // Chunks that leave a gap in the iteration space.
    let log = native_log(vec![
        (0, EventKind::Offload { proc: 0, task: 0 }),
        (10, EventKind::TaskStart { proc: 0, task: 0, degree: 2, team: vec![0, 1] }),
        (11, EventKind::Chunk { task: 0, loop_iters: 10, start: 0, len: 4, worker: 0 }),
        (12, EventKind::Chunk { task: 0, loop_iters: 10, start: 6, len: 4, worker: 1 }),
        (50, EventKind::TaskEnd { proc: 0, task: 0, team: vec![0, 1] }),
    ]);
    let report = check_run_with(&log, CheckMode::Native);
    assert!(report.violations.iter().any(|v| v.rule == "chunk-coverage"), "{}", report.render());

    // A chunk from outside the team.
    let log = native_log(vec![
        (0, EventKind::Offload { proc: 0, task: 0 }),
        (10, EventKind::TaskStart { proc: 0, task: 0, degree: 1, team: vec![0] }),
        (11, EventKind::Chunk { task: 0, loop_iters: 10, start: 0, len: 10, worker: 3 }),
        (50, EventKind::TaskEnd { proc: 0, task: 0, team: vec![0] }),
    ]);
    let report = check_run_with(&log, CheckMode::Native);
    assert!(report.violations.iter().any(|v| v.rule == "chunk-coverage"), "{}", report.render());

    // Lifecycle rules are not relaxed: a double end still trips.
    let log = native_log(vec![
        (0, EventKind::Offload { proc: 0, task: 0 }),
        (10, EventKind::TaskStart { proc: 0, task: 0, degree: 1, team: vec![0] }),
        (50, EventKind::TaskEnd { proc: 0, task: 0, team: vec![0] }),
        (60, EventKind::TaskEnd { proc: 0, task: 0, team: vec![0] }),
    ]);
    let report = check_run_with(&log, CheckMode::Native);
    assert!(report.violations.iter().any(|v| v.rule == "task-lifecycle"), "{}", report.render());

    // A context switch from a process that never off-loaded.
    let log = native_log(vec![(
        10,
        EventKind::CtxSwitch { proc: 3, reason: SwitchReason::Offload, held_ns: 10 },
    )]);
    let report = check_run_with(&log, CheckMode::Native);
    assert!(report.violations.iter().any(|v| v.rule == "ctx-switch"), "{}", report.render());

    // A degree decision under a non-MGPS scheduler.
    let log = native_log(vec![(
        10,
        EventKind::DegreeDecision { degree: 2, waiting: 1, n_spes: 4, window: 4, window_fill: 1 },
    )]);
    let report = check_run_with(&log, CheckMode::Native);
    assert!(report.violations.iter().any(|v| v.rule == "mgps-degree"), "{}", report.render());
}

#[test]
fn trace_sanity_passes_a_clean_trace() {
    let tracer = Tracer::new(16);
    let handle = tracer.handle();
    for i in 0..10u64 {
        handle.record(TraceEventKind::Offload { proc: 0, task: i });
    }
    let report = check_trace_sanity(&tracer.drain());
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.events_checked, 10);
    assert_eq!(report.dropped_events, 0);
}

#[test]
fn trace_sanity_surfaces_ring_overflow() {
    // Seeded overflow: a 4-slot ring fed 10 events keeps the first 4 and
    // counts 6 drops. The drops must land in the report as both a count
    // and a violation — a silently truncated trace is not a clean trace.
    let tracer = Tracer::new(4);
    let handle = tracer.handle();
    for i in 0..10u64 {
        handle.record(TraceEventKind::Offload { proc: 0, task: i });
    }
    let log = tracer.drain();
    assert_eq!(log.total_events(), 4);
    let report = check_trace_sanity(&log);
    assert_eq!(report.dropped_events, 6);
    assert!(!report.is_clean());
    let drops: Vec<_> =
        report.violations.iter().filter(|v| v.rule == "trace-drops").collect();
    assert_eq!(drops.len(), 1);
    assert!(drops[0].message.contains("6 event(s) dropped"), "{}", drops[0].message);
}
