//! The schedule-invariant checker.
//!
//! [`check_run`] replays a [`RunLog`] event by event and verifies every
//! invariant the paper's scheduling model promises, *recomputing* running
//! state (SPE occupancy, local-store budgets, mailbox depths, loop degree)
//! rather than trusting the recorded summaries. Each broken invariant
//! becomes a [`Violation`] carrying the rule name, the offending event's
//! sequence number, and a human-readable explanation.
//!
//! ## Native mode
//!
//! [`check_run_with`] takes a [`CheckMode`]. [`CheckMode::Simulated`] is
//! the full catalog below. [`CheckMode::Native`] checks a log drained from
//! the native runtime's span tracer (`mgps-obs::runlog_from_trace`), where
//! some simulator guarantees are structurally unobtainable and checking
//! them would report scheduler bugs that are really clock artifacts:
//!
//! * `fifo-order` is skipped — task ids are assigned per off-load across
//!   preemptively scheduled host threads, so start order is not id order;
//! * EDTLP context switches are required to *follow* an off-load by the
//!   yielding process, not to share its exact nanosecond (the native gate
//!   re-acquires after the off-load completes);
//! * the degree in force is not pinned between `DegreeDecision` events
//!   (decisions and grants interleave across threads); a task's team must
//!   still match its own recorded degree;
//! * `spe-overlap` occupancy is not policed (virtual SPEs are host
//!   threads; the pool's dispatch already serializes them) — per-SPE busy
//!   accounting mirrors the timeline fold instead;
//! * chunk coverage is verified against the *task's own* recorded
//!   iteration count (native loops differ per site), workers with empty
//!   ranges legitimately send no chunk, and `loop_iters` in the log
//!   header is 0.
//!
//! [`check_trace_sanity`] checks the drained trace itself, before any
//! merge: per-ring causal order and ring-overflow drop counts (`trace-
//! drops`), which the merged log can no longer see.
//!
//! ## Invariant catalog
//!
//! | rule | invariant |
//! |------|-----------|
//! | `causal-time` | event timestamps never decrease; sequence numbers are dense from 0 |
//! | `fifo-order` | tasks start in off-load (FIFO queue) order |
//! | `task-lifecycle` | every task starts once after its off-load and ends once on the team that started it |
//! | `spe-overlap` | no SPE executes two tasks at the same time |
//! | `local-store` | per-SPE buffer accounting never exceeds the 256 KB local store and never goes negative |
//! | `dma-legality` | every DMA element is 1/2/4/8 bytes or a 16-byte multiple, at most 16 KB, 16-byte aligned, in a list of at most 2,048 elements |
//! | `mailbox` | mailbox occupancy stays within hardware capacity (4/1/1) and never goes negative |
//! | `ctx-switch` | EDTLP-family schedulers switch contexts only at off-load points; the Linux baseline only at quantum expiry after a full quantum |
//! | `mgps-degree` | MGPS loop degrees stay in `1..=max(1, floor(n_spes/waiting))`, the utilization window is exactly `n_spes` long and never over-filled, and only MGPS runs make degree decisions |
//! | `chunk-coverage` | each work-shared loop is partitioned into exactly `degree` chunks that tile `0..loop_iters` with one chunk per team member |
//! | `fault-policy` | a `fault_policy` header, when present, parses back into a legal fault plan |
//! | `fault-recovery` | fault/retry/fallback events appear only under a declared plan; retries are sequential with the declared backoff and bounded by `max_retries`; every faulted (or, when armed, merely off-loaded) task is resolved exactly once — retried to completion, fallen back, or flagged lost — never duplicated; each `JobRetried`/`JobPoisoned` absorbs one unresolved task (the kernel off-load whose unrecovered death it answered) |
//! | `quarantine` | quarantine intervals per SPE are exclusive (enter once, leave once, in order), entry requires `k` consecutive faults, and no quarantined SPE is granted work |
//! | `job-lifecycle` | serve-plane jobs are admitted once (rejected ids never admitted), starts follow admission order within a tenant (FIFO), recorded queue depths match the replayed occupancy (admissions + retries − starts − sheds) and never exceed the declared bound, every admitted job reaches a terminal, and a completion's four terms partition its admission-to-completion span exactly — accumulated across attempts |
//! | `job-retry` | every admitted job reaches *exactly one* terminal (`JobCompleted`/`JobShed`/`JobPoisoned`); attempt numbers are dense per job (each `JobStarted` carries the last retry's attempt, each `JobRetried` increments by one, bounded by the declared `jobr` budget); retry backoffs equal the declared plan's recomputed `backoff_ns`; retries/poisonings require an armed fault plan and an in-flight job; a shed job was queued with a declared deadline that had genuinely expired; a poisoning records exactly `job_retries + 1` attempts |
//! | `tenant-fairness` | when the header declares `tenant_weights`, dispatch order replays exactly under deficit round-robin: each `JobStarted` pops the front of the head active tenant's queue, deficits refill from weights and rotate on exhaustion, sheds consume no deficit |
//!
//! Three relaxations apply when a fault plan is armed (`fault_policy`
//! header present): `fifo-order` is skipped (watchdog retries legally
//! re-enter the queue out of id order), the degree in force is not
//! pinned between `DegreeDecision` events (grants clamp to the healthy-SPE
//! count, which the decision stream cannot see), and a rejection's
//! recorded depth may exceed the declared bound (job retries re-enter the
//! queue past the admission gate).

use std::collections::{BTreeMap, HashMap, VecDeque};

use cellsim::event::{EventKind, MailboxKind, RunLog, SchedulerTag, SwitchReason};
use des::trace::TraceRecord;
use mgps_runtime::faults::{FaultKind, FaultPlan};
use mgps_runtime::tracing::TraceLog;

/// What produced the log under check, selecting which invariants apply
/// (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMode {
    /// A `cellsim` discrete-event log: the full invariant catalog.
    Simulated,
    /// A native-runtime span trace merged into [`RunLog`] form.
    Native,
}

/// Hardware cap on a single DMA transfer (16 KB).
const DMA_MAX_TRANSFER: usize = 16 * 1024;
/// Hardware cap on DMA list length.
const DMA_MAX_LIST: usize = 2048;
/// Required DMA address alignment (128 bits).
const DMA_ALIGNMENT: usize = 16;

/// One broken invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant broke (see the module-level catalog).
    pub rule: &'static str,
    /// Sequence number of the offending event, when one event is to blame
    /// (`None` for whole-log properties such as a task that never ended).
    pub seq: Option<u64>,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.seq {
            Some(seq) => write!(f, "[{}] event {}: {}", self.rule, seq, self.message),
            None => write!(f, "[{}] {}", self.rule, self.message),
        }
    }
}

/// The checker's verdict over one run.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Every violation found, in event order.
    pub violations: Vec<Violation>,
    /// Events examined.
    pub events_checked: usize,
    /// Distinct tasks that started.
    pub tasks_checked: usize,
    /// Nanoseconds each SPE spent occupied by a task, recomputed from the
    /// `TaskStart`/`TaskEnd` replay (indexed by SPE). Trace exporters are
    /// validated against this accounting.
    pub spe_busy_ns: Vec<u64>,
    /// Ring-overflow drops reported by [`check_trace_sanity`] (always 0
    /// for [`check_run`]: a merged log cannot see what was never recorded).
    pub dropped_events: u64,
}

impl CheckReport {
    /// True when no invariant broke.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// One line per violation (empty string when clean).
    pub fn render(&self) -> String {
        self.violations.iter().map(|v| format!("{v}\n")).collect()
    }
}

/// Per-job bookkeeping accumulated during the replay.
#[derive(Debug)]
struct JobState {
    tenant: usize,
    submit_seq: u64,
    submitted_ns: u64,
    /// Deadline the admission declared (0 = none).
    deadline_ns: u64,
    /// The job has started at least once.
    started: bool,
    /// Currently executing: started, not yet retried or terminal.
    in_flight: bool,
    /// Attempt number the most recent start carried — which is also the
    /// attempt the *next* start must carry (a retry bumps it first).
    attempt: u64,
    /// The terminal this job reached, if any (exactly one is legal).
    terminal: Option<&'static str>,
}

/// Per-task bookkeeping accumulated during the replay.
#[derive(Debug)]
struct TaskInfo {
    proc: usize,
    start_seq: u64,
    start_ns: u64,
    degree: usize,
    team: Vec<usize>,
    chunks: Vec<(usize, usize, usize, usize)>, // (start, len, worker, loop_iters)
    ended: bool,
}

/// Statically verify every schedule invariant of `log` (simulator rules).
pub fn check_run(log: &RunLog) -> CheckReport {
    check_run_with(log, CheckMode::Simulated)
}

/// Statically verify the schedule invariants of `log` under `mode`.
pub fn check_run_with(log: &RunLog, mode: CheckMode) -> CheckReport {
    let mut report = CheckReport { events_checked: log.events.len(), ..CheckReport::default() };
    let v = &mut report.violations;

    let n_spes = log.n_spes;
    // Replay state, all recomputed from scratch.
    let mut spe_busy_ns: Vec<u64> = vec![0; n_spes];
    let mut prev_at: u64 = 0;
    let mut busy: Vec<Option<u64>> = vec![None; n_spes]; // task occupying each SPE
    let mut busy_since: Vec<u64> = vec![0; n_spes]; // start ns of the occupant
    let mut ls_in_use: Vec<usize> = vec![0; n_spes];
    let mut mailbox_occ: Vec<[usize; 3]> = vec![[0; 3]; n_spes];
    let mut offloaded: BTreeMap<u64, (usize, u64)> = BTreeMap::new(); // task -> (proc, seq)
    let mut last_offload_at: HashMap<usize, u64> = HashMap::new(); // proc -> at_ns
    let mut tasks: BTreeMap<u64, TaskInfo> = BTreeMap::new();
    let mut last_started: Option<u64> = None;
    let mut expected_degree: usize = initial_degree(log.scheduler);

    // Fault-plane replay state. The header's canonical spec rebuilds the
    // exact plan, letting the checker recompute the declared backoff
    // sequence instead of trusting the recorded values.
    let plan: Option<FaultPlan> = match log.fault_policy.as_deref() {
        None => None,
        Some(spec) => match FaultPlan::parse(spec) {
            Ok(p) => Some(p),
            Err(err) => {
                v.push(Violation {
                    rule: "fault-policy",
                    seq: None,
                    message: format!("unparseable fault_policy header '{spec}': {err}"),
                });
                None
            }
        },
    };
    let armed = plan.is_some();
    let mut task_faults: BTreeMap<u64, u64> = BTreeMap::new(); // task -> faults seen
    let mut task_fallback: HashMap<u64, u64> = HashMap::new(); // task -> fallback seq
    let mut task_retry_next: HashMap<u64, u64> = HashMap::new(); // task -> expected attempt
    let mut in_quarantine: Vec<bool> = vec![false; n_spes];

    // Job-plane replay state: admission is one bounded queue whose
    // occupancy (submitted, not yet started) the checker recomputes, plus
    // a per-tenant FIFO of pending job ids.
    let mut jobs: BTreeMap<u64, JobState> = BTreeMap::new();
    let mut rejected_jobs: BTreeMap<u64, u64> = BTreeMap::new(); // job -> seq
    let mut tenant_fifo: HashMap<usize, VecDeque<u64>> = HashMap::new();
    let mut job_queue_occ: usize = 0;
    let mut job_queue_cap: Option<usize> = None;

    for (i, e) in log.events.iter().enumerate() {
        // causal-time: dense sequence numbers, monotone timestamps. Ties are
        // legal (many events share an instant); the recorded order *is* the
        // FIFO tie-break, so it must be reproducible from (at_ns, seq) alone.
        if e.seq != i as u64 {
            v.push(Violation {
                rule: "causal-time",
                seq: Some(e.seq),
                message: format!("sequence number {} at position {i} (must be dense from 0)", e.seq),
            });
        }
        if e.at_ns < prev_at {
            v.push(Violation {
                rule: "causal-time",
                seq: Some(e.seq),
                message: format!("timestamp {} ns precedes predecessor at {} ns", e.at_ns, prev_at),
            });
        }
        prev_at = prev_at.max(e.at_ns);

        match &e.kind {
            EventKind::Offload { proc, task } => {
                if let Some((other, prev_seq)) = offloaded.insert(*task, (*proc, e.seq)) {
                    v.push(Violation {
                        rule: "task-lifecycle",
                        seq: Some(e.seq),
                        message: format!(
                            "task {task} off-loaded twice (first by proc {other} at event {prev_seq})"
                        ),
                    });
                }
                last_offload_at.insert(*proc, e.at_ns);
            }
            EventKind::CtxSwitch { proc, reason, held_ns } => {
                check_ctx_switch(
                    log, mode, e.seq, e.at_ns, *proc, *reason, *held_ns, &last_offload_at, v,
                );
            }
            EventKind::TaskStart { proc, task, degree, team } => {
                check_task_start(
                    log, mode, armed, e.seq, *proc, *task, *degree, team, expected_degree,
                    &offloaded, &last_started, &mut busy, v,
                );
                for &spe in team {
                    if spe < n_spes {
                        busy_since[spe] = e.at_ns;
                        if in_quarantine[spe] {
                            v.push(Violation {
                                rule: "quarantine",
                                seq: Some(e.seq),
                                message: format!(
                                    "task {task} starts on SPE {spe} while it is quarantined"
                                ),
                            });
                        }
                    }
                }
                last_started = Some(*task);
                tasks.insert(
                    *task,
                    TaskInfo {
                        proc: *proc,
                        start_seq: e.seq,
                        start_ns: e.at_ns,
                        degree: *degree,
                        team: team.clone(),
                        chunks: Vec::new(),
                        ended: false,
                    },
                );
            }
            EventKind::TaskEnd { proc, task, team } => {
                // Accumulate busy time before the replay state is cleared.
                match mode {
                    // Only SPEs genuinely occupied by this task count.
                    CheckMode::Simulated => {
                        for &spe in team {
                            if spe < n_spes && busy[spe] == Some(*task) {
                                spe_busy_ns[spe] += e.at_ns.saturating_sub(busy_since[spe]);
                            }
                        }
                    }
                    // Occupancy is not policed natively: mirror the
                    // timeline fold (each team member is busy from the
                    // task's start to its end).
                    CheckMode::Native => {
                        if let Some(info) = tasks.get(task) {
                            for &spe in &info.team {
                                if spe < n_spes {
                                    spe_busy_ns[spe] +=
                                        e.at_ns.saturating_sub(info.start_ns);
                                }
                            }
                        }
                    }
                }
                check_task_end(mode, e.seq, *proc, *task, team, &mut tasks, &mut busy, v);
            }
            EventKind::Dma { spe, element_bytes, local_addr, main_addr } => {
                check_dma(e.seq, *spe, element_bytes, *local_addr, *main_addr, n_spes, v);
            }
            EventKind::MailboxWrite { spe, mailbox, occupancy } => {
                check_mailbox(e.seq, *spe, *mailbox, *occupancy, true, &mut mailbox_occ, v);
            }
            EventKind::MailboxRead { spe, mailbox, occupancy } => {
                check_mailbox(e.seq, *spe, *mailbox, *occupancy, false, &mut mailbox_occ, v);
            }
            EventKind::LsAlloc { spe, bytes, in_use } => {
                if *spe >= n_spes {
                    v.push(bad_spe("local-store", e.seq, *spe, n_spes));
                } else {
                    ls_in_use[*spe] += bytes;
                    if ls_in_use[*spe] > log.local_store_bytes {
                        v.push(Violation {
                            rule: "local-store",
                            seq: Some(e.seq),
                            message: format!(
                                "SPE {spe} local store over capacity: {} of {} bytes reserved",
                                ls_in_use[*spe], log.local_store_bytes
                            ),
                        });
                    }
                    if ls_in_use[*spe] != *in_use {
                        v.push(Violation {
                            rule: "local-store",
                            seq: Some(e.seq),
                            message: format!(
                                "SPE {spe} recorded {in_use} bytes in use but the allocations sum to {}",
                                ls_in_use[*spe]
                            ),
                        });
                    }
                }
            }
            EventKind::LsFree { spe, bytes, in_use } => {
                if *spe >= n_spes {
                    v.push(bad_spe("local-store", e.seq, *spe, n_spes));
                } else if ls_in_use[*spe] < *bytes {
                    v.push(Violation {
                        rule: "local-store",
                        seq: Some(e.seq),
                        message: format!(
                            "SPE {spe} frees {bytes} bytes with only {} reserved (negative balance)",
                            ls_in_use[*spe]
                        ),
                    });
                    ls_in_use[*spe] = 0;
                } else {
                    ls_in_use[*spe] -= bytes;
                    if ls_in_use[*spe] != *in_use {
                        v.push(Violation {
                            rule: "local-store",
                            seq: Some(e.seq),
                            message: format!(
                                "SPE {spe} recorded {in_use} bytes in use but the allocations sum to {}",
                                ls_in_use[*spe]
                            ),
                        });
                    }
                }
            }
            EventKind::Chunk { task, loop_iters, start, len, worker } => {
                // The simulator runs one loop shape; native sites differ
                // per task, so each task's chunks carry (and must agree
                // on) their own iteration count, checked at end of log.
                if mode == CheckMode::Simulated && *loop_iters != log.loop_iters {
                    v.push(Violation {
                        rule: "chunk-coverage",
                        seq: Some(e.seq),
                        message: format!(
                            "chunk of task {task} claims {loop_iters} loop iterations; the run has {}",
                            log.loop_iters
                        ),
                    });
                }
                match tasks.get_mut(task) {
                    Some(info) => info.chunks.push((*start, *len, *worker, *loop_iters)),
                    None => v.push(Violation {
                        rule: "chunk-coverage",
                        seq: Some(e.seq),
                        message: format!("chunk for task {task} which never started"),
                    }),
                }
            }
            EventKind::CodeReload { spe, .. } => {
                if *spe >= n_spes {
                    v.push(bad_spe("spe-overlap", e.seq, *spe, n_spes));
                }
            }
            EventKind::DmaComplete { spe, .. } => {
                if *spe >= n_spes {
                    v.push(bad_spe("dma-legality", e.seq, *spe, n_spes));
                }
            }
            EventKind::DegreeDecision { degree, waiting, n_spes: dn, window, window_fill } => {
                check_degree_decision(
                    log, e.seq, *degree, *waiting, *dn, *window, *window_fill, v,
                );
                expected_degree = *degree;
            }
            EventKind::Health { alarm, severity, .. } => {
                // Informational, but its vocabulary is closed: an unknown
                // alarm or severity slug means a producer drifted from the
                // schema.
                const ALARMS: [&str; 6] = [
                    "utilization_collapse",
                    "stall_spike",
                    "ring_drop",
                    "quarantine_storm",
                    "latency_slo_burn",
                    "tenant_starvation",
                ];
                if !ALARMS.contains(&alarm.as_str()) {
                    v.push(Violation {
                        rule: "health-schema",
                        seq: Some(e.seq),
                        message: format!("unknown health alarm slug '{alarm}'"),
                    });
                }
                if severity != "warning" && severity != "critical" {
                    v.push(Violation {
                        rule: "health-schema",
                        seq: Some(e.seq),
                        message: format!("unknown health severity '{severity}'"),
                    });
                }
            }
            EventKind::GranularityVerdict { kernel, offload, throttled, reprobe } => {
                // Informational, like Health, but with a closed kernel
                // vocabulary and internally consistent flags: a re-probe is
                // by definition a granted off-load, and a PPE verdict only
                // happens to a throttled kernel.
                const KERNELS: [&str; 3] = ["newview", "makenewz", "evaluate"];
                if !KERNELS.contains(&kernel.as_str()) {
                    v.push(Violation {
                        rule: "granularity-schema",
                        seq: Some(e.seq),
                        message: format!("unknown kernel slug '{kernel}' in granularity verdict"),
                    });
                }
                if *reprobe && !offload {
                    v.push(Violation {
                        rule: "granularity-schema",
                        seq: Some(e.seq),
                        message: format!(
                            "granularity verdict for '{kernel}' marks a re-probe without an off-load"
                        ),
                    });
                }
                if !offload && !throttled {
                    v.push(Violation {
                        rule: "granularity-schema",
                        seq: Some(e.seq),
                        message: format!(
                            "granularity verdict keeps '{kernel}' on the PPE without marking it throttled"
                        ),
                    });
                }
            }
            EventKind::FaultInjected { spe, task, fault, attempt } => {
                if !armed {
                    v.push(Violation {
                        rule: "fault-recovery",
                        seq: Some(e.seq),
                        message: format!(
                            "fault injected into task {task} but the log declares no fault policy"
                        ),
                    });
                }
                if *spe >= n_spes {
                    v.push(bad_spe("fault-recovery", e.seq, *spe, n_spes));
                } else if in_quarantine[*spe] {
                    v.push(Violation {
                        rule: "quarantine",
                        seq: Some(e.seq),
                        message: format!(
                            "fault on SPE {spe} while it is quarantined (must not be granted work)"
                        ),
                    });
                }
                if FaultKind::from_name(fault).is_none() {
                    v.push(Violation {
                        rule: "fault-recovery",
                        seq: Some(e.seq),
                        message: format!("unknown fault kind slug '{fault}'"),
                    });
                }
                if !offloaded.contains_key(task) {
                    v.push(Violation {
                        rule: "fault-recovery",
                        seq: Some(e.seq),
                        message: format!("fault for task {task} which was never off-loaded"),
                    });
                }
                let faults = task_faults.entry(*task).or_insert(0);
                *faults += 1;
                if *faults != attempt + 1 {
                    v.push(Violation {
                        rule: "fault-recovery",
                        seq: Some(e.seq),
                        message: format!(
                            "task {task} fault on attempt {attempt} but {faults} fault(s) recorded \
                             (every attempt up to here must have faulted)"
                        ),
                    });
                }
            }
            EventKind::OffloadRetry { task, attempt, backoff_ns } => {
                let expected = task_retry_next.get(task).copied().unwrap_or(1);
                if *attempt != expected {
                    v.push(Violation {
                        rule: "fault-recovery",
                        seq: Some(e.seq),
                        message: format!(
                            "task {task} retry numbered {attempt}; expected {expected} (retries are sequential from 1)"
                        ),
                    });
                }
                task_retry_next.insert(*task, *attempt + 1);
                if task_faults.get(task).copied().unwrap_or(0) < *attempt {
                    v.push(Violation {
                        rule: "fault-recovery",
                        seq: Some(e.seq),
                        message: format!("task {task} retried without a preceding fault"),
                    });
                }
                if let Some(p) = &plan {
                    if *attempt >= 1 && *attempt <= u64::from(u32::MAX) {
                        let declared = p.backoff_ns(*task, *attempt as u32);
                        if *backoff_ns != declared {
                            v.push(Violation {
                                rule: "fault-recovery",
                                seq: Some(e.seq),
                                message: format!(
                                    "task {task} retry {attempt} backed off {backoff_ns} ns; the declared policy computes {declared} ns"
                                ),
                            });
                        }
                    }
                    if *attempt > u64::from(p.policy.max_retries) {
                        v.push(Violation {
                            rule: "fault-recovery",
                            seq: Some(e.seq),
                            message: format!(
                                "task {task} retry {attempt} exceeds the declared max_retries {}",
                                p.policy.max_retries
                            ),
                        });
                    }
                }
            }
            EventKind::SpeQuarantined { spe, faults } => {
                if !armed {
                    v.push(Violation {
                        rule: "quarantine",
                        seq: Some(e.seq),
                        message: format!(
                            "SPE {spe} quarantined but the log declares no fault policy"
                        ),
                    });
                }
                if *spe >= n_spes {
                    v.push(bad_spe("quarantine", e.seq, *spe, n_spes));
                } else if in_quarantine[*spe] {
                    v.push(Violation {
                        rule: "quarantine",
                        seq: Some(e.seq),
                        message: format!(
                            "SPE {spe} quarantined twice (intervals must be exclusive)"
                        ),
                    });
                } else {
                    in_quarantine[*spe] = true;
                }
                if let Some(p) = &plan {
                    if *faults < u64::from(p.policy.quarantine_k) {
                        v.push(Violation {
                            rule: "quarantine",
                            seq: Some(e.seq),
                            message: format!(
                                "SPE {spe} quarantined after {faults} consecutive fault(s); the policy requires k={}",
                                p.policy.quarantine_k
                            ),
                        });
                    }
                }
            }
            EventKind::SpeReadmitted { spe } => {
                if *spe >= n_spes {
                    v.push(bad_spe("quarantine", e.seq, *spe, n_spes));
                } else if !in_quarantine[*spe] {
                    v.push(Violation {
                        rule: "quarantine",
                        seq: Some(e.seq),
                        message: format!("SPE {spe} re-admitted while not quarantined"),
                    });
                } else {
                    in_quarantine[*spe] = false;
                }
            }
            EventKind::PpeFallback { proc, task, attempts } => {
                if !armed {
                    v.push(Violation {
                        rule: "fault-recovery",
                        seq: Some(e.seq),
                        message: format!(
                            "task {task} fell back to the PPE but the log declares no fault policy"
                        ),
                    });
                }
                match offloaded.get(task) {
                    None => v.push(Violation {
                        rule: "fault-recovery",
                        seq: Some(e.seq),
                        message: format!(
                            "PPE fallback for task {task} which was never off-loaded"
                        ),
                    }),
                    Some((owner, _)) if *owner != *proc => v.push(Violation {
                        rule: "fault-recovery",
                        seq: Some(e.seq),
                        message: format!(
                            "task {task} off-loaded by proc {owner} but fell back for proc {proc}"
                        ),
                    }),
                    Some(_) => {}
                }
                if tasks.get(task).is_some_and(|t| t.ended) {
                    v.push(Violation {
                        rule: "fault-recovery",
                        seq: Some(e.seq),
                        message: format!(
                            "task {task} fell back to the PPE after completing on SPEs (duplicated)"
                        ),
                    });
                }
                if let Some(prev) = task_fallback.insert(*task, e.seq) {
                    v.push(Violation {
                        rule: "fault-recovery",
                        seq: Some(e.seq),
                        message: format!(
                            "task {task} fell back twice (first at event {prev})"
                        ),
                    });
                }
                if let Some(p) = &plan {
                    if *attempts > u64::from(p.policy.max_retries) + 1 {
                        v.push(Violation {
                            rule: "fault-recovery",
                            seq: Some(e.seq),
                            message: format!(
                                "task {task} fell back after {attempts} attempts; the policy allows at most {}",
                                p.policy.max_retries + 1
                            ),
                        });
                    }
                }
            }
            EventKind::JobSubmitted { job, tenant, deadline_ns, queue_depth, queue_cap, .. } => {
                if rejected_jobs.contains_key(job) {
                    v.push(Violation {
                        rule: "job-lifecycle",
                        seq: Some(e.seq),
                        message: format!(
                            "job {job} admitted after being rejected (ids are unique per run)"
                        ),
                    });
                }
                let state = JobState {
                    tenant: *tenant,
                    submit_seq: e.seq,
                    submitted_ns: e.at_ns,
                    deadline_ns: *deadline_ns,
                    started: false,
                    in_flight: false,
                    attempt: 0,
                    terminal: None,
                };
                if jobs.insert(*job, state).is_some() {
                    v.push(Violation {
                        rule: "job-lifecycle",
                        seq: Some(e.seq),
                        message: format!("job {job} admitted twice"),
                    });
                } else {
                    job_queue_occ += 1;
                    tenant_fifo.entry(*tenant).or_default().push_back(*job);
                }
                if *queue_depth != job_queue_occ {
                    v.push(Violation {
                        rule: "job-lifecycle",
                        seq: Some(e.seq),
                        message: format!(
                            "job {job} admission records queue depth {queue_depth}; the admissions and starts sum to {job_queue_occ}"
                        ),
                    });
                }
                if *queue_depth > *queue_cap {
                    v.push(Violation {
                        rule: "job-lifecycle",
                        seq: Some(e.seq),
                        message: format!(
                            "job {job} admitted at queue depth {queue_depth}, over the declared bound {queue_cap}"
                        ),
                    });
                }
                check_job_queue_cap(e.seq, *queue_cap, &mut job_queue_cap, v);
            }
            EventKind::JobStarted { job, tenant, attempt } => {
                match jobs.get_mut(job) {
                    None => v.push(Violation {
                        rule: "job-lifecycle",
                        seq: Some(e.seq),
                        message: format!("job {job} started without an admission record"),
                    }),
                    Some(state) => {
                        if state.in_flight {
                            v.push(Violation {
                                rule: "job-lifecycle",
                                seq: Some(e.seq),
                                message: format!("job {job} started twice"),
                            });
                        } else if let Some(term) = state.terminal {
                            v.push(Violation {
                                rule: "job-retry",
                                seq: Some(e.seq),
                                message: format!("job {job} started after its terminal ({term})"),
                            });
                        } else {
                            state.started = true;
                            state.in_flight = true;
                            job_queue_occ = job_queue_occ.saturating_sub(1);
                        }
                        if *attempt != state.attempt {
                            v.push(Violation {
                                rule: "job-retry",
                                seq: Some(e.seq),
                                message: format!(
                                    "job {job} started as attempt {attempt}; the retry stream says attempt {} (attempt numbers are dense per job)",
                                    state.attempt
                                ),
                            });
                        }
                        if state.tenant != *tenant {
                            v.push(Violation {
                                rule: "job-lifecycle",
                                seq: Some(e.seq),
                                message: format!(
                                    "job {job} admitted by tenant {} but started for tenant {tenant}",
                                    state.tenant
                                ),
                            });
                        }
                    }
                }
                let fifo = tenant_fifo.entry(*tenant).or_default();
                match fifo.front() {
                    Some(&front) if front == *job => {
                        fifo.pop_front();
                    }
                    Some(&front) => {
                        v.push(Violation {
                            rule: "job-lifecycle",
                            seq: Some(e.seq),
                            message: format!(
                                "job {job} started before job {front} of the same tenant (admission is FIFO within a tenant)"
                            ),
                        });
                        fifo.retain(|j| j != job);
                    }
                    None => {} // never admitted; already flagged above
                }
            }
            EventKind::JobCompleted {
                job,
                tenant,
                t_queue_ns,
                t_dispatch_ns,
                t_kernel_ns,
                t_reduce_ns,
            } => match jobs.get_mut(job) {
                None => v.push(Violation {
                    rule: "job-lifecycle",
                    seq: Some(e.seq),
                    message: format!("job {job} completed without an admission record"),
                }),
                Some(state) => {
                    if !state.started {
                        v.push(Violation {
                            rule: "job-lifecycle",
                            seq: Some(e.seq),
                            message: format!("job {job} completed without starting"),
                        });
                    }
                    if let Some(term) = state.terminal {
                        v.push(Violation {
                            rule: "job-retry",
                            seq: Some(e.seq),
                            message: format!(
                                "job {job} completed after already reaching a terminal ({term}); exactly-once completion is broken"
                            ),
                        });
                    }
                    state.terminal = Some("completed");
                    state.in_flight = false;
                    if state.tenant != *tenant {
                        v.push(Violation {
                            rule: "job-lifecycle",
                            seq: Some(e.seq),
                            message: format!(
                                "job {job} admitted by tenant {} but completed for tenant {tenant}",
                                state.tenant
                            ),
                        });
                    }
                    let span = e.at_ns.saturating_sub(state.submitted_ns);
                    let sum = t_queue_ns + t_dispatch_ns + t_kernel_ns + t_reduce_ns;
                    if sum != span {
                        v.push(Violation {
                            rule: "job-lifecycle",
                            seq: Some(e.seq),
                            message: format!(
                                "job {job} terms sum to {sum} ns but its admission-to-completion span is {span} ns (the partition must be exact)"
                            ),
                        });
                    }
                }
            },
            EventKind::JobRejected { job, tenant, queue_depth, queue_cap } => {
                if jobs.contains_key(job) {
                    v.push(Violation {
                        rule: "job-lifecycle",
                        seq: Some(e.seq),
                        message: format!(
                            "job {job} of tenant {tenant} rejected after being admitted"
                        ),
                    });
                }
                if rejected_jobs.insert(*job, e.seq).is_some() {
                    v.push(Violation {
                        rule: "job-lifecycle",
                        seq: Some(e.seq),
                        message: format!("job {job} rejected twice"),
                    });
                }
                if *queue_depth != job_queue_occ {
                    v.push(Violation {
                        rule: "job-lifecycle",
                        seq: Some(e.seq),
                        message: format!(
                            "job {job} rejection records queue depth {queue_depth}; the admissions and starts sum to {job_queue_occ}"
                        ),
                    });
                }
                // Armed runs may legally reject above the bound: retries
                // re-enter the queue past the admission gate.
                if !armed && *queue_depth > *queue_cap {
                    v.push(Violation {
                        rule: "job-lifecycle",
                        seq: Some(e.seq),
                        message: format!(
                            "job {job} rejection records queue depth {queue_depth}, over the declared bound {queue_cap}"
                        ),
                    });
                }
                check_job_queue_cap(e.seq, *queue_cap, &mut job_queue_cap, v);
            }
            EventKind::JobShed { job, tenant, deadline_ns } => {
                match jobs.get_mut(job) {
                    None => v.push(Violation {
                        rule: "job-lifecycle",
                        seq: Some(e.seq),
                        message: format!("job {job} shed without an admission record"),
                    }),
                    Some(state) => {
                        if state.in_flight {
                            v.push(Violation {
                                rule: "job-retry",
                                seq: Some(e.seq),
                                message: format!(
                                    "job {job} shed while in flight (sheds happen in the queue)"
                                ),
                            });
                        }
                        if let Some(term) = state.terminal {
                            v.push(Violation {
                                rule: "job-retry",
                                seq: Some(e.seq),
                                message: format!(
                                    "job {job} shed after already reaching a terminal ({term}); exactly-once completion is broken"
                                ),
                            });
                        }
                        state.terminal = Some("shed");
                        job_queue_occ = job_queue_occ.saturating_sub(1);
                        if state.tenant != *tenant {
                            v.push(Violation {
                                rule: "job-lifecycle",
                                seq: Some(e.seq),
                                message: format!(
                                    "job {job} admitted by tenant {} but shed for tenant {tenant}",
                                    state.tenant
                                ),
                            });
                        }
                        if *deadline_ns == 0 || state.deadline_ns != *deadline_ns {
                            v.push(Violation {
                                rule: "job-retry",
                                seq: Some(e.seq),
                                message: format!(
                                    "job {job} shed against deadline {deadline_ns} ns but its admission declared {} ns",
                                    state.deadline_ns
                                ),
                            });
                        } else if e.at_ns.saturating_sub(state.submitted_ns) < *deadline_ns {
                            v.push(Violation {
                                rule: "job-retry",
                                seq: Some(e.seq),
                                message: format!(
                                    "job {job} shed {} ns after admission, before its {deadline_ns} ns deadline expired",
                                    e.at_ns.saturating_sub(state.submitted_ns)
                                ),
                            });
                        }
                    }
                }
                tenant_fifo.entry(*tenant).or_default().retain(|j| j != job);
            }
            EventKind::JobRetried { job, tenant, attempt, backoff_ns } => {
                if !armed {
                    v.push(Violation {
                        rule: "job-retry",
                        seq: Some(e.seq),
                        message: format!(
                            "job {job} retried but the log declares no fault policy"
                        ),
                    });
                }
                match jobs.get_mut(job) {
                    None => v.push(Violation {
                        rule: "job-lifecycle",
                        seq: Some(e.seq),
                        message: format!("job {job} retried without an admission record"),
                    }),
                    Some(state) => {
                        if let Some(term) = state.terminal {
                            v.push(Violation {
                                rule: "job-retry",
                                seq: Some(e.seq),
                                message: format!(
                                    "job {job} retried after its terminal ({term})"
                                ),
                            });
                        } else if !state.in_flight {
                            v.push(Violation {
                                rule: "job-retry",
                                seq: Some(e.seq),
                                message: format!(
                                    "job {job} retried while not in flight (only a failed execution retries)"
                                ),
                            });
                        }
                        if *attempt != state.attempt + 1 {
                            v.push(Violation {
                                rule: "job-retry",
                                seq: Some(e.seq),
                                message: format!(
                                    "job {job} retried as attempt {attempt} after attempt {} (attempts increment by one)",
                                    state.attempt
                                ),
                            });
                        }
                        state.attempt = *attempt;
                        state.in_flight = false;
                        job_queue_occ += 1;
                        if let Some(p) = &plan {
                            if *attempt > u64::from(p.policy.job_retries) {
                                v.push(Violation {
                                    rule: "job-retry",
                                    seq: Some(e.seq),
                                    message: format!(
                                        "job {job} retried as attempt {attempt}; the policy budgets {} retries",
                                        p.policy.job_retries
                                    ),
                                });
                            }
                            let expected = p.backoff_ns(*job, *attempt as u32);
                            if *backoff_ns != expected {
                                v.push(Violation {
                                    rule: "job-retry",
                                    seq: Some(e.seq),
                                    message: format!(
                                        "job {job} retry declares backoff {backoff_ns} ns; the declared plan computes {expected} ns"
                                    ),
                                });
                            }
                        }
                    }
                }
                tenant_fifo.entry(*tenant).or_default().push_back(*job);
            }
            EventKind::JobPoisoned { job, tenant, attempts } => {
                if !armed {
                    v.push(Violation {
                        rule: "job-retry",
                        seq: Some(e.seq),
                        message: format!(
                            "job {job} poisoned but the log declares no fault policy"
                        ),
                    });
                }
                match jobs.get_mut(job) {
                    None => v.push(Violation {
                        rule: "job-lifecycle",
                        seq: Some(e.seq),
                        message: format!("job {job} poisoned without an admission record"),
                    }),
                    Some(state) => {
                        if let Some(term) = state.terminal {
                            v.push(Violation {
                                rule: "job-retry",
                                seq: Some(e.seq),
                                message: format!(
                                    "job {job} poisoned after already reaching a terminal ({term}); exactly-once completion is broken"
                                ),
                            });
                        } else if !state.in_flight {
                            v.push(Violation {
                                rule: "job-retry",
                                seq: Some(e.seq),
                                message: format!(
                                    "job {job} poisoned while not in flight (quarantine follows a failed execution)"
                                ),
                            });
                        }
                        state.terminal = Some("poisoned");
                        state.in_flight = false;
                        if *attempts != state.attempt + 1 {
                            v.push(Violation {
                                rule: "job-retry",
                                seq: Some(e.seq),
                                message: format!(
                                    "job {job} poisoned after a recorded {attempts} attempts but {} were observed",
                                    state.attempt + 1
                                ),
                            });
                        }
                        if let Some(p) = &plan {
                            if *attempts != u64::from(p.policy.job_retries) + 1 {
                                v.push(Violation {
                                    rule: "job-retry",
                                    seq: Some(e.seq),
                                    message: format!(
                                        "job {job} poisoned after {attempts} attempts; the policy quarantines after exactly {}",
                                        u64::from(p.policy.job_retries) + 1
                                    ),
                                });
                            }
                        }
                        if state.tenant != *tenant {
                            v.push(Violation {
                                rule: "job-lifecycle",
                                seq: Some(e.seq),
                                message: format!(
                                    "job {job} admitted by tenant {} but poisoned for tenant {tenant}",
                                    state.tenant
                                ),
                            });
                        }
                    }
                }
            }
        }
    }

    // job-lifecycle whole-log balance: every admitted job reached a
    // terminal (completed, shed, or poisoned). An interrupted serve
    // drains its queue before exiting, so an admitted-but-unterminated
    // job means the drain was cut short.
    for (job, state) in &jobs {
        if state.terminal.is_none() {
            let what = if state.started { "started" } else { "admitted" };
            report.violations.push(Violation {
                rule: "job-lifecycle",
                seq: Some(state.submit_seq),
                message: format!(
                    "job {job} {what} but never completed, was shed, or was poisoned"
                ),
            });
        }
    }

    // tenant-fairness: a log whose header declares DRR weights must
    // dispatch exactly as deficit round-robin replays. Old logs (and
    // equal-weight runs, which omit the header) are exempt — their global
    // FIFO legally interleaves tenants differently.
    if let Some(weights) = &log.tenant_weights {
        check_tenant_fairness(log, weights, &mut report.violations);
    }

    // Whole-log properties: every started task ended, and its chunks tile
    // the iteration space exactly once across its team.
    report.spe_busy_ns = spe_busy_ns;
    report.tasks_checked = tasks.len();
    for (task, info) in &tasks {
        if !info.ended {
            report.violations.push(Violation {
                rule: "task-lifecycle",
                seq: Some(info.start_seq),
                message: format!("task {task} started but never ended"),
            });
        }
        check_chunk_coverage(mode, *task, info, log.loop_iters, &mut report.violations);
    }
    // fault-recovery: every faulted off-load must resolve exactly once —
    // either its retry eventually ran on SPEs (TaskStart/TaskEnd) or it
    // degraded to the PPE (PpeFallback), never both and never neither.
    // Exception: each job-plane `JobRetried`/`JobPoisoned` record absorbs
    // exactly one unresolved task — the kernel off-load whose unrecovered
    // death it answered. Only losses beyond that budget are violations.
    let mut absorbed = log
        .events
        .iter()
        .filter(|e| {
            matches!(e.kind, EventKind::JobRetried { .. } | EventKind::JobPoisoned { .. })
        })
        .count();
    for task in task_faults.keys() {
        let ended = tasks.get(task).is_some_and(|t| t.ended);
        let fell_back = task_fallback.contains_key(task);
        if ended && fell_back {
            report.violations.push(Violation {
                rule: "fault-recovery",
                seq: None,
                message: format!(
                    "task {task} both completed on SPEs and fell back to the PPE (duplicated)"
                ),
            });
        }
        if !ended && !fell_back {
            if absorbed > 0 {
                absorbed -= 1;
                continue;
            }
            report.violations.push(Violation {
                rule: "fault-recovery",
                seq: None,
                message: format!(
                    "task {task} faulted but never completed anywhere (lost)"
                ),
            });
        }
    }
    if armed {
        // With a fault plan armed the run may still end with work stuck in
        // the queue (retries exhausted, fallback disabled). Surface every
        // off-loaded task that resolved nowhere; unarmed logs are already
        // covered by task-lifecycle above.
        let pending = offloaded.keys().filter(|t| {
            !tasks.contains_key(*t)
                && !task_fallback.contains_key(*t)
                && !task_faults.contains_key(*t)
        });
        for task in pending {
            report.violations.push(Violation {
                rule: "fault-recovery",
                seq: None,
                message: format!("task {task} was off-loaded but never started, faulted, or fell back (lost)"),
            });
        }
    }
    if mode == CheckMode::Simulated {
        for (spe, occupant) in busy.iter().enumerate() {
            if let Some(task) = occupant {
                report.violations.push(Violation {
                    rule: "spe-overlap",
                    seq: None,
                    message: format!("SPE {spe} still occupied by task {task} at end of log"),
                });
            }
        }
    }
    report
}

/// Replay the serve plane's deficit-round-robin dispatcher as a pure
/// function of event order and assert every `JobStarted` agrees with it.
///
/// All admission-plane stamps are taken under one lock and are strictly
/// increasing, so the merged log's event order *is* dispatcher order: the
/// replay needs no clock reasoning. The discipline mirrored here —
/// refill-from-weight when the head tenant's deficit is spent, one job
/// per deficit unit, rotate on exhaustion with work left, deactivate and
/// forfeit on empty, sheds consume no deficit — is the serve
/// implementation's, re-derived independently from the declared weights.
fn check_tenant_fairness(log: &RunLog, weights: &[u64], v: &mut Vec<Violation>) {
    let weight = |t: usize| weights.get(t).copied().unwrap_or(1).max(1);
    let mut queues: BTreeMap<usize, VecDeque<u64>> = BTreeMap::new();
    let mut active: VecDeque<usize> = VecDeque::new();
    let mut deficit: BTreeMap<usize, u64> = BTreeMap::new();
    for e in &log.events {
        match &e.kind {
            EventKind::JobSubmitted { job, tenant, .. }
            | EventKind::JobRetried { job, tenant, .. } => {
                queues.entry(*tenant).or_default().push_back(*job);
                if !active.contains(tenant) {
                    active.push_back(*tenant);
                }
            }
            EventKind::JobShed { job, tenant, .. } => {
                let q = queues.entry(*tenant).or_default();
                match q.front() {
                    Some(&front) if front == *job => {
                        q.pop_front();
                    }
                    _ => {
                        v.push(Violation {
                            rule: "tenant-fairness",
                            seq: Some(e.seq),
                            message: format!(
                                "job {job} of tenant {tenant} shed out of queue order (deadline sheds happen at the head)"
                            ),
                        });
                        q.retain(|j| j != job);
                    }
                }
                if q.is_empty() {
                    active.retain(|t| t != tenant);
                    deficit.insert(*tenant, 0);
                }
            }
            EventKind::JobStarted { job, tenant, .. } => {
                // Walk the activation ring exactly as the dispatcher
                // does: skip (and deactivate) drained head tenants,
                // refill a spent head deficit from its weight.
                let selected = loop {
                    let Some(&t) = active.front() else { break None };
                    if queues.get(&t).is_none_or(VecDeque::is_empty) {
                        active.pop_front();
                        deficit.insert(t, 0);
                        continue;
                    }
                    if deficit.get(&t).copied().unwrap_or(0) == 0 {
                        deficit.insert(t, weight(t));
                    }
                    break Some(t);
                };
                let Some(t) = selected else {
                    v.push(Violation {
                        rule: "tenant-fairness",
                        seq: Some(e.seq),
                        message: format!(
                            "job {job} of tenant {tenant} dispatched with no queued work in the replay"
                        ),
                    });
                    continue;
                };
                let expected = queues.get(&t).and_then(|q| q.front().copied());
                if t != *tenant || expected != Some(*job) {
                    v.push(Violation {
                        rule: "tenant-fairness",
                        seq: Some(e.seq),
                        message: format!(
                            "job {job} of tenant {tenant} dispatched, but deficit round-robin over the declared weights selects job {} of tenant {t}",
                            expected.map_or_else(|| "<none>".to_string(), |j| j.to_string()),
                        ),
                    });
                    // Resync: drop the job that actually ran so one bad
                    // dispatch does not cascade into a violation per event.
                    if let Some(q) = queues.get_mut(tenant) {
                        q.retain(|j| j != job);
                        if q.is_empty() {
                            active.retain(|x| x != tenant);
                            deficit.insert(*tenant, 0);
                        }
                    }
                    continue;
                }
                let q = queues.get_mut(&t).expect("selected tenant has a queue");
                q.pop_front();
                let d = deficit.entry(t).or_insert(1);
                *d = d.saturating_sub(1);
                let exhausted = *d == 0;
                if q.is_empty() {
                    active.pop_front();
                    deficit.insert(t, 0);
                } else if exhausted {
                    if let Some(head) = active.pop_front() {
                        active.push_back(head);
                    }
                }
            }
            _ => {}
        }
    }
}

/// Sanity-check a drained native trace *before* the merge: within each
/// ring, timestamps must be monotone (one writer, one clock), and ring
/// overflow must be surfaced — a trace that silently dropped events would
/// make every downstream fold quietly wrong, so drops are a violation
/// (`trace-drops`), not a footnote.
pub fn check_trace_sanity(trace: &TraceLog) -> CheckReport {
    let mut report = CheckReport {
        events_checked: trace.total_events(),
        dropped_events: trace.dropped_events(),
        ..CheckReport::default()
    };
    for (ring, t) in trace.threads.iter().enumerate() {
        for (i, w) in t.events.windows(2).enumerate() {
            if w[1].at_ns < w[0].at_ns {
                report.violations.push(Violation {
                    rule: "causal-time",
                    seq: Some((i + 1) as u64),
                    message: format!(
                        "ring {ring}: event at {} ns precedes predecessor at {} ns",
                        w[1].at_ns, w[0].at_ns
                    ),
                });
            }
        }
        if t.dropped > 0 {
            report.violations.push(Violation {
                rule: "trace-drops",
                seq: None,
                message: format!(
                    "ring {ring} overflowed: {} event(s) dropped (grow the tracer capacity)",
                    t.dropped
                ),
            });
        }
    }
    report
}

/// Verify causal order of a `des` trace: monotone timestamps, and (the FIFO
/// tie-break) records at equal times keep their emission order — which the
/// serialized form encodes positionally, so a sorted-by-time replay must
/// reproduce the original sequence.
pub fn check_trace(records: &[TraceRecord]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, w) in records.windows(2).enumerate() {
        if w[1].at < w[0].at {
            out.push(Violation {
                rule: "causal-time",
                seq: Some((i + 1) as u64),
                message: format!(
                    "trace record '{}' at {} ns precedes '{}' at {} ns",
                    w[1].label,
                    w[1].at.as_nanos(),
                    w[0].label,
                    w[0].at.as_nanos()
                ),
            });
        }
    }
    out
}

fn initial_degree(tag: SchedulerTag) -> usize {
    match tag {
        SchedulerTag::StaticHybrid(k) => k,
        _ => 1,
    }
}

/// The admission-queue bound is part of the serve configuration, so every
/// job event in one log must declare the same value.
fn check_job_queue_cap(
    seq: u64,
    declared: usize,
    seen: &mut Option<usize>,
    v: &mut Vec<Violation>,
) {
    match seen {
        None => *seen = Some(declared),
        Some(cap) if *cap != declared => v.push(Violation {
            rule: "job-lifecycle",
            seq: Some(seq),
            message: format!(
                "queue bound changed mid-log: {declared} declared after {cap}"
            ),
        }),
        Some(_) => {}
    }
}

fn bad_spe(rule: &'static str, seq: u64, spe: usize, n_spes: usize) -> Violation {
    Violation {
        rule,
        seq: Some(seq),
        message: format!("SPE index {spe} out of range (machine has {n_spes})"),
    }
}

#[allow(clippy::too_many_arguments)] // replay state is genuinely this wide
fn check_ctx_switch(
    log: &RunLog,
    mode: CheckMode,
    seq: u64,
    at_ns: u64,
    proc: usize,
    reason: SwitchReason,
    held_ns: u64,
    last_offload_at: &HashMap<usize, u64>,
    v: &mut Vec<Violation>,
) {
    let linux = log.scheduler == SchedulerTag::Linux;
    match (linux, reason) {
        (true, SwitchReason::Offload) => v.push(Violation {
            rule: "ctx-switch",
            seq: Some(seq),
            message: format!(
                "Linux-like run switched proc {proc} at an off-load point (must rotate only on quantum expiry)"
            ),
        }),
        (true, SwitchReason::Quantum) => {
            if held_ns < log.quantum_ns {
                v.push(Violation {
                    rule: "ctx-switch",
                    seq: Some(seq),
                    message: format!(
                        "proc {proc} rotated after {held_ns} ns, before its {} ns quantum expired",
                        log.quantum_ns
                    ),
                });
            }
        }
        (false, SwitchReason::Quantum) => v.push(Violation {
            rule: "ctx-switch",
            seq: Some(seq),
            message: format!(
                "EDTLP-family run preempted proc {proc} on a quantum (switches must be voluntary, at off-load points)"
            ),
        }),
        (false, SwitchReason::Offload) => {
            // Simulated switches share the off-load's nanosecond; the
            // native gate records the switch after re-acquiring the
            // context, so the rule there is that the process has off-
            // loaded at all (voluntary switches happen only at off-load
            // points, but later on the clock).
            let legal = match mode {
                CheckMode::Simulated => last_offload_at.get(&proc) == Some(&at_ns),
                CheckMode::Native => last_offload_at.contains_key(&proc),
            };
            if !legal {
                v.push(Violation {
                    rule: "ctx-switch",
                    seq: Some(seq),
                    message: format!(
                        "proc {proc} switched at {at_ns} ns without an off-load at that instant"
                    ),
                });
            }
        }
    }
}

#[allow(clippy::too_many_arguments)] // replay state is genuinely this wide
fn check_task_start(
    log: &RunLog,
    mode: CheckMode,
    armed: bool,
    seq: u64,
    proc: usize,
    task: u64,
    degree: usize,
    team: &[usize],
    expected_degree: usize,
    offloaded: &BTreeMap<u64, (usize, u64)>,
    last_started: &Option<u64>,
    busy: &mut [Option<u64>],
    v: &mut Vec<Violation>,
) {
    // fifo-order: the request queue is FIFO and task ids are assigned in
    // off-load order, so grants must start strictly ascending task ids.
    // Native ids are per-process and host threads race to dispatch, so
    // the rule only holds under simulation — and retried/faulted grants
    // re-enter the queue out of id order, so an armed plan waives it too.
    if mode == CheckMode::Simulated && !armed {
        if let Some(prev) = last_started {
            if task <= *prev {
                v.push(Violation {
                    rule: "fifo-order",
                    seq: Some(seq),
                    message: format!(
                        "task {task} started after task {prev} (grants must follow off-load order)"
                    ),
                });
            }
        }
    }
    match offloaded.get(&task) {
        None => v.push(Violation {
            rule: "task-lifecycle",
            seq: Some(seq),
            message: format!("task {task} started without an off-load request"),
        }),
        Some((owner, _)) if *owner != proc => v.push(Violation {
            rule: "task-lifecycle",
            seq: Some(seq),
            message: format!("task {task} off-loaded by proc {owner} but started for proc {proc}"),
        }),
        Some(_) => {}
    }
    // Natively the degree in force is sampled per off-load, not pinned
    // between DegreeDecision events, so only the simulator pins it. An
    // armed fault plan clamps grants to the healthy-SPE count below the
    // decided degree, so quarantine waives the pin as well.
    if mode == CheckMode::Simulated && !armed && degree != expected_degree {
        v.push(Violation {
            rule: "mgps-degree",
            seq: Some(seq),
            message: format!(
                "task {task} granted degree {degree}; the scheduler's degree in force is {expected_degree}"
            ),
        });
    }
    if team.len() != degree {
        v.push(Violation {
            rule: "mgps-degree",
            seq: Some(seq),
            message: format!("task {task} has degree {degree} but a team of {}", team.len()),
        });
    }
    for &spe in team {
        if spe >= log.n_spes {
            v.push(bad_spe("spe-overlap", seq, spe, log.n_spes));
            continue;
        }
        if mode == CheckMode::Simulated {
            if let Some(occupant) = busy[spe] {
                v.push(Violation {
                    rule: "spe-overlap",
                    seq: Some(seq),
                    message: format!(
                        "task {task} starts on SPE {spe} while task {occupant} still runs there"
                    ),
                });
            }
            busy[spe] = Some(task);
        }
    }
}

#[allow(clippy::too_many_arguments)] // one slot per checker table, mirroring check_task_start
fn check_task_end(
    mode: CheckMode,
    seq: u64,
    proc: usize,
    task: u64,
    team: &[usize],
    tasks: &mut BTreeMap<u64, TaskInfo>,
    busy: &mut [Option<u64>],
    v: &mut Vec<Violation>,
) {
    match tasks.get_mut(&task) {
        None => v.push(Violation {
            rule: "task-lifecycle",
            seq: Some(seq),
            message: format!("task {task} ended without starting"),
        }),
        Some(info) => {
            if info.ended {
                v.push(Violation {
                    rule: "task-lifecycle",
                    seq: Some(seq),
                    message: format!("task {task} ended twice"),
                });
            }
            info.ended = true;
            if info.proc != proc {
                v.push(Violation {
                    rule: "task-lifecycle",
                    seq: Some(seq),
                    message: format!("task {task} started for proc {} but ended for proc {proc}", info.proc),
                });
            }
            if info.team != team {
                v.push(Violation {
                    rule: "task-lifecycle",
                    seq: Some(seq),
                    message: format!(
                        "task {task} started on team {:?} but ended on team {team:?}",
                        info.team
                    ),
                });
            }
        }
    }
    if mode == CheckMode::Native {
        return; // occupancy is not policed natively (see module docs)
    }
    for &spe in team {
        let Some(slot) = busy.get_mut(spe) else { continue };
        match slot {
            Some(t) if *t == task => *slot = None,
            Some(t) => v.push(Violation {
                rule: "spe-overlap",
                seq: Some(seq),
                message: format!("task {task} ends on SPE {spe} which is running task {t}"),
            }),
            None => v.push(Violation {
                rule: "spe-overlap",
                seq: Some(seq),
                message: format!("task {task} ends on SPE {spe} which is idle"),
            }),
        }
    }
}

fn check_dma(
    seq: u64,
    spe: usize,
    element_bytes: &[usize],
    local_addr: usize,
    main_addr: usize,
    n_spes: usize,
    v: &mut Vec<Violation>,
) {
    if spe >= n_spes {
        v.push(bad_spe("dma-legality", seq, spe, n_spes));
    }
    if element_bytes.is_empty() {
        v.push(Violation {
            rule: "dma-legality",
            seq: Some(seq),
            message: "empty DMA list".to_string(),
        });
    }
    if element_bytes.len() > DMA_MAX_LIST {
        v.push(Violation {
            rule: "dma-legality",
            seq: Some(seq),
            message: format!(
                "DMA list of {} elements exceeds the {DMA_MAX_LIST}-element cap",
                element_bytes.len()
            ),
        });
    }
    for (i, &bytes) in element_bytes.iter().enumerate() {
        if bytes > DMA_MAX_TRANSFER {
            v.push(Violation {
                rule: "dma-legality",
                seq: Some(seq),
                message: format!(
                    "DMA element {i} moves {bytes} bytes, over the {DMA_MAX_TRANSFER}-byte cap"
                ),
            });
        } else if !(matches!(bytes, 1 | 2 | 4 | 8) || (bytes > 0 && bytes % 16 == 0)) {
            v.push(Violation {
                rule: "dma-legality",
                seq: Some(seq),
                message: format!("DMA element {i} of {bytes} bytes is not 1, 2, 4, 8, or a 16-byte multiple"),
            });
        }
    }
    for (name, addr) in [("local", local_addr), ("main", main_addr)] {
        if addr % DMA_ALIGNMENT != 0 {
            v.push(Violation {
                rule: "dma-legality",
                seq: Some(seq),
                message: format!("{name} address {addr:#x} violates 128-bit alignment"),
            });
        }
    }
}

fn check_mailbox(
    seq: u64,
    spe: usize,
    mailbox: MailboxKind,
    recorded: usize,
    is_write: bool,
    occ: &mut [[usize; 3]],
    v: &mut Vec<Violation>,
) {
    let Some(slots) = occ.get_mut(spe) else {
        v.push(bad_spe("mailbox", seq, spe, occ.len()));
        return;
    };
    let idx = match mailbox {
        MailboxKind::Inbound => 0,
        MailboxKind::Outbound => 1,
        MailboxKind::OutboundInterrupt => 2,
    };
    if is_write {
        slots[idx] += 1;
        if slots[idx] > mailbox.capacity() {
            v.push(Violation {
                rule: "mailbox",
                seq: Some(seq),
                message: format!(
                    "SPE {spe} {mailbox:?} mailbox holds {} messages, over its capacity of {}",
                    slots[idx],
                    mailbox.capacity()
                ),
            });
        }
    } else if slots[idx] == 0 {
        v.push(Violation {
            rule: "mailbox",
            seq: Some(seq),
            message: format!("read from empty SPE {spe} {mailbox:?} mailbox"),
        });
    } else {
        slots[idx] -= 1;
    }
    if slots[idx] != recorded {
        v.push(Violation {
            rule: "mailbox",
            seq: Some(seq),
            message: format!(
                "SPE {spe} {mailbox:?} mailbox records occupancy {recorded}; the operations sum to {}",
                slots[idx]
            ),
        });
    }
}

#[allow(clippy::too_many_arguments)] // replay state is genuinely this wide
fn check_degree_decision(
    log: &RunLog,
    seq: u64,
    degree: usize,
    waiting: usize,
    dn: usize,
    window: usize,
    window_fill: usize,
    v: &mut Vec<Violation>,
) {
    if log.scheduler != SchedulerTag::Mgps {
        v.push(Violation {
            rule: "mgps-degree",
            seq: Some(seq),
            message: format!("degree decision under {:?}, which never adapts LLP", log.scheduler),
        });
        return;
    }
    if dn != log.n_spes {
        v.push(Violation {
            rule: "mgps-degree",
            seq: Some(seq),
            message: format!("decision sized for {dn} SPEs on a {}-SPE machine", log.n_spes),
        });
    }
    let expected_window = log.mgps_window.unwrap_or(log.n_spes);
    if window != expected_window {
        v.push(Violation {
            rule: "mgps-degree",
            seq: Some(seq),
            message: format!(
                "utilization window of {window} off-loads; the policy requires exactly {expected_window}"
            ),
        });
    }
    if window_fill > window {
        v.push(Violation {
            rule: "mgps-degree",
            seq: Some(seq),
            message: format!("window sample holds {window_fill} off-loads, over the {window}-slot window"),
        });
    }
    let cap = (log.n_spes / waiting.max(1)).max(1);
    if degree < 1 || degree > cap {
        v.push(Violation {
            rule: "mgps-degree",
            seq: Some(seq),
            message: format!(
                "degree {degree} outside 1..=floor({}/{}) = {cap} with {waiting} waiting tasks",
                log.n_spes,
                waiting.max(1)
            ),
        });
    }
}

fn check_chunk_coverage(
    mode: CheckMode,
    task: u64,
    info: &TaskInfo,
    loop_iters: usize,
    v: &mut Vec<Violation>,
) {
    // The iteration space to tile. Simulated runs share one loop shape;
    // native tasks carry their own count on every chunk, and the chunks
    // must agree on it. A native task with no chunks recorded no loop
    // (nothing to verify).
    let loop_iters = match mode {
        CheckMode::Simulated => loop_iters,
        CheckMode::Native => {
            let Some(&(_, _, _, iters)) = info.chunks.first() else { return };
            if let Some(&(_, _, w, other)) =
                info.chunks.iter().find(|&&(_, _, _, i)| i != iters)
            {
                v.push(Violation {
                    rule: "chunk-coverage",
                    seq: Some(info.start_seq),
                    message: format!(
                        "task {task} chunks disagree on the loop size: {iters} vs {other} (worker {w})"
                    ),
                });
                return;
            }
            iters
        }
    };
    // Exactly one chunk per team member — except natively, where a team
    // member whose range partitioned to empty legitimately sends nothing.
    if mode == CheckMode::Simulated && info.chunks.len() != info.degree {
        v.push(Violation {
            rule: "chunk-coverage",
            seq: Some(info.start_seq),
            message: format!(
                "task {task} with degree {} dispatched {} chunks",
                info.degree,
                info.chunks.len()
            ),
        });
        return;
    }
    let mut workers: Vec<usize> = info.chunks.iter().map(|&(_, _, w, _)| w).collect();
    workers.sort_unstable();
    let mut team = info.team.clone();
    team.sort_unstable();
    let covered = match mode {
        CheckMode::Simulated => workers != team,
        // Chunk workers must still be a subset of the team (duplicates
        // collide in the tiling check below).
        CheckMode::Native => !workers.iter().all(|w| team.contains(w)),
    };
    if covered {
        v.push(Violation {
            rule: "chunk-coverage",
            seq: Some(info.start_seq),
            message: format!(
                "task {task} chunks run on SPEs {workers:?} but the team is {team:?}"
            ),
        });
    }
    // Chunks tile 0..loop_iters exactly once.
    let mut spans: Vec<(usize, usize)> =
        info.chunks.iter().map(|&(s, l, _, _)| (s, l)).collect();
    spans.sort_unstable();
    let mut next = 0usize;
    for &(start, len) in &spans {
        if start != next {
            v.push(Violation {
                rule: "chunk-coverage",
                seq: Some(info.start_seq),
                message: format!(
                    "task {task} chunk starts at iteration {start}; expected {next} (gap or overlap)"
                ),
            });
            return;
        }
        next = start + len;
    }
    if next != loop_iters {
        v.push(Violation {
            rule: "chunk-coverage",
            seq: Some(info.start_seq),
            message: format!("task {task} chunks cover {next} of {loop_iters} iterations"),
        });
    }
}
