//! Static schedule-invariant checking over simulator execution traces.
//!
//! The simulators in this workspace (`cellsim` for the Cell machine model,
//! `des` for the event core) can record a structured event log of a run.
//! This crate consumes those logs *after the fact* and verifies the
//! invariants the Cell hardware and the multigrain schedulers promise,
//! reporting each violation with the offending event index and a
//! human-readable explanation.

#![warn(missing_docs)]

pub mod checker;
pub mod digest;

pub use checker::{
    check_run, check_run_with, check_trace, check_trace_sanity, CheckMode, CheckReport, Violation,
};
pub use digest::{digest_hex, trace_digest};
