//! Deterministic-replay digests.
//!
//! The simulator promises bit-determinism: the same [`SimConfig`] seed must
//! produce the same schedule. [`trace_digest`] collapses a [`RunLog`] into
//! one 64-bit FNV-1a hash of its canonical JSON serialization, so two runs
//! can be compared (and archived) without diffing megabytes of events.
//!
//! [`SimConfig`]: cellsim::machine::SimConfig

use cellsim::event::RunLog;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over arbitrary bytes.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A 64-bit digest of the run's full event log (canonical JSON form).
/// Equal seeds and configurations must produce equal digests.
pub fn trace_digest(log: &RunLog) -> u64 {
    fnv1a(log.to_value().to_json().as_bytes())
}

/// [`trace_digest`] rendered as fixed-width hex (for reports and logs).
pub fn digest_hex(log: &RunLog) -> String {
    format!("{:016x}", trace_digest(log))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn digest_is_stable_for_equal_logs() {
        let log = RunLog {
            scheduler: cellsim::event::SchedulerTag::Edtlp,
            n_spes: 8,
            quantum_ns: 1,
            seed: 7,
            local_store_bytes: 256 * 1024,
            loop_iters: 228,
            mgps_window: None,
            fault_policy: None,
            tenant_weights: None,
            events: Vec::new(),
        };
        assert_eq!(trace_digest(&log), trace_digest(&log.clone()));
        assert_eq!(digest_hex(&log).len(), 16);
        let mut other = log.clone();
        other.seed = 8;
        assert_ne!(trace_digest(&log), trace_digest(&other));
    }
}
