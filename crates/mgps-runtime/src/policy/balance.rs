//! Adaptive master/worker load unbalancing (§5.3).
//!
//! Workers in a work-sharing team start late: they must complete several DMA
//! requests (fetching loop arguments from the master's local store or shared
//! memory) before their first iteration, while the master starts right after
//! sending the start signals. For the fine-grained loops of RAxML the
//! resulting imbalance is noticeable, so the master should execute a
//! *slightly larger* portion of the loop.
//!
//! The paper obtains the extra portion automatically "by timing idle
//! periods in the SPEs across multiple invocations of the same loop".
//! [`LoadBalancer`] reproduces that: after each invocation of a loop site it
//! observes how long the master idled waiting for workers (or vice versa)
//! and nudges the master bias so the two finish together.

/// Per-loop-site adaptive bias tuner.
///
/// Feed it one observation per loop invocation; read the bias to pass to
/// [`super::chunk::partition`].
#[derive(Debug, Clone)]
pub struct LoadBalancer {
    bias: f64,
    gain: f64,
    max_bias: f64,
    invocations: u64,
}

/// Timing observation for one invocation of a work-shared loop.
#[derive(Debug, Clone, Copy)]
pub struct LoopObservation {
    /// Time the master spent idle waiting for the slowest worker, ns
    /// (zero if the master finished last).
    pub master_idle_ns: u64,
    /// Mean time workers spent idle after finishing their chunks while the
    /// master was still computing, ns (zero if workers finished last).
    pub mean_worker_idle_ns: u64,
    /// Total wall time of the loop invocation, ns.
    pub loop_ns: u64,
}

impl Default for LoadBalancer {
    fn default() -> Self {
        LoadBalancer::new(0.5, 1.0)
    }
}

impl LoadBalancer {
    /// A balancer with proportional `gain` and a cap on the master bias.
    ///
    /// # Panics
    /// Panics on non-finite or non-positive parameters.
    pub fn new(gain: f64, max_bias: f64) -> LoadBalancer {
        assert!(gain.is_finite() && gain > 0.0, "gain must be positive");
        assert!(max_bias.is_finite() && max_bias > 0.0, "max_bias must be positive");
        LoadBalancer { bias: 0.0, gain, max_bias, invocations: 0 }
    }

    /// Current master bias (`0.0` = even split).
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Number of observations incorporated.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Incorporate one invocation's timings and update the bias.
    ///
    /// If the master idled (workers were the critical path), the master's
    /// chunk grows; if workers idled, it shrinks. The step is proportional
    /// to the idle fraction of the loop, so the bias converges instead of
    /// oscillating.
    pub fn observe(&mut self, obs: LoopObservation) {
        self.invocations += 1;
        if obs.loop_ns == 0 {
            return;
        }
        let master_frac = obs.master_idle_ns as f64 / obs.loop_ns as f64;
        let worker_frac = obs.mean_worker_idle_ns as f64 / obs.loop_ns as f64;
        // Positive error: master finished early => enlarge master chunk.
        let error = master_frac - worker_frac;
        self.bias = (self.bias + self.gain * error).clamp(0.0, self.max_bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::chunk::partition;

    #[test]
    fn bias_starts_even() {
        let b = LoadBalancer::default();
        assert_eq!(b.bias(), 0.0);
        assert_eq!(b.invocations(), 0);
    }

    #[test]
    fn master_idle_grows_bias() {
        let mut b = LoadBalancer::new(0.5, 1.0);
        b.observe(LoopObservation { master_idle_ns: 20, mean_worker_idle_ns: 0, loop_ns: 100 });
        assert!(b.bias() > 0.0);
    }

    #[test]
    fn worker_idle_shrinks_bias() {
        let mut b = LoadBalancer::new(0.5, 1.0);
        b.observe(LoopObservation { master_idle_ns: 40, mean_worker_idle_ns: 0, loop_ns: 100 });
        let high = b.bias();
        b.observe(LoopObservation { master_idle_ns: 0, mean_worker_idle_ns: 30, loop_ns: 100 });
        assert!(b.bias() < high);
    }

    #[test]
    fn bias_never_goes_negative_or_above_cap() {
        let mut b = LoadBalancer::new(10.0, 0.8);
        b.observe(LoopObservation { master_idle_ns: 0, mean_worker_idle_ns: 90, loop_ns: 100 });
        assert_eq!(b.bias(), 0.0);
        for _ in 0..10 {
            b.observe(LoopObservation { master_idle_ns: 90, mean_worker_idle_ns: 0, loop_ns: 100 });
        }
        assert_eq!(b.bias(), 0.8);
    }

    #[test]
    fn zero_length_loop_is_ignored() {
        let mut b = LoadBalancer::new(0.5, 1.0);
        b.observe(LoopObservation { master_idle_ns: 50, mean_worker_idle_ns: 0, loop_ns: 0 });
        assert_eq!(b.bias(), 0.0);
        assert_eq!(b.invocations(), 1);
    }

    /// End-to-end convergence check against a synthetic team where workers
    /// pay a fixed startup latency before iterating: the balancer should
    /// find a bias that nearly equalizes finish times.
    #[test]
    fn converges_on_synthetic_startup_latency() {
        const N: usize = 228; // iterations (42_SC alignment)
        const K: usize = 4; // team size
        const ITER_NS: u64 = 100; // per-iteration cost
        const STARTUP_NS: u64 = 1_500; // worker DMA startup

        let mut b = LoadBalancer::new(0.8, 2.0);
        let mut last_gap = u64::MAX;
        for _ in 0..60 {
            let chunks = partition(N, K, b.bias());
            let master_finish = chunks[0].len() as u64 * ITER_NS;
            let worker_finish: Vec<u64> =
                chunks[1..].iter().map(|c| STARTUP_NS + c.len() as u64 * ITER_NS).collect();
            let slowest = worker_finish.iter().copied().max().unwrap().max(master_finish);
            let master_idle = slowest - master_finish;
            let worker_idle: u64 = worker_finish.iter().map(|&w| slowest - w).sum::<u64>()
                / worker_finish.len() as u64;
            last_gap = master_idle.max(worker_idle);
            b.observe(LoopObservation {
                master_idle_ns: master_idle,
                mean_worker_idle_ns: worker_idle,
                loop_ns: slowest,
            });
        }
        // With startup 1500ns and 100ns/iter the master should absorb ~15
        // extra iterations; the residual idle gap must be small.
        assert!(b.bias() > 0.1, "bias {} should have grown", b.bias());
        assert!(last_gap < 800, "residual idle gap {last_gap}ns too large");
    }
}
