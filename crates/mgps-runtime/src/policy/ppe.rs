//! PPE multiplexing policies (§5.2).
//!
//! The PPE has two SMT hardware contexts. With more worker processes than
//! contexts, *who runs while tasks are off-loaded* decides SPE utilization:
//!
//! * **EDTLP** (the paper's user-level scheduler): the moment a process
//!   off-loads, the PPE voluntarily context-switches to another runnable
//!   process (cost: 1.5 µs), so off-loads from many processes interleave and
//!   all eight SPEs receive work. Off-loaded tasks (~96 µs) are an order of
//!   magnitude shorter than an OS quantum, so only a voluntary switch can
//!   exploit them.
//! * **Linux-like** (the baseline): processes spin-wait for their off-loaded
//!   task; the OS switches only when the 10 ms quantum expires. At most
//!   `#contexts` processes make progress per quantum, leaving most SPEs
//!   idle — the effect Table 1 quantifies.
//!
//! [`PpeScheduler`] is a pure run-queue machine: the engine reports
//! blocking/unblocking and quantum expiry; the policy answers "who runs
//! next" and "does an off-load yield the context".

use std::collections::VecDeque;

use super::types::ProcId;

/// Which multiplexing discipline the PPE uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PpePolicyKind {
    /// Event-driven task-level parallelism: voluntary switch on off-load.
    Edtlp,
    /// OS-like round-robin with a fixed quantum; no switch on off-load
    /// (processes spin while their task runs).
    LinuxLike {
        /// Scheduling quantum in nanoseconds (Linux 2.6: a multiple of
        /// 10 ms; we use 10 ms).
        quantum_ns: u64,
    },
}

impl PpePolicyKind {
    /// The Linux 2.6 baseline used in the paper.
    pub fn linux_default() -> PpePolicyKind {
        PpePolicyKind::LinuxLike { quantum_ns: 10_000_000 }
    }

    /// Does an off-load request trigger a voluntary context switch?
    pub fn switches_on_offload(self) -> bool {
        matches!(self, PpePolicyKind::Edtlp)
    }

    /// Does the process hold the PPE context (spinning) while its task runs
    /// on an SPE?
    pub fn spins_during_offload(self) -> bool {
        !self.switches_on_offload()
    }
}

/// A pure round-robin run queue over worker processes for one PPE.
///
/// The engine owns the clock and the contexts; this type only decides
/// ordering. All operations are O(n) worst case over the (small) process
/// count, and deterministic.
#[derive(Debug)]
pub struct PpeScheduler {
    kind: PpePolicyKind,
    contexts: usize,
    running: Vec<Option<ProcId>>,
    ready: VecDeque<ProcId>,
    /// Voluntary context switch cost, ns (the paper measures 1.5 µs).
    switch_cost_ns: u64,
    switches: u64,
}

impl PpeScheduler {
    /// A scheduler for a PPE with `contexts` SMT hardware threads.
    pub fn new(kind: PpePolicyKind, contexts: usize, switch_cost_ns: u64) -> PpeScheduler {
        assert!(contexts > 0, "a PPE has at least one context");
        PpeScheduler {
            kind,
            contexts,
            running: vec![None; contexts],
            ready: VecDeque::new(),
            switch_cost_ns,
            switches: 0,
        }
    }

    /// The configured policy.
    pub fn kind(&self) -> PpePolicyKind {
        self.kind
    }

    /// Number of hardware contexts this PPE multiplexes.
    pub fn contexts(&self) -> usize {
        self.contexts
    }

    /// Voluntary context-switch cost in nanoseconds.
    pub fn switch_cost_ns(&self) -> u64 {
        self.switch_cost_ns
    }

    /// Total context switches performed.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Processes currently on a hardware context.
    pub fn running(&self) -> Vec<ProcId> {
        self.running.iter().flatten().copied().collect()
    }

    /// Number of processes waiting for a context.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// True if `proc` currently holds a context.
    pub fn is_running(&self, proc: ProcId) -> bool {
        self.running.contains(&Some(proc))
    }

    /// Admit a new (or newly unblocked) process. If a context is free it is
    /// dispatched immediately and returned; otherwise it queues.
    pub fn admit(&mut self, proc: ProcId) -> Option<ProcId> {
        debug_assert!(!self.is_running(proc), "{proc} admitted twice");
        if let Some(slot) = self.running.iter_mut().find(|s| s.is_none()) {
            *slot = Some(proc);
            Some(proc)
        } else {
            self.ready.push_back(proc);
            None
        }
    }

    /// `proc` off-loaded a task. Under EDTLP the context is yielded and the
    /// next ready process (if any) is dispatched — the returned process
    /// starts running after [`Self::switch_cost_ns`]. Under Linux-like
    /// policies the process keeps spinning and `None` is returned.
    pub fn on_offload(&mut self, proc: ProcId) -> Option<ProcId> {
        if !self.kind.switches_on_offload() {
            return None;
        }
        self.yield_context(proc)
    }

    /// `proc` blocked (e.g. waiting with no work). The context is freed and
    /// the next ready process, if any, is returned for dispatch.
    pub fn on_block(&mut self, proc: ProcId) -> Option<ProcId> {
        self.yield_context(proc)
    }

    /// A quantum expired for `proc` (Linux-like only): it is rotated to the
    /// back of the queue and the next process is returned.
    pub fn on_quantum_expiry(&mut self, proc: ProcId) -> Option<ProcId> {
        debug_assert!(
            matches!(self.kind, PpePolicyKind::LinuxLike { .. }),
            "quantum expiry only exists under Linux-like scheduling"
        );
        let next = self.yield_context(proc);
        self.ready.push_back(proc);
        // If nothing else was ready, the same process resumes immediately.
        if next.is_none() {
            return self.dispatch_next();
        }
        next
    }

    /// Remove `proc` from the scheduler entirely (it exited).
    pub fn remove(&mut self, proc: ProcId) -> Option<ProcId> {
        if self.is_running(proc) {
            self.yield_context(proc)
        } else {
            self.ready.retain(|&p| p != proc);
            None
        }
    }

    fn yield_context(&mut self, proc: ProcId) -> Option<ProcId> {
        let slot = self
            .running
            .iter_mut()
            .find(|s| **s == Some(proc))
            .unwrap_or_else(|| panic!("{proc} yielded a context it does not hold"));
        *slot = None;
        self.dispatch_next()
    }

    fn dispatch_next(&mut self) -> Option<ProcId> {
        let next = self.ready.pop_front()?;
        let slot = self.running.iter_mut().find(|s| s.is_none()).expect("a context was just freed");
        *slot = Some(next);
        self.switches += 1;
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edtlp(contexts: usize) -> PpeScheduler {
        PpeScheduler::new(PpePolicyKind::Edtlp, contexts, 1_500)
    }

    #[test]
    fn policy_kind_predicates() {
        assert!(PpePolicyKind::Edtlp.switches_on_offload());
        assert!(!PpePolicyKind::Edtlp.spins_during_offload());
        let linux = PpePolicyKind::linux_default();
        assert!(!linux.switches_on_offload());
        assert!(linux.spins_during_offload());
        assert_eq!(linux, PpePolicyKind::LinuxLike { quantum_ns: 10_000_000 });
    }

    #[test]
    fn admit_fills_contexts_then_queues() {
        let mut s = edtlp(2);
        assert_eq!(s.admit(ProcId(0)), Some(ProcId(0)));
        assert_eq!(s.admit(ProcId(1)), Some(ProcId(1)));
        assert_eq!(s.admit(ProcId(2)), None);
        assert_eq!(s.running(), vec![ProcId(0), ProcId(1)]);
        assert_eq!(s.ready_len(), 1);
    }

    #[test]
    fn edtlp_offload_rotates_to_next_ready() {
        let mut s = edtlp(2);
        for i in 0..4 {
            s.admit(ProcId(i));
        }
        // P0 off-loads: context passes to P2.
        assert_eq!(s.on_offload(ProcId(0)), Some(ProcId(2)));
        assert!(!s.is_running(ProcId(0)));
        assert!(s.is_running(ProcId(2)));
        assert_eq!(s.switches(), 1);
        // P0's task completes; it is readmitted and queues behind P3.
        assert_eq!(s.admit(ProcId(0)), None);
        assert_eq!(s.on_offload(ProcId(1)), Some(ProcId(3)));
        assert_eq!(s.on_offload(ProcId(2)), Some(ProcId(0)));
    }

    #[test]
    fn linux_like_never_switches_on_offload() {
        let mut s = PpeScheduler::new(PpePolicyKind::linux_default(), 2, 1_500);
        for i in 0..4 {
            s.admit(ProcId(i));
        }
        assert_eq!(s.on_offload(ProcId(0)), None);
        assert!(s.is_running(ProcId(0)), "process keeps spinning on its context");
        assert_eq!(s.switches(), 0);
    }

    #[test]
    fn quantum_expiry_round_robins() {
        let mut s = PpeScheduler::new(PpePolicyKind::linux_default(), 1, 1_500);
        s.admit(ProcId(0));
        s.admit(ProcId(1));
        s.admit(ProcId(2));
        assert_eq!(s.on_quantum_expiry(ProcId(0)), Some(ProcId(1)));
        assert_eq!(s.on_quantum_expiry(ProcId(1)), Some(ProcId(2)));
        assert_eq!(s.on_quantum_expiry(ProcId(2)), Some(ProcId(0)));
    }

    #[test]
    fn quantum_expiry_with_empty_queue_resumes_same_process() {
        let mut s = PpeScheduler::new(PpePolicyKind::linux_default(), 2, 1_500);
        s.admit(ProcId(0));
        assert_eq!(s.on_quantum_expiry(ProcId(0)), Some(ProcId(0)));
        assert!(s.is_running(ProcId(0)));
    }

    #[test]
    fn block_frees_context_for_ready_process() {
        let mut s = edtlp(1);
        s.admit(ProcId(0));
        s.admit(ProcId(1));
        assert_eq!(s.on_block(ProcId(0)), Some(ProcId(1)));
        assert!(!s.is_running(ProcId(0)));
    }

    #[test]
    fn remove_running_process_dispatches_next() {
        let mut s = edtlp(1);
        s.admit(ProcId(0));
        s.admit(ProcId(1));
        assert_eq!(s.remove(ProcId(0)), Some(ProcId(1)));
        // Removing a queued process is silent.
        s.admit(ProcId(2));
        assert_eq!(s.remove(ProcId(2)), None);
        assert_eq!(s.ready_len(), 0);
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn yielding_unheld_context_panics() {
        let mut s = edtlp(1);
        s.admit(ProcId(0));
        let _ = s.on_block(ProcId(7));
    }
}
