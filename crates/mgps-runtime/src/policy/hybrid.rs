//! The static EDTLP-LLP hybrid scheme (§5.4, Figure 7) and the top-level
//! scheduler taxonomy used throughout the experiments.
//!
//! The static hybrid partitions the SPEs into fixed teams of
//! `spes_per_loop` members. Each off-loaded task owns one team and
//! work-shares its loops across it, so at most `n_spes / spes_per_loop`
//! tasks run concurrently. The scheme is *not* the paper's final answer —
//! it lacks dynamicity and assumes prior knowledge of the workload — but it
//! brackets MGPS from the static side in Figures 7–9.

use super::types::{LoopDegree, SpeId};

/// Configuration of the static EDTLP-LLP hybrid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticHybrid {
    /// Total SPEs on the machine.
    pub n_spes: usize,
    /// SPEs statically dedicated to each parallel loop (2 or 4 in the
    /// paper).
    pub spes_per_loop: usize,
}

impl StaticHybrid {
    /// A hybrid over `n_spes` SPEs with `spes_per_loop`-way loop teams.
    ///
    /// # Panics
    /// Panics unless `1 <= spes_per_loop <= n_spes` and `spes_per_loop`
    /// divides `n_spes` (teams must tile the chip).
    pub fn new(n_spes: usize, spes_per_loop: usize) -> StaticHybrid {
        assert!(n_spes > 0, "need at least one SPE");
        assert!(
            (1..=n_spes).contains(&spes_per_loop),
            "spes_per_loop {spes_per_loop} out of range 1..={n_spes}"
        );
        assert!(
            n_spes.is_multiple_of(spes_per_loop),
            "teams of {spes_per_loop} must tile {n_spes} SPEs"
        );
        StaticHybrid { n_spes, spes_per_loop }
    }

    /// Maximum concurrently off-loaded tasks.
    pub fn max_concurrent_tasks(&self) -> usize {
        self.n_spes / self.spes_per_loop
    }

    /// The loop degree every task receives.
    pub fn loop_degree(&self) -> LoopDegree {
        LoopDegree(self.spes_per_loop)
    }

    /// The SPE members of team `team` (0-based).
    ///
    /// # Panics
    /// Panics if `team >= max_concurrent_tasks()`.
    pub fn team_members(&self, team: usize) -> Vec<SpeId> {
        assert!(team < self.max_concurrent_tasks(), "team {team} out of range");
        let base = team * self.spes_per_loop;
        (base..base + self.spes_per_loop).map(SpeId).collect()
    }
}

/// The four scheduling schemes the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Event-driven task-level parallelism (user-level scheduler, §5.2).
    Edtlp,
    /// The OS baseline: Linux 2.6-style quantum scheduling of the worker
    /// processes, no voluntary switch on off-load.
    LinuxLike,
    /// Static EDTLP-LLP hybrid with a fixed number of SPEs per loop.
    StaticHybrid {
        /// SPEs per parallel loop (2 or 4 in the paper's figures).
        spes_per_loop: usize,
    },
    /// The adaptive multigrain scheduler (§5.4).
    Mgps,
}

impl SchedulerKind {
    /// Human-readable label matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            SchedulerKind::Edtlp => "EDTLP".to_string(),
            SchedulerKind::LinuxLike => "Linux".to_string(),
            SchedulerKind::StaticHybrid { spes_per_loop } => {
                format!("EDTLP-LLP with {spes_per_loop} SPEs per parallel loop")
            }
            SchedulerKind::Mgps => "MGPS".to_string(),
        }
    }

    /// Whether this scheme ever runs loops in parallel across SPEs.
    pub fn uses_llp(&self) -> bool {
        matches!(self, SchedulerKind::StaticHybrid { .. } | SchedulerKind::Mgps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_team_arithmetic() {
        let h = StaticHybrid::new(8, 2);
        assert_eq!(h.max_concurrent_tasks(), 4);
        assert_eq!(h.loop_degree(), LoopDegree(2));
        assert_eq!(h.team_members(0), vec![SpeId(0), SpeId(1)]);
        assert_eq!(h.team_members(3), vec![SpeId(6), SpeId(7)]);

        let h4 = StaticHybrid::new(8, 4);
        assert_eq!(h4.max_concurrent_tasks(), 2);
        assert_eq!(h4.team_members(1), vec![SpeId(4), SpeId(5), SpeId(6), SpeId(7)]);
    }

    #[test]
    fn teams_partition_the_chip() {
        let h = StaticHybrid::new(8, 4);
        let mut seen = std::collections::HashSet::new();
        for t in 0..h.max_concurrent_tasks() {
            for spe in h.team_members(t) {
                assert!(seen.insert(spe), "SPE assigned to two teams");
            }
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    #[should_panic(expected = "must tile")]
    fn non_tiling_teams_rejected() {
        let _ = StaticHybrid::new(8, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn team_index_bounds_checked() {
        let h = StaticHybrid::new(8, 4);
        let _ = h.team_members(2);
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(SchedulerKind::Edtlp.label(), "EDTLP");
        assert_eq!(
            SchedulerKind::StaticHybrid { spes_per_loop: 4 }.label(),
            "EDTLP-LLP with 4 SPEs per parallel loop"
        );
        assert_eq!(SchedulerKind::Mgps.label(), "MGPS");
        assert!(SchedulerKind::Mgps.uses_llp());
        assert!(!SchedulerKind::LinuxLike.uses_llp());
    }
}
