//! Pure scheduling policies — the paper's contribution, engine-agnostic.
//!
//! Everything in this module is deterministic state-machine logic with no
//! clocks, threads, or I/O. The Cell simulator (`cellsim`) and the native
//! host-thread engine ([`crate::native`]) both drive these types, which is
//! what makes the simulated and native results comparable: they execute the
//! *same* decision procedures over different substrates.

pub mod balance;
pub mod chunk;
pub mod granularity;
pub mod hybrid;
pub mod mgps;
pub mod ppe;
pub mod types;

pub use balance::{LoadBalancer, LoopObservation};
pub use chunk::partition;
pub use granularity::{FunctionTimings, GranularityController, GranularityDecision};
pub use hybrid::{SchedulerKind, StaticHybrid};
pub use mgps::{Directive, MgpsConfig, MgpsScheduler};
pub use ppe::{PpePolicyKind, PpeScheduler};
pub use types::{KernelKind, LoopDegree, OffloadDecision, ProcId, SpeId, TaskId};
