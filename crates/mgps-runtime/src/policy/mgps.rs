//! MGPS — multigrain parallelism scheduling (§5.4).
//!
//! MGPS extends the EDTLP scheduler with an *adaptive processor-saving
//! policy* that decides, on-line, whether off-loaded tasks should also
//! work-share their loops across idle SPEs:
//!
//! * On every off-load **arrival** the scheduler conservatively assigns one
//!   SPE, anticipating that task-level parallelism alone can fill the chip.
//! * On every **departure** it measures `U`, the degree of task-level
//!   parallelism exposed while the departing task executed (how many
//!   discrete tasks were off-loaded in that window).
//! * Every `window` completions (window = number of SPEs, giving the
//!   scheduler a hysteresis of up to 8 off-loads), the process that
//!   completed the window-closing task evaluates `U` and signals the others:
//!   - if `U ≤ n_spes/2` (task parallelism leaves more than half the SPEs
//!     idle) it **activates LLP** with `⌊n_spes / T⌋` SPEs per parallel
//!     loop, where `T` is the number of tasks waiting for off-load;
//!   - if `U > n_spes/2` it retains pure EDTLP, deactivating LLP if it was
//!     previously on.
//! * Applications that do not off-load often enough to trigger adaptation
//!   are handled by a timer interrupt that evaluates instantaneous SPE
//!   occupancy instead.

use std::collections::VecDeque;

use super::types::{LoopDegree, TaskId};

/// A directive issued at an evaluation point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Directive {
    /// Activate loop-level parallelism at the given degree (> 1).
    ActivateLlp(LoopDegree),
    /// Throttle loop-level parallelism; run pure EDTLP.
    DeactivateLlp,
}

/// Configuration for the MGPS policy.
#[derive(Debug, Clone, Copy)]
pub struct MgpsConfig {
    /// SPEs available to this scheduler (8 per Cell).
    pub n_spes: usize,
    /// Completions between evaluations. The paper uses a history length
    /// equal to the number of SPEs.
    pub window: usize,
    /// Activate LLP when `U` is at or below this threshold. The paper's
    /// finding: work-sharing pays when TLP leaves more than half the SPEs
    /// idle, i.e. threshold = `n_spes / 2`.
    pub u_threshold: usize,
}

impl MgpsConfig {
    /// The paper's configuration for a machine with `n_spes` SPEs.
    pub fn for_spes(n_spes: usize) -> MgpsConfig {
        assert!(n_spes > 0, "need at least one SPE");
        MgpsConfig { n_spes, window: n_spes, u_threshold: n_spes / 2 }
    }
}

/// The adaptive MGPS scheduler state. One logical instance is shared by all
/// worker processes (the paper implements this with a shared arena between
/// MPI processes).
#[derive(Debug)]
pub struct MgpsScheduler {
    cfg: MgpsConfig,
    /// Recent off-loads: (task, off-load time ns). Bounded by `window`.
    offload_log: VecDeque<(TaskId, u64)>,
    completions: u64,
    llp: LoopDegree,
    evaluations: u64,
    activations: u64,
    deactivations: u64,
    /// `U` of the most recent evaluation (0 before the first).
    last_u: usize,
    /// SPEs currently in service (`n_spes` minus quarantined). LLP degree
    /// is computed as `⌊healthy / T⌋`, so quarantine throttles loop-level
    /// parallelism exactly as utilization does.
    healthy: usize,
}

impl MgpsScheduler {
    /// A scheduler with the given configuration.
    pub fn new(cfg: MgpsConfig) -> MgpsScheduler {
        assert!(cfg.window > 0, "window must be positive");
        assert!(cfg.n_spes > 0, "need at least one SPE");
        MgpsScheduler {
            cfg,
            offload_log: VecDeque::with_capacity(cfg.window),
            completions: 0,
            llp: LoopDegree::SEQUENTIAL,
            evaluations: 0,
            activations: 0,
            deactivations: 0,
            last_u: 0,
            healthy: cfg.n_spes,
        }
    }

    /// Report the number of SPEs currently in service. The fault plane
    /// calls this on every quarantine/re-admission transition; subsequent
    /// evaluations size LLP teams as `⌊healthy / T⌋` instead of
    /// `⌊n_spes / T⌋`. Clamped to `[0, n_spes]`.
    pub fn set_healthy(&mut self, healthy: usize) {
        self.healthy = healthy.min(self.cfg.n_spes);
    }

    /// SPEs currently in service (as last reported via [`set_healthy`]).
    ///
    /// [`set_healthy`]: MgpsScheduler::set_healthy
    pub fn healthy(&self) -> usize {
        self.healthy
    }

    /// Current loop-level parallelism directive.
    pub fn llp_degree(&self) -> LoopDegree {
        self.llp
    }

    /// The configuration this scheduler was built with.
    pub fn config(&self) -> MgpsConfig {
        self.cfg
    }

    /// Off-loads currently recorded in the sampling window (at most
    /// `config().window`).
    pub fn window_fill(&self) -> usize {
        self.offload_log.len()
    }

    /// Number of evaluation points reached.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Number of LLP activations issued.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Number of LLP deactivations issued.
    pub fn deactivations(&self) -> u64 {
        self.deactivations
    }

    /// The utilization sample `U` of the most recent evaluation (0 before
    /// any evaluation has happened). Lets callers surface the paper's
    /// window observable without re-deriving it from the off-load log.
    pub fn last_u(&self) -> usize {
        self.last_u
    }

    /// Record an off-load arrival at `now_ns`. The scheduler conservatively
    /// grants one SPE (the current `llp_degree` applies to the *loops* of
    /// the task, decided at activation time).
    pub fn on_offload(&mut self, task: TaskId, now_ns: u64) {
        if self.offload_log.len() == self.cfg.window {
            self.offload_log.pop_front();
        }
        self.offload_log.push_back((task, now_ns));
    }

    /// Record the departure of `task`, which executed over
    /// `[started_ns, now_ns]`. `waiting_tasks` is the number of tasks ready
    /// for off-load at this instant (the paper's `T`).
    ///
    /// Returns a directive at window boundaries, `None` otherwise.
    pub fn on_departure(
        &mut self,
        task: TaskId,
        started_ns: u64,
        now_ns: u64,
        waiting_tasks: usize,
    ) -> Option<Directive> {
        debug_assert!(now_ns >= started_ns);
        let _ = task;
        self.completions += 1;
        if !self.completions.is_multiple_of(self.cfg.window as u64) {
            return None;
        }
        // U: discrete tasks off-loaded while the departing task executed.
        let u = self
            .offload_log
            .iter()
            .filter(|&&(_, t)| t >= started_ns && t <= now_ns)
            .count();
        Some(self.evaluate(u, waiting_tasks))
    }

    /// Timer-interrupt evaluation for applications that off-load too rarely
    /// to reach a window boundary. `busy_spes` is the instantaneous count of
    /// busy SPEs; `waiting_tasks` as above.
    pub fn on_timer(&mut self, busy_spes: usize, waiting_tasks: usize) -> Directive {
        self.evaluate(busy_spes, waiting_tasks)
    }

    fn evaluate(&mut self, u: usize, waiting_tasks: usize) -> Directive {
        self.evaluations += 1;
        self.last_u = u;
        if u <= self.cfg.u_threshold {
            let t = waiting_tasks.max(1);
            let degree = (self.healthy.max(1) / t).clamp(1, self.cfg.n_spes);
            if degree > 1 {
                let d = LoopDegree(degree);
                if self.llp != d {
                    self.activations += 1;
                }
                self.llp = d;
                return Directive::ActivateLlp(d);
            }
            // ⌊n_spes/T⌋ == 1: LLP would not help; fall through to EDTLP.
        }
        if self.llp.is_parallel() {
            self.deactivations += 1;
        }
        self.llp = LoopDegree::SEQUENTIAL;
        Directive::DeactivateLlp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> MgpsScheduler {
        MgpsScheduler::new(MgpsConfig::for_spes(8))
    }

    /// Drive `n` offload+departure pairs where `concurrency` tasks overlap
    /// each departing task's execution window.
    fn drive(s: &mut MgpsScheduler, n: u64, concurrency: usize, waiting: usize) -> Vec<Directive> {
        let mut out = Vec::new();
        let task_len = 96_000u64; // 96 µs
        for i in 0..n {
            let start = i * task_len;
            // `concurrency` offloads land inside [start, start+task_len].
            for c in 0..concurrency {
                s.on_offload(TaskId(i * 100 + c as u64), start + c as u64 * 1_000);
            }
            if let Some(d) = s.on_departure(TaskId(i * 100), start, start + task_len, waiting) {
                out.push(d);
            }
        }
        out
    }

    #[test]
    fn default_is_pure_edtlp() {
        let s = sched();
        assert_eq!(s.llp_degree(), LoopDegree::SEQUENTIAL);
    }

    #[test]
    fn evaluation_happens_every_window_completions() {
        let mut s = sched();
        let directives = drive(&mut s, 16, 2, 2);
        assert_eq!(directives.len(), 2, "two windows of 8 completions");
        assert_eq!(s.evaluations(), 2);
    }

    #[test]
    fn low_tlp_activates_llp_with_floor_8_over_t() {
        let mut s = sched();
        // 2 concurrent bootstraps => U = 2 <= 4; T = 2 waiting => degree 4.
        let d = drive(&mut s, 8, 2, 2);
        assert_eq!(d, vec![Directive::ActivateLlp(LoopDegree(4))]);
        assert_eq!(s.llp_degree(), LoopDegree(4));

        // 4 waiting => degree 2.
        let mut s = sched();
        let d = drive(&mut s, 8, 3, 4);
        assert_eq!(d, vec![Directive::ActivateLlp(LoopDegree(2))]);
    }

    #[test]
    fn single_bootstrap_gets_all_spes() {
        let mut s = sched();
        let d = drive(&mut s, 8, 1, 1);
        assert_eq!(d, vec![Directive::ActivateLlp(LoopDegree(8))]);
    }

    #[test]
    fn high_tlp_retains_edtlp() {
        let mut s = sched();
        // 8 concurrent bootstraps => U = 8 > 4 => stay EDTLP.
        let d = drive(&mut s, 8, 8, 8);
        assert_eq!(d, vec![Directive::DeactivateLlp]);
        assert_eq!(s.llp_degree(), LoopDegree::SEQUENTIAL);
    }

    #[test]
    fn llp_is_throttled_when_tlp_rises() {
        let mut s = sched();
        let d1 = drive(&mut s, 8, 2, 2);
        assert_eq!(d1, vec![Directive::ActivateLlp(LoopDegree(4))]);
        // Task parallelism ramps up (e.g. more bootstraps spawned).
        let d2 = drive(&mut s, 8, 7, 7);
        assert_eq!(d2, vec![Directive::DeactivateLlp]);
        assert_eq!(s.deactivations(), 1);
    }

    #[test]
    fn u_at_exactly_half_activates() {
        let mut s = sched();
        // U = 4 (threshold) => activate; T = 4 => degree 2.
        let d = drive(&mut s, 8, 4, 4);
        assert_eq!(d, vec![Directive::ActivateLlp(LoopDegree(2))]);
    }

    #[test]
    fn degree_one_result_means_deactivate() {
        let mut s = sched();
        // U low but T = 5 => floor(8/5) = 1 => LLP pointless.
        let d = drive(&mut s, 8, 2, 5);
        assert_eq!(d, vec![Directive::DeactivateLlp]);
    }

    #[test]
    fn offload_log_is_bounded_by_window() {
        let mut s = sched();
        for i in 0..100 {
            s.on_offload(TaskId(i), i * 10);
        }
        assert!(s.offload_log.len() <= 8);
    }

    #[test]
    fn timer_fallback_uses_instantaneous_occupancy() {
        let mut s = sched();
        assert_eq!(s.on_timer(2, 2), Directive::ActivateLlp(LoopDegree(4)));
        assert_eq!(s.on_timer(7, 7), Directive::DeactivateLlp);
    }

    #[test]
    fn old_offloads_outside_execution_window_are_not_counted() {
        let mut s = sched();
        // Seven offloads long before the departing task ran.
        for i in 0..7 {
            s.on_offload(TaskId(i), i);
        }
        // Departing task ran [1_000_000, 1_096_000]; only its own offload
        // overlaps.
        s.on_offload(TaskId(99), 1_000_000);
        // Force a window boundary.
        for i in 0..7 {
            assert!(s.on_departure(TaskId(i), 0, 10, 1).is_none());
        }
        let d = s.on_departure(TaskId(99), 1_000_000, 1_096_000, 1);
        // U = 1 <= 4, T = 1 => all 8 SPEs to the loop.
        assert_eq!(d, Some(Directive::ActivateLlp(LoopDegree(8))));
    }

    #[test]
    fn activation_counters_track_transitions() {
        let mut s = sched();
        drive(&mut s, 8, 2, 2); // activate(4)
        drive(&mut s, 8, 2, 2); // same directive, no new transition
        assert_eq!(s.activations(), 1);
        drive(&mut s, 8, 8, 8); // deactivate
        assert_eq!(s.deactivations(), 1);
        drive(&mut s, 8, 1, 1); // activate(8)
        assert_eq!(s.activations(), 2);
    }

    #[test]
    fn quarantine_throttles_llp_degree() {
        let mut s = sched();
        assert_eq!(s.healthy(), 8);
        // Full health, one bootstrap: all 8 SPEs to the loop.
        assert_eq!(s.on_timer(1, 1), Directive::ActivateLlp(LoopDegree(8)));
        // Half the SPEs quarantined: degree drops to floor(4/1) = 4.
        s.set_healthy(4);
        assert_eq!(s.on_timer(1, 1), Directive::ActivateLlp(LoopDegree(4)));
        // Two waiting tasks share the healthy half: floor(4/2) = 2.
        assert_eq!(s.on_timer(1, 2), Directive::ActivateLlp(LoopDegree(2)));
        // Everything quarantined: LLP cannot help; deactivate.
        s.set_healthy(0);
        assert_eq!(s.on_timer(1, 1), Directive::DeactivateLlp);
        // Re-admission restores the full degree (clamped to n_spes).
        s.set_healthy(99);
        assert_eq!(s.healthy(), 8);
        assert_eq!(s.on_timer(1, 1), Directive::ActivateLlp(LoopDegree(8)));
    }

    #[test]
    fn dual_cell_config_scales_threshold() {
        let cfg = MgpsConfig::for_spes(16);
        assert_eq!(cfg.u_threshold, 8);
        assert_eq!(cfg.window, 16);
        let mut s = MgpsScheduler::new(cfg);
        // 4 bootstraps on a dual-Cell blade: U=4 <= 8 => degree 16/4 = 4.
        assert_eq!(s.on_timer(4, 4), Directive::ActivateLlp(LoopDegree(4)));
    }
}
