//! Iteration-space partitioning for loop work-sharing (§5.3).
//!
//! A parallel loop of `n` iterations is split across a team of `k` SPEs.
//! The master SPE starts executing immediately after signalling the workers,
//! while each worker must first DMA its input addresses and data from the
//! master's local store — so the master gets a *head start*. The paper
//! compensates by giving the master "a slightly larger portion of the loop";
//! [`partition`] implements that bias, and
//! [`super::balance::LoadBalancer`] tunes it adaptively per loop site.

use std::ops::Range;

/// Split `0..n` into `k` contiguous chunks, the first (master) chunk scaled
/// by `1 + master_bias`.
///
/// Properties (see the property tests):
/// * chunks are disjoint, contiguous, and cover `0..n` exactly;
/// * every chunk is non-empty whenever `n >= k` (workers never receive an
///   empty range unless there are more SPEs than iterations);
/// * `master_bias = 0` gives an even split (remainder spread over the first
///   chunks).
///
/// # Panics
/// Panics if `k == 0` or `master_bias` is not finite or below `0`.
pub fn partition(n: usize, k: usize, master_bias: f64) -> Vec<Range<usize>> {
    assert!(k > 0, "cannot partition across zero SPEs");
    assert!(master_bias.is_finite() && master_bias >= 0.0, "bias must be finite and >= 0");

    if k == 1 {
        #[allow(clippy::single_range_in_vec_init)] // one chunk covering 0..n is the intent
        return vec![0..n];
    }
    if n == 0 {
        return vec![0..0; k];
    }

    // Target master share: (1+b)/(k+b) of the iterations, i.e. a plain
    // 1/k share inflated by the bias while keeping the total fixed.
    let master_share = (1.0 + master_bias) / (k as f64 + master_bias);
    // Master gets at least its even share, at most everything that leaves
    // one iteration per worker when possible.
    let even = n / k;
    let mut master_len = (n as f64 * master_share).round() as usize;
    master_len = master_len.max(even.max(1).min(n));
    if n > k - 1 {
        master_len = master_len.min(n - (k - 1));
    } else {
        master_len = master_len.min(1);
    }

    let mut chunks = Vec::with_capacity(k);
    chunks.push(0..master_len);
    let rest = n - master_len;
    let workers = k - 1;
    let base = rest / workers;
    let extra = rest % workers;
    let mut start = master_len;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        chunks.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    chunks
}

/// Number of iterations in each chunk produced by [`partition`].
pub fn chunk_sizes(chunks: &[Range<usize>]) -> Vec<usize> {
    chunks.iter().map(|r| r.len()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_covers(n: usize, chunks: &[Range<usize>]) {
        let mut expect = 0usize;
        for c in chunks {
            assert_eq!(c.start, expect, "chunks must be contiguous");
            assert!(c.end >= c.start);
            expect = c.end;
        }
        assert_eq!(expect, n, "chunks must cover 0..n");
    }

    #[test]
    fn unbiased_split_is_even() {
        let chunks = partition(228, 4, 0.0);
        assert_covers(228, &chunks);
        assert_eq!(chunk_sizes(&chunks), vec![57, 57, 57, 57]);
    }

    #[test]
    fn remainder_spreads_over_leading_chunks() {
        let chunks = partition(10, 4, 0.0);
        assert_covers(10, &chunks);
        let sizes = chunk_sizes(&chunks);
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3));
    }

    #[test]
    fn master_bias_inflates_first_chunk() {
        let even = partition(228, 4, 0.0);
        let biased = partition(228, 4, 0.30);
        assert_covers(228, &biased);
        assert!(
            biased[0].len() > even[0].len(),
            "biased master chunk {} should exceed even chunk {}",
            biased[0].len(),
            even[0].len()
        );
        // Bias of 0.3 over 4 SPEs: master share (1.3/4.3) ≈ 30% of 228 ≈ 69.
        assert_eq!(biased[0].len(), 69);
    }

    #[test]
    fn single_spe_gets_everything() {
        assert_eq!(partition(100, 1, 0.5), vec![0..100]);
    }

    #[test]
    fn zero_iterations_yield_empty_chunks() {
        let chunks = partition(0, 3, 0.0);
        assert_eq!(chunks.len(), 3);
        assert!(chunks.iter().all(|c| c.is_empty()));
    }

    #[test]
    fn more_spes_than_iterations_leaves_trailing_chunks_empty() {
        let chunks = partition(3, 8, 0.0);
        assert_covers(3, &chunks);
        let nonempty = chunks.iter().filter(|c| !c.is_empty()).count();
        assert_eq!(nonempty, 3);
    }

    #[test]
    fn workers_always_get_work_when_iterations_suffice() {
        for k in 2..=8 {
            for n in [k, 2 * k, 228, 1000] {
                let chunks = partition(n, k, 0.25);
                assert_covers(n, &chunks);
                assert!(
                    chunks.iter().all(|c| !c.is_empty()),
                    "n={n} k={k} produced an empty chunk: {chunks:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero SPEs")]
    fn zero_team_rejected() {
        let _ = partition(10, 0, 0.0);
    }

    #[test]
    #[should_panic(expected = "bias must be finite")]
    fn negative_bias_rejected() {
        let _ = partition(10, 2, -0.5);
    }
}
