//! Identifiers and shared vocabulary for scheduling policies.
//!
//! Policies are *pure*: they never read clocks or touch threads. Engines
//! (the Cell simulator or the native host-thread runtime) feed them
//! timestamps in nanoseconds and act on the returned decisions, so the same
//! policy code drives both execution substrates.

use std::fmt;

/// Identifies a Synergistic Processing Element (or, natively, a virtual-SPE
/// worker thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpeId(pub usize);

/// Identifies a worker process (an "MPI process" in the paper's terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub usize);

/// Identifies one off-loaded task instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

impl fmt::Display for SpeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SPE{}", self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// The three dominant RAxML kernels the paper off-loads (§5.1). The engine
/// maps these to cost profiles (simulation) or real likelihood code
/// (native execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// `newview()`: post-order conditional likelihood update (76.8 % of
    /// sequential runtime).
    NewView,
    /// `evaluate()`: log-likelihood at an edge (2.37 %).
    Evaluate,
    /// `makenewz()`: Newton–Raphson branch-length optimization (19.6 %).
    MakeNewz,
}

impl KernelKind {
    /// All kernels, in the order they dominate a bootstrap.
    pub const ALL: [KernelKind; 3] = [KernelKind::NewView, KernelKind::MakeNewz, KernelKind::Evaluate];

    /// The paper's measured share of sequential execution time (gprof on
    /// Power, §5.1). These do not sum to 1.0; the remainder is
    /// non-offloadable PPE work.
    pub fn sequential_share(self) -> f64 {
        match self {
            KernelKind::NewView => 0.768,
            KernelKind::Evaluate => 0.0237,
            KernelKind::MakeNewz => 0.196,
        }
    }

    /// Short lower-case name, as in the paper.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::NewView => "newview",
            KernelKind::Evaluate => "evaluate",
            KernelKind::MakeNewz => "makenewz",
        }
    }
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How many SPEs a parallel loop should use. `1` means loop-level
/// parallelism is off (pure EDTLP).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopDegree(pub usize);

impl LoopDegree {
    /// LLP disabled: the task runs whole on one SPE.
    pub const SEQUENTIAL: LoopDegree = LoopDegree(1);

    /// Whether loop-level parallelism is active.
    pub fn is_parallel(self) -> bool {
        self.0 > 1
    }
}

/// A scheduling decision for an off-load request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffloadDecision {
    /// Run on SPE(s), work-shared across `degree` of them.
    Offload {
        /// Number of SPEs the task's parallel loops may use.
        degree: LoopDegree,
    },
    /// Run the PPE fallback version (granularity test failed).
    RunOnPpe,
    /// All SPEs busy: the request must queue.
    Wait,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_shares_cover_most_of_runtime() {
        let total: f64 = KernelKind::ALL.iter().map(|k| k.sequential_share()).sum();
        // The paper reports 98.77% combined coverage.
        assert!((total - 0.9877).abs() < 1e-9, "got {total}");
    }

    #[test]
    fn display_formats() {
        assert_eq!(SpeId(3).to_string(), "SPE3");
        assert_eq!(ProcId(1).to_string(), "P1");
        assert_eq!(TaskId(9).to_string(), "T9");
        assert_eq!(KernelKind::NewView.to_string(), "newview");
    }

    #[test]
    fn loop_degree_parallel_predicate() {
        assert!(!LoopDegree::SEQUENTIAL.is_parallel());
        assert!(!LoopDegree(0).is_parallel());
        assert!(LoopDegree(2).is_parallel());
    }
}
