//! The EDTLP granularity test (§5.2).
//!
//! The scheduler off-loads a task only when
//!
//! ```text
//! t_spe + t_code + 2·t_comm < t_ppe
//! ```
//!
//! where `t_spe` is the task's SPE execution time, `t_code` the one-time
//! cost of shipping its code image to the SPE's local store (zero after the
//! first execution, because images are preloaded and cached), and `t_comm`
//! the PPE↔SPE signal latency (paid once to start the task and once to
//! return the result).
//!
//! Task lengths are unknown a priori, so the scheduler *optimistically
//! off-loads* any annotated task, measures it, and throttles off-loading of
//! functions that fail the test — which requires keeping both PPE and SPE
//! versions of every off-loadable function.

use std::collections::HashMap;

use super::types::KernelKind;

/// Measurements below this many SPE samples never throttle: a single
/// wall-clock sample on a multiprogrammed host can be inflated arbitrarily
/// by preemption, and a throttled function is only re-probed every
/// `retry_period` requests, so one bad sample must not be able to park a
/// profitable kernel on the PPE.
pub const MIN_SPE_SAMPLES: u64 = 3;

/// Measured timing profile of one off-loadable function.
#[derive(Debug, Clone, Copy, Default)]
pub struct FunctionTimings {
    /// Best (minimum) observed SPE execution time, ns.
    pub t_spe_ns: u64,
    /// Code-shipping cost, ns (paid only on the first execution, or after a
    /// code-image replacement).
    pub t_code_ns: u64,
    /// One-way PPE↔SPE signal latency, ns.
    pub t_comm_ns: u64,
    /// Best (minimum) observed PPE execution time of the fallback version, ns.
    pub t_ppe_ns: u64,
}

impl FunctionTimings {
    /// Evaluate the paper's granularity condition.
    ///
    /// `code_resident` is true when the function's image is already loaded
    /// on the target SPE, making `t_code = 0`.
    pub fn offload_profitable(&self, code_resident: bool) -> bool {
        let t_code = if code_resident { 0 } else { self.t_code_ns };
        self.t_spe_ns + t_code + 2 * self.t_comm_ns < self.t_ppe_ns
    }
}

/// Per-function decision state for dynamic granularity control.
///
/// The first request for a function is always off-loaded (optimism); after
/// both sides have been measured, the test decides. A throttled function is
/// retried periodically so a change in workload (e.g. a longer alignment)
/// can re-enable off-loading.
#[derive(Debug)]
pub struct GranularityController {
    profiles: HashMap<KernelKind, Profile>,
    /// Re-probe a throttled function every `retry_period` requests.
    retry_period: u64,
}

#[derive(Debug, Default)]
struct Profile {
    spe_samples: u64,
    /// Minimum observed SPE time. Wall-clock noise on a multiprogrammed
    /// host is strictly additive (preemption can only inflate a sample),
    /// so the minimum is the robust estimator of intrinsic cost.
    spe_min_ns: Option<u64>,
    ppe_samples: u64,
    ppe_min_ns: Option<u64>,
    t_code_ns: u64,
    t_comm_ns: u64,
    requests: u64,
    throttled: bool,
}

impl Profile {
    fn timings(&self) -> FunctionTimings {
        FunctionTimings {
            t_spe_ns: self.spe_min_ns.unwrap_or(0),
            t_code_ns: self.t_code_ns,
            t_comm_ns: self.t_comm_ns,
            t_ppe_ns: self.ppe_min_ns.unwrap_or(u64::MAX),
        }
    }
}

/// What the controller wants done with one off-load request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GranularityDecision {
    /// Off-load to an SPE.
    Offload,
    /// Run the PPE fallback (task too fine-grained to ship).
    RunOnPpe,
}

impl GranularityController {
    /// A controller that re-probes throttled functions every `retry_period`
    /// requests (the paper re-probes when the runtime system changes its
    /// parallelization strategy; a periodic probe subsumes that).
    pub fn new(retry_period: u64) -> Self {
        assert!(retry_period > 0, "retry period must be positive");
        GranularityController { profiles: HashMap::new(), retry_period }
    }

    /// Record the fixed communication and code-shipping costs for `kind`.
    pub fn set_costs(&mut self, kind: KernelKind, t_code_ns: u64, t_comm_ns: u64) {
        let p = self.profiles.entry(kind).or_default();
        p.t_code_ns = t_code_ns;
        p.t_comm_ns = t_comm_ns;
    }

    /// Record a completed SPE execution of `kind`.
    pub fn record_spe(&mut self, kind: KernelKind, elapsed_ns: u64) {
        let p = self.profiles.entry(kind).or_default();
        p.spe_samples += 1;
        p.spe_min_ns = Some(p.spe_min_ns.map_or(elapsed_ns, |m| m.min(elapsed_ns)));
    }

    /// Record a completed PPE (fallback) execution of `kind`.
    pub fn record_ppe(&mut self, kind: KernelKind, elapsed_ns: u64) {
        let p = self.profiles.entry(kind).or_default();
        p.ppe_samples += 1;
        p.ppe_min_ns = Some(p.ppe_min_ns.map_or(elapsed_ns, |m| m.min(elapsed_ns)));
    }

    /// Decide the fate of a new off-load request for `kind`.
    ///
    /// `code_resident`: the function's image is already on the target SPE.
    pub fn decide(&mut self, kind: KernelKind, code_resident: bool) -> GranularityDecision {
        let retry = self.retry_period;
        let p = self.profiles.entry(kind).or_default();
        p.requests += 1;

        // Optimistic off-load until we have enough SPE measurements that a
        // single preemption-inflated sample cannot throttle the kernel.
        if p.spe_samples < MIN_SPE_SAMPLES {
            return GranularityDecision::Offload;
        }
        // The test needs t_ppe too: probe the PPE fallback version once
        // (the dual PPE/SPE copies of every off-loadable function exist
        // precisely to allow this, §5.2).
        if p.ppe_samples == 0 {
            return GranularityDecision::RunOnPpe;
        }

        let profitable = p.timings().offload_profitable(code_resident);
        if profitable {
            p.throttled = false;
            GranularityDecision::Offload
        } else {
            p.throttled = true;
            // Periodic re-probe so a workload change can be noticed.
            if p.requests.is_multiple_of(retry) {
                GranularityDecision::Offload
            } else {
                GranularityDecision::RunOnPpe
            }
        }
    }

    /// Whether `kind` is currently throttled to the PPE.
    pub fn is_throttled(&self, kind: KernelKind) -> bool {
        self.profiles.get(&kind).is_some_and(|p| p.throttled)
    }

    /// Current averaged timings for `kind` (None before any record).
    pub fn timings(&self, kind: KernelKind) -> Option<FunctionTimings> {
        self.profiles.get(&kind).map(Profile::timings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_condition_matches_paper_formula() {
        // t_spe + t_code + 2 t_comm < t_ppe
        let t = FunctionTimings { t_spe_ns: 96_000, t_code_ns: 0, t_comm_ns: 1_000, t_ppe_ns: 120_000 };
        assert!(t.offload_profitable(true));
        let t2 = FunctionTimings { t_spe_ns: 96_000, t_code_ns: 0, t_comm_ns: 13_000, t_ppe_ns: 120_000 };
        assert!(!t2.offload_profitable(true)); // 96 + 26 >= 120
    }

    #[test]
    fn code_cost_only_counts_when_not_resident() {
        let t = FunctionTimings {
            t_spe_ns: 100_000,
            t_code_ns: 50_000,
            t_comm_ns: 1_000,
            t_ppe_ns: 110_000,
        };
        assert!(!t.offload_profitable(false)); // 100+50+2 >= 110
        assert!(t.offload_profitable(true)); // 100+0+2 < 110
    }

    #[test]
    fn first_request_is_optimistically_offloaded() {
        let mut c = GranularityController::new(64);
        assert_eq!(c.decide(KernelKind::Evaluate, false), GranularityDecision::Offload);
    }

    #[test]
    fn warmup_requests_probe_the_ppe_fallback_once() {
        let mut c = GranularityController::new(64);
        // Optimistic off-loads until MIN_SPE_SAMPLES measurements exist.
        for _ in 0..MIN_SPE_SAMPLES {
            assert_eq!(c.decide(KernelKind::Evaluate, false), GranularityDecision::Offload);
            c.record_spe(KernelKind::Evaluate, 5_000);
        }
        // One PPE probe so t_ppe becomes known...
        assert_eq!(c.decide(KernelKind::Evaluate, true), GranularityDecision::RunOnPpe);
        c.record_ppe(KernelKind::Evaluate, 50_000);
        // ... after which the (profitable) kernel off-loads again.
        assert_eq!(c.decide(KernelKind::Evaluate, true), GranularityDecision::Offload);
    }

    #[test]
    fn unprofitable_function_gets_throttled_after_measurement() {
        let mut c = GranularityController::new(1000);
        c.set_costs(KernelKind::Evaluate, 0, 5_000);
        // SPE is slower than PPE for this one.
        for _ in 0..MIN_SPE_SAMPLES {
            c.record_spe(KernelKind::Evaluate, 50_000);
        }
        c.record_ppe(KernelKind::Evaluate, 20_000);
        assert_eq!(c.decide(KernelKind::Evaluate, true), GranularityDecision::RunOnPpe);
        assert!(c.is_throttled(KernelKind::Evaluate));
    }

    #[test]
    fn one_inflated_sample_cannot_throttle() {
        // A preempted wall-clock measurement inflates one SPE sample far
        // past the PPE time; the minimum estimator must shrug it off.
        let mut c = GranularityController::new(1000);
        c.record_spe(KernelKind::Evaluate, 9_000_000); // preempted outlier
        c.record_spe(KernelKind::Evaluate, 40_000);
        c.record_spe(KernelKind::Evaluate, 45_000);
        c.record_ppe(KernelKind::Evaluate, 120_000);
        assert_eq!(c.decide(KernelKind::Evaluate, true), GranularityDecision::Offload);
        assert!(!c.is_throttled(KernelKind::Evaluate));
    }

    #[test]
    fn profitable_function_keeps_offloading() {
        let mut c = GranularityController::new(1000);
        c.set_costs(KernelKind::NewView, 0, 1_000);
        for _ in 0..MIN_SPE_SAMPLES {
            c.record_spe(KernelKind::NewView, 96_000);
        }
        c.record_ppe(KernelKind::NewView, 300_000);
        for _ in 0..10 {
            assert_eq!(c.decide(KernelKind::NewView, true), GranularityDecision::Offload);
        }
        assert!(!c.is_throttled(KernelKind::NewView));
    }

    #[test]
    fn throttled_function_is_reprobed_periodically() {
        let mut c = GranularityController::new(4);
        c.set_costs(KernelKind::Evaluate, 0, 10_000);
        for _ in 0..MIN_SPE_SAMPLES {
            c.record_spe(KernelKind::Evaluate, 50_000);
        }
        c.record_ppe(KernelKind::Evaluate, 20_000);
        let mut offloads = 0;
        for _ in 0..8 {
            if c.decide(KernelKind::Evaluate, true) == GranularityDecision::Offload {
                offloads += 1;
            }
        }
        assert_eq!(offloads, 2, "one probe per retry period");
    }

    #[test]
    fn fault_storm_timings_cannot_permanently_disable_a_kernel() {
        // Adversarial timing: every warmup sample lands during a fault
        // storm (retries + watchdog stalls inflate wall-clock SPE times
        // 100×), so the kernel gets throttled on corrupt data. Once the
        // storm passes — SPEs re-admitted from quarantine — the periodic
        // re-probe must observe one clean sample and the minimum estimator
        // must rehabilitate the kernel permanently.
        let mut c = GranularityController::new(4);
        c.set_costs(KernelKind::Evaluate, 0, 1_000);
        for _ in 0..MIN_SPE_SAMPLES {
            assert_eq!(c.decide(KernelKind::Evaluate, true), GranularityDecision::Offload);
            c.record_spe(KernelKind::Evaluate, 5_000_000); // storm-inflated
        }
        assert_eq!(c.decide(KernelKind::Evaluate, true), GranularityDecision::RunOnPpe);
        c.record_ppe(KernelKind::Evaluate, 120_000);
        // Verdict on the corrupt profile: throttled, as it must be — the
        // controller cannot distinguish a storm from a genuinely slow SPE.
        assert_eq!(c.decide(KernelKind::Evaluate, true), GranularityDecision::RunOnPpe);
        assert!(c.is_throttled(KernelKind::Evaluate));
        // Storm ends. Drain decisions until the periodic probe off-loads;
        // its clean measurement must win the minimum and clear the throttle.
        let mut probed = false;
        for _ in 0..8 {
            if c.decide(KernelKind::Evaluate, true) == GranularityDecision::Offload {
                c.record_spe(KernelKind::Evaluate, 40_000); // healthy again
                probed = true;
                break;
            }
        }
        assert!(probed, "a throttled kernel must still be re-probed");
        assert_eq!(c.decide(KernelKind::Evaluate, true), GranularityDecision::Offload);
        assert!(!c.is_throttled(KernelKind::Evaluate));
        // And no amount of later storm residue can undo the clean minimum.
        c.record_spe(KernelKind::Evaluate, 5_000_000);
        assert_eq!(c.decide(KernelKind::Evaluate, true), GranularityDecision::Offload);
    }

    #[test]
    fn timings_track_the_minimum_sample() {
        let mut c = GranularityController::new(8);
        c.record_spe(KernelKind::MakeNewz, 30_000);
        c.record_spe(KernelKind::MakeNewz, 10_000);
        c.record_spe(KernelKind::MakeNewz, 20_000);
        let t = c.timings(KernelKind::MakeNewz).expect("profile exists");
        assert_eq!(t.t_spe_ns, 10_000);
        assert_eq!(t.t_ppe_ns, u64::MAX, "no PPE samples yet");
    }

    #[test]
    #[should_panic(expected = "retry period")]
    fn zero_retry_period_rejected() {
        let _ = GranularityController::new(0);
    }
}
