//! Deterministic fault injection and recovery policy — the chaos plane.
//!
//! A [`FaultPlan`] decides, per off-load attempt, whether the attempt is
//! sabotaged and how. Decisions are a pure function of the plan's own
//! `seed` and the attempt coordinates `(task, attempt, lead SPE)`:
//!
//! * the plan never draws from the driving engine's RNG stream, so arming
//!   faults cannot perturb the schedule an unfaulted run would produce,
//!   and an unarmed plan leaves runs byte-identical to builds that predate
//!   the fault plane;
//! * re-running the same `(workload seed, fault spec)` pair reproduces the
//!   exact same fault pattern, which is what lets the checker re-derive
//!   the declared backoff sequence from the RunLog header.
//!
//! Recovery is owned by the runtime (simulator and native engine alike)
//! and parameterized by the embedded [`RecoveryPolicy`]: watchdog
//! deadlines scale the engine's *own observed* minimum task duration (no
//! wall-clock magic numbers in sim paths), faulted off-loads retry with
//! bounded exponential backoff plus seeded jitter, SPEs are quarantined
//! after `quarantine_k` consecutive faults (with periodic re-admission
//! probes), and the PPE fallback copy of the kernel is the terminal
//! degradation — an admitted task always completes *somewhere*, unless
//! the plan explicitly disables the fallback (the "lethal" configuration
//! used to prove the checker notices lost tasks).

/// Maximum number of pinned `(kind, task)` fault entries in a plan.
///
/// Pins are for surgical regression tests ("fault exactly off-load 0");
/// sweeps use the rate fields. The array is fixed-size so [`FaultPlan`]
/// stays `Copy` and can ride inside engine configs.
pub const MAX_PINS: usize = 8;

/// Parts-per-million denominator for fault rates.
pub const PPM: u64 = 1_000_000;

/// The kinds of fault the plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// The lead SPE hangs: no progress until the watchdog fires.
    SpeStall,
    /// The lead SPE dies mid-assignment: the attempt is lost outright.
    SpeCrash,
    /// A transient DMA transfer error corrupts the argument fetch.
    DmaError,
    /// The start signal is dropped from the inbound mailbox.
    MailboxDrop,
}

impl FaultKind {
    /// Every kind, in injection-priority order (also the order rate
    /// hashes are evaluated in, so the mapping spec → pattern is stable).
    pub const ALL: [FaultKind; 4] =
        [FaultKind::SpeStall, FaultKind::SpeCrash, FaultKind::DmaError, FaultKind::MailboxDrop];

    /// Stable snake_case name used in RunLog events and fault specs.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::SpeStall => "spe_stall",
            FaultKind::SpeCrash => "spe_crash",
            FaultKind::DmaError => "dma_error",
            FaultKind::MailboxDrop => "mailbox_drop",
        }
    }

    /// Inverse of [`FaultKind::name`]; also accepts the short spec
    /// aliases (`stall`, `crash`, `dma`, `mbox`).
    pub fn from_name(s: &str) -> Option<FaultKind> {
        match s {
            "spe_stall" | "stall" => Some(FaultKind::SpeStall),
            "spe_crash" | "crash" => Some(FaultKind::SpeCrash),
            "dma_error" | "dma" => Some(FaultKind::DmaError),
            "mailbox_drop" | "mbox" => Some(FaultKind::MailboxDrop),
            _ => None,
        }
    }
}

/// How the runtime recovers from injected (or real) faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Retries per task before terminal degradation (attempt 0 plus
    /// `max_retries` re-off-loads).
    pub max_retries: u32,
    /// First-retry backoff; attempt `a` waits `base << (a-1)` (capped)
    /// plus seeded jitter.
    pub backoff_base_ns: u64,
    /// Consecutive faults on one SPE before it is quarantined.
    pub quarantine_k: u32,
    /// Completions between a quarantine and its re-admission probe.
    pub readmit_period: u32,
    /// Whether the PPE fallback copy runs exhausted tasks. Disabling it
    /// makes high-rate plans lethal (tasks are lost) — the checker must
    /// notice.
    pub ppe_fallback: bool,
    /// Watchdog deadline = `watchdog_factor ×` the engine's minimum
    /// observed task duration (bootstrapped from the first assignment's
    /// own predicted duration before any completion is observed).
    pub watchdog_factor: u64,
    /// Serve-plane job retries: re-queues a job gets after an execution
    /// attempt dies on an unrecoverable off-load fault (attempt 0 plus
    /// `job_retries` restarts; the next failure poisons the job). This
    /// budget is independent of `max_retries`, which governs off-load
    /// attempts *within* one job execution — faults escalate to the job
    /// layer precisely when that inner ladder is exhausted.
    pub job_retries: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            max_retries: 3,
            backoff_base_ns: 50_000,
            quarantine_k: 3,
            readmit_period: 32,
            ppe_fallback: true,
            watchdog_factor: 8,
            job_retries: 2,
        }
    }
}

/// Exponent cap for the backoff shift: `base << 6` = 64× base at most.
const BACKOFF_SHIFT_CAP: u32 = 6;

/// A seeded, deterministic fault-injection plan.
///
/// `Copy` by design: engine configs ([`crate::native::RuntimeConfig`],
/// the simulator's `SimConfig`) embed it by value. An inert plan (the
/// default) injects nothing and costs one branch per off-load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for all fault decisions and backoff jitter. Independent of
    /// the workload seed.
    pub seed: u64,
    /// Per-kind injection rate in parts-per-million, indexed in
    /// [`FaultKind::ALL`] order.
    pub rate_ppm: [u32; 4],
    /// The first `broken_spes` SPEs always fault when chosen as team
    /// lead — a hard-broken-hardware model that drives quarantine.
    pub broken_spes: u32,
    /// Pinned faults: `pin_task[i]` faults with kind
    /// `FaultKind::ALL[pin_kind[i] as usize]` on attempt 0.
    pub pin_task: [u64; MAX_PINS],
    /// Kind index (into [`FaultKind::ALL`]) for each pin.
    pub pin_kind: [u8; MAX_PINS],
    /// Number of live entries in `pin_task`/`pin_kind`.
    pub pin_len: u8,
    /// Recovery parameters the runtime must follow (and declare in the
    /// RunLog header so the checker can audit the backoff sequence).
    pub policy: RecoveryPolicy,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::inert()
    }
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn inert() -> FaultPlan {
        FaultPlan {
            seed: 0,
            rate_ppm: [0; 4],
            broken_spes: 0,
            pin_task: [0; MAX_PINS],
            pin_kind: [0; MAX_PINS],
            pin_len: 0,
            policy: RecoveryPolicy::default(),
        }
    }

    /// Whether this plan can inject at least one fault.
    pub fn armed(&self) -> bool {
        self.broken_spes > 0 || self.pin_len > 0 || self.rate_ppm.iter().any(|&r| r > 0)
    }

    /// Decide the fate of one off-load attempt. `task` is the task id,
    /// `attempt` counts from 0 (the original off-load), `lead_spe` is the
    /// SPE the work was assigned to (team lead).
    ///
    /// Deterministic: same plan + same coordinates → same answer.
    pub fn decide(&self, task: u64, attempt: u32, lead_spe: usize) -> Option<FaultKind> {
        if !self.armed() {
            return None;
        }
        if lead_spe < 64 && (lead_spe as u32) < self.broken_spes {
            return Some(FaultKind::SpeStall);
        }
        if attempt == 0 {
            for i in 0..self.pin_len as usize {
                if self.pin_task[i] == task {
                    return Some(FaultKind::ALL[self.pin_kind[i] as usize]);
                }
            }
        }
        for (i, kind) in FaultKind::ALL.iter().enumerate() {
            if self.rate_ppm[i] == 0 {
                continue;
            }
            let h = mix3(self.seed, task, (u64::from(attempt) << 8) | i as u64);
            if h % PPM < u64::from(self.rate_ppm[i]) {
                return Some(*kind);
            }
        }
        None
    }

    /// The declared backoff before retry `attempt` (≥ 1) of `task`:
    /// exponential in the attempt number with seeded jitter in
    /// `[0, base/4]`. The checker recomputes this from the RunLog header
    /// and flags any divergence.
    pub fn backoff_ns(&self, task: u64, attempt: u32) -> u64 {
        debug_assert!(attempt >= 1, "attempt 0 is the original off-load");
        let base = self.policy.backoff_base_ns.max(1);
        let shift = (attempt - 1).min(BACKOFF_SHIFT_CAP);
        let jitter = mix3(self.seed ^ 0x0062_6163_6b6f_6666, task, u64::from(attempt));
        base.saturating_shl(shift) + jitter % (base / 4 + 1)
    }

    /// Watchdog deadline for an attempt whose best duration hint is
    /// `hint_ns` (the engine's minimum observed task duration, or the
    /// attempt's own predicted duration before any completion exists).
    pub fn watchdog_ns(&self, hint_ns: u64) -> u64 {
        hint_ns.max(1).saturating_mul(self.policy.watchdog_factor.max(1))
    }

    /// Index of `kind` in [`FaultKind::ALL`], or `None` if the table and
    /// the enum ever drift apart.
    fn kind_index(kind: FaultKind) -> Option<usize> {
        FaultKind::ALL.iter().position(|k| *k == kind)
    }

    /// Parse a fault spec: comma-separated `key=value` pairs.
    ///
    /// Keys: `seed=<u64>`, rates `stall=`/`crash=`/`dma=`/`mbox=`
    /// (fraction in `[0,1]`), `broken=<n>` (first `n` SPEs hard-broken),
    /// `pin=<kind>@<task>` (repeatable, ≤ 8), `retries=<n>`,
    /// `backoff=<ns>`, `k=<n>` (quarantine threshold), `readmit=<n>`,
    /// `fallback=on|off`, `watchdog=<factor>`, `jobr=<n>` (serve-plane
    /// job retries before poison quarantine).
    ///
    /// # Errors
    /// A human-readable message naming the offending pair.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::inert();
        for pair in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) =
                pair.split_once('=').ok_or_else(|| format!("expected key=value, got '{pair}'"))?;
            match key {
                "seed" => plan.seed = parse_num(key, value)?,
                "stall" | "crash" | "dma" | "mbox" => {
                    let kind = FaultKind::from_name(key)
                        .ok_or_else(|| format!("unknown fault kind '{key}'"))?;
                    let idx = Self::kind_index(kind)
                        .ok_or_else(|| format!("fault kind '{key}' missing from ALL"))?;
                    plan.rate_ppm[idx] = parse_rate(key, value)?;
                }
                "broken" => plan.broken_spes = parse_num(key, value)?,
                "pin" => {
                    let (kname, task) = value
                        .split_once('@')
                        .ok_or_else(|| format!("pin wants <kind>@<task>, got '{value}'"))?;
                    let kind = FaultKind::from_name(kname)
                        .ok_or_else(|| format!("unknown fault kind '{kname}'"))?;
                    let i = plan.pin_len as usize;
                    if i >= MAX_PINS {
                        return Err(format!("too many pins (max {MAX_PINS})"));
                    }
                    plan.pin_task[i] = parse_num("pin task", task)?;
                    plan.pin_kind[i] = Self::kind_index(kind)
                        .ok_or_else(|| format!("fault kind '{kname}' missing from ALL"))?
                        as u8;
                    plan.pin_len += 1;
                }
                "retries" => plan.policy.max_retries = parse_num(key, value)?,
                "backoff" => plan.policy.backoff_base_ns = parse_num(key, value)?,
                "k" => plan.policy.quarantine_k = parse_num(key, value)?,
                "readmit" => plan.policy.readmit_period = parse_num(key, value)?,
                "fallback" => {
                    plan.policy.ppe_fallback = match value {
                        "on" => true,
                        "off" => false,
                        other => return Err(format!("fallback wants on|off, got '{other}'")),
                    }
                }
                "watchdog" => plan.policy.watchdog_factor = parse_num(key, value)?,
                "jobr" => plan.policy.job_retries = parse_num(key, value)?,
                other => return Err(format!("unknown fault-spec key '{other}'")),
            }
        }
        if plan.policy.quarantine_k == 0 {
            return Err("k (quarantine threshold) must be positive".into());
        }
        Ok(plan)
    }

    /// Canonical spec string: `parse(to_spec())` reproduces the plan
    /// exactly. This is what the RunLog header stores, so logs are
    /// self-describing and the checker can rebuild the plan.
    pub fn to_spec(&self) -> String {
        let mut out = format!("seed={}", self.seed);
        for (i, kind) in FaultKind::ALL.iter().enumerate() {
            if self.rate_ppm[i] > 0 {
                let short = match kind {
                    FaultKind::SpeStall => "stall",
                    FaultKind::SpeCrash => "crash",
                    FaultKind::DmaError => "dma",
                    FaultKind::MailboxDrop => "mbox",
                };
                out.push_str(&format!(",{short}={}", fmt_rate(self.rate_ppm[i])));
            }
        }
        if self.broken_spes > 0 {
            out.push_str(&format!(",broken={}", self.broken_spes));
        }
        for i in 0..self.pin_len as usize {
            let kind = FaultKind::ALL[self.pin_kind[i] as usize];
            out.push_str(&format!(",pin={}@{}", kind.name(), self.pin_task[i]));
        }
        let p = &self.policy;
        out.push_str(&format!(
            ",retries={},backoff={},k={},readmit={},fallback={},watchdog={}",
            p.max_retries,
            p.backoff_base_ns,
            p.quarantine_k,
            p.readmit_period,
            if p.ppe_fallback { "on" } else { "off" },
            p.watchdog_factor,
        ));
        // Appended only when non-default so specs (and the armed-run
        // transcripts that quote them) from before the job-retry ladder
        // stay canonical verbatim.
        if p.job_retries != RecoveryPolicy::default().job_retries {
            out.push_str(&format!(",jobr={}", p.job_retries));
        }
        out
    }
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        self.checked_shl(shift).unwrap_or(u64::MAX)
    }
}

/// splitmix64 finalizer over three words — the only randomness source in
/// the fault plane. Stable across platforms and releases by construction.
fn mix3(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(c.wrapping_mul(0x94d0_49bb_1331_11eb));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
    value.parse().map_err(|_| format!("{key} wants a number, got '{value}'"))
}

fn parse_rate(key: &str, value: &str) -> Result<u32, String> {
    let f: f64 = value.parse().map_err(|_| format!("{key} wants a fraction, got '{value}'"))?;
    if !(0.0..=1.0).contains(&f) {
        return Err(format!("{key} must be in [0,1], got {value}"));
    }
    Ok((f * PPM as f64).round() as u32)
}

/// Render a ppm rate as the shortest exact decimal fraction.
fn fmt_rate(ppm: u32) -> String {
    let mut s = format!("{:.6}", ppm as f64 / PPM as f64);
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.push('0');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_faults() {
        let p = FaultPlan::inert();
        assert!(!p.armed());
        for task in 0..1000 {
            assert_eq!(p.decide(task, 0, task as usize % 8), None);
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan { seed: 1, rate_ppm: [200_000, 0, 0, 0], ..FaultPlan::inert() };
        let b = FaultPlan { seed: 2, ..a };
        let hits = |p: &FaultPlan| -> Vec<u64> {
            (0..500).filter(|&t| p.decide(t, 0, 7).is_some()).collect()
        };
        assert_eq!(hits(&a), hits(&a), "same plan, same pattern");
        assert_ne!(hits(&a), hits(&b), "different seeds, different patterns");
        let n = hits(&a).len();
        assert!((50..150).contains(&n), "20% rate over 500 tasks, got {n}");
    }

    #[test]
    fn broken_spes_always_fault_as_lead() {
        let p = FaultPlan { broken_spes: 4, ..FaultPlan::inert() };
        assert!(p.armed());
        for spe in 0..4 {
            assert_eq!(p.decide(17, 3, spe), Some(FaultKind::SpeStall));
        }
        for spe in 4..8 {
            assert_eq!(p.decide(17, 3, spe), None);
        }
    }

    #[test]
    fn pins_fault_exactly_attempt_zero() {
        let p = FaultPlan::parse("pin=crash@0,pin=dma@5").unwrap();
        assert_eq!(p.decide(0, 0, 7), Some(FaultKind::SpeCrash));
        assert_eq!(p.decide(0, 1, 7), None, "the retry must be allowed to succeed");
        assert_eq!(p.decide(5, 0, 7), Some(FaultKind::DmaError));
        assert_eq!(p.decide(1, 0, 7), None);
    }

    #[test]
    fn backoff_is_exponential_bounded_and_jittered() {
        let p = FaultPlan::parse("seed=9,backoff=1000").unwrap();
        let b1 = p.backoff_ns(3, 1);
        let b2 = p.backoff_ns(3, 2);
        let b3 = p.backoff_ns(3, 3);
        assert!((1000..=1250).contains(&b1), "base + jitter<=base/4, got {b1}");
        assert!((2000..=2250).contains(&b2), "{b2}");
        assert!((4000..=4250).contains(&b3), "{b3}");
        // Cap: the shift saturates at 64x base.
        let b99 = p.backoff_ns(3, 99);
        assert!(b99 <= 64 * 1000 + 250, "{b99}");
        // Deterministic per (task, attempt), varies across tasks.
        assert_eq!(p.backoff_ns(3, 1), b1);
        assert!((0..64).any(|t| p.backoff_ns(t, 1) != b1), "jitter should vary by task");
    }

    #[test]
    fn spec_round_trips_through_canonical_form() {
        let spec = "seed=42,stall=0.05,crash=0.01,dma=0.002,mbox=0.3,broken=2,\
                    pin=stall@0,pin=mbox@9,retries=5,backoff=2000,k=2,readmit=16,\
                    fallback=off,watchdog=12,jobr=4";
        let p = FaultPlan::parse(spec).unwrap();
        assert_eq!(p.rate_ppm, [50_000, 10_000, 2_000, 300_000]);
        assert!(!p.policy.ppe_fallback);
        assert_eq!(p.policy.job_retries, 4);
        let round = FaultPlan::parse(&p.to_spec()).unwrap();
        assert_eq!(p, round, "canonical spec must reproduce the plan:\n{}", p.to_spec());
    }

    #[test]
    fn default_job_retries_stay_out_of_the_canonical_spec() {
        let p = FaultPlan::parse("seed=7,stall=0.1").unwrap();
        assert_eq!(p.policy.job_retries, 2);
        assert!(!p.to_spec().contains("jobr"), "default jobr must not serialize");
        let q = FaultPlan::parse("seed=7,stall=0.1,jobr=0").unwrap();
        assert!(q.to_spec().ends_with(",jobr=0"), "got {}", q.to_spec());
        assert_eq!(FaultPlan::parse(&q.to_spec()).unwrap(), q);
    }

    #[test]
    fn default_policy_round_trips_too() {
        let p = FaultPlan::parse("seed=7,stall=0.1").unwrap();
        assert_eq!(FaultPlan::parse(&p.to_spec()).unwrap(), p);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "nonsense",
            "rate=0.5",
            "stall=1.5",
            "stall=-0.1",
            "pin=stall",
            "pin=frobnicate@3",
            "fallback=maybe",
            "k=0",
            "seed=abc",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "'{bad}' should fail to parse");
        }
    }

    #[test]
    fn empty_spec_is_the_inert_plan() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::inert());
        assert!(!FaultPlan::parse("").unwrap().armed());
    }

    #[test]
    fn watchdog_scales_the_duration_hint() {
        let p = FaultPlan::parse("watchdog=8").unwrap();
        assert_eq!(p.watchdog_ns(96_000), 768_000);
        assert_eq!(p.watchdog_ns(0), 8, "zero hints clamp to 1");
    }
}
