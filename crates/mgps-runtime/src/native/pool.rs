//! The virtual-SPE pool: persistent worker threads standing in for the
//! eight SPEs, with the off-load semantics of the paper's runtime.
//!
//! Off-loads are immediate when an SPE is idle and queue FIFO otherwise
//! (the EDTLP scheduler "off-loads a task immediately upon request ... if
//! no idle SPE is found, the scheduler waits until an SPE becomes
//! available"). Teams for work-shared loops are *reserved* — removed from
//! the idle set atomically — and addressed directly, mirroring how a master
//! SPE signals its workers without going through the PPE.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender};

use super::sync::{Condvar, Mutex, COMMAND_QUEUE_DEPTH};

use super::context::{ImageId, SpeContext};
use crate::metrics::{Counter, MetricsSink, MetricsSinkExt, NopMetrics};
use crate::policy::SpeId;
use crate::tracing::{TraceEventKind, TraceHandle, TraceMailbox, Tracer};

/// A unit of work executed on a virtual SPE.
pub type Job = Box<dyn FnOnce(&mut SpeContext) + Send>;

enum WorkerMsg {
    Run(Job),
    Shutdown,
}

/// Why waiting on an [`OffloadHandle`] failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffloadError {
    /// The job panicked on the SPE; the panic was contained and the SPE
    /// returned to service.
    TaskPanicked,
    /// An armed fault plan killed every SPE attempt, retries are exhausted,
    /// and the recovery policy forbids the PPE fallback.
    Unrecovered,
}

impl std::fmt::Display for OffloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OffloadError::TaskPanicked => f.write_str("off-loaded task panicked"),
            OffloadError::Unrecovered => {
                f.write_str("off-load unrecovered: retries exhausted and PPE fallback disabled")
            }
        }
    }
}

impl std::error::Error for OffloadError {}

/// Completion handle for an off-loaded task.
#[derive(Debug)]
pub struct OffloadHandle<T> {
    rx: Receiver<T>,
}

impl<T> OffloadHandle<T> {
    /// Block until the task finishes.
    ///
    /// # Errors
    /// [`OffloadError::TaskPanicked`] if the job panicked.
    pub fn wait(self) -> Result<T, OffloadError> {
        self.rx.recv().map_err(|_| OffloadError::TaskPanicked)
    }

    /// Non-blocking poll; `None` while the task is still running.
    ///
    /// # Errors
    /// [`OffloadError::TaskPanicked`] if the job panicked.
    pub fn try_wait(&self) -> Result<Option<T>, OffloadError> {
        match self.rx.try_recv() {
            Ok(v) => Ok(Some(v)),
            Err(crossbeam::channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam::channel::TryRecvError::Disconnected) => Err(OffloadError::TaskPanicked),
        }
    }
}

struct PoolState {
    idle: Vec<SpeId>,
    pending: std::collections::VecDeque<Job>,
    /// Last code image resident on each SPE (None before any image load).
    /// Maintained by the workers; used for affinity placement — the
    /// memory-aware scheduling the paper lists as future work (§6).
    resident: Vec<Option<ImageId>>,
    /// SPEs benched by the fault plane. Only an *idle* SPE can be benched
    /// (so a quarantined SPE is never mid-job and can never appear in a
    /// team that started after its quarantine); it sits out — neither idle
    /// nor busy — until re-admitted.
    quarantined: Vec<bool>,
}

struct Shared {
    state: Mutex<PoolState>,
    idle_changed: Condvar,
    panics: AtomicU64,
    completed: AtomicU64,
    affinity_hits: AtomicU64,
    affinity_misses: AtomicU64,
    metrics: Arc<dyn MetricsSink>,
}

struct Worker {
    tx: Sender<WorkerMsg>,
    handle: Option<JoinHandle<SpeStats>>,
}

/// Final per-SPE statistics returned when the pool shuts down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeStats {
    /// Which SPE these numbers describe.
    pub id: SpeId,
    /// Jobs executed.
    pub tasks_run: u64,
    /// Code-image reloads paid.
    pub code_reloads: u64,
    /// Peak local-store occupancy in bytes.
    pub local_store_high_water: usize,
}

/// A pool of virtual SPEs.
pub struct SpePool {
    workers: Vec<Worker>,
    shared: Arc<Shared>,
    direct: Vec<Sender<WorkerMsg>>,
}

impl SpePool {
    /// Spawn `n_spes` virtual SPEs with the given simulated code-reload
    /// stall (pass [`Duration::ZERO`] to disable).
    ///
    /// # Panics
    /// Panics if `n_spes == 0`.
    pub fn new(n_spes: usize, code_load_cost: Duration) -> SpePool {
        SpePool::with_metrics(n_spes, code_load_cost, Arc::new(NopMetrics))
    }

    /// Like [`Self::new`], recording pool activity (completions, code
    /// reloads, queue stalls) into `metrics`.
    ///
    /// # Panics
    /// Panics if `n_spes == 0`.
    pub fn with_metrics(
        n_spes: usize,
        code_load_cost: Duration,
        metrics: Arc<dyn MetricsSink>,
    ) -> SpePool {
        SpePool::with_observability(n_spes, code_load_cost, metrics, None)
    }

    /// Like [`Self::with_metrics`], additionally giving every virtual SPE a
    /// per-thread span-tracing ring from `tracer` (code reloads and the
    /// team layer's chunk/DMA spans are recorded there; see
    /// [`crate::tracing`]).
    ///
    /// # Panics
    /// Panics if `n_spes == 0`.
    pub fn with_observability(
        n_spes: usize,
        code_load_cost: Duration,
        metrics: Arc<dyn MetricsSink>,
        tracer: Option<&Tracer>,
    ) -> SpePool {
        assert!(n_spes > 0, "a pool needs at least one SPE");
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                idle: (0..n_spes).rev().map(SpeId).collect(),
                pending: std::collections::VecDeque::new(),
                resident: vec![None; n_spes],
                quarantined: vec![false; n_spes],
            }),
            idle_changed: Condvar::new(),
            panics: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            affinity_hits: AtomicU64::new(0),
            affinity_misses: AtomicU64::new(0),
            metrics,
        });
        let mut workers = Vec::with_capacity(n_spes);
        let mut direct = Vec::with_capacity(n_spes);
        for i in 0..n_spes {
            // Bounded: the dispatch protocol queues at most one job plus
            // one shutdown per SPE (jobs only go to idle or reserved SPEs).
            let (tx, rx) = bounded::<WorkerMsg>(COMMAND_QUEUE_DEPTH);
            let shared_cl = Arc::clone(&shared);
            let trace = tracer.map(|t| t.handle());
            let handle = std::thread::Builder::new()
                .name(format!("vspe-{i}"))
                .spawn(move || worker_loop(SpeId(i), rx, shared_cl, code_load_cost, trace))
                .expect("spawn virtual SPE thread");
            direct.push(tx.clone());
            workers.push(Worker { tx, handle: Some(handle) });
        }
        SpePool { workers, shared, direct }
    }

    /// Number of virtual SPEs.
    pub fn n_spes(&self) -> usize {
        self.workers.len()
    }

    /// SPEs currently idle.
    pub fn idle_count(&self) -> usize {
        self.shared.state.lock().idle.len()
    }

    /// Off-loads queued waiting for an SPE.
    pub fn pending_len(&self) -> usize {
        self.shared.state.lock().pending.len()
    }

    /// Instantaneous per-SPE busy flags (`true` = running a job), indexed
    /// by SPE id. A point-in-time gauge for live telemetry: it takes the
    /// pool's state lock briefly (like [`SpePool::idle_count`]), never an
    /// SPE worker's time.
    pub fn busy_map(&self) -> Vec<bool> {
        let mut busy = vec![true; self.n_spes()];
        let st = self.shared.state.lock();
        for spe in &st.idle {
            busy[spe.0] = false;
        }
        // A quarantined SPE is sitting out, not running anything.
        for (spe, quarantined) in st.quarantined.iter().enumerate() {
            if *quarantined {
                busy[spe] = false;
            }
        }
        busy
    }

    /// SPEs in service (total minus quarantined).
    pub fn healthy_count(&self) -> usize {
        let st = self.shared.state.lock();
        st.quarantined.iter().filter(|q| !**q).count()
    }

    /// Bench an idle SPE: it is removed from the idle set and receives no
    /// work until re-admitted. Returns `false` if the id is out of range,
    /// the SPE is already quarantined, or the SPE is not idle — benching a
    /// busy SPE could race a team reservation that already claimed it, so
    /// the fault plane retries at the SPE's next fault instead.
    pub fn quarantine(&self, spe: usize) -> bool {
        let mut st = self.shared.state.lock();
        if spe >= self.n_spes() || st.quarantined[spe] {
            return false;
        }
        let Some(pos) = st.idle.iter().position(|s| s.0 == spe) else {
            return false;
        };
        st.idle.remove(pos);
        st.quarantined[spe] = true;
        true
    }

    /// Return a quarantined SPE to service. If work is queued it is handed
    /// to the returning SPE immediately; otherwise the SPE goes idle.
    /// Returns `false` if the SPE was not quarantined.
    pub fn readmit(&self, spe: usize) -> bool {
        let mut st = self.shared.state.lock();
        if spe >= self.n_spes() || !st.quarantined[spe] {
            return false;
        }
        st.quarantined[spe] = false;
        match st.pending.pop_front() {
            Some(job) => {
                drop(st);
                self.direct[spe].send(WorkerMsg::Run(job)).expect("virtual SPE thread hung up");
            }
            None => {
                st.idle.push(SpeId(spe));
                drop(st);
                self.shared.idle_changed.notify_all();
            }
        }
        true
    }

    /// Jobs completed over the pool's lifetime.
    pub fn completed(&self) -> u64 {
        self.shared.completed.load(Ordering::Relaxed)
    }

    /// Jobs that panicked (and were contained).
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Image-affinity placements that found a warm SPE.
    pub fn affinity_hits(&self) -> u64 {
        self.shared.affinity_hits.load(Ordering::Relaxed)
    }

    /// Image-affinity placements that had to take a cold SPE.
    pub fn affinity_misses(&self) -> u64 {
        self.shared.affinity_misses.load(Ordering::Relaxed)
    }

    /// Off-load `f` to the first available SPE, returning a completion
    /// handle. Dispatch is immediate if an SPE is idle, FIFO-queued
    /// otherwise.
    pub fn offload<T, F>(&self, f: F) -> OffloadHandle<T>
    where
        T: Send + 'static,
        F: FnOnce(&mut SpeContext) -> T + Send + 'static,
    {
        let (tx, rx) = bounded(1);
        let job: Job = Box::new(move |ctx| {
            let out = f(ctx);
            let _ = tx.send(out);
        });
        self.submit(job);
        OffloadHandle { rx }
    }

    /// Off-load a kernel whose code image is `image` (`code_bytes` long),
    /// preferring an idle SPE that already hosts that image — the paper's
    /// §6 future work: memory-aware scheduling that avoids code reloads.
    /// The image is ensured resident before `f` runs.
    pub fn offload_with_image<T, F>(
        &self,
        image: ImageId,
        code_bytes: usize,
        f: F,
    ) -> OffloadHandle<T>
    where
        T: Send + 'static,
        F: FnOnce(&mut SpeContext) -> T + Send + 'static,
    {
        let (tx, rx) = bounded(1);
        let job: Job = Box::new(move |ctx| {
            ctx.ensure_image(image, code_bytes)
                .expect("kernel image exceeds local store");
            let out = f(ctx);
            let _ = tx.send(out);
        });
        let target = {
            let mut st = self.shared.state.lock();
            if st.idle.is_empty() {
                st.pending.push_back(job);
                self.shared.metrics.incr(Counter::OffloadQueueStalls);
                None
            } else {
                // Three-tier placement: a warm SPE hosting this image,
                // else a cold SPE with no image (no eviction), else evict
                // the least-recently-idled warm-for-someone-else SPE.
                let pos = st
                    .idle
                    .iter()
                    .rposition(|s| st.resident[s.0] == Some(image))
                    .or_else(|| st.idle.iter().rposition(|s| st.resident[s.0].is_none()))
                    .unwrap_or(st.idle.len() - 1);
                let spe = st.idle.remove(pos);
                if st.resident[spe.0] == Some(image) {
                    self.shared.affinity_hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.shared.affinity_misses.fetch_add(1, Ordering::Relaxed);
                    st.resident[spe.0] = Some(image);
                }
                Some((spe, job))
            }
        };
        if let Some((spe, job)) = target {
            self.direct[spe.0]
                .send(WorkerMsg::Run(job))
                .expect("virtual SPE thread hung up");
        }
        OffloadHandle { rx }
    }

    /// Submit a raw job (used by the team layer).
    pub(crate) fn submit(&self, job: Job) {
        let target = {
            let mut st = self.shared.state.lock();
            match st.idle.pop() {
                Some(spe) => Some(spe),
                None => {
                    st.pending.push_back(job);
                    self.shared.metrics.incr(Counter::OffloadQueueStalls);
                    return;
                }
            }
        };
        let spe = target.expect("target chosen above");
        self.direct[spe.0]
            .send(WorkerMsg::Run(job))
            .expect("virtual SPE thread hung up");
    }

    /// Atomically reserve `k` idle SPEs, blocking until enough are idle.
    /// The reserved SPEs receive work only via [`Self::run_on`] until they
    /// finish it (each returns to the idle set after its job).
    ///
    /// # Panics
    /// Panics if `k` exceeds the pool size (this would deadlock).
    pub(crate) fn reserve(&self, k: usize) -> Vec<SpeId> {
        assert!(k <= self.n_spes(), "cannot reserve {k} of {} SPEs", self.n_spes());
        let mut st = self.shared.state.lock();
        loop {
            if st.idle.len() >= k {
                let at = st.idle.len() - k;
                let team = st.idle.split_off(at);
                return team;
            }
            self.shared.idle_changed.wait(&mut st);
        }
    }

    /// Send a job directly to a reserved SPE.
    pub(crate) fn run_on(&self, spe: SpeId, job: Job) {
        self.direct[spe.0]
            .send(WorkerMsg::Run(job))
            .expect("virtual SPE thread hung up");
    }

    /// Final statistics, consuming the pool (joins all workers).
    pub fn shutdown(mut self) -> Vec<SpeStats> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> Vec<SpeStats> {
        for w in &self.workers {
            let _ = w.tx.send(WorkerMsg::Shutdown);
        }
        let mut stats = Vec::with_capacity(self.workers.len());
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                if let Ok(s) = h.join() {
                    stats.push(s);
                }
            }
        }
        stats
    }
}

impl Drop for SpePool {
    fn drop(&mut self) {
        if self.workers.iter().any(|w| w.handle.is_some()) {
            let _ = self.shutdown_inner();
        }
    }
}

fn worker_loop(
    id: SpeId,
    rx: Receiver<WorkerMsg>,
    shared: Arc<Shared>,
    code_load_cost: Duration,
    trace: Option<TraceHandle>,
) -> SpeStats {
    let mut ctx = SpeContext::new(id, code_load_cost);
    if let Some(t) = trace {
        ctx.set_trace(t);
    }
    let mut reloads_seen = 0u64;
    loop {
        let msg = match rx.recv() {
            Ok(m) => m,
            Err(_) => break,
        };
        let mut job = match msg {
            WorkerMsg::Run(j) => j,
            WorkerMsg::Shutdown => break,
        };
        loop {
            // Model the start signal: the PPE posts the job into this SPE's
            // inbound mailbox and the SPE drains it. Recorded back-to-back
            // on the SPE's own ring, so the per-SPE occupancy replay the
            // checker runs (0 → 1 → 0) is consistent by construction.
            if let Some(h) = ctx.trace() {
                h.record(TraceEventKind::MailboxWrite {
                    spe: id.0,
                    mailbox: TraceMailbox::Inbound,
                    occupancy: 1,
                });
                h.record(TraceEventKind::MailboxRead {
                    spe: id.0,
                    mailbox: TraceMailbox::Inbound,
                    occupancy: 0,
                });
            }
            ctx.begin_task();
            let result = catch_unwind(AssertUnwindSafe(|| job(&mut ctx)));
            // Account the job's local-store scratch as an alloc/free pair:
            // the data region is bump-allocated during the job and released
            // at task teardown (`begin_task` resets it lazily).
            let scratch = ctx.local_store.used();
            if scratch > 0 {
                if let Some(h) = ctx.trace() {
                    h.record(TraceEventKind::LsAlloc {
                        spe: id.0,
                        bytes: scratch,
                        in_use: scratch,
                    });
                    h.record(TraceEventKind::LsFree { spe: id.0, bytes: scratch, in_use: 0 });
                }
            }
            shared.completed.fetch_add(1, Ordering::Relaxed);
            shared.metrics.incr(Counter::TasksCompleted);
            let reloads_now = ctx.code_reloads();
            if reloads_now > reloads_seen {
                shared.metrics.add(Counter::CodeReloads, reloads_now - reloads_seen);
                reloads_seen = reloads_now;
            }
            if result.is_err() {
                shared.panics.fetch_add(1, Ordering::Relaxed);
            }
            // Pull more work if any is queued; otherwise go idle. (A
            // quarantined SPE never reaches this point: only idle SPEs can
            // be benched, and a benched SPE is fed again only by readmit.)
            let mut st = shared.state.lock();
            match st.pending.pop_front() {
                Some(next) => {
                    drop(st);
                    job = next;
                }
                None => {
                    st.idle.push(id);
                    drop(st);
                    shared.idle_changed.notify_all();
                    break;
                }
            }
        }
    }
    SpeStats {
        id,
        tasks_run: ctx.tasks_run(),
        code_reloads: ctx.code_reloads(),
        local_store_high_water: ctx.local_store.high_water(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn offload_runs_and_returns_value() {
        let pool = SpePool::new(2, Duration::ZERO);
        let h = pool.offload(|_| 6 * 7);
        assert_eq!(h.wait().unwrap(), 42);
    }

    #[test]
    fn many_offloads_all_complete() {
        let pool = SpePool::new(4, Duration::ZERO);
        let handles: Vec<_> = (0..64).map(|i| pool.offload(move |_| i * 2)).collect();
        let mut sum = 0;
        for h in handles {
            sum += h.wait().unwrap();
        }
        assert_eq!(sum, (0..64).map(|i| i * 2).sum::<i32>());
        assert_eq!(pool.completed(), 64);
    }

    #[test]
    fn excess_offloads_queue_fifo() {
        let pool = SpePool::new(1, Duration::ZERO);
        let order = Arc::new(Mutex::new(Vec::new()));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));

        // First job blocks the only SPE until we open the gate.
        let g = Arc::clone(&gate);
        let o = Arc::clone(&order);
        let h0 = pool.offload(move |_| {
            let (lock, cv) = &*g;
            let mut open = lock.lock();
            while !*open {
                cv.wait(&mut open);
            }
            o.lock().push(0);
        });
        // These must queue and then run in submission order.
        let hs: Vec<_> = (1..4)
            .map(|i| {
                let o = Arc::clone(&order);
                pool.offload(move |_| o.lock().push(i))
            })
            .collect();
        assert_eq!(pool.idle_count(), 0);
        {
            let (lock, cv) = &*gate;
            *lock.lock() = true;
            cv.notify_all();
        }
        h0.wait().unwrap();
        for h in hs {
            h.wait().unwrap();
        }
        assert_eq!(*order.lock(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn jobs_observe_spe_context() {
        let pool = SpePool::new(3, Duration::ZERO);
        let h = pool.offload(|ctx| {
            let scratch = ctx.local_store.alloc(1024).unwrap();
            scratch[0] = 7;
            (ctx.id.0, scratch[0])
        });
        let (id, byte) = h.wait().unwrap();
        assert!(id < 3);
        assert_eq!(byte, 7);
    }

    #[test]
    fn panic_is_contained_and_spe_survives() {
        let pool = SpePool::new(1, Duration::ZERO);
        let h = pool.offload::<(), _>(|_| panic!("injected failure"));
        assert_eq!(h.wait(), Err(OffloadError::TaskPanicked));
        // The disconnect is observable mid-unwind, before the worker books
        // the panic; wait for the counter rather than racing it.
        while pool.panics() == 0 {
            std::thread::yield_now();
        }
        assert_eq!(pool.panics(), 1);
        // The same (only) SPE still serves work.
        let h2 = pool.offload(|_| "alive");
        assert_eq!(h2.wait().unwrap(), "alive");
    }

    #[test]
    fn try_wait_polls_without_blocking() {
        let pool = SpePool::new(1, Duration::ZERO);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        let h = pool.offload(move |_| {
            let (lock, cv) = &*g;
            let mut open = lock.lock();
            while !*open {
                cv.wait(&mut open);
            }
            99
        });
        assert_eq!(h.try_wait().unwrap(), None);
        {
            let (lock, cv) = &*gate;
            *lock.lock() = true;
            cv.notify_all();
        }
        // Spin until done.
        loop {
            if let Some(v) = h.try_wait().unwrap() {
                assert_eq!(v, 99);
                break;
            }
            std::thread::yield_now();
        }
    }

    #[test]
    fn reserve_takes_spes_out_of_service() {
        let pool = SpePool::new(4, Duration::ZERO);
        let team = pool.reserve(3);
        assert_eq!(team.len(), 3);
        assert_eq!(pool.idle_count(), 1);
        // Reserved SPEs come back after running a direct job.
        let counter = Arc::new(AtomicUsize::new(0));
        for &spe in &team {
            let c = Arc::clone(&counter);
            pool.run_on(spe, Box::new(move |_| { c.fetch_add(1, Ordering::SeqCst); }));
        }
        while pool.idle_count() < 4 {
            std::thread::yield_now();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn shutdown_reports_stats() {
        let pool = SpePool::new(2, Duration::ZERO);
        for _ in 0..10 {
            pool.offload(|ctx| {
                ctx.local_store.alloc(2048).unwrap();
            })
            .wait()
            .unwrap();
        }
        let mut stats = pool.shutdown();
        stats.sort_by_key(|s| s.id);
        assert_eq!(stats.len(), 2);
        let total: u64 = stats.iter().map(|s| s.tasks_run).sum();
        assert_eq!(total, 10);
        assert!(stats.iter().any(|s| s.local_store_high_water >= 2048));
    }

    #[test]
    fn image_affinity_placement_avoids_reloads() {
        use crate::native::context::ImageId;
        let pool = SpePool::new(4, Duration::ZERO);
        // Interleave two images; after warm-up, placements should hit warm
        // SPEs and reloads should stay near the distinct (SPE, image)
        // pairs rather than the job count.
        for round in 0..24 {
            let image = ImageId(round % 2);
            pool.offload_with_image(image, 64 * 1024, |ctx| ctx.resident_image())
                .wait()
                .unwrap();
        }
        assert!(
            pool.affinity_hits() >= 16,
            "expected mostly warm placements, hits={} misses={}",
            pool.affinity_hits(),
            pool.affinity_misses()
        );
        let stats = pool.shutdown();
        let reloads: u64 = stats.iter().map(|s| s.code_reloads).sum();
        assert!(
            reloads <= 8,
            "affinity should cap reloads at distinct (SPE,image) pairs, got {reloads}"
        );
    }

    #[test]
    fn offload_with_image_loads_the_image() {
        use crate::native::context::ImageId;
        let pool = SpePool::new(2, Duration::ZERO);
        let got = pool
            .offload_with_image(ImageId(9), 1024, |ctx| {
                (ctx.resident_image(), ctx.local_store.code_bytes())
            })
            .wait()
            .unwrap();
        assert_eq!(got, (Some(ImageId(9)), 1024));
    }

    #[test]
    #[should_panic(expected = "cannot reserve")]
    fn reserving_more_than_pool_size_panics() {
        let pool = SpePool::new(2, Duration::ZERO);
        let _ = pool.reserve(3);
    }

    #[test]
    fn quarantined_spe_receives_no_work_until_readmitted() {
        let pool = SpePool::new(2, Duration::ZERO);
        assert!(pool.quarantine(0));
        assert!(!pool.quarantine(0), "double quarantine must be refused");
        assert!(!pool.quarantine(9), "out-of-range id must be refused");
        assert_eq!(pool.healthy_count(), 1);
        for _ in 0..8 {
            let spe = pool.offload(|ctx| ctx.id.0).wait().unwrap();
            assert_eq!(spe, 1, "all work must land on the healthy SPE");
        }
        assert!(pool.readmit(0));
        assert!(!pool.readmit(0), "readmitting a healthy SPE must be refused");
        assert_eq!(pool.healthy_count(), 2);
        // The returning SPE is pushed to the back of the idle stack, so it
        // is the next one popped.
        assert_eq!(pool.offload(|ctx| ctx.id.0).wait().unwrap(), 0);
    }

    #[test]
    fn busy_spes_cannot_be_quarantined() {
        let pool = SpePool::new(1, Duration::ZERO);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        let h = pool.offload(move |_| {
            let (lock, cv) = &*g;
            let mut open = lock.lock();
            while !*open {
                cv.wait(&mut open);
            }
        });
        assert!(!pool.quarantine(0), "a busy SPE must not be benched");
        {
            let (lock, cv) = &*gate;
            *lock.lock() = true;
            cv.notify_all();
        }
        h.wait().unwrap();
        assert_eq!(pool.healthy_count(), 1);
    }

    #[test]
    fn readmission_drains_the_pending_queue() {
        let pool = SpePool::new(1, Duration::ZERO);
        assert!(pool.quarantine(0));
        // With the only SPE benched, work queues rather than dispatching.
        let h = pool.offload(|_| 77);
        assert_eq!(h.try_wait().unwrap(), None);
        assert_eq!(pool.pending_len(), 1);
        // Re-admission hands the queued job straight to the returning SPE.
        assert!(pool.readmit(0));
        assert_eq!(h.wait().unwrap(), 77);
        assert_eq!(pool.pending_len(), 0);
    }
}
