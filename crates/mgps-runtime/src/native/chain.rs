//! Dependence-driven chains of parallel loops (§5.3).
//!
//! The paper's `Pass` structure is not only a result channel: "SPE to SPE
//! communication enables dependence-driven execution of multiple parallel
//! loops across SPEs" — a team executes loop B, which consumes loop A's
//! reduction, without bouncing through the PPE or re-forming the team.
//!
//! [`ChainRunner::chained_reduce`] reproduces that: the team is reserved
//! once; workers stay resident, receiving per-stage `(stage, carry, range)`
//! messages from the master and answering with partial results; the master
//! merges each stage's partials into the carry value fed to the next
//! stage. Only the final carry returns to the calling (PPE-side) thread.

use std::ops::Range;
use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver, Sender};

use super::sync::COMMAND_QUEUE_DEPTH;

use super::context::SpeContext;
use super::pool::{OffloadError, SpePool};
use crate::policy::chunk::partition;
use crate::tracing::{TraceEventKind, TraceHandle};

/// Identifies a traced chain invocation: each stage becomes one task in the
/// drained trace, numbered `base_task + stage_index`, owned by `proc`.
#[derive(Debug, Clone, Copy)]
pub struct ChainTrace<'a> {
    /// The calling process's ring (per-stage off-load records land here).
    pub handle: &'a TraceHandle,
    /// The owning worker process.
    pub proc: usize,
    /// Task id of the chain's first stage.
    pub base_task: u64,
}

/// One stage of a dependence-driven loop chain. The carried value is the
/// previous stage's reduction result (`init` for the first stage).
pub trait ChainedLoop: Send + Sync + 'static {
    /// Iterations of this stage's loop.
    fn len(&self) -> usize;

    /// True when this stage has no iterations.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The reduction identity for this stage.
    fn identity(&self) -> f64;

    /// Execute iterations `range` given the carried value.
    fn run_chunk(&self, carry: f64, range: Range<usize>, ctx: &mut SpeContext) -> f64;

    /// Merge two partial results of this stage.
    fn merge(&self, a: f64, b: f64) -> f64;
}

enum WorkerMsg {
    Run { stage: usize, carry: f64, range: Range<usize> },
    Done,
}

/// Executes loop chains on a pool.
pub struct ChainRunner {
    pool: Arc<SpePool>,
}

impl ChainRunner {
    /// A runner over `pool`.
    pub fn new(pool: Arc<SpePool>) -> ChainRunner {
        ChainRunner { pool }
    }

    /// Run `stages` as one dependence-driven chain across `degree` SPEs,
    /// carrying each stage's reduction into the next; returns the final
    /// carry. The team is reserved exactly once for the whole chain.
    ///
    /// # Errors
    /// [`OffloadError::TaskPanicked`] if any team member panicked; the
    /// pool remains serviceable.
    ///
    /// # Panics
    /// Panics if `stages` is empty or `degree == 0`.
    pub fn chained_reduce(
        &self,
        degree: usize,
        stages: Vec<Arc<dyn ChainedLoop>>,
        init: f64,
    ) -> Result<f64, OffloadError> {
        self.chained_reduce_traced(degree, stages, init, None)
    }

    /// As [`Self::chained_reduce`], recording each stage as one task in the
    /// drained trace (see [`crate::tracing`]): the whole chain is submitted
    /// at once, so every stage's off-load record carries the submission
    /// instant; stage start/end and per-member chunks are recorded by the
    /// SPEs that run them.
    ///
    /// # Errors
    /// [`OffloadError::TaskPanicked`] if any team member panicked.
    ///
    /// # Panics
    /// Panics if `stages` is empty or `degree == 0`.
    pub fn chained_reduce_traced(
        &self,
        degree: usize,
        stages: Vec<Arc<dyn ChainedLoop>>,
        init: f64,
        trace: Option<ChainTrace<'_>>,
    ) -> Result<f64, OffloadError> {
        assert!(!stages.is_empty(), "a chain needs at least one stage");
        assert!(degree >= 1, "degree must be at least 1");
        let max_len = stages.iter().map(|s| s.len()).max().expect("nonempty");
        let degree = degree.min(self.pool.n_spes()).min(max_len.max(1));

        if let Some(t) = &trace {
            for si in 0..stages.len() {
                t.handle.record(TraceEventKind::Offload {
                    proc: t.proc,
                    task: t.base_task + si as u64,
                });
            }
        }
        let ids = trace.as_ref().map(|t| (t.proc, t.base_task));

        if degree == 1 {
            // Single SPE: the whole chain as one resident job.
            let stages = stages.clone();
            return self
                .pool
                .offload(move |ctx| {
                    let mut carry = init;
                    for (si, s) in stages.iter().enumerate() {
                        let n = s.len();
                        let task = ids.map(|(proc, base)| (proc, base + si as u64));
                        if let (Some((proc, task)), Some(h)) = (task, ctx.trace()) {
                            h.record(TraceEventKind::TaskStart {
                                proc,
                                task,
                                degree: 1,
                                team: vec![ctx.id.0],
                            });
                        }
                        carry = s.run_chunk(carry, 0..n, ctx);
                        if let (Some((proc, task)), Some(h)) = (task, ctx.trace()) {
                            if n > 0 {
                                h.record(TraceEventKind::Chunk {
                                    task,
                                    loop_iters: n,
                                    start: 0,
                                    len: n,
                                    worker: ctx.id.0,
                                });
                            }
                            h.record(TraceEventKind::TaskEnd {
                                proc,
                                task,
                                team: vec![ctx.id.0],
                            });
                        }
                    }
                    carry
                })
                .wait();
        }

        let team = self.pool.reserve(degree);
        let master = team[0];
        let workers = &team[1..];

        // Per-worker command and partial-result channels (the Pass
        // structures): one pair per worker, so a dead worker is observable
        // as *its own* channel disconnecting rather than a hang.
        let mut cmd_txs: Vec<Sender<WorkerMsg>> = Vec::with_capacity(workers.len());
        let mut pass_rxs: Vec<Receiver<f64>> = Vec::with_capacity(workers.len());
        for &w in workers {
            // Bounded: the master sends one Run per stage and waits for the
            // worker's pass before the next, so depth never exceeds two.
            let (tx, rx): (Sender<WorkerMsg>, Receiver<WorkerMsg>) =
                bounded(COMMAND_QUEUE_DEPTH);
            let (pass_tx, pass_rx) = bounded::<f64>(1);
            cmd_txs.push(tx);
            pass_rxs.push(pass_rx);
            let stages = stages.clone();
            self.pool.run_on(
                w,
                Box::new(move |ctx: &mut SpeContext| {
                    // Resident worker: serves every stage of the chain
                    // before returning to the pool.
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            WorkerMsg::Run { stage, carry, range } => {
                                let out = stages[stage].run_chunk(carry, range.clone(), ctx);
                                if let (Some((_, base)), Some(h)) = (ids, ctx.trace()) {
                                    if !range.is_empty() {
                                        h.record(TraceEventKind::Chunk {
                                            task: base + stage as u64,
                                            loop_iters: stages[stage].len(),
                                            start: range.start,
                                            len: range.len(),
                                            worker: ctx.id.0,
                                        });
                                    }
                                }
                                let _ = pass_tx.send(out);
                            }
                            WorkerMsg::Done => break,
                        }
                    }
                }),
            );
        }

        // The master: drives all stages, merging partials into the carry.
        let (res_tx, res_rx) = bounded(1);
        let stages_m = stages.clone();
        let n_workers = workers.len();
        let worker_spes: Vec<usize> = workers.iter().map(|s| s.0).collect();
        self.pool.run_on(
            master,
            Box::new(move |ctx: &mut SpeContext| {
                let mut carry = init;
                let mut failed = false;
                'chain: for (si, stage) in stages_m.iter().enumerate() {
                    let chunks = partition(stage.len(), n_workers + 1, 0.0);
                    // The stage's effective team: master plus every worker
                    // with a nonempty chunk (empty chunks are not sent).
                    let stage_team = ids.map(|_| {
                        let mut t = vec![ctx.id.0];
                        for (w, range) in chunks[1..].iter().enumerate() {
                            if !range.is_empty() {
                                t.push(worker_spes[w]);
                            }
                        }
                        t
                    });
                    if let (Some((proc, base)), Some(team)) = (ids, stage_team.clone()) {
                        if let Some(h) = ctx.trace() {
                            h.record(TraceEventKind::TaskStart {
                                proc,
                                task: base + si as u64,
                                degree: team.len(),
                                team,
                            });
                        }
                    }
                    // Empty chunks are never dispatched: short stages run
                    // on fewer members without burdening stage authors
                    // with empty-range handling.
                    let mut dispatched = Vec::new();
                    for (w, range) in chunks[1..].iter().cloned().enumerate() {
                        if range.is_empty() {
                            continue;
                        }
                        if cmd_txs[w]
                            .send(WorkerMsg::Run { stage: si, carry, range })
                            .is_err()
                        {
                            failed = true;
                            break 'chain;
                        }
                        dispatched.push(w);
                    }
                    let mut acc = stage.run_chunk(carry, chunks[0].clone(), ctx);
                    if let (Some((_, base)), Some(h)) = (ids, ctx.trace()) {
                        if !chunks[0].is_empty() {
                            h.record(TraceEventKind::Chunk {
                                task: base + si as u64,
                                loop_iters: stage.len(),
                                start: chunks[0].start,
                                len: chunks[0].len(),
                                worker: ctx.id.0,
                            });
                        }
                    }
                    for &w in &dispatched {
                        match pass_rxs[w].recv() {
                            Ok(p) => acc = stage.merge(acc, p),
                            Err(_) => {
                                // That worker panicked; its channel closed.
                                failed = true;
                                break 'chain;
                            }
                        }
                    }
                    carry = acc;
                    if let (Some((proc, base)), Some(team)) = (ids, stage_team) {
                        if let Some(h) = ctx.trace() {
                            h.record(TraceEventKind::TaskEnd {
                                proc,
                                task: base + si as u64,
                                team,
                            });
                        }
                    }
                }
                for tx in &cmd_txs {
                    let _ = tx.send(WorkerMsg::Done);
                }
                let _ = res_tx.send(if failed { Err(()) } else { Ok(carry) });
            }),
        );

        match res_rx.recv() {
            Ok(Ok(v)) => Ok(v),
            Ok(Err(())) | Err(_) => Err(OffloadError::TaskPanicked),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Stage: sum of (carry + i) over the range — carry-sensitive so stage
    /// order and data flow are observable.
    struct AffineSum {
        n: usize,
    }

    impl ChainedLoop for AffineSum {
        fn len(&self) -> usize {
            self.n
        }
        fn identity(&self) -> f64 {
            0.0
        }
        fn run_chunk(&self, carry: f64, range: Range<usize>, _ctx: &mut SpeContext) -> f64 {
            range.map(|i| carry / self.n as f64 + i as f64).sum()
        }
        fn merge(&self, a: f64, b: f64) -> f64 {
            a + b
        }
    }

    fn sequential(stages: &[Arc<dyn ChainedLoop>], init: f64) -> f64 {
        let mut ctx = SpeContext::new(crate::policy::SpeId(0), Duration::ZERO);
        let mut carry = init;
        for s in stages {
            carry = s.run_chunk(carry, 0..s.len(), &mut ctx);
        }
        carry
    }

    fn stages(ns: &[usize]) -> Vec<Arc<dyn ChainedLoop>> {
        ns.iter().map(|&n| Arc::new(AffineSum { n }) as Arc<dyn ChainedLoop>).collect()
    }

    #[test]
    fn chain_matches_sequential_composition_at_every_degree() {
        let pool = Arc::new(SpePool::new(8, Duration::ZERO));
        let runner = ChainRunner::new(Arc::clone(&pool));
        let chain = stages(&[100, 57, 228]);
        let want = sequential(&chain, 3.0);
        for degree in [1usize, 2, 4, 8] {
            let got = runner.chained_reduce(degree, chain.clone(), 3.0).unwrap();
            assert!(
                (got - want).abs() < 1e-9,
                "degree {degree}: {got} vs sequential {want}"
            );
        }
    }

    #[test]
    fn team_is_reserved_once_for_the_whole_chain() {
        let pool = Arc::new(SpePool::new(4, Duration::ZERO));
        let runner = ChainRunner::new(Arc::clone(&pool));
        let before = pool.completed();
        runner.chained_reduce(4, stages(&[64, 64, 64, 64, 64]), 0.0).unwrap();
        while pool.idle_count() < 4 {
            std::thread::yield_now();
        }
        // Exactly `degree` jobs ran (1 master + 3 resident workers), not
        // degree × stages.
        assert_eq!(pool.completed() - before, 4);
    }

    #[test]
    fn single_stage_chain_equals_plain_reduce_semantics() {
        let pool = Arc::new(SpePool::new(4, Duration::ZERO));
        let runner = ChainRunner::new(pool);
        let got = runner.chained_reduce(3, stages(&[228]), 0.0).unwrap();
        let want: f64 = (0..228).map(|i| i as f64).sum();
        assert!((got - want).abs() < 1e-9);
    }

    #[test]
    fn worker_panic_in_any_stage_is_contained() {
        struct Bomb;
        impl ChainedLoop for Bomb {
            fn len(&self) -> usize {
                16
            }
            fn identity(&self) -> f64 {
                0.0
            }
            fn run_chunk(&self, _carry: f64, range: Range<usize>, _ctx: &mut SpeContext) -> f64 {
                if range.start > 0 {
                    panic!("chain failure injection");
                }
                1.0
            }
            fn merge(&self, a: f64, b: f64) -> f64 {
                a + b
            }
        }
        let pool = Arc::new(SpePool::new(4, Duration::ZERO));
        let runner = ChainRunner::new(Arc::clone(&pool));
        let mut chain = stages(&[64]);
        chain.push(Arc::new(Bomb));
        let err = runner.chained_reduce(4, chain, 0.0);
        assert_eq!(err.unwrap_err(), OffloadError::TaskPanicked);
        // Pool recovers.
        while pool.idle_count() < 4 {
            std::thread::yield_now();
        }
        assert_eq!(pool.offload(|_| 7u32).wait().unwrap(), 7);
    }

    #[test]
    fn short_stages_skip_idle_workers() {
        // A stage of length 1 in an 8-way chain must not dispatch empty
        // chunks (a stage that misreads its range would corrupt the carry).
        struct One;
        impl ChainedLoop for One {
            fn len(&self) -> usize {
                1
            }
            fn identity(&self) -> f64 {
                0.0
            }
            fn run_chunk(&self, carry: f64, _r: Range<usize>, _ctx: &mut SpeContext) -> f64 {
                // Deliberately ignores the range, like a "finalize" stage.
                carry + 1.0
            }
            fn merge(&self, a: f64, b: f64) -> f64 {
                a + b
            }
        }
        let pool = Arc::new(SpePool::new(8, Duration::ZERO));
        let runner = ChainRunner::new(pool);
        let mut chain = stages(&[64]);
        chain.push(Arc::new(One));
        let seq = sequential(&chain, 0.0);
        for degree in [2usize, 4, 8] {
            let got = runner.chained_reduce(degree, chain.clone(), 0.0).unwrap();
            assert!((got - seq).abs() < 1e-9, "degree {degree}: {got} vs {seq}");
        }
    }

    #[test]
    fn degree_clamps_to_longest_stage() {
        let pool = Arc::new(SpePool::new(8, Duration::ZERO));
        let runner = ChainRunner::new(pool);
        // Stages shorter than the requested degree still work.
        let got = runner.chained_reduce(8, stages(&[3, 2]), 1.0).unwrap();
        let want = sequential(&stages(&[3, 2]), 1.0);
        assert!((got - want).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_chain_rejected() {
        let pool = Arc::new(SpePool::new(2, Duration::ZERO));
        let runner = ChainRunner::new(pool);
        let _ = runner.chained_reduce(2, Vec::new(), 0.0);
    }
}
