//! The native execution engine: the paper's runtime system realized on
//! host threads.
//!
//! * [`context`] — per-SPE state: bounded local store, resident code image;
//! * [`pool`] — the virtual-SPE pool with immediate/FIFO off-load dispatch
//!   and panic containment;
//! * [`team`] — loop work-sharing with `Pass`-style worker→master results
//!   and adaptive master bias;
//! * [`gate`] — PPE-context admission control (yield-on-offload vs
//!   hold-during-offload);
//! * [`adaptive`] — [`adaptive::MgpsRuntime`], tying pool, teams, gate, and
//!   the MGPS policy together behind one application-facing API;
//! * [`sync`] — the mutex/condvar layer all of the above lock through,
//!   switchable to `loom` for model checking (`RUSTFLAGS="--cfg loom"`).

pub mod adaptive;
pub mod chain;
pub mod context;
pub mod gate;
pub mod pool;
pub mod sync;
pub mod team;

pub use adaptive::{MgpsRuntime, ProcessCtx, RuntimeConfig};
pub use chain::{ChainRunner, ChainTrace, ChainedLoop};
pub use context::{ImageId, LocalStore, LocalStoreExhausted, SpeContext, LOCAL_STORE_BYTES};
pub use gate::{GateMode, PpeGate, PpeToken};
pub use pool::{OffloadError, OffloadHandle, SpePool, SpeStats};
pub use team::{LoopBody, LoopSite, TeamRunner, TeamTiming, TraceTask, ARG_FETCH_BYTES};
