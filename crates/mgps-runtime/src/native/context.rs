//! Per-virtual-SPE execution context.
//!
//! A virtual SPE mirrors the two properties of a real SPE that matter to
//! the scheduler: a *bounded local store* (256 KB on Cell; kernels stage
//! their working set through it, and exceeding it is an error, not a slow
//! path) and a *resident code image* (switching between the plain and the
//! loop-parallel version of an off-loaded function costs a reload, which
//! MGPS must amortize — §5.4 measures this cost and finds it lower than
//! SPE-side branching).

use std::time::Duration;

use crate::policy::SpeId;
use crate::tracing::{TraceEventKind, TraceHandle};

/// Identifies a code image (one compiled SPE module). The paper ships the
/// three ML kernels as a single module with two variants: plain and
/// loop-parallelized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ImageId(pub u64);

/// Local-store capacity of a Cell SPE, in bytes.
pub const LOCAL_STORE_BYTES: usize = 256 * 1024;

/// Error returned when a kernel's staging request exceeds local store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalStoreExhausted {
    /// Bytes requested by the failing allocation.
    pub requested: usize,
    /// Bytes that were still free.
    pub available: usize,
}

impl std::fmt::Display for LocalStoreExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "local store exhausted: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for LocalStoreExhausted {}

/// A bump-allocated scratch arena standing in for an SPE's local store.
/// Reset between off-loaded tasks, like the paper's stack/heap region.
#[derive(Debug)]
pub struct LocalStore {
    buf: Vec<u8>,
    used: usize,
    code_bytes: usize,
    high_water: usize,
}

impl LocalStore {
    /// A local store of `capacity` bytes.
    pub fn new(capacity: usize) -> LocalStore {
        LocalStore { buf: vec![0u8; capacity], used: 0, code_bytes: 0, high_water: 0 }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Bytes reserved for the resident code image.
    pub fn code_bytes(&self) -> usize {
        self.code_bytes
    }

    /// Bytes currently allocated for data (excluding code).
    pub fn used(&self) -> usize {
        self.used
    }

    /// Bytes still available for data.
    pub fn available(&self) -> usize {
        self.capacity() - self.code_bytes - self.used
    }

    /// Largest combined occupancy ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Reserve space for a code image, evicting the previous one.
    ///
    /// # Errors
    /// Fails if the image alone exceeds capacity.
    pub fn load_code(&mut self, bytes: usize) -> Result<(), LocalStoreExhausted> {
        if bytes > self.capacity() {
            return Err(LocalStoreExhausted { requested: bytes, available: self.capacity() });
        }
        self.code_bytes = bytes;
        self.track();
        Ok(())
    }

    /// Allocate `len` bytes of zeroed scratch. The returned slice lives as
    /// long as the borrow of `self`; allocations stack until [`Self::reset`].
    pub fn alloc(&mut self, len: usize) -> Result<&mut [u8], LocalStoreExhausted> {
        if len > self.available() {
            return Err(LocalStoreExhausted { requested: len, available: self.available() });
        }
        let start = self.code_bytes + self.used;
        self.used += len;
        self.track();
        let slice = &mut self.buf[start..start + len];
        slice.fill(0);
        Ok(slice)
    }

    /// Release all data allocations (the code image stays resident).
    pub fn reset(&mut self) {
        self.used = 0;
    }

    fn track(&mut self) {
        self.high_water = self.high_water.max(self.code_bytes + self.used);
    }
}

/// Mutable state handed to every job executing on a virtual SPE.
#[derive(Debug)]
pub struct SpeContext {
    /// Which virtual SPE this is.
    pub id: SpeId,
    /// The SPE's local store.
    pub local_store: LocalStore,
    resident_image: Option<ImageId>,
    code_reloads: u64,
    tasks_run: u64,
    code_load_cost: Duration,
    trace: Option<TraceHandle>,
}

impl SpeContext {
    /// A context for `id` with a full-size local store and the given
    /// simulated code-reload cost (zero disables the stall).
    pub fn new(id: SpeId, code_load_cost: Duration) -> SpeContext {
        SpeContext {
            id,
            local_store: LocalStore::new(LOCAL_STORE_BYTES),
            resident_image: None,
            code_reloads: 0,
            tasks_run: 0,
            code_load_cost,
            trace: None,
        }
    }

    /// Attach a tracing handle; subsequent code reloads (and any events the
    /// running kernel records via [`Self::trace`]) land on this SPE's ring.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = Some(trace);
    }

    /// This SPE's tracing handle, if the pool was built with a tracer.
    pub fn trace(&self) -> Option<&TraceHandle> {
        self.trace.as_ref()
    }

    /// Ensure `image` (of `bytes` code) is resident, paying the reload cost
    /// if a different image (or none) was loaded. Returns whether a reload
    /// happened.
    pub fn ensure_image(&mut self, image: ImageId, bytes: usize) -> Result<bool, LocalStoreExhausted> {
        if self.resident_image == Some(image) {
            return Ok(false);
        }
        self.local_store.load_code(bytes)?;
        self.resident_image = Some(image);
        self.code_reloads += 1;
        if let Some(t) = &self.trace {
            // Timestamp = stall start, matching the simulator's convention.
            t.record(TraceEventKind::CodeReload {
                spe: self.id.0,
                stall_ns: self.code_load_cost.as_nanos() as u64,
            });
        }
        if !self.code_load_cost.is_zero() {
            // A real reload DMAs the module from main memory; model it as a
            // stall of the configured length.
            std::thread::sleep(self.code_load_cost);
        }
        Ok(true)
    }

    /// The image currently resident, if any.
    pub fn resident_image(&self) -> Option<ImageId> {
        self.resident_image
    }

    /// Total code reloads performed.
    pub fn code_reloads(&self) -> u64 {
        self.code_reloads
    }

    /// Total jobs executed.
    pub fn tasks_run(&self) -> u64 {
        self.tasks_run
    }

    /// Called by the pool around each job.
    pub(crate) fn begin_task(&mut self) {
        self.local_store.reset();
        self.tasks_run += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_store_bump_allocation() {
        let mut ls = LocalStore::new(1024);
        ls.load_code(100).unwrap();
        assert_eq!(ls.available(), 924);
        let a = ls.alloc(500).unwrap();
        assert_eq!(a.len(), 500);
        assert_eq!(ls.available(), 424);
        let err = ls.alloc(500).unwrap_err();
        assert_eq!(err, LocalStoreExhausted { requested: 500, available: 424 });
        ls.reset();
        assert_eq!(ls.available(), 924);
        assert_eq!(ls.high_water(), 600);
    }

    #[test]
    fn raxml_module_fits_with_paper_margins() {
        // §5.1: 117 KB of code leaves 139 KB for stack and heap.
        let mut ls = LocalStore::new(LOCAL_STORE_BYTES);
        ls.load_code(117 * 1024).unwrap();
        assert_eq!(ls.available(), 139 * 1024);
        assert!(ls.alloc(139 * 1024).is_ok());
        assert!(ls.alloc(1).is_err());
    }

    #[test]
    fn oversized_code_image_rejected() {
        let mut ls = LocalStore::new(1024);
        assert!(ls.load_code(2048).is_err());
        assert_eq!(ls.code_bytes(), 0);
    }

    #[test]
    fn allocations_are_zeroed() {
        let mut ls = LocalStore::new(64);
        ls.alloc(16).unwrap().fill(0xAB);
        ls.reset();
        let again = ls.alloc(16).unwrap();
        assert!(again.iter().all(|&b| b == 0), "scratch must be zeroed on reuse");
    }

    #[test]
    fn ensure_image_counts_reloads() {
        let mut ctx = SpeContext::new(SpeId(0), Duration::ZERO);
        assert!(ctx.ensure_image(ImageId(1), 1000).unwrap());
        assert!(!ctx.ensure_image(ImageId(1), 1000).unwrap(), "resident image is free");
        assert!(ctx.ensure_image(ImageId(2), 2000).unwrap());
        assert_eq!(ctx.code_reloads(), 2);
        assert_eq!(ctx.resident_image(), Some(ImageId(2)));
        assert_eq!(ctx.local_store.code_bytes(), 2000);
    }

    #[test]
    fn begin_task_resets_scratch_but_not_code() {
        let mut ctx = SpeContext::new(SpeId(3), Duration::ZERO);
        ctx.ensure_image(ImageId(9), 500).unwrap();
        ctx.local_store.alloc(128).unwrap();
        ctx.begin_task();
        assert_eq!(ctx.local_store.used(), 0);
        assert_eq!(ctx.resident_image(), Some(ImageId(9)));
        assert_eq!(ctx.tasks_run(), 1);
    }

    #[test]
    fn display_of_exhaustion_error() {
        let e = LocalStoreExhausted { requested: 10, available: 4 };
        assert!(e.to_string().contains("requested 10"));
    }
}
