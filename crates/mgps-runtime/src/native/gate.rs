//! The PPE-context gate: admission control for worker processes.
//!
//! The Cell PPE has two SMT hardware contexts; oversubscribing it with more
//! worker processes only helps if a process *yields its context while its
//! off-loaded task runs* (EDTLP). The baseline behaviour — spinning on the
//! context until the OS quantum expires — strands the other processes and
//! starves the SPEs (§5.2, Table 1).
//!
//! Natively, a "PPE context" is a slot in this gate: a process must hold a
//! slot to execute PPE-side code. [`PpeToken::offload`] implements the two
//! disciplines: under [`GateMode::YieldOnOffload`] the slot is released for
//! the duration of the off-load and re-acquired afterwards (paying the
//! 1.5 µs voluntary-switch cost); under [`GateMode::HoldDuringOffload`] the
//! slot is kept, so at most `contexts` processes can have tasks in flight.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use super::sync::{Condvar, Mutex};
use crate::metrics::{Counter, HistKind, MetricsSink, MetricsSinkExt, NopMetrics};
use crate::tracing::{TraceEventKind, TraceHandle};

/// How a process treats its PPE context while an off-loaded task runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateMode {
    /// EDTLP: voluntarily yield the context on off-load.
    YieldOnOffload,
    /// Baseline: spin on the context for the whole off-load.
    HoldDuringOffload,
}

/// The gate guarding the PPE's hardware contexts.
pub struct PpeGate {
    slots: Mutex<usize>, // free slots
    freed: Condvar,
    capacity: usize,
    mode: GateMode,
    switch_cost: Duration,
    switches: AtomicU64,
    wait_ns: AtomicU64,
    metrics: Arc<dyn MetricsSink>,
}

impl PpeGate {
    /// A gate with `contexts` slots (2 on a Cell PPE), the given mode, and
    /// voluntary context-switch cost (1.5 µs measured in the paper).
    pub fn new(contexts: usize, mode: GateMode, switch_cost: Duration) -> PpeGate {
        PpeGate::with_metrics(contexts, mode, switch_cost, Arc::new(NopMetrics))
    }

    /// Like [`Self::new`], recording context switches and hold times into
    /// `metrics`.
    pub fn with_metrics(
        contexts: usize,
        mode: GateMode,
        switch_cost: Duration,
        metrics: Arc<dyn MetricsSink>,
    ) -> PpeGate {
        assert!(contexts > 0, "a PPE has at least one context");
        PpeGate {
            slots: Mutex::new(contexts),
            freed: Condvar::new(),
            capacity: contexts,
            mode,
            switch_cost,
            switches: AtomicU64::new(0),
            wait_ns: AtomicU64::new(0),
            metrics,
        }
    }

    /// Configured number of hardware contexts.
    pub fn contexts(&self) -> usize {
        self.capacity
    }

    /// The gate's off-load discipline.
    pub fn mode(&self) -> GateMode {
        self.mode
    }

    /// Voluntary context switches performed (yield + re-acquire pairs).
    pub fn switches(&self) -> u64 {
        self.switches.load(Ordering::Relaxed)
    }

    /// Cumulative time processes spent waiting for a context, ns.
    pub fn contention_ns(&self) -> u64 {
        self.wait_ns.load(Ordering::Relaxed)
    }

    /// Block until a context is free, then claim it.
    pub fn enter(&self) -> PpeToken<'_> {
        self.acquire_slot();
        PpeToken { gate: self, held: true, held_since: Instant::now() }
    }

    fn acquire_slot(&self) {
        let start = Instant::now();
        let mut free = self.slots.lock();
        while *free == 0 {
            self.freed.wait(&mut free);
        }
        *free -= 1;
        drop(free);
        self.wait_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    fn release_slot(&self) {
        let mut free = self.slots.lock();
        *free += 1;
        debug_assert!(*free <= self.capacity, "gate over-released");
        drop(free);
        self.freed.notify_one();
    }
}

/// Proof that the holder occupies a PPE context.
pub struct PpeToken<'g> {
    gate: &'g PpeGate,
    held: bool,
    held_since: Instant,
}

impl PpeToken<'_> {
    /// Run `f` — a blocking wait on an off-loaded task — under the gate's
    /// discipline: yielding the context for the duration (EDTLP) or
    /// spinning on it (baseline).
    pub fn offload<T>(&mut self, f: impl FnOnce() -> T) -> T {
        self.offload_traced(None, f)
    }

    /// [`Self::offload`] with span tracing: if `trace` is given, a yield
    /// (EDTLP voluntary context switch) is recorded on the process's ring
    /// as `(handle, proc)`.
    pub fn offload_traced<T>(
        &mut self,
        trace: Option<(&TraceHandle, usize)>,
        f: impl FnOnce() -> T,
    ) -> T {
        match self.gate.mode {
            GateMode::HoldDuringOffload => f(),
            GateMode::YieldOnOffload => {
                self.observe_hold();
                let held_ns = self.held_since.elapsed().as_nanos() as u64;
                self.gate.release_slot();
                self.held = false;
                let out = f();
                // Re-acquire: a voluntary context switch back in.
                self.gate.acquire_slot();
                self.held = true;
                self.held_since = Instant::now();
                self.gate.switches.fetch_add(1, Ordering::Relaxed);
                self.gate.metrics.incr(Counter::CtxSwitchOffload);
                if !self.gate.switch_cost.is_zero() {
                    spin_for(self.gate.switch_cost);
                }
                if let Some((t, proc)) = trace {
                    t.record(TraceEventKind::CtxSwitch { proc, held_ns });
                }
                out
            }
        }
    }

    fn observe_hold(&self) {
        self.gate
            .metrics
            .observe(HistKind::CtxHoldNs, self.held_since.elapsed().as_nanos() as u64);
    }

    /// Whether the token currently holds a context (always true outside
    /// [`Self::offload`]).
    pub fn holds_context(&self) -> bool {
        self.held
    }
}

impl Drop for PpeToken<'_> {
    fn drop(&mut self) {
        if self.held {
            self.observe_hold();
            self.gate.release_slot();
        }
    }
}

fn spin_for(d: Duration) {
    let end = Instant::now() + d;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn gate_admits_up_to_capacity() {
        let gate = PpeGate::new(2, GateMode::YieldOnOffload, Duration::ZERO);
        let t1 = gate.enter();
        let t2 = gate.enter();
        assert!(t1.holds_context() && t2.holds_context());
        drop(t1);
        let t3 = gate.enter();
        assert!(t3.holds_context());
        drop(t2);
        drop(t3);
        assert_eq!(*gate.slots.lock(), 2);
    }

    #[test]
    fn yield_mode_releases_context_during_offload() {
        let gate = Arc::new(PpeGate::new(1, GateMode::YieldOnOffload, Duration::ZERO));
        let observed = Arc::new(AtomicUsize::new(0));

        // Hold the only context, then offload; a second thread must be able
        // to enter while the offload is in flight.
        let g = Arc::clone(&gate);
        let obs = Arc::clone(&observed);
        let waiter = std::thread::spawn(move || {
            let _t = g.enter();
            obs.store(1, Ordering::SeqCst);
        });

        let mut t = gate.enter();
        t.offload(|| {
            // Wait until the other thread managed to get in.
            while observed.load(Ordering::SeqCst) == 0 {
                std::thread::yield_now();
            }
        });
        assert!(t.holds_context());
        waiter.join().unwrap();
        assert_eq!(gate.switches(), 1);
    }

    #[test]
    fn hold_mode_keeps_context_during_offload() {
        let gate = Arc::new(PpeGate::new(1, GateMode::HoldDuringOffload, Duration::ZERO));
        let entered = Arc::new(AtomicUsize::new(0));

        let mut t = gate.enter();
        let g = Arc::clone(&gate);
        let e = Arc::clone(&entered);
        let waiter = std::thread::spawn(move || {
            let _t = g.enter();
            e.store(1, Ordering::SeqCst);
        });
        t.offload(|| {
            // Give the waiter ample chance; it must NOT get in.
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(entered.load(Ordering::SeqCst), 0, "context leaked during hold-mode offload");
        });
        assert_eq!(gate.switches(), 0);
        drop(t);
        waiter.join().unwrap();
        assert_eq!(entered.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn contention_time_is_recorded() {
        let gate = Arc::new(PpeGate::new(1, GateMode::YieldOnOffload, Duration::ZERO));
        let t = gate.enter();
        let g = Arc::clone(&gate);
        let h = std::thread::spawn(move || {
            let _t = g.enter(); // must wait ~10ms
        });
        std::thread::sleep(Duration::from_millis(10));
        drop(t);
        h.join().unwrap();
        assert!(gate.contention_ns() >= 5_000_000, "got {}ns", gate.contention_ns());
    }

    #[test]
    fn switch_cost_is_paid_on_reacquire() {
        let gate = PpeGate::new(1, GateMode::YieldOnOffload, Duration::from_micros(500));
        let mut t = gate.enter();
        let start = Instant::now();
        t.offload(|| {});
        assert!(start.elapsed() >= Duration::from_micros(500));
    }
}
