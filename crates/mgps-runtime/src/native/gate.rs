//! The PPE-context gate: admission control for worker processes.
//!
//! The Cell PPE has two SMT hardware contexts; oversubscribing it with more
//! worker processes only helps if a process *yields its context while its
//! off-loaded task runs* (EDTLP). The baseline behaviour — spinning on the
//! context until the OS quantum expires — strands the other processes and
//! starves the SPEs (§5.2, Table 1).
//!
//! Natively, a "PPE context" is a slot in this gate: a process must hold a
//! slot to execute PPE-side code. [`PpeToken::offload`] implements the two
//! disciplines: under [`GateMode::YieldOnOffload`] the slot is released for
//! the duration of the off-load and re-acquired afterwards (paying the
//! 1.5 µs voluntary-switch cost); under [`GateMode::HoldDuringOffload`] the
//! slot is kept, so at most `contexts` processes can have tasks in flight.
//!
//! # Sharded slots
//!
//! The gate used to be a single `Mutex<usize>` free-slot counter plus a
//! condvar, so *every* acquire and release — including the completely
//! uncontended ones that dominate EDTLP steady state — serialized through
//! one lock, and the lock's own acquisition latency was booked as
//! "contention". It is now striped: one cache-line-padded atomic word per
//! hardware context, claimed by compare-and-swap with a rotating probe
//! start so concurrent acquirers target different stripes. The mutex and
//! condvar survive only on the slow path, where a process that found every
//! slot taken registers as a waiter and parks. `wait_ns` is charged only
//! on that slow path — genuine contention — measured once per acquisition
//! regardless of how many spurious wakeups the condvar delivers, and
//! accumulated with saturating arithmetic.

use std::sync::Arc;
use std::time::{Duration, Instant};

use super::sync::{AtomicU32, AtomicU64, AtomicUsize, Condvar, Mutex, Ordering};
use crate::metrics::{Counter, HistKind, MetricsSink, MetricsSinkExt, NopMetrics};
use crate::tracing::{TraceEventKind, TraceHandle};

/// How a process treats its PPE context while an off-loaded task runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateMode {
    /// EDTLP: voluntarily yield the context on off-load.
    YieldOnOffload,
    /// Baseline: spin on the context for the whole off-load.
    HoldDuringOffload,
}

/// One hardware context's slot word, padded to a cache line so two
/// processes claiming different contexts never bounce the same line.
#[repr(align(64))]
struct SlotWord(AtomicU32);

const SLOT_FREE: u32 = 0;
const SLOT_HELD: u32 = 1;

/// The gate guarding the PPE's hardware contexts.
pub struct PpeGate {
    /// Per-context slot words (the stripes).
    slots: Box<[SlotWord]>,
    /// Rotating probe start: spreads concurrent acquirers across stripes.
    probe: AtomicUsize,
    /// Slow path only: count of processes parked (or about to park) on
    /// `freed`. Registration happens under the mutex, so a releaser that
    /// locks it observes every registered waiter.
    waiters: Mutex<usize>,
    freed: Condvar,
    mode: GateMode,
    switch_cost: Duration,
    switches: AtomicU64,
    wait_ns: AtomicU64,
    metrics: Arc<dyn MetricsSink>,
}

impl PpeGate {
    /// A gate with `contexts` slots (2 on a Cell PPE), the given mode, and
    /// voluntary context-switch cost (1.5 µs measured in the paper).
    pub fn new(contexts: usize, mode: GateMode, switch_cost: Duration) -> PpeGate {
        PpeGate::with_metrics(contexts, mode, switch_cost, Arc::new(NopMetrics))
    }

    /// Like [`Self::new`], recording context switches and hold times into
    /// `metrics`.
    pub fn with_metrics(
        contexts: usize,
        mode: GateMode,
        switch_cost: Duration,
        metrics: Arc<dyn MetricsSink>,
    ) -> PpeGate {
        assert!(contexts > 0, "a PPE has at least one context");
        PpeGate {
            slots: (0..contexts).map(|_| SlotWord(AtomicU32::new(SLOT_FREE))).collect(),
            probe: AtomicUsize::new(0),
            waiters: Mutex::new(0),
            freed: Condvar::new(),
            mode,
            switch_cost,
            switches: AtomicU64::new(0),
            wait_ns: AtomicU64::new(0),
            metrics,
        }
    }

    /// Configured number of hardware contexts.
    pub fn contexts(&self) -> usize {
        self.slots.len()
    }

    /// The gate's off-load discipline.
    pub fn mode(&self) -> GateMode {
        self.mode
    }

    /// Voluntary context switches performed (yield + re-acquire pairs).
    pub fn switches(&self) -> u64 {
        self.switches.load(Ordering::Relaxed)
    }

    /// Cumulative time processes spent waiting for a context, ns. Only
    /// slow-path waits count: an uncontended claim contributes zero.
    pub fn contention_ns(&self) -> u64 {
        self.wait_ns.load(Ordering::Relaxed)
    }

    /// Block until a context is free, then claim it.
    pub fn enter(&self) -> PpeToken<'_> {
        let slot = self.acquire_slot();
        PpeToken { gate: self, slot, held: true, held_since: Instant::now() }
    }

    /// Try every stripe once, starting at the rotating probe hint.
    fn try_claim(&self) -> Option<usize> {
        let n = self.slots.len();
        let start = self.probe.fetch_add(1, Ordering::Relaxed);
        for k in 0..n {
            let i = (start + k) % n;
            if self.slots[i]
                .0
                .compare_exchange(SLOT_FREE, SLOT_HELD, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return Some(i);
            }
        }
        None
    }

    fn acquire_slot(&self) -> usize {
        // Fast path: a CAS per stripe, no lock, no wait accounting.
        if let Some(i) = self.try_claim() {
            return i;
        }
        // Slow path: register as a waiter and park. The wait is measured
        // exactly once — from slow-path entry to successful claim — so
        // spurious condvar wakeups cannot double-count it.
        let start = Instant::now();
        let mut waiting = self.waiters.lock();
        loop {
            if let Some(i) = self.try_claim() {
                drop(waiting);
                saturating_add(&self.wait_ns, elapsed_ns(start));
                return i;
            }
            *waiting += 1;
            self.freed.wait(&mut waiting);
            *waiting -= 1;
        }
    }

    fn release_slot(&self, slot: usize) {
        let prev = self.slots[slot].0.swap(SLOT_FREE, Ordering::Release);
        debug_assert_eq!(prev, SLOT_HELD, "gate over-released slot {slot}");
        // Lost-wakeup safety: waiters re-check `try_claim` under the mutex
        // before parking, and this lock acquisition orders the slot release
        // before that re-check. If the count is zero here, any concurrent
        // acquirer has yet to register and will see the freed slot itself.
        let waiting = self.waiters.lock();
        if *waiting > 0 {
            self.freed.notify_one();
        }
    }
}

/// Add `ns` to `counter` without wrapping at the top of the range.
fn saturating_add(counter: &AtomicU64, ns: u64) {
    let mut cur = counter.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_add(ns);
        match counter.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Nanoseconds since `start`, clamped instead of wrapped on overflow.
fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Proof that the holder occupies a PPE context.
pub struct PpeToken<'g> {
    gate: &'g PpeGate,
    slot: usize,
    held: bool,
    held_since: Instant,
}

impl PpeToken<'_> {
    /// Run `f` — a blocking wait on an off-loaded task — under the gate's
    /// discipline: yielding the context for the duration (EDTLP) or
    /// spinning on it (baseline).
    pub fn offload<T>(&mut self, f: impl FnOnce() -> T) -> T {
        self.offload_traced(None, f)
    }

    /// [`Self::offload`] with span tracing: if `trace` is given, a yield
    /// (EDTLP voluntary context switch) is recorded on the process's ring
    /// as `(handle, proc)`.
    pub fn offload_traced<T>(
        &mut self,
        trace: Option<(&TraceHandle, usize)>,
        f: impl FnOnce() -> T,
    ) -> T {
        match self.gate.mode {
            GateMode::HoldDuringOffload => f(),
            GateMode::YieldOnOffload => {
                self.observe_hold();
                let held_ns = elapsed_ns(self.held_since);
                self.gate.release_slot(self.slot);
                self.held = false;
                let out = f();
                // Re-acquire: a voluntary context switch back in (possibly
                // onto a different hardware context).
                self.slot = self.gate.acquire_slot();
                self.held = true;
                self.held_since = Instant::now();
                self.gate.switches.fetch_add(1, Ordering::Relaxed);
                self.gate.metrics.incr(Counter::CtxSwitchOffload);
                if !self.gate.switch_cost.is_zero() {
                    spin_for(self.gate.switch_cost);
                }
                if let Some((t, proc)) = trace {
                    t.record(TraceEventKind::CtxSwitch { proc, held_ns });
                }
                out
            }
        }
    }

    fn observe_hold(&self) {
        self.gate
            .metrics
            .observe(HistKind::CtxHoldNs, elapsed_ns(self.held_since));
    }

    /// Whether the token currently holds a context (always true outside
    /// [`Self::offload`]).
    pub fn holds_context(&self) -> bool {
        self.held
    }
}

impl Drop for PpeToken<'_> {
    fn drop(&mut self) {
        if self.held {
            self.observe_hold();
            self.gate.release_slot(self.slot);
        }
    }
}

fn spin_for(d: Duration) {
    let end = Instant::now() + d;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

/// The retired mutex+condvar gate, kept verbatim (modulo the accounting
/// fix) as a differential oracle: unit tests drive the same deterministic
/// scripts through both designs and demand identical `switches` /
/// `wait_ns` totals.
#[cfg(test)]
mod classic {
    use super::*;

    /// The pre-sharding gate: one mutex-guarded free-slot counter.
    pub struct ClassicGate {
        slots: Mutex<usize>,
        freed: Condvar,
        pub switches: AtomicU64,
        pub wait_ns: AtomicU64,
    }

    impl ClassicGate {
        pub fn new(contexts: usize) -> ClassicGate {
            ClassicGate {
                slots: Mutex::new(contexts),
                freed: Condvar::new(),
                switches: AtomicU64::new(0),
                wait_ns: AtomicU64::new(0),
            }
        }

        pub fn acquire(&self) {
            let mut free = self.slots.lock();
            if *free == 0 {
                // Contended: measure once across however many wakeups.
                let start = Instant::now();
                while *free == 0 {
                    self.freed.wait(&mut free);
                }
                saturating_add(&self.wait_ns, elapsed_ns(start));
            }
            *free -= 1;
        }

        pub fn release(&self) {
            let mut free = self.slots.lock();
            *free += 1;
            drop(free);
            self.freed.notify_one();
        }

        /// A yield/re-acquire pair around `f`.
        pub fn offload<T>(&self, f: impl FnOnce() -> T) -> T {
            self.release();
            let out = f();
            self.acquire();
            self.switches.fetch_add(1, Ordering::Relaxed);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;
    use std::sync::Arc;

    #[test]
    fn gate_admits_up_to_capacity() {
        let gate = PpeGate::new(2, GateMode::YieldOnOffload, Duration::ZERO);
        let t1 = gate.enter();
        let t2 = gate.enter();
        assert!(t1.holds_context() && t2.holds_context());
        drop(t1);
        let t3 = gate.enter();
        assert!(t3.holds_context());
        drop(t2);
        drop(t3);
        assert!(gate.slots.iter().all(|s| s.0.load(Ordering::Relaxed) == SLOT_FREE));
    }

    #[test]
    fn yield_mode_releases_context_during_offload() {
        let gate = Arc::new(PpeGate::new(1, GateMode::YieldOnOffload, Duration::ZERO));
        let observed = Arc::new(StdAtomicUsize::new(0));

        // Hold the only context, then offload; a second thread must be able
        // to enter while the offload is in flight.
        let g = Arc::clone(&gate);
        let obs = Arc::clone(&observed);
        let waiter = std::thread::spawn(move || {
            let _t = g.enter();
            obs.store(1, std::sync::atomic::Ordering::SeqCst);
        });

        let mut t = gate.enter();
        t.offload(|| {
            // Wait until the other thread managed to get in.
            while observed.load(std::sync::atomic::Ordering::SeqCst) == 0 {
                std::thread::yield_now();
            }
        });
        assert!(t.holds_context());
        waiter.join().unwrap();
        assert_eq!(gate.switches(), 1);
    }

    #[test]
    fn hold_mode_keeps_context_during_offload() {
        let gate = Arc::new(PpeGate::new(1, GateMode::HoldDuringOffload, Duration::ZERO));
        let entered = Arc::new(StdAtomicUsize::new(0));

        let mut t = gate.enter();
        let g = Arc::clone(&gate);
        let e = Arc::clone(&entered);
        let waiter = std::thread::spawn(move || {
            let _t = g.enter();
            e.store(1, std::sync::atomic::Ordering::SeqCst);
        });
        t.offload(|| {
            // Give the waiter ample chance; it must NOT get in.
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(
                entered.load(std::sync::atomic::Ordering::SeqCst),
                0,
                "context leaked during hold-mode offload"
            );
        });
        assert_eq!(gate.switches(), 0);
        drop(t);
        waiter.join().unwrap();
        assert_eq!(entered.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn contention_time_is_recorded() {
        let gate = Arc::new(PpeGate::new(1, GateMode::YieldOnOffload, Duration::ZERO));
        let t = gate.enter();
        let g = Arc::clone(&gate);
        let h = std::thread::spawn(move || {
            let _t = g.enter(); // must wait ~10ms
        });
        std::thread::sleep(Duration::from_millis(10));
        drop(t);
        h.join().unwrap();
        assert!(gate.contention_ns() >= 5_000_000, "got {}ns", gate.contention_ns());
    }

    #[test]
    fn uncontended_acquires_record_zero_contention() {
        // The old gate booked its own lock-acquisition latency as wait
        // time; the sharded fast path must book exactly nothing.
        let gate = PpeGate::new(2, GateMode::YieldOnOffload, Duration::ZERO);
        for _ in 0..100 {
            let mut t = gate.enter();
            t.offload(|| {});
        }
        assert_eq!(gate.contention_ns(), 0);
        assert_eq!(gate.switches(), 100);
    }

    #[test]
    fn switch_cost_is_paid_on_reacquire() {
        let gate = PpeGate::new(1, GateMode::YieldOnOffload, Duration::from_micros(500));
        let mut t = gate.enter();
        let start = Instant::now();
        t.offload(|| {});
        assert!(start.elapsed() >= Duration::from_micros(500));
    }

    #[test]
    fn contention_accounting_does_not_double_count_wakeups() {
        // Capacity 1, three contenders churning enter/offload/drop: every
        // park/wake cycle re-runs the slow-path loop, so a double-counting
        // bug inflates wait_ns beyond physical time. Total recorded wait
        // can never exceed contenders × wall clock.
        let gate = Arc::new(PpeGate::new(1, GateMode::YieldOnOffload, Duration::ZERO));
        let start = Instant::now();
        let threads: Vec<_> = (0..3)
            .map(|_| {
                let g = Arc::clone(&gate);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let mut t = g.enter();
                        t.offload(std::thread::yield_now);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let wall = elapsed_ns(start);
        assert!(
            gate.contention_ns() <= wall.saturating_mul(3),
            "wait_ns {} exceeds 3x wall {}",
            gate.contention_ns(),
            wall
        );
        assert_eq!(gate.switches(), 600);
    }

    #[test]
    fn wait_accounting_saturates_instead_of_wrapping() {
        let c = AtomicU64::new(u64::MAX - 5);
        saturating_add(&c, 100);
        assert_eq!(c.load(Ordering::Relaxed), u64::MAX);
        saturating_add(&c, 1);
        assert_eq!(c.load(Ordering::Relaxed), u64::MAX);
    }

    #[test]
    fn sharded_gate_matches_classic_gate_on_seeded_single_thread_run() {
        // The differential satellite: one thread, a deterministic script of
        // enter / offload / drop derived from a seed, run through both the
        // sharded gate and the retired mutex+condvar design. Totals must be
        // identical: the redesign may change *how* slots are claimed, never
        // *what* the accounting reports.
        let seed = 0xC0FFEEu64;
        let script: Vec<usize> = (0..40u64)
            .map(|i| {
                let x = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(i.wrapping_mul(1442695040888963407));
                (x >> 33) as usize % 4
            })
            .collect();

        let sharded = PpeGate::new(2, GateMode::YieldOnOffload, Duration::ZERO);
        for &offloads in &script {
            let mut t = sharded.enter();
            for _ in 0..offloads {
                t.offload(|| {});
            }
        }

        let old = classic::ClassicGate::new(2);
        for &offloads in &script {
            old.acquire();
            for _ in 0..offloads {
                old.offload(|| {});
            }
            old.release();
        }

        assert_eq!(sharded.switches(), old.switches.load(Ordering::Relaxed));
        // Single-threaded: neither design ever waits, and neither may book
        // phantom contention (the old accounting bug charged uncontended
        // lock latency here).
        assert_eq!(sharded.contention_ns(), 0);
        assert_eq!(sharded.contention_ns(), old.wait_ns.load(Ordering::Relaxed));
    }

    #[test]
    fn stripes_spread_concurrent_holders() {
        // With capacity 2 and two tokens held, both slot words are taken.
        let gate = PpeGate::new(2, GateMode::YieldOnOffload, Duration::ZERO);
        let t1 = gate.enter();
        let t2 = gate.enter();
        let held: u32 = gate.slots.iter().map(|s| s.0.load(Ordering::Relaxed)).sum();
        assert_eq!(held, 2);
        drop(t1);
        drop(t2);
    }
}
